#!/usr/bin/env python3
"""Where does the LAMMPS gap come from? (fig 6/7 decomposition)

The paper finds the biggest simulation-vs-silicon divergence on LAMMPS.
This example runs the LJ benchmark on the MILK-V pair and then re-runs the
FireSim model with single substitutions (DDR4 memory model, hardware
prefetcher, wider core) to attribute the gap to its mechanisms — the
analysis §6 calls for but could not perform on the real FPGA platform.

Run:  python examples/lammps_gap.py
"""

import dataclasses

from repro.analysis import relative_speedup, render_table
from repro.mem.dram import DDR4_3200_4CH
from repro.soc import MILKV_HW, MILKV_SIM
from repro.workloads.lammps import run_lammps

ATOMS, STEPS = 500, 4


def variant(name, **hier_changes):
    cfg = MILKV_SIM
    if hier_changes:
        cfg = cfg.with_(
            name=name,
            hierarchy=dataclasses.replace(cfg.hierarchy, **hier_changes),
        )
    return cfg


def main() -> None:
    hw = run_lammps(MILKV_HW, nranks=1, benchmark="lj",
                    natoms=ATOMS, steps=STEPS)
    assert hw.verified
    print(f"MILK-V hardware reference: {hw.seconds * 1e3:.2f} ms "
          f"(energy drift {hw.energy_drift:.1e})")

    # each variant lifts ONE restriction from the stock model (independent
    # substitutions, not cumulative)
    variants = [
        ("MILKVSim (stock)", MILKV_SIM),
        ("with DDR4 memory model",
         variant("MILKVSim+DDR4",
                 dram=dataclasses.replace(DDR4_3200_4CH, queue_depth=32))),
        ("with hardware prefetcher",
         MILKV_SIM.with_(name="MILKVSim+PF", prefetcher=MILKV_HW.prefetcher)),
        ("with C920-class core",
         MILKV_SIM.with_(name="MILKVSim+core", ooo=MILKV_HW.ooo)),
    ]
    rows = []
    for label, cfg in variants:
        r = run_lammps(cfg, nranks=1, benchmark="lj",
                       natoms=ATOMS, steps=STEPS)
        assert r.verified
        rows.append({
            "FireSim variant": label,
            "ms": r.seconds * 1e3,
            "relative speedup": relative_speedup(hw.seconds, r.seconds),
        })
    print(render_table(
        rows,
        title="LAMMPS-LJ gap attribution (relative speedup -> 1.0 as the "
              "restricted models are lifted)",
    ))
    print("\nEach substitution removes one FireSim restriction; whatever "
          "distance to 1.0 remains is\nun-modeled microarchitecture — the "
          "'limited public information' residual of §6.")


if __name__ == "__main__":
    main()
