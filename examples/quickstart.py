#!/usr/bin/env python3
"""Quickstart: simulate one kernel on FireSim and on "real hardware".

The study's core loop in ~40 lines: build a microbenchmark trace, run it
on a FireSim design (with its FPGA host-time estimate) and on the Banana
Pi reference model, and compute the paper's relative-speedup metric.

Run:  python examples/quickstart.py
"""

from repro.analysis import relative_speedup
from repro.firesim import FireSimManager
from repro.silicon import banana_pi
from repro.soc import BANANA_PI_SIM
from repro.workloads.microbench import get_kernel


def main() -> None:
    # 1. pick a kernel from the MicroBench suite (Table 1)
    kernel = get_kernel("MD")  # cache-resident linked-list traversal
    trace = kernel.build(scale=0.5)
    print(f"kernel {kernel.spec.name}: {len(trace)} dynamic micro-ops "
          f"({kernel.spec.description})")

    # 2. simulate it on the tuned Banana Pi FireSim model
    firesim = FireSimManager(BANANA_PI_SIM)
    firesim.run_trace(trace)          # warmup pass (train caches/predictors)
    sim = firesim.run_trace(trace)
    print(f"  FireSim   : {sim.target_seconds * 1e6:8.1f} us target time, "
          f"~{sim.host_seconds:.2f} s on the FPGA host "
          f"({sim.slowdown:.0f}x slowdown)")

    # 3. time it on the Banana Pi hardware reference
    hw = banana_pi().time_trace(trace)
    print(f"  Banana Pi : {hw.seconds * 1e6:8.1f} us measured")

    # 4. the paper's metric: hardware_time / simulated_time (1.0 = match)
    rel = relative_speedup(hw.seconds, sim.target_seconds)
    print(f"  relative speedup = {rel:.3f} "
          f"({'simulation faster' if rel > 1 else 'hardware faster'})")


if __name__ == "__main__":
    main()
