#!/usr/bin/env python3
"""What did disabling the vector units cost? (extension study)

The paper instantiates its FireSim cores "without enabling vector units"
(§3.1) even though the Banana Pi's K1 implements 256-bit RVV 1.0 — a
necessary concession, since Rocket has no vector unit to enable.  This
example quantifies the concession: run the scalar data-parallel kernels
and their RVV twins on the K1 model with its vector unit switched on.

Run:  python examples/rvv_whatif.py
"""

import dataclasses

from repro.analysis import render_table
from repro.core.vector import VectorConfig
from repro.soc import BANANA_PI_HW, BANANA_PI_SIM, System
from repro.workloads.microbench import get_kernel
from repro.workloads.microbench.vectorbench import VECTOR_TWINS, vector_twin

SCALE = 0.4


def timed(system, trace, ghz):
    system.run(trace)  # warm
    return system.run(trace).cycles / (ghz * 1e9)


def main() -> None:
    k1_rvv = BANANA_PI_HW.with_(
        name="K1+RVV",
        inorder=dataclasses.replace(
            BANANA_PI_HW.inorder,
            vector=VectorConfig(vlen_bits=256, lane_bits=256,
                                mem_bits_per_cycle=128),
        ),
    )
    rows = []
    for scalar_name in sorted(VECTOR_TWINS):
        scalar_trace = get_kernel(scalar_name).build(scale=SCALE)
        vector_trace = vector_twin(scalar_name).build(scale=SCALE)
        t_sim = timed(System(BANANA_PI_SIM), scalar_trace, 1.6)
        t_scalar = timed(System(k1_rvv), scalar_trace, 1.6)
        t_vector = timed(System(k1_rvv), vector_trace, 1.6)
        rows.append({
            "Kernel": scalar_name,
            "FireSim scalar (us)": t_sim * 1e6,
            "K1 scalar (us)": t_scalar * 1e6,
            "K1 RVV (us)": t_vector * 1e6,
            "RVV speedup": t_scalar / t_vector,
            "sim/HW gap if RVV used": t_vector / t_sim,
        })
    print(render_table(
        rows,
        title="RVV what-if: the K1's 256-bit vector unit on the "
              "data-parallel kernels",
    ))
    print("\nWith RVV enabled, the hardware pulls several times further "
          "ahead of the scalar-only\nFireSim model — the validation gap the "
          "paper measured is a *floor*, not a ceiling.")


if __name__ == "__main__":
    main()
