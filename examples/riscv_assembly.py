#!/usr/bin/env python3
"""From RISC-V machine code to cycle estimates on every modeled platform.

Demonstrates the full substrate path: assemble a real RV64IM program,
execute it functionally (verifying the architectural result), and feed the
retired-instruction trace to every SoC model in the study — the same
flow FireSim users follow with cross-compiled binaries.

Run:  python examples/riscv_assembly.py
"""

from repro.analysis import render_table
from repro.isa import Interpreter, assemble, decode
from repro.soc import ALL_CONFIGS, System

# Euclid's gcd, called on a few register pairs, with a memory-resident
# result table - branches, loops, call/return, loads and stores.
PROGRAM = """
        li   sp, 0x9000
        li   s0, 0x4000        # result table
        li   s1, 0             # index
        li   a0, 270
        li   a1, 192
        call gcd
        sd   a0, 0(s0)
        li   a0, 35
        li   a1, 64
        call gcd
        sd   a0, 8(s0)
        li   a0, 123456
        li   a1, 7896
        call gcd
        sd   a0, 16(s0)
        ecall

gcd:                            # a0 = gcd(a0, a1), iterative
        beqz a1, gcd_done
gcd_loop:
        rem  t0, a0, a1
        mv   a0, a1
        mv   a1, t0
        bnez a1, gcd_loop
gcd_done:
        ret
"""


def main() -> None:
    words = assemble(PROGRAM)
    print(f"assembled {len(words)} instructions; first three:")
    for w in words[:3]:
        print(f"  {w:#010x}  {decode(w)}")

    interp = Interpreter(words)
    trace = interp.run()
    import math

    results = [interp.mem.load(0x4000 + 8 * i, 8, False) for i in range(3)]
    expected = [math.gcd(270, 192), math.gcd(35, 64), math.gcd(123456, 7896)]
    assert results == expected, f"wrong gcds: {results}"
    print(f"functional check: gcds = {results} (correct); "
          f"{len(trace)} dynamic micro-ops retired")

    rows = []
    for name, cfg in ALL_CONFIGS.items():
        system = System(cfg)
        system.run(trace)              # warm caches and predictors
        r = system.run(trace)
        rows.append({
            "Platform": name,
            "Kind": "silicon" if cfg.is_silicon else "FireSim",
            "Cycles": r.cycles,
            "IPC": r.ipc,
            "ns": r.cycles / cfg.core_ghz,
        })
    rows.sort(key=lambda r: r["ns"])
    print()
    print(render_table(rows, title="gcd benchmark across all modeled platforms"))


if __name__ == "__main__":
    main()
