#!/usr/bin/env python3
"""Multi-node scale-out study (the paper's §7 future work).

FireSim's distinguishing feature is simulating *clusters*: multiple nodes
linked by a simulated network. The paper proposes scaling the study to
eight BXE nodes; this example performs that experiment on the model —
NPB EP and CG across 1, 2, 4, and 8 simulated Banana-Pi-class nodes
(4 ranks each), with on-node shared-memory MPI and 10 GbE between nodes.

Run:  python examples/multinode_scaling.py
"""

from repro.analysis import render_table
from repro.smpi import ethernet_network, run_multinode
from repro.soc import BANANA_PI_SIM
from repro.workloads.npb.cg import cg_program, cg_reference
from repro.workloads.npb.ep import ep_program, ep_reference

import numpy as np


def main() -> None:
    ghz = BANANA_PI_SIM.core_ghz
    inter = ethernet_network(ghz, gbps=10.0, latency_us=20.0)
    rows = []
    ep_ref = ep_reference("W")
    cg_ref = cg_reference("W")
    for nnodes in (1, 2, 4, 8):
        nranks = 4 * nnodes
        ep = run_multinode(BANANA_PI_SIM, nnodes,
                           lambda comm: ep_program(comm, "W"),
                           ranks_per_node=4, inter=inter)
        assert all(np.isclose(r.value[0], ep_ref[0], rtol=1e-8) for r in ep)
        cg = run_multinode(BANANA_PI_SIM, nnodes,
                           lambda comm: cg_program(comm, "W"),
                           ranks_per_node=4, inter=inter)
        assert all(np.isclose(r.value, cg_ref, rtol=1e-9) for r in cg)
        rows.append({
            "Nodes": nnodes,
            "Ranks": nranks,
            "EP ms": max(r.cycles for r in ep) / (ghz * 1e6),
            "CG ms": max(r.cycles for r in cg) / (ghz * 1e6),
            "CG comm share": (sum(r.comm_cycles for r in cg)
                              / max(1, sum(r.cycles for r in cg))),
        })
    print(render_table(
        rows,
        title="NPB class W across simulated Banana-Pi-class nodes "
              "(4 ranks/node, 10 GbE inter-node)",
    ))
    print("\nReading guide: at these reduced classes the per-rank work is "
          "microseconds, so adding\n10 GbE nodes (20 us latency) moves both "
          "codes onto the strong-scaling cliff — EP's\nsingle allreduce "
          "saturates gently, while CG's allgather-per-iteration drives its\n"
          "communication share toward 90%. Exposing exactly this trade-off "
          "before building\nthe cluster is what multi-node FireSim is for.")


if __name__ == "__main__":
    main()
