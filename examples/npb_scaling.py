#!/usr/bin/env python3
"""NPB strong-scaling study: class-A benchmarks on 1/2/4 MPI ranks.

Reproduces the fig-3/fig-4 style comparison on a reduced class so it
finishes in about a minute: runs CG/EP/IS/MG on the Banana Pi hardware
model and its FireSim counterpart, prints runtimes, scaling efficiency,
and the relative-speedup table.

Run:  python examples/npb_scaling.py [--class A]  (default: W)
"""

import sys

from repro.analysis import relative_speedup, render_table
from repro.soc import BANANA_PI_HW, BANANA_PI_SIM
from repro.workloads.npb import NPB_RUNNERS


def main() -> None:
    cls = "A" if "--class" in sys.argv and "A" in sys.argv else "W"
    ranks = [1, 2, 4]
    rows = []
    for bench, runner in NPB_RUNNERS.items():
        hw_times = {}
        sim_times = {}
        for nr in ranks:
            hw = runner(BANANA_PI_HW, nranks=nr, cls=cls)
            sim = runner(BANANA_PI_SIM, nranks=nr, cls=cls)
            assert hw.verified and sim.verified, f"{bench} failed verification"
            hw_times[nr] = hw.seconds
            sim_times[nr] = sim.seconds
        row = {"Benchmark": f"{bench}.{cls}"}
        for nr in ranks:
            row[f"rel x{nr}"] = relative_speedup(hw_times[nr], sim_times[nr])
        row["HW scaling 1->4"] = hw_times[1] / hw_times[4]
        row["Sim scaling 1->4"] = sim_times[1] / sim_times[4]
        rows.append(row)
        print(f"{bench}: hw {1e3 * hw_times[1]:.2f} ms -> "
              f"{1e3 * hw_times[4]:.2f} ms | sim {1e3 * sim_times[1]:.2f} ms "
              f"-> {1e3 * sim_times[4]:.2f} ms")

    print()
    print(render_table(
        rows,
        title=f"NPB class {cls}: relative speedup (BananaPiSim vs Banana Pi) "
              "and strong scaling",
    ))
    print("\nReading guide: rel < 1 means the FireSim model runs slower than "
          "the hardware;\nEP (compute-bound) sits closest to parity, "
          "IS/MG (memory) furthest — the paper's fig-3 shape.")


if __name__ == "__main__":
    main()
