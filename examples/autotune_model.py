#!/usr/bin/env python3
"""Automated model calibration (mechanising the paper's §4 by-hand loop).

Starts from the stock huge-Rocket configuration and lets a greedy
coordinate-descent search apply Chipyard-style config fragments — more L2
banks, a wider bus, the 2x clock, different cache replacement — keeping
whichever single change most improves the MicroBench fidelity score
against the Banana Pi reference. The paper's authors walked this exact
loop manually ("deciding which parameters to modify for improved fidelity
is inherently ambiguous", §6); the search makes the ambiguity quantitative.

Run:  python examples/autotune_model.py
"""

from repro.analysis import QUICK_KERNELS, autotune, fidelity
from repro.soc import (
    BANANA_PI_HW,
    BANANA_PI_SIM,
    FAST_BANANA_PI_SIM,
    ROCKET1,
    WithBusWidth,
    WithClock,
    WithL2Banks,
    WithPrefetcher,
    WithReplacement,
)

KNOBS = {
    "WithL2Banks(4)": WithL2Banks(4),
    "WithBusWidth(128)": WithBusWidth(128),
    "WithClock(3.2)": WithClock(3.2),
    "WithReplacement(plru)": WithReplacement("plru"),
    "WithPrefetcher()": WithPrefetcher(),
}


def main() -> None:
    result = autotune(ROCKET1, BANANA_PI_HW, knobs=KNOBS,
                      kernels=QUICK_KERNELS, scale=0.3)
    print(result.summary())

    print("\nFor reference, the paper's hand-tuned models score:")
    for cfg in (ROCKET1, BANANA_PI_SIM, FAST_BANANA_PI_SIM):
        s = fidelity(BANANA_PI_HW, cfg, scale=0.3, kernels=QUICK_KERNELS)
        print(f"  {cfg.name:18} {s.score:.3f}")
    s = result.score
    print(f"  {result.best.name:18} {s.score:.3f}  (autotuned)")
    print("\nWorst remaining mismatches (the residual no §4 knob can fix):")
    for kernel, rel in s.worst(4):
        print(f"  {kernel:10} rel={rel:.2f}")


if __name__ == "__main__":
    main()
