#!/usr/bin/env python3
"""Microbenchmark-guided model tuning (the paper's §4 workflow).

Walks the same configuration ladder the authors did — Rocket1, Rocket2,
the Banana Pi Sim Model, and the Fast (2x clock) variant — scoring each
against the Banana Pi hardware reference with the 13-kernel quick subset,
then prints each candidate's worst-matching kernels, which is exactly the
signal the paper used to decide what to tune next.

Run:  python examples/tune_banana_pi.py [--full]
          --full scores with all 39 kernels (slower, higher fidelity)
"""

import sys

from repro.analysis import tune_for_banana_pi, tune_for_milkv
from repro.workloads.microbench import runnable_kernels


def main() -> None:
    full = "--full" in sys.argv
    kernels = [k.spec.name for k in runnable_kernels()] if full else None
    scale = 0.4 if full else 0.3

    print("=== Tuning Rocket-side models against the Banana Pi (K1) ===")
    for step in tune_for_banana_pi(scale=scale, kernels=kernels):
        print(f"  {step.config:18} fidelity score {step.score:.3f} "
              f"(0 = perfect, 1 = off by 2x on average)")
        for kernel, rel in step.worst(3):
            print(f"      worst: {kernel:12} rel={rel:.2f}")

    print()
    print("=== Selecting a BOOM configuration for the MILK-V (SG2042) ===")
    steps = tune_for_milkv(scale=scale, kernels=kernels)
    for step in steps:
        print(f"  {step.config:18} fidelity score {step.score:.3f}")
    best = steps[0]
    print(f"\nBest match: {best.config} — the paper reached the same "
          "conclusion (Large BOOM, then retuned caches -> MILKVSim).")


if __name__ == "__main__":
    main()
