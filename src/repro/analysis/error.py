"""Measurement-error analysis in the style of Desikan, Burger & Keckler.

The MicroBench suite descends from "Measuring Experimental Error in
Microprocessor Simulation" (ISCA'01) — the paper the authors cite as [8]
— whose point is that simulation studies must quantify how much of an
observed difference is *methodological noise* rather than architecture.
This module runs kernels across seeds (different random data/branch
streams, same architecture) and reports per-kernel variation, so relative
speedups can be read against the noise floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean, stdev

from ..soc.config import SoCConfig
from ..workloads.microbench import run_kernel

__all__ = ["KernelVariation", "seed_variation", "noise_floor"]


@dataclass
class KernelVariation:
    """Run-to-run (seed-to-seed) spread of one kernel on one config."""

    kernel: str
    config: str
    cycles: list[int] = field(default_factory=list)

    @property
    def mean_cycles(self) -> float:
        return mean(self.cycles)

    @property
    def cv(self) -> float:
        """Coefficient of variation (stdev / mean)."""
        if len(self.cycles) < 2 or self.mean_cycles == 0:
            return 0.0
        return stdev(self.cycles) / self.mean_cycles

    @property
    def spread(self) -> float:
        """max/min ratio across seeds."""
        return max(self.cycles) / min(self.cycles) if self.cycles else 1.0


def seed_variation(config: SoCConfig, kernel: str, seeds: int = 5,
                   scale: float = 1.0) -> KernelVariation:
    """Measure one kernel's cycle count across input seeds."""
    if seeds < 2:
        raise ValueError("need at least two seeds to measure variation")
    v = KernelVariation(kernel=kernel, config=config.name)
    for seed in range(seeds):
        v.cycles.append(run_kernel(config, kernel, scale=scale,
                                   seed=seed).cycles)
    return v


def noise_floor(config: SoCConfig, kernels: list[str], seeds: int = 5,
                scale: float = 1.0) -> dict[str, KernelVariation]:
    """Seed-variation for a set of kernels.

    A relative-speedup difference smaller than a kernel's ``spread`` here
    cannot be attributed to architecture — the Desikan et al. criterion.
    """
    return {
        k: seed_variation(config, k, seeds=seeds, scale=scale)
        for k in kernels
    }


def significant(rel_a: float, rel_b: float, variation: KernelVariation) -> bool:
    """Is the difference between two relative speedups above the noise?"""
    if rel_a <= 0 or rel_b <= 0:
        raise ValueError("relative speedups must be positive")
    gap = abs(math.log(rel_a) - math.log(rel_b))
    noise = math.log(max(variation.spread, 1.0 + 1e-12))
    return gap > noise
