"""Analysis over instrumentation streams: interval CPI and flamegraphs.

Consumes the JSONL streams :mod:`repro.instrument` produces and turns
them into the two time-resolved views the paper's methodology leans on:

- **interval CPI** from periodic counter samples (AutoCounter's classic
  plot: CPI per sampling interval, exposing phase behaviour a whole-run
  average hides), and
- **folded stacks** from region begin/end markers, in the exact
  ``a;b;c <count>`` format Brendan Gregg's ``flamegraph.pl`` — and
  every compatible viewer — consumes.

Both helpers accept anything :func:`repro.instrument.read_stream`
accepts — a path or a live ``InstrumentStream`` — plus an
already-parsed record list.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..instrument.stream import read_stream


def _records(source) -> list[dict[str, Any]]:
    if isinstance(source, list):
        return source
    return read_stream(source)

__all__ = ["interval_cpi", "flamegraph_folded", "marker_timeline",
           "render_intervals"]


def interval_cpi(source) -> list[dict[str, Any]]:
    """Per-sample CPI from a stream's ``counter`` records.

    Each interval reports the cycle span it covers, the cycle and
    instruction deltas the sampler recorded, and their ratio — ``cpi``
    is ``None`` for an interval that retired nothing (idle tile, warmup
    gap).  Works on partial (torn or still-running) streams.
    """
    out: list[dict[str, Any]] = []
    prev_cycle = 0
    for rec in _records(source):
        if rec.get("t") != "counter":
            continue
        dcyc = int(rec.get("dcycles", rec["cycle"] - prev_cycle))
        dinst = int(rec.get("dinstructions", 0))
        out.append({
            "start": prev_cycle, "end": rec["cycle"],
            "cycles": dcyc, "instructions": dinst,
            "cpi": (dcyc / dinst) if dinst else None,
            "final": bool(rec.get("final")),
        })
        prev_cycle = rec["cycle"]
    return out


def marker_timeline(source) -> list[dict[str, Any]]:
    """The ``marker`` records of a stream, in emission order."""
    return [r for r in _records(source) if r.get("t") == "marker"]


def flamegraph_folded(source,
                      names: Mapping[int, str] | None = None) -> str:
    """Fold region begin/end markers into flamegraph.pl input.

    Region markers (ids 1/2, see :mod:`repro.instrument.markers`) carry
    a region id in their value; nested begins build a stack, and each
    end attributes the cycles spent since the deepest begin to the full
    ``outer;inner`` stack.  *names* maps region ids to labels (unnamed
    regions render as ``region<id>``).  Unbalanced ends are ignored;
    regions left open attribute up to the last record seen — so a live
    or torn stream still folds.
    """
    from ..instrument.markers import MARKER_REGION_BEGIN, MARKER_REGION_END

    names = dict(names or {})

    def label(rid: int) -> str:
        return names.get(rid, f"region{rid}")

    folded: dict[str, int] = {}
    stack: list[tuple[int, int]] = []   # (region id, entry cycle)
    last_cycle = 0

    def charge(upto: int) -> None:
        """Attribute cycles since the deepest frame opened."""
        if not stack:
            return
        path = ";".join(label(rid) for rid, _ in stack)
        start = stack[-1][1]
        if upto > start:
            folded[path] = folded.get(path, 0) + (upto - start)

    for rec in marker_timeline(source):
        cycle = int(rec["cycle"])
        last_cycle = max(last_cycle, cycle)
        if rec["id"] == MARKER_REGION_BEGIN:
            charge(cycle)   # close out the parent's self-time segment
            stack.append((int(rec["value"]), cycle))
        elif rec["id"] == MARKER_REGION_END:
            if not stack:
                continue
            if stack[-1][0] != int(rec["value"]):
                # mismatched end: unwind to the matching begin if any
                open_ids = [rid for rid, _ in stack]
                if int(rec["value"]) not in open_ids:
                    continue
            charge(cycle)
            stack.pop()
            if stack:
                # parent resumes accumulating self-time from here
                stack[-1] = (stack[-1][0], cycle)
    # open frames at stream end (live tail / torn stream)
    while stack:
        charge(last_cycle)
        stack.pop()
    lines = [f"{path} {count}" for path, count in sorted(folded.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def render_intervals(intervals: Sequence[Mapping[str, Any]],
                     width: int = 40) -> str:
    """ASCII sparkline table of :func:`interval_cpi` output."""
    rows = ["interval        cycles   instructions   cpi"]
    finite = [iv["cpi"] for iv in intervals if iv["cpi"]]
    peak = max(finite) if finite else 1.0
    for iv in intervals:
        cpi = iv["cpi"]
        bar = ("#" * max(1, int(width * cpi / peak))) if cpi else ""
        cpi_s = f"{cpi:6.3f}" if cpi is not None else "     -"
        rows.append(f"[{iv['start']:>8}..{iv['end']:>8}] "
                    f"{iv['cycles']:>8} {iv['instructions']:>12} {cpi_s} {bar}")
    return "\n".join(rows)
