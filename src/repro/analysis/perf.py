"""``perf stat``-style counter reports.

The paper's methodology leans on hardware performance counters (runtime,
instructions, cache behaviour) gathered on both the boards and the
simulated targets; this module produces the equivalent report for any
config + trace pair, pulling counters from the core result and the whole
memory hierarchy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..isa.trace import Trace
from ..soc.config import SoCConfig
from ..soc.system import System
from ..telemetry import Snapshot, StatsRegistry

__all__ = ["PerfReport", "perf_stat"]


@dataclass
class PerfReport:
    """Counter snapshot of one run (deltas over the measured pass)."""

    platform: str
    seconds: float
    cycles: int
    instructions: int
    branches: int
    branch_misses: int
    l1d_loads_misses: int
    l1i_misses: int
    l2_accesses: int
    l2_misses: int
    llc_accesses: int
    llc_misses: int
    dtlb_misses: int
    dram_reads: int
    dram_writes: int
    dram_row_hit_rate: float
    stalls: dict[str, int] = field(default_factory=dict)
    #: full measure-window counter delta (repro.telemetry), when collected
    counters: Snapshot | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def branch_miss_rate(self) -> float:
        return self.branch_misses / self.branches if self.branches else 0.0

    def to_dict(self) -> dict:
        """Schema-stable dict of every counter (for ``repro perf --json``)."""
        return {
            "platform": self.platform,
            "seconds": self.seconds,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": round(self.ipc, 4),
            "branches": self.branches,
            "branch_misses": self.branch_misses,
            "l1d_loads_misses": self.l1d_loads_misses,
            "l1i_misses": self.l1i_misses,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "llc_accesses": self.llc_accesses,
            "llc_misses": self.llc_misses,
            "dtlb_misses": self.dtlb_misses,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "dram_row_hit_rate": round(self.dram_row_hit_rate, 6),
            "stalls": dict(self.stalls),
            "counters": self.counters.data if self.counters else None,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """A `perf stat`-flavoured text block."""
        rows = [
            ("task-clock (target)", f"{self.seconds * 1e3:.3f} ms"),
            ("cycles", f"{self.cycles:,}"),
            ("instructions", f"{self.instructions:,}  # {self.ipc:.2f} IPC"),
            ("branches", f"{self.branches:,}"),
            ("branch-misses",
             f"{self.branch_misses:,}  # {self.branch_miss_rate:.2%}"),
            ("L1-dcache-misses", f"{self.l1d_loads_misses:,}"),
            ("L1-icache-misses", f"{self.l1i_misses:,}"),
            ("L2 accesses / misses", f"{self.l2_accesses:,} / {self.l2_misses:,}"),
            ("LLC accesses / misses",
             f"{self.llc_accesses:,} / {self.llc_misses:,}"),
            ("dTLB-misses", f"{self.dtlb_misses:,}"),
            ("DRAM reads / writes", f"{self.dram_reads:,} / {self.dram_writes:,}"),
            ("DRAM row-hit rate", f"{self.dram_row_hit_rate:.2%}"),
        ]
        width = max(len(k) for k, _ in rows)
        body = "\n".join(f"  {k.ljust(width)}  {v}" for k, v in rows)
        stall = ", ".join(f"{k}={v:,}" for k, v in self.stalls.items())
        return (f"Performance counter stats for '{self.platform}':\n"
                f"{body}\n  stall attribution: {stall}")


def perf_stat(config: SoCConfig, trace: Trace, warmup: bool = True,
              tile: int = 0) -> PerfReport:
    """Run *trace* on a fresh system built from *config* and report counters.

    With ``warmup`` (default) an identical pass runs first and only the
    measured pass's deltas are reported, like timing a hot loop.
    """
    system = System(config)
    registry = StatsRegistry(system)
    if warmup:
        system.warm(trace, tile=tile)

    before = registry.snapshot()
    result = system.run(trace, tile=tile)
    d = registry.delta(before)
    u = d["uncore"]
    delta = {
        "l2a": u["l2"]["accesses"],
        "l2m": u["l2"]["misses"],
        "llca": sum(s["accesses"] for s in u["llc"]) if u["llc"] else 0,
        "llcm": sum(s["misses"] for s in u["llc"]) if u["llc"] else 0,
        "dtlb": d["tiles"][tile]["dtlb"]["misses"],
        "dr": sum(c["reads"] for c in u["dram"]),
        "dw": sum(c["writes"] for c in u["dram"]),
        "rh": sum(c["row_hits"] for c in u["dram"]),
        "rm": sum(c["row_misses"] for c in u["dram"]),
    }
    total_rows = delta["rh"] + delta["rm"]
    return PerfReport(
        platform=config.name,
        seconds=result.cycles / (config.core_ghz * 1e9),
        cycles=result.cycles,
        instructions=result.instructions,
        branches=result.branches,
        branch_misses=result.mispredicts,
        l1d_loads_misses=result.l1d_misses,
        l1i_misses=result.l1i_misses,
        l2_accesses=delta["l2a"],
        l2_misses=delta["l2m"],
        llc_accesses=delta["llca"],
        llc_misses=delta["llcm"],
        dtlb_misses=delta["dtlb"],
        dram_reads=delta["dr"],
        dram_writes=delta["dw"],
        dram_row_hit_rate=delta["rh"] / total_rows if total_rows else 0.0,
        stalls=dict(result.stalls),
        counters=d,
    )
