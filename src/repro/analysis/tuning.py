"""Microbenchmark-guided model tuning (the paper's §4 methodology).

The paper tunes FireSim configurations by running the MicroBench suite on
candidate models and the target hardware, then picking the candidate whose
performance profile sits closest to the hardware's: Rocket1 -> Rocket2 ->
Banana Pi Sim Model for the K1, and Small/Medium/Large BOOM -> the tuned
MILK-V model for the SG2042.  This module provides the fidelity metric and
the selection loop as reusable tools.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..soc.config import SoCConfig
from ..soc.presets import (
    BANANA_PI_HW,
    BANANA_PI_SIM,
    FAST_BANANA_PI_SIM,
    LARGE_BOOM,
    MEDIUM_BOOM,
    MILKV_HW,
    MILKV_SIM,
    ROCKET1,
    ROCKET2,
    SMALL_BOOM,
)
from ..workloads.microbench import run_suite
from .speedup import relative_speedup

__all__ = ["FidelityScore", "fidelity", "rank_candidates",
           "tune_for_banana_pi", "tune_for_milkv"]

#: a representative subset covering all five categories, used when a full
#: 39-kernel sweep is too slow (tests, quick tuning passes)
QUICK_KERNELS = ["Cca", "CCh", "CS1", "DP1d", "DPT", "ED1", "EI",
                 "MC", "MD", "MIP", "ML2_BW_ld", "STc", "MM"]


@dataclass
class FidelityScore:
    """How close a simulated model's profile is to the hardware's.

    ``score`` is the mean absolute log2 of per-kernel relative speedup —
    0.0 means every kernel matches exactly; 1.0 means kernels are off by
    2x on (geometric) average.
    """

    config: str
    score: float
    per_kernel: dict[str, float] = field(default_factory=dict)

    def worst(self, n: int = 3) -> list[tuple[str, float]]:
        """The n kernels with the largest mismatch (tuning targets)."""
        return sorted(self.per_kernel.items(),
                      key=lambda kv: -abs(math.log2(kv[1])))[:n]


def fidelity(hw_cfg: SoCConfig, sim_cfg: SoCConfig, scale: float = 1.0,
             kernels: list[str] | None = None) -> FidelityScore:
    """Score *sim_cfg* against *hw_cfg* over the microbenchmark suite."""
    names = kernels or QUICK_KERNELS
    hw = run_suite(hw_cfg, scale=scale, kernels=names)
    sim = run_suite(sim_cfg, scale=scale, kernels=names)
    rel = {n: relative_speedup(hw[n].seconds, sim[n].seconds) for n in names}
    score = sum(abs(math.log2(v)) for v in rel.values()) / len(rel)
    return FidelityScore(config=sim_cfg.name, score=score, per_kernel=rel)


def rank_candidates(hw_cfg: SoCConfig, candidates: list[SoCConfig],
                    scale: float = 1.0,
                    kernels: list[str] | None = None) -> list[FidelityScore]:
    """Score all candidates and return them best-first."""
    scores = [fidelity(hw_cfg, c, scale=scale, kernels=kernels)
              for c in candidates]
    return sorted(scores, key=lambda s: s.score)


def tune_for_banana_pi(scale: float = 1.0,
                       kernels: list[str] | None = None) -> list[FidelityScore]:
    """Reproduce the paper's Rocket-side tuning walk: evaluate Rocket1,
    Rocket2, the Banana Pi Sim Model, and the Fast (2x clock) variant."""
    return rank_candidates(
        BANANA_PI_HW,
        [ROCKET1, ROCKET2, BANANA_PI_SIM, FAST_BANANA_PI_SIM],
        scale=scale, kernels=kernels,
    )


def tune_for_milkv(scale: float = 1.0,
                   kernels: list[str] | None = None) -> list[FidelityScore]:
    """Reproduce the BOOM-side tuning walk: Small/Medium/Large BOOM plus
    the cache-retuned MILK-V Sim Model."""
    return rank_candidates(
        MILKV_HW,
        [SMALL_BOOM, MEDIUM_BOOM, LARGE_BOOM, MILKV_SIM],
        scale=scale, kernels=kernels,
    )
