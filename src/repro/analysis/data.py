"""The paper's published results, transcribed for paper-vs-measured reports.

Absolute runtimes come from the §5.3/§5.4 text; figure-level observations
are recorded as the qualitative ranges/directions the prose states, since
the figures carry no numeric tables.  EXPERIMENTS.md is generated against
these references.
"""

from __future__ import annotations

__all__ = [
    "PAPER_UME_RUNTIMES",
    "PAPER_LAMMPS_LJ_RUNTIMES",
    "PAPER_LAMMPS_CHAIN_RUNTIMES",
    "PAPER_FIG1_OBSERVATIONS",
    "PAPER_FIG2_OBSERVATIONS",
    "PAPER_HOST_RATES",
    "PAPER_FIG4_CG_L1_IMPROVEMENT",
    "paper_relative_speedup",
]

#: §5.3 — UME total runtimes in seconds, by platform and MPI ranks.
PAPER_UME_RUNTIMES: dict[str, dict[int, float]] = {
    "BananaPi": {1: 0.73, 2: 0.40, 4: 0.21},
    "BananaPiSim": {1: 1.00, 2: 0.56, 4: 0.31},
    "MILKV": {1: 0.15, 2: 0.03, 4: 0.016},
    "MILKVSim": {1: 0.49, 2: 0.28, 4: 0.15},
}

#: §5.4 — LAMMPS Lennard-Jones runtimes (32 000 atoms, 100 steps), seconds.
PAPER_LAMMPS_LJ_RUNTIMES: dict[str, dict[int, float]] = {
    "BananaPi": {1: 13.0, 2: 8.0, 4: 4.0},
    "BananaPiSim": {1: 55.0, 2: 28.0, 4: 15.0},
    "MILKV": {1: 4.0, 2: 2.0, 4: 1.0},
    "MILKVSim": {1: 21.0, 2: 11.0, 4: 5.0},
}

#: §5.4 — LAMMPS polymer-chain runtimes, seconds.
PAPER_LAMMPS_CHAIN_RUNTIMES: dict[str, dict[int, float]] = {
    "BananaPi": {1: 9.0, 2: 5.0, 4: 4.0},
    "BananaPiSim": {1: 28.0, 2: 18.0, 4: 12.0},
    "MILKV": {1: 4.0, 2: 2.0, 4: 1.0},
    "MILKVSim": {1: 13.0, 2: 9.0, 4: 7.0},
}

#: §5.1 / Fig 1 — prose observations for the Banana Pi comparison.
PAPER_FIG1_OBSERVATIONS = {
    # the DRAM-bound linked-list kernels: sim reaches only 35-37 % of hw
    "memory_rel_range": (0.35, 0.37),
    # control flow / data / execution "underachieve pretty uniformly"
    "cf_data_exec_below_one": True,
    # the 2x-clock model matches those categories better...
    "fast_model_improves_compute": True,
    # ...but memory gets *worse* (queues lengthen at the higher clock)
    "fast_model_hurts_memory": True,
}

#: §5.1 / Fig 2 — prose observations for the MILK-V comparison.
PAPER_FIG2_OBSERVATIONS = {
    "memory_rel_range": (0.28, 0.43),
    "cf_dp_rel_range": (0.75, 1.78),
    # instruction-cache-miss kernel substantially outperforms on FireSim
    "mip_above_one": True,
    # conflict-miss kernels do worse on the simulation model
    "conflict_below_one": True,
    # large BOOM is the best-matching of the three stock configs
    "large_boom_best": True,
    # dependency-chain execution kernels underperform on the sim
    "execution_below_one": True,
}

#: §3.2.2 — FireSim host rates and slowdowns vs the target clock.
PAPER_HOST_RATES = {
    "rocket_mhz": 60.0,
    "boom_mhz": 15.0,
    "rocket_slowdown_approx": 25.0,   # "approximately 25x slower than 1.6 GHz"
    "boom_slowdown_approx": 135.0,    # "around 135x slower than 2.0 GHz"
}

#: §5.2.2 — growing L1 from 32 to 64 KiB cut single-core CG runtime ~27.7 %.
PAPER_FIG4_CG_L1_IMPROVEMENT = 0.277


def paper_relative_speedup(table: dict[str, dict[int, float]], hw: str,
                           sim: str, ranks: int) -> float:
    """Relative speedup (hw_time / sim_time) from a published runtime table."""
    return table[hw][ranks] / table[sim][ranks]
