"""Experiment registry: one function per paper table/figure.

Every experiment returns a :class:`repro.analysis.speedup.SeriesResult`
(figures) or a list of row dicts (tables).  ``scale``-style parameters let
tests run shrunk versions; the benchmark harness runs the defaults.
"""

from __future__ import annotations

from typing import Callable

from ..soc.config import SoCConfig
from ..soc.presets import (
    BANANA_PI_HW,
    BANANA_PI_SIM,
    FAST_BANANA_PI_SIM,
    LARGE_BOOM,
    MEDIUM_BOOM,
    MILKV_HW,
    MILKV_SIM,
    ROCKET1,
    ROCKET2,
    SMALL_BOOM,
    table4_rows,
    table5_rows,
)
from ..firesim.host import host_model_for
from ..workloads.lammps import run_lammps
from ..workloads.microbench import categories, runnable_kernels
from ..workloads.npb import NPB_RUNNERS
from ..workloads.ume import run_ume
from .speedup import SeriesResult, relative_speedup

__all__ = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "table2",
    "table4",
    "table5",
    "hostrate",
    "EXPERIMENTS",
]

_NPB_ORDER = ("CG", "EP", "IS", "MG")


def _microbench_comparison(experiment: str, hw_cfg: SoCConfig,
                           sim_cfgs: list[SoCConfig], scale: float,
                           kernels: list[str] | None,
                           workers: int | None = None,
                           batched: bool = False) -> SeriesResult:
    """Farm the (config x kernel) cross product through :mod:`repro.farm`.

    Every run is an independent job, so the whole figure parallelises
    across ``workers`` processes (default ``$REPRO_WORKERS``, so a plain
    ``fig1()`` stays serial) and profits from ``$REPRO_CACHE_DIR``; the
    merged timings are identical to the old serial ``run_suite`` loop.

    With *batched*, each kernel becomes one config-batched sweep job
    (:func:`repro.accel.batch.batched_sweep`): the trace is compiled
    once and every config evaluated over it in a single vectorized
    pass — per-point results stay bit-identical to per-config jobs.
    """
    from ..farm import Job, run_jobs

    names = kernels or [k.spec.name for k in runnable_kernels()]
    cfgs = [hw_cfg, *sim_cfgs]
    if batched:
        jobs = [Job.sweep(cfgs, n, scale=scale) for n in names]
        sweeps = run_jobs(jobs, workers=workers, strict=True)
        secs = {cfg.name: {n: r.payload["points"][cfg.name]["seconds"]
                           for n, r in zip(names, sweeps)}
                for cfg in cfgs}
    else:
        jobs = [Job.kernel(cfg, n, scale=scale) for cfg in cfgs for n in names]
        results = iter(run_jobs(jobs, workers=workers, strict=True))
        secs = {cfg.name: {n: next(results).payload["seconds"] for n in names}
                for cfg in cfgs}
    series = {
        cfg.name: [
            relative_speedup(secs[hw_cfg.name][n], secs[cfg.name][n])
            for n in names
        ]
        for cfg in sim_cfgs
    }
    return SeriesResult(
        experiment=experiment,
        labels=names,
        series=series,
        meta={
            "hardware": hw_cfg.name,
            "categories": categories(),
            "hw_seconds": dict(secs[hw_cfg.name]),
        },
    )


def fig1(scale: float = 1.0, kernels: list[str] | None = None,
         workers: int | None = None, batched: bool = False) -> SeriesResult:
    """Fig 1: MicroBench on the tuned Rocket models vs Banana Pi hardware."""
    return _microbench_comparison(
        "fig1", BANANA_PI_HW, [BANANA_PI_SIM, FAST_BANANA_PI_SIM],
        scale, kernels, workers, batched=batched,
    )


def fig2(scale: float = 1.0, kernels: list[str] | None = None,
         workers: int | None = None, batched: bool = False) -> SeriesResult:
    """Fig 2: MicroBench on Small/Medium/Large BOOM and the tuned MILK-V
    model vs MILK-V hardware."""
    return _microbench_comparison(
        "fig2", MILKV_HW, [SMALL_BOOM, MEDIUM_BOOM, LARGE_BOOM, MILKV_SIM],
        scale, kernels, workers, batched=batched,
    )


def _npb_comparison(experiment: str, hw_cfg: SoCConfig,
                    sim_cfgs: list[SoCConfig], rank_counts: list[int],
                    cls: str, benchmarks=_NPB_ORDER) -> SeriesResult:
    labels: list[str] = []
    hw_secs: dict[str, float] = {}
    for nr in rank_counts:
        for b in benchmarks:
            label = f"{b}x{nr}"
            labels.append(label)
            hw_res = NPB_RUNNERS[b](hw_cfg, nranks=nr, cls=cls)
            if not hw_res.verified:
                raise RuntimeError(f"{b} failed verification on {hw_cfg.name}")
            hw_secs[label] = hw_res.seconds
    series: dict[str, list[float]] = {}
    for cfg in sim_cfgs:
        vals = []
        for nr in rank_counts:
            for b in benchmarks:
                sim_res = NPB_RUNNERS[b](cfg, nranks=nr, cls=cls)
                if not sim_res.verified:
                    raise RuntimeError(f"{b} failed verification on {cfg.name}")
                vals.append(relative_speedup(hw_secs[f"{b}x{nr}"], sim_res.seconds))
        series[cfg.name] = vals
    return SeriesResult(
        experiment=experiment,
        labels=labels,
        series=series,
        meta={"hardware": hw_cfg.name, "class": cls, "hw_seconds": hw_secs},
    )


def fig3(cls: str = "A", rank_counts: list[int] | None = None) -> SeriesResult:
    """Fig 3: NPB relative speedup of the Rocket configurations vs the
    Banana Pi (a: single core, b: four cores)."""
    return _npb_comparison(
        "fig3", BANANA_PI_HW,
        [ROCKET1, ROCKET2, BANANA_PI_SIM, FAST_BANANA_PI_SIM],
        rank_counts or [1, 4], cls,
    )


def fig4(cls: str = "A", rank_counts: list[int] | None = None) -> SeriesResult:
    """Fig 4: (a) stock BOOM configurations single-core, (b) the tuned
    MILK-V model on 1 and 4 cores — both vs MILK-V hardware."""
    part_a = _npb_comparison(
        "fig4a", MILKV_HW, [SMALL_BOOM, MEDIUM_BOOM, LARGE_BOOM], [1], cls,
    )
    part_b = _npb_comparison(
        "fig4b", MILKV_HW, [MILKV_SIM], rank_counts or [1, 4], cls,
    )
    labels = part_a.labels + [l for l in part_b.labels if l not in part_a.labels]
    series: dict[str, list[float]] = {}
    for name, vals in part_a.series.items():
        series[name] = vals + [float("nan")] * (len(labels) - len(vals))
    pb_map = dict(zip(part_b.labels, part_b.series["MILKVSim"]))
    series["MILKVSim"] = [pb_map.get(l, float("nan")) for l in labels]
    return SeriesResult(
        experiment="fig4",
        labels=labels,
        series=series,
        meta={
            "hardware": MILKV_HW.name,
            "class": cls,
            "hw_seconds": {**part_a.meta["hw_seconds"], **part_b.meta["hw_seconds"]},
        },
    )


def _app_scaling(experiment: str, runner: Callable, rank_counts: list[int],
                 **kwargs) -> SeriesResult:
    """Fig 5/6/7 shape: rank-count scaling on both platform pairs."""
    pairs = [
        ("BananaPi", BANANA_PI_HW, BANANA_PI_SIM),
        ("MILKV", MILKV_HW, MILKV_SIM),
    ]
    labels = [str(nr) for nr in rank_counts]
    series: dict[str, list[float]] = {}
    runtimes: dict[str, dict[int, float]] = {}
    for pair_name, hw_cfg, sim_cfg in pairs:
        hw_t, sim_t, rel = {}, {}, []
        for nr in rank_counts:
            hw_res = runner(hw_cfg, nranks=nr, **kwargs)
            sim_res = runner(sim_cfg, nranks=nr, **kwargs)
            for res, cfgname in ((hw_res, hw_cfg.name), (sim_res, sim_cfg.name)):
                if not res.verified:
                    raise RuntimeError(
                        f"{experiment} failed verification on {cfgname}"
                    )
            hw_t[nr] = hw_res.seconds
            sim_t[nr] = sim_res.seconds
            rel.append(relative_speedup(hw_res.seconds, sim_res.seconds))
        series[f"{pair_name}Sim vs {pair_name}"] = rel
        runtimes[pair_name] = hw_t
        runtimes[f"{pair_name}Sim"] = sim_t
    return SeriesResult(
        experiment=experiment,
        labels=labels,
        series=series,
        meta={"runtimes": runtimes, **kwargs},
    )


def fig5(rank_counts: list[int] | None = None, mesh_n: int = 20) -> SeriesResult:
    """Fig 5: UME relative speedup vs MPI ranks, both platform pairs."""
    return _app_scaling("fig5", run_ume, rank_counts or [1, 2, 4],
                        mesh_n=mesh_n)


def fig6(rank_counts: list[int] | None = None, natoms: int = 1024,
         steps: int = 6) -> SeriesResult:
    """Fig 6: LAMMPS Lennard-Jones relative speedup vs MPI ranks."""
    return _app_scaling("fig6", run_lammps, rank_counts or [1, 2, 4],
                        benchmark="lj", natoms=natoms, steps=steps)


def fig7(rank_counts: list[int] | None = None, natoms: int = 1024,
         steps: int = 6) -> SeriesResult:
    """Fig 7: LAMMPS polymer-chain relative speedup vs MPI ranks."""
    return _app_scaling("fig7", run_lammps, rank_counts or [1, 2, 4],
                        benchmark="chain", natoms=natoms, steps=steps)


def table1() -> list[dict[str, str]]:
    """Table 1: the MicroBench kernel inventory."""
    from ..workloads.microbench import all_kernels

    return [
        {
            "Name": k.spec.name,
            "Category": k.spec.category,
            "Description": k.spec.description,
            "Status": "broken (segfaults)" if k.spec.broken else "ok",
        }
        for k in all_kernels()
    ]


def table2() -> list[dict[str, str]]:
    """Table 2: NPB apps, characteristics, and class used."""
    chars = {
        "CG": "Memory Latency",
        "EP": "Compute",
        "IS": "Memory Latency, BW",
        "MG": "Memory Latency, BW",
    }
    return [
        {"Benchmark": b, "Characteristics": chars[b], "Class": "A"}
        for b in _NPB_ORDER
    ]


def table4() -> list[dict[str, str]]:
    """Table 4: the FireSim model inventory."""
    return table4_rows()


def table5() -> list[dict[str, str]]:
    """Table 5: hardware vs simulation-model specifications."""
    return table5_rows()


def hostrate() -> list[dict[str, float | str]]:
    """§3.2.2: host simulation rates and slowdowns per design family."""
    rows = []
    for cfg in (ROCKET1, MILKV_SIM):
        host = host_model_for(cfg)
        rows.append(
            {
                "Design": cfg.name,
                "Host MHz": host.host_mhz,
                "Target GHz": cfg.core_ghz,
                "Slowdown": host.slowdown(cfg.core_ghz),
            }
        )
    return rows


#: experiment id -> callable (the per-experiment index of DESIGN.md)
EXPERIMENTS: dict[str, Callable] = {
    "table1": table1,
    "table2": table2,
    "table4": table4,
    "table5": table5,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "hostrate": hostrate,
}
