"""Text rendering of experiment results: tables, bar series, and
paper-vs-measured comparisons."""

from __future__ import annotations

from .data import (
    PAPER_FIG1_OBSERVATIONS,
    PAPER_FIG2_OBSERVATIONS,
    PAPER_LAMMPS_CHAIN_RUNTIMES,
    PAPER_LAMMPS_LJ_RUNTIMES,
    PAPER_UME_RUNTIMES,
    paper_relative_speedup,
)
from .speedup import SeriesResult, summarize_by_category

__all__ = [
    "render_table",
    "render_series",
    "render_category_summary",
    "compare_app_to_paper",
]


def render_table(rows: list[dict], title: str = "") -> str:
    """Fixed-width text table from a list of row dicts."""
    if not rows:
        return f"{title}\n(empty)"
    cols = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c, ""))) for r in rows))
        for c in cols
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for r in rows:
        lines.append(" | ".join(_fmt(r.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != v:  # nan
            return "-"
        return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
    return str(v)


def render_series(result: SeriesResult, bar_width: int = 30,
                  target: float = 1.0) -> str:
    """Per-label bars of relative speedup (| marks the target of 1.0)."""
    lines = [f"== {result.experiment}: relative speedup "
             f"(hardware_time / simulated_time; {target:.1f} = match) =="]
    vmax = max(
        (v for vals in result.series.values() for v in vals if v == v),
        default=1.0,
    )
    scale = bar_width / max(vmax, target * 1.25)
    for sname, vals in result.series.items():
        lines.append(f"-- {sname} --")
        for label, v in zip(result.labels, vals):
            if v != v:
                lines.append(f"  {label:>12}      -")
                continue
            bar = "#" * max(1, int(round(v * scale)))
            mark = int(round(target * scale))
            bar = (bar + " " * bar_width)[: max(bar_width, mark + 1)]
            bar = bar[:mark] + "|" + bar[mark + 1:]
            lines.append(f"  {label:>12} {v:6.3f} {bar.rstrip()}")
    return "\n".join(lines)


def render_category_summary(result: SeriesResult) -> str:
    """Geomean relative speedup per kernel category (fig1/fig2 view)."""
    cats = result.meta.get("categories")
    if not cats:
        return "(no category metadata)"
    summary = summarize_by_category(result, cats)
    rows = []
    for sname, per_cat in summary.items():
        row: dict[str, object] = {"Config": sname}
        row.update({c: v for c, v in per_cat.items()})
        rows.append(row)
    return render_table(rows, title=f"{result.experiment}: geomean by category")


_PAPER_APP_TABLES = {
    "fig5": ("UME", PAPER_UME_RUNTIMES),
    "fig6": ("LAMMPS-LJ", PAPER_LAMMPS_LJ_RUNTIMES),
    "fig7": ("LAMMPS-Chain", PAPER_LAMMPS_CHAIN_RUNTIMES),
}


def compare_app_to_paper(result: SeriesResult) -> str:
    """Paper-vs-measured relative speedups for the fig5/6/7 experiments."""
    if result.experiment not in _PAPER_APP_TABLES:
        raise KeyError(f"no paper runtime table for {result.experiment}")
    app, table = _PAPER_APP_TABLES[result.experiment]
    rows = []
    for pair, hw_name, sim_name in (
        ("BananaPi", "BananaPi", "BananaPiSim"),
        ("MILKV", "MILKV", "MILKVSim"),
    ):
        series_name = f"{pair}Sim vs {pair}"
        for label, measured in zip(result.labels,
                                   result.series[series_name]):
            nr = int(label)
            paper = paper_relative_speedup(table, hw_name, sim_name, nr)
            rows.append(
                {
                    "App": app,
                    "Pair": pair,
                    "Ranks": nr,
                    "Paper rel": paper,
                    "Measured rel": measured,
                    "Same side of 1.0": ("yes" if (paper < 1) == (measured < 1)
                                         else "NO"),
                }
            )
    return render_table(rows, title=f"{result.experiment} ({app}): paper vs measured")


def fig1_checks(result: SeriesResult) -> dict[str, bool]:
    """Evaluate the paper's Fig-1 prose claims against a measured result."""
    cats = result.meta["categories"]
    summary = summarize_by_category(result, cats)
    slow = summary["BananaPiSim"]
    fast = summary["FastBananaPiSim"]
    lo, hi = PAPER_FIG1_OBSERVATIONS["memory_rel_range"]
    return {
        "memory_below_one": slow["Memory"] < 1.0,
        "memory_in_paper_ballpark": slow["Memory"] < 0.75,
        "cf_data_exec_below_one": all(
            slow[c] < 1.0 for c in ("Control Flow", "Data", "Execution")
        ),
        "fast_model_improves_compute": all(
            fast[c] > slow[c] for c in ("Control Flow", "Data", "Execution")
        ),
        "fast_model_hurts_memory": fast["Memory"] < slow["Memory"],
    }


def fig2_checks(result: SeriesResult) -> dict[str, bool]:
    """Evaluate the paper's Fig-2 prose claims against a measured result."""
    cats = result.meta["categories"]
    summary = summarize_by_category(result, cats)
    milkv = summary["MILKVSim"]
    geomeans = {s: result.geomean(s) for s in result.series}
    stock = {k: v for k, v in geomeans.items() if k != "MILKVSim"}
    return {
        "memory_below_one": milkv["Memory"] < 1.0,
        "mip_above_one": result.value("MILKVSim", "MIP") > 1.0,
        "conflict_below_one": result.value("MILKVSim", "MC") < 1.0,
        "execution_below_one": milkv["Execution"] < 1.0,
        "large_boom_best_stock": max(stock, key=stock.get) == "LargeBOOM",
    }
