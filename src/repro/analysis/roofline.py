"""Roofline analysis of kernels on the modeled machines.

Places each measured run on the classic roofline: achieved FLOP rate vs
arithmetic intensity against the machine's compute ceiling (FP issue
throughput x clock) and memory ceiling (DRAM peak bandwidth).  Useful for
explaining *why* a kernel lands where it does in the fig-1/fig-2 bars —
DRAM-bound kernels track the memory model differences, compute-bound ones
track issue width.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.trace import Trace
from ..soc.config import SoCConfig
from ..soc.system import System

__all__ = ["MachineRoofs", "RooflinePoint", "machine_roofs", "roofline_point"]


@dataclass(frozen=True)
class MachineRoofs:
    """The two ceilings of a modeled machine."""

    platform: str
    peak_gflops: float        #: FP ops/cycle x GHz
    peak_gbytes: float        #: DRAM pin bandwidth

    @property
    def ridge_intensity(self) -> float:
        """FLOP/byte at which the roofline bends."""
        return self.peak_gflops / self.peak_gbytes

    def attainable_gflops(self, intensity: float) -> float:
        if intensity <= 0:
            return 0.0
        return min(self.peak_gflops, self.peak_gbytes * intensity)


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's measured position."""

    kernel: str
    platform: str
    intensity: float          #: FLOPs per byte of DRAM traffic
    achieved_gflops: float
    attainable_gflops: float
    bound: str                #: "memory" | "compute"

    @property
    def efficiency(self) -> float:
        """Achieved as a fraction of attainable at this intensity."""
        return (self.achieved_gflops / self.attainable_gflops
                if self.attainable_gflops else 0.0)


def machine_roofs(config: SoCConfig) -> MachineRoofs:
    """Compute ceilings from a config's FP issue width, clock, and DRAM."""
    if config.core_type == "inorder":
        # one FP op per issue slot at best
        fp_per_cycle = float(config.inorder.issue_width)
    else:
        fp_per_cycle = float(config.ooo.fp_issue)
    return MachineRoofs(
        platform=config.name,
        peak_gflops=fp_per_cycle * config.core_ghz * config.ncores,
        peak_gbytes=config.hierarchy.dram.peak_bandwidth_gbps,
    )


def roofline_point(config: SoCConfig, trace: Trace, kernel: str = "kernel",
                   warmup: bool = True) -> RooflinePoint:
    """Run *trace* single-core and place it on the machine's roofline.

    DRAM traffic is measured from the memory model (reads + writes x line
    size), not estimated from the op mix — so cache-resident kernels get
    their true (huge) intensity.
    """
    system = System(config)
    if warmup:
        system.run(trace)
    before = system.uncore.dram_stats()
    result = system.run(trace)
    after = system.uncore.dram_stats()

    flops = int(trace.stats().fp_ops)
    line = config.hierarchy.l1d.line_bytes
    dram_bytes = ((after["reads"] - before["reads"])
                  + (after["writes"] - before["writes"])) * line
    seconds = result.cycles / (config.core_ghz * 1e9)
    achieved = flops / seconds / 1e9 if seconds else 0.0

    roofs = machine_roofs(config)
    # single-core run: compare against one core's compute ceiling
    single = MachineRoofs(roofs.platform,
                          roofs.peak_gflops / config.ncores,
                          roofs.peak_gbytes)
    intensity = flops / dram_bytes if dram_bytes else float("inf")
    attainable = (single.peak_gflops if dram_bytes == 0
                  else single.attainable_gflops(intensity))
    bound = ("compute" if intensity >= single.ridge_intensity
             else "memory")
    return RooflinePoint(
        kernel=kernel,
        platform=config.name,
        intensity=intensity,
        achieved_gflops=achieved,
        attainable_gflops=attainable,
        bound=bound,
    )
