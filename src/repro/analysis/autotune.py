"""Automated model tuning: coordinate descent over config fragments.

The paper tunes FireSim models *by hand*: run MicroBench, eyeball the
mismatches, pick the next knob ("microbenchmark interpretation is not
always straightforward... deciding which parameters to modify for improved
fidelity is inherently ambiguous", §6).  This module mechanises that loop:
given a base design, a target hardware model, and a menu of candidate
knob settings (Chipyard-style fragments), it greedily applies whichever
single change most improves the fidelity score until no candidate helps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..soc.config import SoCConfig
from ..soc.fragments import (
    Fragment,
    WithBusWidth,
    WithClock,
    WithL2Banks,
    compose,
)
from .tuning import QUICK_KERNELS, FidelityScore, fidelity

__all__ = ["TuneStep", "TuneResult", "autotune", "ROCKET_KNOBS"]


@dataclass
class TuneStep:
    """One accepted move of the search."""

    knob: str
    score_before: float
    score_after: float

    @property
    def improvement(self) -> float:
        return self.score_before - self.score_after


@dataclass
class TuneResult:
    """Outcome of an autotune run."""

    best: SoCConfig
    score: FidelityScore
    steps: list[TuneStep] = field(default_factory=list)
    evaluations: int = 0

    def summary(self) -> str:
        lines = [f"autotuned {self.best.name}: score "
                 f"{self.score.score:.3f} after {self.evaluations} evaluations"]
        for s in self.steps:
            lines.append(
                f"  applied {s.knob}: {s.score_before:.3f} -> {s.score_after:.3f}"
            )
        return "\n".join(lines)


#: the knob menu the paper actually explored on the Rocket side (§4)
ROCKET_KNOBS: dict[str, Fragment] = {
    "WithL2Banks(4)": WithL2Banks(4),
    "WithBusWidth(128)": WithBusWidth(128),
    "WithClock(3.2)": WithClock(3.2),
}


def autotune(base: SoCConfig, hardware: SoCConfig,
             knobs: dict[str, Fragment] | None = None,
             kernels: list[str] | None = None,
             scale: float = 0.3,
             max_rounds: int = 8,
             min_improvement: float = 1e-3) -> TuneResult:
    """Greedy coordinate descent: repeatedly apply the single knob that
    most improves fidelity against *hardware*; stop when none helps.

    Each knob is considered at most once (they are absolute settings, not
    increments).  Returns the tuned config, its score, and the move log.
    """
    menu = dict(knobs if knobs is not None else ROCKET_KNOBS)
    names = kernels or QUICK_KERNELS
    current = base
    current_score = fidelity(hardware, current, scale=scale, kernels=names)
    evaluations = 1
    steps: list[TuneStep] = []

    for _ in range(max_rounds):
        if not menu:
            break
        best_name = None
        best_cfg = None
        best_score = None
        for name, frag in menu.items():
            try:
                candidate = compose(current, frag,
                                    name=f"{base.name}+auto{len(steps) + 1}")
            except ValueError:
                continue  # knob not applicable to this design
            score = fidelity(hardware, candidate, scale=scale, kernels=names)
            evaluations += 1
            if best_score is None or score.score < best_score.score:
                best_name, best_cfg, best_score = name, candidate, score
        if (best_score is None
                or current_score.score - best_score.score < min_improvement):
            break
        steps.append(TuneStep(knob=best_name,
                              score_before=current_score.score,
                              score_after=best_score.score))
        del menu[best_name]
        current, current_score = best_cfg, best_score

    return TuneResult(best=current, score=current_score, steps=steps,
                      evaluations=evaluations)
