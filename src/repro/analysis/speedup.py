"""Relative-speedup metric and result containers.

The paper's §5 metric: ``relative speedup = hardware_time / simulated_time``
— 1.0 is a perfect match, 1.2 means the simulation runs 20 % *faster* than
the hardware, below 1.0 the simulation is slower (the common case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import geometric_mean

__all__ = ["relative_speedup", "SeriesResult", "summarize_by_category"]


def relative_speedup(hw_seconds: float, sim_seconds: float) -> float:
    """hardware_time / simulated_time (paper §5). 1.0 = exact match."""
    if hw_seconds <= 0 or sim_seconds <= 0:
        raise ValueError("times must be positive")
    return hw_seconds / sim_seconds


@dataclass
class SeriesResult:
    """One figure's worth of data: labels on the x-axis, one series of
    relative speedups per simulated configuration."""

    experiment: str
    labels: list[str]
    series: dict[str, list[float]]
    #: optional extra context (absolute runtimes, categories, params)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, vals in self.series.items():
            if len(vals) != len(self.labels):
                raise ValueError(
                    f"series {name!r} has {len(vals)} values for "
                    f"{len(self.labels)} labels"
                )

    def value(self, series: str, label: str) -> float:
        return self.series[series][self.labels.index(label)]

    def geomean(self, series: str) -> float:
        return geometric_mean(self.series[series])

    def subset(self, labels: list[str]) -> "SeriesResult":
        """Restrict to a subset of labels (e.g. one kernel category)."""
        idx = [self.labels.index(l) for l in labels]
        return SeriesResult(
            experiment=self.experiment,
            labels=list(labels),
            series={k: [v[i] for i in idx] for k, v in self.series.items()},
            meta=dict(self.meta),
        )


def summarize_by_category(result: SeriesResult,
                          categories: dict[str, list[str]]) -> dict[str, dict[str, float]]:
    """Geometric-mean relative speedup per (series, category)."""
    out: dict[str, dict[str, float]] = {}
    for sname in result.series:
        out[sname] = {}
        for cat, names in categories.items():
            present = [n for n in names if n in result.labels]
            if not present:
                continue
            sub = result.subset(present)
            out[sname][cat] = sub.geomean(sname)
    return out
