"""Analysis harness: relative-speedup metric, experiment registry,
paper reference data, reports, and model tuning."""

from .data import (
    PAPER_FIG1_OBSERVATIONS,
    PAPER_FIG2_OBSERVATIONS,
    PAPER_HOST_RATES,
    PAPER_LAMMPS_CHAIN_RUNTIMES,
    PAPER_LAMMPS_LJ_RUNTIMES,
    PAPER_UME_RUNTIMES,
    paper_relative_speedup,
)
from .experiments import (
    EXPERIMENTS,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    hostrate,
    table1,
    table2,
    table4,
    table5,
)
from .report import (
    compare_app_to_paper,
    fig1_checks,
    fig2_checks,
    render_category_summary,
    render_series,
    render_table,
)
from .autotune import ROCKET_KNOBS, TuneResult, TuneStep, autotune
from .instrument import (
    flamegraph_folded,
    interval_cpi,
    marker_timeline,
    render_intervals,
)
from .error import KernelVariation, noise_floor, seed_variation, significant
from .roofline import MachineRoofs, RooflinePoint, machine_roofs, roofline_point
from .perf import PerfReport, perf_stat
from .speedup import SeriesResult, relative_speedup, summarize_by_category
from .sweep import SweepPoint, SweepResult, sweep_configs, sweep_knob
from .tuning import (
    FidelityScore,
    QUICK_KERNELS,
    fidelity,
    rank_candidates,
    tune_for_banana_pi,
    tune_for_milkv,
)

__all__ = [
    "relative_speedup",
    "SeriesResult",
    "summarize_by_category",
    "EXPERIMENTS",
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "table1", "table2", "table4", "table5", "hostrate",
    "render_table", "render_series", "render_category_summary",
    "compare_app_to_paper", "fig1_checks", "fig2_checks",
    "PAPER_UME_RUNTIMES", "PAPER_LAMMPS_LJ_RUNTIMES",
    "PAPER_LAMMPS_CHAIN_RUNTIMES", "PAPER_FIG1_OBSERVATIONS",
    "PAPER_FIG2_OBSERVATIONS", "PAPER_HOST_RATES", "paper_relative_speedup",
    "FidelityScore", "fidelity", "rank_candidates", "QUICK_KERNELS",
    "tune_for_banana_pi", "tune_for_milkv",
    "PerfReport", "perf_stat",
    "KernelVariation", "seed_variation", "noise_floor", "significant",
    "autotune", "TuneResult", "TuneStep", "ROCKET_KNOBS",
    "machine_roofs", "roofline_point", "MachineRoofs", "RooflinePoint",
    "sweep_configs", "sweep_knob", "SweepResult", "SweepPoint",
    "interval_cpi", "flamegraph_folded", "marker_timeline",
    "render_intervals",
]
