"""Parameter sweeps: run one kernel across configurations or knob values.

The experiment registry reproduces the paper's fixed design points; sweeps
answer the follow-on questions ("how does MM scale with tCTRL?", "where
does the L1-size benefit saturate?") with one call each.

Every sweep routes through :mod:`repro.farm`, so ``workers=4`` shards the
points across processes and a ``cache`` turns repeated sweeps into disk
reads — with results guaranteed identical to the serial, uncached path.
When the swept configs carry ``accel="on"`` (the default), the decoded
workload trace is built once and shared across every configuration point
via :mod:`repro.accel.memo`, and repeated points are served from the
in-process result memo.

``batched=True`` goes one step further: the whole sweep becomes a single
:meth:`~repro.farm.job.Job.sweep` job handled by the config-batched
engine (:func:`repro.accel.batch.batched_sweep`) — the trace is compiled
once and every configuration is evaluated over it in one vectorized
pass, with per-point results bit-identical to the per-config jobs (the
``batch`` tier of ``repro check`` enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..farm import Job, run_jobs
from ..farm.cache import ResultCache
from ..soc.config import SoCConfig
from ..soc.fragments import Fragment, compose

__all__ = ["SweepPoint", "SweepResult", "sweep_configs", "sweep_knob"]


@dataclass(frozen=True)
class SweepPoint:
    """One (setting, measurement) pair."""

    label: str
    cycles: int
    seconds: float

    @property
    def row(self) -> dict[str, object]:
        return {"Setting": self.label, "Cycles": self.cycles,
                "us": self.seconds * 1e6}


@dataclass
class SweepResult:
    """Ordered sweep measurements for one kernel."""

    kernel: str
    points: list[SweepPoint] = field(default_factory=list)

    def rows(self) -> list[dict[str, object]]:
        return [p.row for p in self.points]

    def speedup(self) -> float:
        """First setting's time over the last's (the sweep's total effect)."""
        if len(self.points) < 2:
            return 1.0
        return self.points[0].seconds / self.points[-1].seconds

    def best(self) -> SweepPoint:
        return min(self.points, key=lambda p: p.seconds)


def _check_labels(labelled: Sequence[tuple[str, SoCConfig]]) -> None:
    """Sweep labels key result rows and config names key batched payloads
    — a collision silently merges distinct design points, so refuse it."""
    labels = [label for label, _ in labelled]
    dup = {x for x in labels if labels.count(x) > 1}
    if dup:
        raise ValueError(
            f"sweep values produce duplicate labels {sorted(dup)}; "
            "pass distinct values (or values with distinct str() forms)")
    names = [cfg.name for _, cfg in labelled]
    dup = {x for x in names if names.count(x) > 1}
    if dup:
        raise ValueError(
            f"sweep configs must have unique names, got duplicates: "
            f"{sorted(dup)}")


def _farm_sweep(kernel: str, labelled: Sequence[tuple[str, SoCConfig]],
                scale: float, seed: int, workers: int | None,
                cache: ResultCache | str | None,
                batched: bool = False) -> SweepResult:
    """Farm one kernel over labelled configs; points keep input order."""
    _check_labels(labelled)
    if batched:
        job = Job.sweep([cfg for _, cfg in labelled], kernel,
                        scale=scale, seed=seed)
        results = run_jobs([job], workers=workers, cache=cache, strict=True)
        points = results[0].payload["points"]
        return SweepResult(
            kernel=kernel,
            points=[
                SweepPoint(label=label, cycles=points[cfg.name]["cycles"],
                           seconds=points[cfg.name]["seconds"])
                for label, cfg in labelled
            ],
        )
    jobs = [Job.kernel(cfg, kernel, scale=scale, seed=seed)
            for _, cfg in labelled]
    results = run_jobs(jobs, workers=workers, cache=cache, strict=True)
    return SweepResult(
        kernel=kernel,
        points=[
            SweepPoint(label=label, cycles=r.payload["cycles"],
                       seconds=r.payload["seconds"])
            for (label, _), r in zip(labelled, results)
        ],
    )


def sweep_configs(configs: Sequence[SoCConfig], kernel: str,
                  scale: float = 1.0, seed: int = 0, *,
                  workers: int | None = None,
                  cache: ResultCache | str | None = None,
                  batched: bool = False) -> SweepResult:
    """Run *kernel* on each config (the fig-1/fig-2 inner loop, exposed).

    With ``batched=True`` the whole sweep runs as one config-batched job:
    the kernel's trace is compiled once and every config is evaluated
    over it in a single vectorized pass (bit-identical to per-config
    jobs, and typically >2x faster across a full config set).
    """
    return _farm_sweep(kernel, [(cfg.name, cfg) for cfg in configs],
                       scale, seed, workers, cache, batched=batched)


def sweep_knob(base: SoCConfig, make_fragment: Callable[[object], Fragment],
               values: Iterable[object], kernel: str,
               scale: float = 1.0, seed: int = 0, *,
               workers: int | None = None,
               cache: ResultCache | str | None = None,
               batched: bool = False) -> SweepResult:
    """Sweep one knob: ``make_fragment(v)`` builds the override per value.

    Values must map to distinct labels: two values with the same ``str()``
    form (e.g. ``1`` and ``True``, or two objects sharing a ``__str__``)
    would silently collapse into one indistinguishable row, so that
    raises :class:`ValueError` instead.

    >>> from repro.soc.fragments import WithL2Banks
    >>> sweep_knob(ROCKET1, WithL2Banks, [1, 2, 4, 8], "ML2_BW_ld")
    """
    labelled = [
        (str(v), compose(base, make_fragment(v), name=f"{base.name}[{v}]"))
        for v in values
    ]
    return _farm_sweep(kernel, labelled, scale, seed, workers, cache,
                       batched=batched)
