"""Chipyard-style config fragments.

Chipyard composes SoCs from small reusable overrides ("config fragments":
``WithNBigCores``, ``WithNBanks``, ...).  The paper's §4 tuning is exactly
such a composition — Rocket1 ``++ WithL2Banks(4)`` is Rocket2, ``++
WithBusWidth(128)`` is the Banana Pi Sim Model — so the same idiom is
provided here for building ablation variants without hand-editing nested
dataclasses:

>>> from repro.soc import ROCKET1, compose
>>> from repro.soc.fragments import WithL2Banks, WithBusWidth
>>> my_model = compose(ROCKET1, WithL2Banks(4), WithBusWidth(128),
...                    name="MyBananaPiSim")
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..core.vector import VectorConfig
from ..mem.dram import DRAMConfig
from ..mem.prefetch import PrefetcherConfig
from .config import SoCConfig

__all__ = [
    "Fragment",
    "compose",
    "WithL2Banks",
    "WithBusWidth",
    "WithClock",
    "WithDRAM",
    "WithLLC",
    "WithoutLLC",
    "WithL1Size",
    "WithCores",
    "WithPrefetcher",
    "WithoutPrefetcher",
    "WithVectorUnit",
    "WithReplacement",
]

#: a fragment maps one SoCConfig to a modified one
Fragment = Callable[[SoCConfig], SoCConfig]


def compose(base: SoCConfig, *fragments: Fragment,
            name: str | None = None) -> SoCConfig:
    """Apply *fragments* left to right, optionally renaming the result."""
    cfg = base
    for frag in fragments:
        cfg = frag(cfg)
    if name is not None:
        cfg = dataclasses.replace(cfg, name=name)
    return cfg


def _hier(cfg: SoCConfig, **changes) -> SoCConfig:
    return dataclasses.replace(
        cfg, hierarchy=dataclasses.replace(cfg.hierarchy, **changes)
    )


def WithL2Banks(banks: int) -> Fragment:
    """Set the shared-L2 bank count (the Rocket1 -> Rocket2 knob)."""

    def frag(cfg: SoCConfig) -> SoCConfig:
        return _hier(cfg, l2=dataclasses.replace(cfg.hierarchy.l2, banks=banks))

    return frag


def WithBusWidth(bits: int) -> Fragment:
    """Set the system-bus width (the Rocket2 -> BananaPiSim knob)."""

    def frag(cfg: SoCConfig) -> SoCConfig:
        return _hier(cfg, bus=dataclasses.replace(cfg.hierarchy.bus,
                                                  width_bits=bits))

    return frag


def WithClock(ghz: float) -> Fragment:
    """Set the core clock (the Fast Banana Pi knob).

    The hierarchy's clock follows, so DRAM device timings are re-derived
    — the whole point of the paper's 2x experiment.
    """

    def frag(cfg: SoCConfig) -> SoCConfig:
        # both clocks must change atomically (SoCConfig validates they match)
        return dataclasses.replace(
            cfg,
            core_ghz=ghz,
            hierarchy=dataclasses.replace(cfg.hierarchy, core_ghz=ghz),
        )

    return frag


def WithDRAM(dram: DRAMConfig) -> Fragment:
    """Swap the external-memory model (the §6 DDR4 ablation)."""

    def frag(cfg: SoCConfig) -> SoCConfig:
        return _hier(cfg, dram=dram)

    return frag


def WithLLC(size_bytes: int, simplified: bool = True, slices: int = 4,
            latency: int = 4) -> Fragment:
    """Attach an LLC (FireSim-style simplified, or realistic)."""

    def frag(cfg: SoCConfig) -> SoCConfig:
        return _hier(cfg, llc_bytes=size_bytes, llc_simplified=simplified,
                     llc_slices=slices, llc_latency=latency)

    return frag


def WithoutLLC() -> Fragment:
    def frag(cfg: SoCConfig) -> SoCConfig:
        return _hier(cfg, llc_bytes=None, llc_slices=1)

    return frag


def WithL1Size(kib: int) -> Fragment:
    """Resize both L1s, holding ways and line size (the §5.2.2 knob)."""

    def frag(cfg: SoCConfig) -> SoCConfig:
        h = cfg.hierarchy

        def resize(c):
            sets = kib * 1024 // (c.ways * c.line_bytes)
            if sets <= 0 or sets & (sets - 1):
                raise ValueError(
                    f"{kib} KiB with {c.ways} ways is not a power-of-two "
                    "set count"
                )
            return dataclasses.replace(c, sets=sets)

        return _hier(cfg, l1d=resize(h.l1d), l1i=resize(h.l1i))

    return frag


def WithCores(n: int) -> Fragment:
    def frag(cfg: SoCConfig) -> SoCConfig:
        return dataclasses.replace(cfg, ncores=n)

    return frag


def WithPrefetcher(pf: PrefetcherConfig | None = None) -> Fragment:
    """Attach a stride prefetcher to every tile (default sizing if None)."""

    def frag(cfg: SoCConfig) -> SoCConfig:
        return dataclasses.replace(cfg, prefetcher=pf or PrefetcherConfig())

    return frag


def WithoutPrefetcher() -> Fragment:
    def frag(cfg: SoCConfig) -> SoCConfig:
        return dataclasses.replace(cfg, prefetcher=None)

    return frag


def WithVectorUnit(v: VectorConfig | None = None) -> Fragment:
    """Attach an RVV unit to an in-order core (the K1 what-if)."""

    def frag(cfg: SoCConfig) -> SoCConfig:
        if cfg.core_type != "inorder":
            raise ValueError("the vector unit model attaches to in-order cores")
        return dataclasses.replace(
            cfg, inorder=dataclasses.replace(cfg.inorder,
                                             vector=v or VectorConfig()))

    return frag


def WithReplacement(policy: str) -> Fragment:
    """Set the replacement policy of both L1s ("lru", "plru", "random")."""

    def frag(cfg: SoCConfig) -> SoCConfig:
        h = cfg.hierarchy
        return _hier(
            cfg,
            l1d=dataclasses.replace(h.l1d, replacement=policy),
            l1i=dataclasses.replace(h.l1i, replacement=policy),
        )

    return frag
