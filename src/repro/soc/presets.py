"""Named SoC configurations from the paper (Tables 4 and 5).

FireSim models
--------------
* ``ROCKET1`` — the Chipyard *huge Rocket* configuration: 1.6 GHz,
  fetch 2 / decode 1, 32 KiB L1 (64 sets x 8 ways), 512 KiB L2 with one
  bank, 64-bit system bus, DDR3-2000 FR-FCFS quad-rank memory model.
* ``ROCKET2`` — Rocket1 with four L2 cache banks (§4: "the number of cache
  banks was increased from one to four").
* ``BANANA_PI_SIM`` — Rocket2 plus a 128-bit system bus; this is the tuned
  Banana Pi simulation model.
* ``FAST_BANANA_PI_SIM`` — the same design clocked at 3.2 GHz "to mimic
  the dual issue execute in simulation" (§4).  Note the DRAM device is
  unchanged, so memory gets *relatively* slower — the paper's observed
  MM/MM_st regression.
* ``SMALL_BOOM`` / ``MEDIUM_BOOM`` / ``LARGE_BOOM`` — the riscv-boom
  repository configurations of Table 4, 2.0 GHz, 128-bit bus, 4 L2 banks.
* ``MILKV_SIM`` — Large BOOM with the MILK-V cache hierarchy: 64 KiB L1
  (128 sets x 8 ways), 1 MiB L2, and a 64 MiB LLC built as four 16 MiB
  simplified (SRAM-like) slices, one per DDR3 memory channel.

Silicon references (the substitution for physical boards)
----------------------------------------------------------
* ``BANANA_PI_HW`` — SpacemiT K1 cluster model: 4 in-order dual-issue
  8-stage cores at 1.6 GHz, 32 KiB L1, 512 KiB shared L2, dual 32-bit
  LPDDR4-2666, stride prefetcher, larger predictor tables.
* ``MILKV_HW`` — SOPHON SG2042 cluster model (T-Head C920-class cores):
  4 out-of-order cores at 2.0 GHz with a wider front end than Large BOOM,
  64 KiB L1, 1 MiB shared L2, a *realistic-latency* 64 MiB LLC, 4-channel
  DDR4-3200, and a stride prefetcher.

The FireSim DRAM timing set (``FIRESIM_DDR3``) is deliberately
conservative (higher controller overhead, shallow request queue): FASED's
stock DDR3 model plus token-synchronisation overhead is slower than a
tuned commercial memory subsystem, which the paper identifies as the main
source of the memory-benchmark gap.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.inorder import InOrderConfig
from ..core.ooo import OoOConfig
from ..mem.bus import BusConfig
from ..mem.cache import CacheConfig
from ..mem.dram import (
    DDR3_2000_QUAD_RANK,
    DDR4_3200_4CH,
    DRAMTimings,
    LPDDR4_2666_DUAL,
)
from ..mem.hierarchy import HierarchyConfig
from ..mem.prefetch import PrefetcherConfig
from ..mem.tlb import TLBConfig
from .config import BranchPredictorConfig, SoCConfig

__all__ = [
    "FIRESIM_DDR3",
    "ROCKET1",
    "ROCKET2",
    "BANANA_PI_SIM",
    "FAST_BANANA_PI_SIM",
    "SMALL_BOOM",
    "MEDIUM_BOOM",
    "LARGE_BOOM",
    "MILKV_SIM",
    "BANANA_PI_HW",
    "MILKV_HW",
    "ALL_CONFIGS",
    "FIRESIM_MODELS",
    "SILICON_MODELS",
    "get_config",
    "table4_rows",
    "table5_rows",
]

# ----------------------------------------------------------------- DRAM

#: FireSim's only memory model: DDR3-2000 FR-FCFS quad-rank with FASED's
#: conservative controller timing and a shallow scheduler queue.
FIRESIM_DDR3 = replace(
    DDR3_2000_QUAD_RANK,
    name="DDR3-2000 FR-FCFS quad-rank (FASED)",
    # tCTRL folds in the full FASED path: TileLink bridge crossings, the
    # token-synchronised memory channel, and the model's conservative
    # stock speedbin — end-to-end unloaded latency lands near 150 ns at
    # 1.6 GHz, consistent with published FASED characterisations and with
    # the 0.28-0.43 memory-kernel ratios the paper reports
    timings=DRAMTimings(tCAS=15.0, tRCD=15.0, tRP=15.0, tRAS=36.0, tCTRL=38.0),
    queue_depth=8,
)

#: Commercial controllers run deeper scheduling queues.
_LPDDR4_K1 = replace(LPDDR4_2666_DUAL, queue_depth=16)
_DDR4_SG2042 = replace(DDR4_3200_4CH, queue_depth=32)

# ----------------------------------------------------------------- Rocket side

_ROCKET_CORE = InOrderConfig(
    issue_width=1,
    fetch_width=2,
    pipeline_depth=5,
    mem_ports=1,
    store_buffer=4,
    load_to_use=1,
)

_ROCKET_BP = BranchPredictorConfig(kind="rocket", bht_entries=512,
                                   btb_entries=32, ras_depth=6)


def _rocket_hierarchy(l2_banks: int, bus_bits: int, ghz: float) -> HierarchyConfig:
    return HierarchyConfig(
        l1i=CacheConfig(sets=64, ways=8, hit_latency=1, mshrs=1),
        l1d=CacheConfig(sets=64, ways=8, hit_latency=2, mshrs=2),
        # 512 KiB shared L2 (the Rocket tile's default SiFive inclusive L2)
        l2=CacheConfig(sets=1024, ways=8, hit_latency=20, banks=l2_banks, mshrs=8),
        bus=BusConfig(width_bits=bus_bits),
        dram=FIRESIM_DDR3,
        itlb=TLBConfig(entries=32),
        dtlb=TLBConfig(entries=32),
        l2_tlb_entries=None,
        llc_bytes=None,
        core_ghz=ghz,
    )


ROCKET1 = SoCConfig(
    name="Rocket1",
    core_type="inorder",
    ncores=4,
    core_ghz=1.6,
    inorder=_ROCKET_CORE,
    hierarchy=_rocket_hierarchy(l2_banks=1, bus_bits=64, ghz=1.6),
    branch=_ROCKET_BP,
    host_mhz=60.0,
)

ROCKET2 = SoCConfig(
    name="Rocket2",
    core_type="inorder",
    ncores=4,
    core_ghz=1.6,
    inorder=_ROCKET_CORE,
    hierarchy=_rocket_hierarchy(l2_banks=4, bus_bits=64, ghz=1.6),
    branch=_ROCKET_BP,
    host_mhz=60.0,
)

BANANA_PI_SIM = SoCConfig(
    name="BananaPiSim",
    core_type="inorder",
    ncores=4,
    core_ghz=1.6,
    inorder=_ROCKET_CORE,
    hierarchy=_rocket_hierarchy(l2_banks=4, bus_bits=128, ghz=1.6),
    branch=_ROCKET_BP,
    host_mhz=60.0,
)

#: Doubling the clock to mimic dual issue; the DRAM device is unchanged, so
#: in core cycles the memory is now twice as far away.
FAST_BANANA_PI_SIM = SoCConfig(
    name="FastBananaPiSim",
    core_type="inorder",
    ncores=4,
    core_ghz=3.2,
    inorder=_ROCKET_CORE,
    hierarchy=_rocket_hierarchy(l2_banks=4, bus_bits=128, ghz=3.2),
    branch=_ROCKET_BP,
    host_mhz=60.0,
)

# ----------------------------------------------------------------- BOOM side

_BOOM_BP = BranchPredictorConfig(kind="boom", btb_entries=128, ras_depth=32,
                                 tage_tables=6, tage_table_bits=10)


def _boom_hierarchy(l1_sets: int, l1_ways: int, l2_sets: int,
                    llc_bytes: int | None, ghz: float = 2.0) -> HierarchyConfig:
    return HierarchyConfig(
        l1i=CacheConfig(sets=l1_sets, ways=l1_ways, hit_latency=1, mshrs=2),
        l1d=CacheConfig(sets=l1_sets, ways=l1_ways, hit_latency=4, mshrs=4),
        l2=CacheConfig(sets=l2_sets, ways=8, hit_latency=20, banks=4, mshrs=8),
        bus=BusConfig(width_bits=128),
        dram=replace(FIRESIM_DDR3, channels=4) if llc_bytes else FIRESIM_DDR3,
        itlb=TLBConfig(entries=32),
        dtlb=TLBConfig(entries=32),
        l2_tlb_entries=1024,
        llc_bytes=llc_bytes,
        llc_simplified=True,
        llc_slices=4 if llc_bytes else 1,
        llc_latency=4,
        core_ghz=ghz,
    )


SMALL_BOOM = SoCConfig(
    name="SmallBOOM",
    core_type="ooo",
    ncores=4,
    core_ghz=2.0,
    ooo=OoOConfig(
        fetch_width=4, decode_width=1, rob_size=32,
        int_iq=8, int_issue=1, mem_iq=8, mem_issue=1, fp_iq=8, fp_issue=1,
        ldq=8, stq=8, frontend_depth=10,
    ),
    hierarchy=_boom_hierarchy(l1_sets=64, l1_ways=4, l2_sets=1024, llc_bytes=None),
    branch=_BOOM_BP,
    host_mhz=15.0,
)

MEDIUM_BOOM = SoCConfig(
    name="MediumBOOM",
    core_type="ooo",
    ncores=4,
    core_ghz=2.0,
    ooo=OoOConfig(
        fetch_width=4, decode_width=2, rob_size=64,
        int_iq=20, int_issue=2, mem_iq=12, mem_issue=1, fp_iq=16, fp_issue=1,
        ldq=16, stq=16, frontend_depth=10,
    ),
    hierarchy=_boom_hierarchy(l1_sets=64, l1_ways=4, l2_sets=1024, llc_bytes=None),
    branch=_BOOM_BP,
    host_mhz=15.0,
)

LARGE_BOOM = SoCConfig(
    name="LargeBOOM",
    core_type="ooo",
    ncores=4,
    core_ghz=2.0,
    ooo=OoOConfig(
        fetch_width=8, decode_width=3, rob_size=96,
        int_iq=32, int_issue=3, mem_iq=16, mem_issue=1, fp_iq=24, fp_issue=1,
        ldq=24, stq=24, frontend_depth=10,
    ),
    hierarchy=_boom_hierarchy(l1_sets=64, l1_ways=8, l2_sets=1024, llc_bytes=None),
    branch=_BOOM_BP,
    host_mhz=15.0,
)

#: Large BOOM retuned to the MILK-V hierarchy: 64 KiB L1, 1 MiB L2, and a
#: 64 MiB LLC as four simplified 16 MiB slices over four DDR3 channels.
MILKV_SIM = SoCConfig(
    name="MILKVSim",
    core_type="ooo",
    ncores=4,
    core_ghz=2.0,
    ooo=LARGE_BOOM.ooo,
    hierarchy=_boom_hierarchy(l1_sets=128, l1_ways=8, l2_sets=2048,
                              llc_bytes=64 << 20),
    branch=_BOOM_BP,
    host_mhz=15.0,
)

# ----------------------------------------------------------- Silicon models

#: SpacemiT K1 cluster (Banana Pi BPI-F3): dual-issue, 8-stage, in-order.
BANANA_PI_HW = SoCConfig(
    name="BananaPi-K1",
    core_type="inorder",
    ncores=4,
    core_ghz=1.6,
    inorder=InOrderConfig(
        issue_width=2,
        fetch_width=4,
        pipeline_depth=8,
        mem_ports=1,
        store_buffer=8,
        load_to_use=1,
    ),
    hierarchy=HierarchyConfig(
        l1i=CacheConfig(sets=64, ways=8, hit_latency=1, mshrs=2),
        l1d=CacheConfig(sets=64, ways=8, hit_latency=3, mshrs=8),
        l2=CacheConfig(sets=1024, ways=8, hit_latency=13, banks=4, mshrs=16),
        bus=BusConfig(width_bits=128),
        dram=_LPDDR4_K1,
        itlb=TLBConfig(entries=32),
        dtlb=TLBConfig(entries=32),
        l2_tlb_entries=512,
        llc_bytes=None,
        core_ghz=1.6,
    ),
    branch=BranchPredictorConfig(kind="gshare", bht_entries=4096,
                                 btb_entries=64, ras_depth=16),
    prefetcher=PrefetcherConfig(table_entries=16, degree=2),
    is_silicon=True,
)

#: SOPHON SG2042 cluster (MILK-V Pioneer): T-Head C920-class out-of-order
#: cores; wider front end and memory pipeline than the Large BOOM model,
#: which is exactly the residual mismatch the paper's §5.1 infers.
MILKV_HW = SoCConfig(
    name="MILKV-SG2042",
    core_type="ooo",
    ncores=4,
    core_ghz=2.0,
    # int side is wider than Large BOOM (4-wide decode, 4 ALU ports) but
    # scalar FP throughput is one FMA/cycle — the paper's EP results show
    # "the compute capabilities of the large BOOM configuration are very
    # close to those of the MILK-V hardware" (§5.2.2)
    ooo=OoOConfig(
        fetch_width=8, decode_width=4, rob_size=192,
        int_iq=64, int_issue=4, mem_iq=32, mem_issue=2, fp_iq=32, fp_issue=1,
        ldq=32, stq=32, frontend_depth=12,
    ),
    hierarchy=HierarchyConfig(
        l1i=CacheConfig(sets=128, ways=8, hit_latency=1, mshrs=4),
        l1d=CacheConfig(sets=128, ways=8, hit_latency=3, mshrs=12),
        l2=CacheConfig(sets=2048, ways=8, hit_latency=16, banks=4, mshrs=24),
        bus=BusConfig(width_bits=128),
        dram=_DDR4_SG2042,
        itlb=TLBConfig(entries=32),
        dtlb=TLBConfig(entries=32),
        l2_tlb_entries=1024,
        llc_bytes=64 << 20,
        llc_simplified=False,   # real LLCs have tag+data latency
        llc_slices=4,
        core_ghz=2.0,
    ),
    branch=BranchPredictorConfig(kind="boom", btb_entries=256, ras_depth=32,
                                 tage_tables=6, tage_table_bits=11),
    prefetcher=PrefetcherConfig(table_entries=32, degree=4),
    is_silicon=True,
)

# ----------------------------------------------------------------- registry

FIRESIM_MODELS: dict[str, SoCConfig] = {
    c.name: c
    for c in (ROCKET1, ROCKET2, BANANA_PI_SIM, FAST_BANANA_PI_SIM,
              SMALL_BOOM, MEDIUM_BOOM, LARGE_BOOM, MILKV_SIM)
}

SILICON_MODELS: dict[str, SoCConfig] = {
    c.name: c for c in (BANANA_PI_HW, MILKV_HW)
}

ALL_CONFIGS: dict[str, SoCConfig] = {**FIRESIM_MODELS, **SILICON_MODELS}


def validate_presets(configs: dict[str, SoCConfig] | None = None) -> None:
    """Re-validate every preset; aggregate all problems into one error.

    Construction already validates each config, but presets are built
    with ``dataclasses.replace``-style helpers and registry dicts that
    can drift; this check runs at import time so a broken preset fails
    the whole module loudly instead of one sweep at a time.
    """
    configs = ALL_CONFIGS if configs is None else configs
    problems: list[str] = []
    for key, cfg in configs.items():
        if key != cfg.name:
            problems.append(
                f"{key}: registry key does not match config name {cfg.name!r}")
        problems.extend(f"{cfg.name}: {p}" for p in cfg.validation_problems())
        if cfg in SILICON_MODELS.values() and not cfg.is_silicon:
            problems.append(f"{cfg.name}: in SILICON_MODELS but not marked "
                            f"is_silicon")
        if cfg in FIRESIM_MODELS.values():
            if cfg.is_silicon:
                problems.append(f"{cfg.name}: FireSim model marked is_silicon")
            if cfg.host_mhz is None:
                problems.append(f"{cfg.name}: FireSim model missing host_mhz")
    if problems:
        from .config import ConfigValidationError
        raise ConfigValidationError("presets", problems)


validate_presets()


def get_config(name: str) -> SoCConfig:
    """Look up a named configuration (KeyError lists the valid names)."""
    try:
        return ALL_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; available: {sorted(ALL_CONFIGS)}"
        ) from None


def table4_rows() -> list[dict[str, str]]:
    """The FireSim-model inventory of paper Table 4."""
    return [
        c.summary()
        for c in (ROCKET1, ROCKET2, SMALL_BOOM, MEDIUM_BOOM, LARGE_BOOM)
    ]


def table5_rows() -> list[dict[str, str]]:
    """Hardware vs simulation-model specs of paper Table 5 (abridged)."""
    rows = []
    for hw, sim in ((BANANA_PI_HW, BANANA_PI_SIM), (MILKV_HW, MILKV_SIM)):
        rows.append(
            {
                "Platform": hw.name,
                "HW cores": f"{hw.ncores} @ {hw.core_ghz} GHz",
                "Sim cores": f"{sim.ncores} @ {sim.core_ghz} GHz",
                "HW L1D": f"{hw.hierarchy.l1d.size_bytes // 1024} KiB",
                "Sim L1D": f"{sim.hierarchy.l1d.size_bytes // 1024} KiB",
                "HW L2": f"{hw.hierarchy.l2.size_bytes // 1024} KiB",
                "Sim L2": f"{sim.hierarchy.l2.size_bytes // 1024} KiB",
                "HW LLC": (f"{hw.hierarchy.llc_bytes >> 20} MiB"
                           if hw.hierarchy.llc_bytes else "None"),
                "Sim LLC": (f"{sim.hierarchy.llc_bytes >> 20} MiB"
                            if sim.hierarchy.llc_bytes else "None"),
                "HW memory": hw.hierarchy.dram.name,
                "Sim memory": sim.hierarchy.dram.name,
            }
        )
    return rows
