"""Multi-tile system assembly and execution.

A :class:`System` instantiates ``ncores`` tiles (core + private L1s/TLBs)
over one shared :class:`repro.mem.Uncore` and runs instruction traces on
them — serially per tile, or in FireSim-style token lockstep across tiles
(:meth:`System.run_parallel`), which is how the multi-rank MPI experiments
execute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.base import CoreResult
from ..core.branch import (
    BTB,
    BimodalBHT,
    BranchUnit,
    GShare,
    ReturnAddressStack,
    TAGE,
)
from ..core.inorder import InOrderCore
from ..core.ooo import OoOCore
from ..isa.trace import Trace
from ..mem.hierarchy import TilePort, Uncore
from ..mem.prefetch import StridePrefetcher
from .config import BranchPredictorConfig, SoCConfig
from .tokens import LockstepScheduler

__all__ = ["Tile", "System", "ParallelRun", "build_branch_unit"]


def build_branch_unit(cfg: BranchPredictorConfig) -> BranchUnit:
    """Construct the front-end predictor stack a config asks for."""
    if cfg.kind == "rocket":
        direction = BimodalBHT(cfg.bht_entries)
    elif cfg.kind == "gshare":
        direction = GShare(cfg.bht_entries)
    else:  # boom
        direction = TAGE(num_tables=cfg.tage_tables, table_bits=cfg.tage_table_bits,
                         max_hist=128)
    return BranchUnit(
        direction,
        BTB(cfg.btb_entries, assoc=2 if cfg.btb_entries < 64 else 4),
        ReturnAddressStack(cfg.ras_depth),
    )


@dataclass
class Tile:
    """One tile: a core model bound to its private memory port."""

    tile_id: int
    core: InOrderCore | OoOCore
    port: TilePort

    @property
    def local_time(self) -> int:
        return self.core.local_time

    def run(self, trace: Trace) -> CoreResult:
        return self.core.run(trace)


class _TileLane:
    """Adapts a (tile, trace) pair to the LockstepScheduler Lane protocol."""

    def __init__(self, tile: Tile, trace: Trace, chunk: int = 2048,
                 offset: int = 0, result: CoreResult | None = None,
                 instrument=None) -> None:
        self.tile = tile
        self.trace = trace
        self.chunk = chunk
        self.offset = offset
        self.result = result
        self.instrument = instrument

    def local_time(self) -> int:
        return self.tile.core.local_time

    def advance(self, until: int) -> bool:
        n = len(self.trace)
        while self.offset < n and self.tile.core.local_time < until:
            seg = self.trace[self.offset:self.offset + self.chunk]
            t0 = self.tile.core.local_time
            r = self.tile.core.run(seg)
            self.result = r if self.result is None else self.result + r
            self.offset += len(seg)
            if self.instrument is not None:
                self.instrument.observe(self.tile.tile_id, seg, t0,
                                        self.tile.core.local_time)
        return self.offset < n


class ParallelRun:
    """A stepwise handle on an in-flight lockstep run.

    ``System.start_parallel`` returns one; :meth:`step` advances whole
    quanta, so callers can checkpoint (:meth:`checkpoint`), watch, or
    abandon the run between quanta.  ``System.restore`` rebuilds one
    mid-flight from a :class:`~repro.reliability.SimCheckpoint`.
    """

    def __init__(self, system: "System", traces: list[Trace],
                 quantum: int = 4096, chunk: int = 2048,
                 watchdog=None, fault_plan=None,
                 _lanes: list[_TileLane] | None = None,
                 _scheduler: LockstepScheduler | None = None) -> None:
        if len(traces) > len(system.tiles):
            raise ValueError(
                f"{len(traces)} traces for {len(system.tiles)} tiles")
        self.system = system
        self.traces = list(traces)
        self.chunk = chunk
        self.fault_plan = fault_plan
        self.watchdog = watchdog
        self.lanes = _lanes if _lanes is not None else [
            _TileLane(system.tiles[i], t, chunk=chunk,
                      instrument=system.instrument)
            for i, t in enumerate(traces)
        ]
        if _scheduler is not None:
            self.scheduler = _scheduler
        else:
            self.scheduler = LockstepScheduler(quantum=quantum)
            self.scheduler.bind(list(self.lanes))
        if watchdog is not None:
            if watchdog.system is None:
                watchdog.system = system
            self.scheduler.watchdog = watchdog
        system.last_scheduler = self.scheduler
        system.last_watchdog = watchdog

    @property
    def done(self) -> bool:
        return self.scheduler.done

    @property
    def quanta(self) -> int:
        """Quanta completed so far (the checkpointable positions)."""
        return self.scheduler.stats.quanta

    def _inject_due_faults(self) -> None:
        plan = self.fault_plan
        if plan is None:
            return
        from ..reliability import faults as _f
        for fault in plan.token_faults(self.quanta):
            _f.apply_token_fault(fault, self.scheduler)
        rng = plan.rng()
        for fault in plan.line_faults(self.quanta):
            _f.corrupt_cache_line(
                self.system, tile=int(fault.param("tile", 0)),
                cache=str(fault.param("cache", "l1d")), rng=rng)

    def step(self, quanta: int = 1) -> bool:
        """Advance up to *quanta* scheduler quanta; True while unfinished."""
        for _ in range(quanta):
            self._inject_due_faults()
            if not self.scheduler.step():
                return False
        return not self.done

    def run(self) -> list[CoreResult]:
        """Run to completion and return per-lane results."""
        while self.step():
            pass
        return self.results()

    def results(self) -> list[CoreResult]:
        """Per-lane results, aligned to the input traces."""
        out = []
        for lane in self.lanes:
            assert lane.result is not None or len(lane.trace) == 0
            out.append(lane.result or CoreResult(cycles=0, instructions=0))
        return out

    def checkpoint(self, extras: dict | None = None):
        """Snapshot run + system state into a ``SimCheckpoint``."""
        return self.system.save_checkpoint(run=self, extras=extras)


class System:
    """``ncores`` tiles over a shared uncore, built from a :class:`SoCConfig`."""

    def __init__(self, cfg: SoCConfig) -> None:
        self.cfg = cfg
        self.uncore = Uncore(cfg.hierarchy)
        #: scheduler of the most recent run_parallel (for telemetry)
        self.last_scheduler: LockstepScheduler | None = None
        #: watchdog of the most recent run_parallel, if any (for telemetry)
        self.last_watchdog = None
        #: attached streaming instrument, if any (see repro.instrument)
        self.instrument = None
        self.tiles: list[Tile] = []
        for i in range(cfg.ncores):
            port = TilePort(self.uncore, tile_id=i)
            if cfg.prefetcher is not None:
                port.attach_prefetcher(StridePrefetcher(cfg.prefetcher, port.l1d))
            bru = build_branch_unit(cfg.branch)
            if cfg.core_type == "inorder":
                assert cfg.inorder is not None
                core: InOrderCore | OoOCore = InOrderCore(
                    cfg.inorder, port, bru,
                    accel=getattr(cfg, "accel", "off") == "on")
            else:
                assert cfg.ooo is not None
                core = OoOCore(cfg.ooo, port, bru,
                               accel=getattr(cfg, "accel", "off") == "on")
            self.tiles.append(Tile(i, core, port))

    # -- instrumentation ------------------------------------------------------

    def attach_instrument(self, instrument, resumed: bool = False) -> None:
        """Attach a streaming :class:`repro.instrument.Instrument`.

        Observation is read-only at chunk boundaries: results, counters,
        and chunking are bit-identical with or without an instrument
        (enforced by the ``instrument`` tier in :mod:`repro.check`).
        Attach before starting a lockstep run — lanes bind the
        instrument at construction time.
        """
        self.instrument = instrument
        instrument.attach(self, resumed=resumed)

    def detach_instrument(self, reason: str = "done") -> None:
        """Seal the attached instrument's stream and drop it."""
        if self.instrument is not None:
            self.instrument.seal(reason=reason)
            self.instrument = None

    # -- execution ------------------------------------------------------------

    def run(self, trace: Trace, tile: int = 0) -> CoreResult:
        """Run a trace to completion on one tile."""
        if self.instrument is None:
            return self.tiles[tile].run(trace)
        t0 = self.tiles[tile].core.local_time
        result = self.tiles[tile].run(trace)
        # serial runs are observed whole: one chunk spanning the call,
        # with cycle stamps interpolated across it.  Lockstep runs
        # observe per lane chunk, which is the finer-grained path.
        self.instrument.observe(tile, trace, t0,
                                self.tiles[tile].core.local_time)
        return result

    def run_parallel(self, traces: list[Trace], quantum: int = 4096,
                     chunk: int = 2048, watchdog=None,
                     fault_plan=None) -> list[CoreResult]:
        """Run one trace per tile under token lockstep.

        ``traces[i]`` runs on tile *i*; fewer traces than tiles leaves the
        remaining tiles idle.  Returns per-tile results (aligned to input).
        An optional :class:`~repro.reliability.LockstepWatchdog` raises
        ``SimulationHang`` on stalled progress, and an optional
        :class:`~repro.reliability.FaultPlan` injects token/cache faults
        at their scheduled quanta.
        """
        return self.start_parallel(traces, quantum=quantum, chunk=chunk,
                                   watchdog=watchdog,
                                   fault_plan=fault_plan).run()

    def start_parallel(self, traces: list[Trace], quantum: int = 4096,
                       chunk: int = 2048, watchdog=None,
                       fault_plan=None) -> ParallelRun:
        """Begin a lockstep run without advancing it (stepwise handle)."""
        return ParallelRun(self, traces, quantum=quantum, chunk=chunk,
                           watchdog=watchdog, fault_plan=fault_plan)

    # -- checkpoint / restore -------------------------------------------------

    def save_checkpoint(self, run: ParallelRun | None = None,
                        extras: dict | None = None):
        """Capture a :class:`~repro.reliability.SimCheckpoint`.

        With *run*, the checkpoint carries lane progress and scheduler
        position so ``System.restore`` resumes mid-flight; without it,
        only component state (caches, predictors, …) is captured — e.g.
        to reuse warmed state across runs.
        """
        from ..reliability.checkpoint import SimCheckpoint
        if self.instrument is not None:
            # fold the instrument cursors (window states, sampler phase,
            # instruction indices) into the sealed extras so restore can
            # re-arm mid-window
            extras = dict(extras) if extras else {}
            extras.setdefault("instrument", self.instrument.state())
        return SimCheckpoint.capture(self, run=run, extras=extras)

    def restore(self, ckpt, traces: list[Trace] | None = None,
                watchdog=None, fault_plan=None) -> ParallelRun | None:
        """Restore a checkpoint onto this system, in place.

        The checkpoint must match this system's config (fingerprint
        checked) and pass the invariant audit.  For a mid-run checkpoint
        the original *traces* must be supplied (verified against the
        recorded per-lane fingerprints) and the returned
        :class:`ParallelRun` continues bit-identically to the
        uninterrupted run; for a bare snapshot, returns None.
        """
        from ..reliability.checkpoint import (
            CheckpointError,
            restore_system,
            result_from_state,
            trace_fingerprint,
        )
        ckpt.verify()
        ckpt.audit(self)
        restore_system(self, ckpt.state)
        if self.instrument is not None:
            # re-arm windows/sampler/cursors where the donor run left off
            inst_state = ckpt.extras.get("instrument")
            if inst_state is not None:
                self.instrument.load_state(inst_state)
        if ckpt.lanes is None:
            self.last_scheduler = None
            self.last_watchdog = None
            return None
        if traces is None:
            raise CheckpointError(
                "mid-run checkpoint: pass the original traces to restore")
        if len(traces) != len(ckpt.lanes):
            raise CheckpointError(
                f"checkpoint has {len(ckpt.lanes)} lanes, got "
                f"{len(traces)} traces")
        lanes = []
        for i, (trace, ls) in enumerate(zip(traces, ckpt.lanes)):
            if trace_fingerprint(trace) != ls["trace_fp"]:
                raise CheckpointError(
                    f"lane {i}: trace does not match the checkpointed "
                    f"trace (fingerprint mismatch)")
            result = (result_from_state(ls["result"])
                      if ls["result"] is not None else None)
            lanes.append(_TileLane(self.tiles[i], trace,
                                   chunk=int(ls["chunk"]),
                                   offset=int(ls["offset"]), result=result,
                                   instrument=self.instrument))
        scheduler = LockstepScheduler(quantum=int(ckpt.scheduler["quantum"]))
        scheduler.bind(list(lanes))
        scheduler.load_state(ckpt.scheduler)
        if watchdog is not None:
            # A watchdog carried over from the pre-crash run still holds
            # that run's lane clocks; restored lanes resume from the
            # checkpointed (earlier) position, which stale state would
            # misread as "no progress" and escalate to a spurious hang.
            watchdog.reset()
        chunk = lanes[0].chunk if lanes else 2048
        return ParallelRun(self, traces, chunk=chunk,
                           watchdog=watchdog, fault_plan=fault_plan,
                           _lanes=lanes, _scheduler=scheduler)

    def seconds(self, result: CoreResult) -> float:
        """Target wall-clock of a result at this system's core frequency."""
        return result.cycles / (self.cfg.core_ghz * 1e9)

    def warm(self, *traces: Trace, tile: int = 0) -> None:
        """Run warmup slices on *tile*, discarding the timing.

        Trains caches, TLBs, and predictors so a subsequent measured run
        sees steady state — the window a telemetry baseline should follow::

            reg = StatsRegistry(system)
            system.warm(trace)          # train
            base = reg.snapshot()       # baseline after warmup
            result = system.run(trace)  # measured pass
            hot = reg.delta(base)

        Called with no traces it remains a no-op (systems start cold).
        """
        for trace in traces:
            self.tiles[tile].run(trace)

    def __repr__(self) -> str:
        return f"System({self.cfg.name}, {self.cfg.ncores}x {self.cfg.core_type} @ {self.cfg.core_ghz} GHz)"
