"""Multi-tile system assembly and execution.

A :class:`System` instantiates ``ncores`` tiles (core + private L1s/TLBs)
over one shared :class:`repro.mem.Uncore` and runs instruction traces on
them — serially per tile, or in FireSim-style token lockstep across tiles
(:meth:`System.run_parallel`), which is how the multi-rank MPI experiments
execute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.base import CoreResult
from ..core.branch import (
    BTB,
    BimodalBHT,
    BranchUnit,
    GShare,
    ReturnAddressStack,
    TAGE,
)
from ..core.inorder import InOrderCore
from ..core.ooo import OoOCore
from ..isa.trace import Trace
from ..mem.hierarchy import TilePort, Uncore
from ..mem.prefetch import StridePrefetcher
from .config import BranchPredictorConfig, SoCConfig
from .tokens import LockstepScheduler

__all__ = ["Tile", "System", "build_branch_unit"]


def build_branch_unit(cfg: BranchPredictorConfig) -> BranchUnit:
    """Construct the front-end predictor stack a config asks for."""
    if cfg.kind == "rocket":
        direction = BimodalBHT(cfg.bht_entries)
    elif cfg.kind == "gshare":
        direction = GShare(cfg.bht_entries)
    else:  # boom
        direction = TAGE(num_tables=cfg.tage_tables, table_bits=cfg.tage_table_bits,
                         max_hist=128)
    return BranchUnit(
        direction,
        BTB(cfg.btb_entries, assoc=2 if cfg.btb_entries < 64 else 4),
        ReturnAddressStack(cfg.ras_depth),
    )


@dataclass
class Tile:
    """One tile: a core model bound to its private memory port."""

    tile_id: int
    core: InOrderCore | OoOCore
    port: TilePort

    @property
    def local_time(self) -> int:
        return self.core.local_time

    def run(self, trace: Trace) -> CoreResult:
        return self.core.run(trace)


class _TileLane:
    """Adapts a (tile, trace) pair to the LockstepScheduler Lane protocol."""

    def __init__(self, tile: Tile, trace: Trace, chunk: int = 2048) -> None:
        self.tile = tile
        self.trace = trace
        self.chunk = chunk
        self.offset = 0
        self.result: CoreResult | None = None

    def local_time(self) -> int:
        return self.tile.core.local_time

    def advance(self, until: int) -> bool:
        n = len(self.trace)
        while self.offset < n and self.tile.core.local_time < until:
            seg = self.trace[self.offset:self.offset + self.chunk]
            r = self.tile.core.run(seg)
            self.result = r if self.result is None else self.result + r
            self.offset += len(seg)
        return self.offset < n


class System:
    """``ncores`` tiles over a shared uncore, built from a :class:`SoCConfig`."""

    def __init__(self, cfg: SoCConfig) -> None:
        self.cfg = cfg
        self.uncore = Uncore(cfg.hierarchy)
        #: scheduler of the most recent run_parallel (for telemetry)
        self.last_scheduler: LockstepScheduler | None = None
        self.tiles: list[Tile] = []
        for i in range(cfg.ncores):
            port = TilePort(self.uncore, tile_id=i)
            if cfg.prefetcher is not None:
                port.attach_prefetcher(StridePrefetcher(cfg.prefetcher, port.l1d))
            bru = build_branch_unit(cfg.branch)
            if cfg.core_type == "inorder":
                assert cfg.inorder is not None
                core: InOrderCore | OoOCore = InOrderCore(cfg.inorder, port, bru)
            else:
                assert cfg.ooo is not None
                core = OoOCore(cfg.ooo, port, bru)
            self.tiles.append(Tile(i, core, port))

    # -- execution ------------------------------------------------------------

    def run(self, trace: Trace, tile: int = 0) -> CoreResult:
        """Run a trace to completion on one tile."""
        return self.tiles[tile].run(trace)

    def run_parallel(self, traces: list[Trace], quantum: int = 4096,
                     chunk: int = 2048) -> list[CoreResult]:
        """Run one trace per tile under token lockstep.

        ``traces[i]`` runs on tile *i*; fewer traces than tiles leaves the
        remaining tiles idle.  Returns per-tile results (aligned to input).
        """
        if len(traces) > len(self.tiles):
            raise ValueError(
                f"{len(traces)} traces for {len(self.tiles)} tiles"
            )
        lanes = [_TileLane(self.tiles[i], t, chunk=chunk)
                 for i, t in enumerate(traces)]
        self.last_scheduler = LockstepScheduler(quantum=quantum)
        self.last_scheduler.run(list(lanes))
        out = []
        for lane in lanes:
            assert lane.result is not None or len(lane.trace) == 0
            out.append(lane.result or CoreResult(cycles=0, instructions=0))
        return out

    def seconds(self, result: CoreResult) -> float:
        """Target wall-clock of a result at this system's core frequency."""
        return result.cycles / (self.cfg.core_ghz * 1e9)

    def warm(self, *traces: Trace, tile: int = 0) -> None:
        """Run warmup slices on *tile*, discarding the timing.

        Trains caches, TLBs, and predictors so a subsequent measured run
        sees steady state — the window a telemetry baseline should follow::

            reg = StatsRegistry(system)
            system.warm(trace)          # train
            base = reg.snapshot()       # baseline after warmup
            result = system.run(trace)  # measured pass
            hot = reg.delta(base)

        Called with no traces it remains a no-op (systems start cold).
        """
        for trace in traces:
            self.tiles[tile].run(trace)

    def __repr__(self) -> str:
        return f"System({self.cfg.name}, {self.cfg.ncores}x {self.cfg.core_type} @ {self.cfg.core_ghz} GHz)"
