"""Chipyard-like SoC configuration: one object describes a whole system.

A :class:`SoCConfig` bundles the core kind and parameters, the memory
hierarchy, the branch-prediction front end, the clock, and the core count —
the same knobs Table 4/5 of the paper enumerates for the FireSim models and
the hardware platforms.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..core.inorder import InOrderConfig
from ..core.ooo import OoOConfig
from ..mem.hierarchy import HierarchyConfig
from ..mem.prefetch import PrefetcherConfig

__all__ = ["BranchPredictorConfig", "ConfigValidationError", "SoCConfig"]


class ConfigValidationError(ValueError):
    """Every cross-field violation of a config, collected into one error.

    ``problems`` lists all violations; the message shows them all, so a
    misconfigured sweep is fixed in one pass instead of one field per
    traceback.  Subclasses :class:`ValueError` for compatibility with
    callers that catch the old fail-first errors.
    """

    def __init__(self, name: str, problems: list[str]) -> None:
        self.name = name
        self.problems = list(problems)
        lines = "; ".join(self.problems)
        super().__init__(
            f"{name}: {len(self.problems)} invalid field(s): {lines}")


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Front-end predictor selection and sizing."""

    kind: str = "rocket"      #: "rocket" (BHT+BTB+RAS) | "boom" (TAGE-L) | "gshare"
    bht_entries: int = 512
    btb_entries: int = 32
    ras_depth: int = 6
    tage_tables: int = 6
    tage_table_bits: int = 10

    def __post_init__(self) -> None:
        if self.kind not in ("rocket", "boom", "gshare"):
            raise ValueError(f"unknown predictor kind {self.kind!r}")


@dataclass(frozen=True)
class SoCConfig:
    """Complete description of a simulated system or a silicon reference."""

    name: str
    core_type: str                      #: "inorder" | "ooo"
    ncores: int = 4
    core_ghz: float = 1.6
    inorder: InOrderConfig | None = None
    ooo: OoOConfig | None = None
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    #: silicon models carry a hardware prefetcher; FireSim tiles do not
    prefetcher: PrefetcherConfig | None = None
    #: True for the reference-hardware stand-ins (Banana Pi / MILK-V)
    is_silicon: bool = False
    #: FireSim host simulation rate in MHz (None for silicon)
    host_mhz: float | None = None
    #: hot-path acceleration (repro.accel): "on" (default) or "off".
    #: Bit-identical by contract — the knob trades nothing but wall-clock.
    accel: str = "on"

    def __post_init__(self) -> None:
        problems = self.validation_problems()
        if problems:
            raise ConfigValidationError(self.name, problems)

    def validation_problems(self) -> list[str]:
        """All cross-field violations (empty list = valid)."""
        problems: list[str] = []
        if self.core_type not in ("inorder", "ooo"):
            problems.append(
                f"core_type must be 'inorder' or 'ooo', got {self.core_type!r}")
        if self.core_type == "inorder" and self.inorder is None:
            problems.append("inorder core requires an InOrderConfig")
        if self.core_type == "ooo" and self.ooo is None:
            problems.append("ooo core requires an OoOConfig")
        if self.ncores < 1:
            problems.append(f"ncores must be >= 1, got {self.ncores}")
        if self.core_ghz <= 0:
            problems.append(f"core_ghz must be positive, got {self.core_ghz}")
        if self.hierarchy.core_ghz != self.core_ghz:
            problems.append(
                f"hierarchy.core_ghz ({self.hierarchy.core_ghz}) "
                f"must match core_ghz ({self.core_ghz})")
        if self.is_silicon and self.host_mhz is not None:
            problems.append(
                f"silicon reference carries a FireSim host rate "
                f"(host_mhz={self.host_mhz})")
        if self.host_mhz is not None and self.host_mhz <= 0:
            problems.append(
                f"host_mhz must be positive when set, got {self.host_mhz}")
        if self.accel not in ("on", "off"):
            problems.append(
                f"accel must be 'on' or 'off', got {self.accel!r}")
        return problems

    def with_(self, **changes) -> "SoCConfig":
        """Return a modified copy (ablation helper)."""
        return dataclasses.replace(self, **changes)

    def seconds(self, cycles: int) -> float:
        """Convert target cycles to target seconds at this SoC's clock."""
        return cycles / (self.core_ghz * 1e9)

    def summary(self) -> dict[str, str]:
        """Human-readable one-line spec per Table 4's columns."""
        h = self.hierarchy
        row: dict[str, str] = {
            "Model": self.name,
            "Clock": f"{self.core_ghz} GHz",
            "L1D/I": f"Sets:{h.l1d.sets}, Ways:{h.l1d.ways}",
            "L2 Banks": str(h.l2.banks),
            "System bus": f"{h.bus.width_bits}-bit",
        }
        if self.core_type == "inorder":
            assert self.inorder is not None
            row["Front End"] = (
                f"Fetch:{self.inorder.fetch_width}, Decode:{self.inorder.issue_width}"
            )
            row["RoB"] = "N/A"
            row["LSQ"] = "N/A"
        else:
            assert self.ooo is not None
            row["Front End"] = (
                f"Fetch:{self.ooo.fetch_width}, Decode:{self.ooo.decode_width}"
            )
            row["RoB"] = f"RoB:{self.ooo.rob_size}"
            row["LSQ"] = f"Load:{self.ooo.ldq}, Store:{self.ooo.stq}"
        return row
