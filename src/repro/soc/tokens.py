"""FireSim-style token-based lockstep coordination.

FireSim decouples target time from host time by exchanging *tokens*
between simulated components: a component may only advance its target
clock when it holds tokens from every peer, which bounds clock skew to the
token-channel capacity and makes multi-FPGA simulation deterministic.

We reproduce the scheme at the scheduler level: each lane (tile) advances
in bounded quanta, and the lane with the smallest local clock always runs
next, so cross-lane interactions through shared uncore state happen in a
deterministic, almost-time-ordered way regardless of Python iteration
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

__all__ = ["TokenChannel", "Lane", "LockstepScheduler", "SchedulerStats"]


class TokenChannel:
    """Bounded token queue between a producer and a consumer clock domain.

    Capacity = maximum cycles the producer may run ahead of the consumer.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._produced = 0
        self._consumed = 0

    @property
    def occupancy(self) -> int:
        return self._produced - self._consumed

    def can_produce(self, n: int = 1) -> bool:
        return self.occupancy + n <= self.capacity

    def produce(self, n: int = 1) -> None:
        if not self.can_produce(n):
            raise RuntimeError("token channel overflow: producer ran ahead")
        self._produced += n

    def consume(self, n: int = 1) -> None:
        if self.occupancy < n:
            raise RuntimeError("token channel underflow: consumer ran ahead")
        self._consumed += n


class Lane(Protocol):
    """A schedulable clock domain (one tile running one instruction stream)."""

    def local_time(self) -> int:
        """Current target-clock position of this lane, in cycles."""
        ...

    def advance(self, until: int) -> bool:
        """Run until ``local_time() >= until`` or the stream ends.

        Returns True while more work remains.
        """
        ...


@dataclass
class SchedulerStats:
    quanta: int = 0
    max_skew: int = 0


class LockstepScheduler:
    """Advance lanes in token quanta, least-advanced lane first."""

    def __init__(self, quantum: int = 4096) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self.stats = SchedulerStats()

    def run(self, lanes: list) -> None:
        """Run all lanes to completion under bounded skew."""
        live = {i: lane for i, lane in enumerate(lanes)}
        while live:
            # pick the least-advanced live lane (deterministic tie-break on id)
            idx = min(live, key=lambda i: (live[i].local_time(), i))
            lane = live[idx]
            target = lane.local_time() + self.quantum
            more = lane.advance(target)
            self.stats.quanta += 1
            if live:
                times = [l.local_time() for l in live.values()]
                skew = max(times) - min(times)
                if skew > self.stats.max_skew:
                    self.stats.max_skew = skew
            if not more:
                del live[idx]
