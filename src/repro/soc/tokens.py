"""FireSim-style token-based lockstep coordination.

FireSim decouples target time from host time by exchanging *tokens*
between simulated components: a component may only advance its target
clock when it holds tokens from every peer, which bounds clock skew to the
token-channel capacity and makes multi-FPGA simulation deterministic.

We reproduce the scheme at the scheduler level: each lane (tile) advances
in bounded quanta, and the lane with the smallest local clock always runs
next, so cross-lane interactions through shared uncore state happen in a
deterministic, almost-time-ordered way regardless of Python iteration
order.

The scheduler is *stepwise*: :meth:`LockstepScheduler.bind` attaches the
lanes and :meth:`LockstepScheduler.step` advances exactly one quantum, so
callers (``System.run_parallel``, checkpointing, the reliability
watchdog) can pause, inspect, snapshot, or abort between quanta.
:meth:`LockstepScheduler.run` keeps the original run-to-completion
behaviour.  Each lane owns one :class:`TokenChannel`: the scheduler
produces one token to grant a quantum and the lane's completed advance
consumes it, so at every quantum boundary ``produced == consumed`` on
every channel — the conservation invariant the reliability audit checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

__all__ = ["TokenChannel", "Lane", "LockstepScheduler", "SchedulerStats"]


class TokenChannel:
    """Bounded token queue between a producer and a consumer clock domain.

    Capacity = maximum cycles the producer may run ahead of the consumer.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._produced = 0
        self._consumed = 0

    @property
    def produced(self) -> int:
        return self._produced

    @property
    def consumed(self) -> int:
        return self._consumed

    @property
    def occupancy(self) -> int:
        return self._produced - self._consumed

    def can_produce(self, n: int = 1) -> bool:
        return self.occupancy + n <= self.capacity

    def produce(self, n: int = 1) -> None:
        if not self.can_produce(n):
            raise RuntimeError("token channel overflow: producer ran ahead")
        self._produced += n

    def consume(self, n: int = 1) -> None:
        if self.occupancy < n:
            raise RuntimeError("token channel underflow: consumer ran ahead")
        self._consumed += n

    def state(self) -> dict:
        return {"capacity": self.capacity, "produced": self._produced,
                "consumed": self._consumed}

    def load_state(self, state: dict) -> None:
        self.capacity = int(state["capacity"])
        self._produced = int(state["produced"])
        self._consumed = int(state["consumed"])


class Lane(Protocol):
    """A schedulable clock domain (one tile running one instruction stream)."""

    def local_time(self) -> int:
        """Current target-clock position of this lane, in cycles."""
        ...

    def advance(self, until: int) -> bool:
        """Run until ``local_time() >= until`` or the stream ends.

        Returns True while more work remains.
        """
        ...


@dataclass
class SchedulerStats:
    quanta: int = 0
    max_skew: int = 0


class LockstepScheduler:
    """Advance lanes in token quanta, least-advanced lane first."""

    def __init__(self, quantum: int = 4096, *,
                 watchdog: Callable[["LockstepScheduler"], None] | None = None,
                 ) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self.stats = SchedulerStats()
        #: called after every quantum with the scheduler (hang detection)
        self.watchdog = watchdog
        self.lanes: list = []
        self.channels: list[TokenChannel] = []
        self._live: dict[int, object] = {}
        self._bound = False

    # -- stepwise API ---------------------------------------------------------

    def bind(self, lanes: list) -> "LockstepScheduler":
        """Attach lanes (one token channel each) without running them."""
        self.lanes = list(lanes)
        self.channels = [TokenChannel(capacity=1) for _ in self.lanes]
        self._live = {i: lane for i, lane in enumerate(self.lanes)}
        self._bound = True
        return self

    @property
    def done(self) -> bool:
        return self._bound and not self._live

    @property
    def live_lanes(self) -> list[int]:
        """Indices of lanes that still have work, in deterministic order."""
        return sorted(self._live)

    def next_lane(self) -> int | None:
        """Index of the lane the next :meth:`step` will advance."""
        if not self._live:
            return None
        live = self._live
        return min(live, key=lambda i: (live[i].local_time(), i))

    def step(self) -> bool:
        """Advance the least-advanced live lane by one quantum.

        Returns True if a lane was advanced, False when all lanes are done.
        One token flows through the advanced lane's channel: produced to
        grant the quantum, consumed when the advance completes, keeping
        every channel balanced at quantum boundaries.
        """
        if not self._bound:
            raise RuntimeError("scheduler not bound to lanes; call bind()")
        idx = self.next_lane()
        if idx is None:
            return False
        live = self._live
        lane = live[idx]
        channel = self.channels[idx]
        channel.produce(1)
        target = lane.local_time() + self.quantum
        more = lane.advance(target)
        channel.consume(1)
        self.stats.quanta += 1
        if live:
            times = [l.local_time() for l in live.values()]
            skew = max(times) - min(times)
            if skew > self.stats.max_skew:
                self.stats.max_skew = skew
        if not more:
            del live[idx]
        if self.watchdog is not None:
            self.watchdog(self)
        return True

    def run(self, lanes: list | None = None) -> None:
        """Run all lanes to completion under bounded skew."""
        if lanes is not None:
            self.bind(lanes)
        while self.step():
            pass

    # -- checkpoint support ---------------------------------------------------

    def state(self) -> dict:
        """Serializable scheduler position (lane progress lives in lanes)."""
        return {
            "quantum": self.quantum,
            "quanta": self.stats.quanta,
            "max_skew": self.stats.max_skew,
            "live": sorted(self._live),
            "channels": [ch.state() for ch in self.channels],
        }

    def load_state(self, state: dict) -> None:
        """Restore a position captured by :meth:`state` (lanes already bound)."""
        if not self._bound:
            raise RuntimeError("bind() lanes before loading scheduler state")
        self.quantum = int(state["quantum"])
        self.stats.quanta = int(state["quanta"])
        self.stats.max_skew = int(state["max_skew"])
        chans = state["channels"]
        if len(chans) != len(self.channels):
            raise ValueError(
                f"scheduler state has {len(chans)} channels for "
                f"{len(self.channels)} lanes")
        for ch, st in zip(self.channels, chans):
            ch.load_state(st)
        live = set(int(i) for i in state["live"])
        self._live = {i: lane for i, lane in enumerate(self.lanes) if i in live}
