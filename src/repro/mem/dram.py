"""DRAM timing models: DDR3 FR-FCFS (FireSim's model), DDR4, and LPDDR4.

FireSim ships only a DDR3-2000 FR-FCFS quad-rank model; the real boards use
LPDDR4-2666 (Banana Pi) and 4-channel DDR4-3200 (MILK-V).  The paper
identifies this mismatch as the dominant source of error on memory-bound
workloads, so the DRAM models here are mechanistic: per-channel command-bus
occupancy, per-bank row-buffer state machines, FR-FCFS-style row-hit
prioritisation, and data-bus transfer time derived from the channel width
and data rate.

All external times are **core clock cycles**; device parameters are given
in nanoseconds and converted using the core frequency, so raising the core
clock (the paper's "Fast Banana Pi" trick) correctly makes DRAM *relatively*
slower.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .timeline import OccupancyTimeline

__all__ = [
    "DRAMTimings",
    "DRAMConfig",
    "DRAM",
    "DRAMStats",
    "DDR3_2000_QUAD_RANK",
    "DDR4_3200_4CH",
    "LPDDR4_2666_DUAL",
]


@dataclass(frozen=True)
class DRAMTimings:
    """Device timing parameters in nanoseconds."""

    tCAS: float = 13.75   #: column access (CL)
    tRCD: float = 13.75   #: row-to-column delay
    tRP: float = 13.75    #: row precharge
    tRAS: float = 35.0    #: row active minimum
    tCTRL: float = 5.0    #: controller/PHY overhead per request
    tREFI: float = 7800.0 #: average refresh interval
    tRFC: float = 350.0   #: refresh cycle time (all banks busy)


@dataclass(frozen=True)
class DRAMConfig:
    """Organization plus per-channel data-path parameters."""

    name: str = "ddr3"
    channels: int = 1
    ranks: int = 4
    banks_per_rank: int = 8
    row_bytes: int = 8192
    data_rate_mtps: float = 2000.0  #: mega-transfers per second per pin
    channel_bits: int = 64          #: data-bus width per channel
    timings: DRAMTimings = DRAMTimings()
    open_page: bool = True          #: open-page (row kept open) policy
    #: max in-flight requests per channel before queueing delay kicks in
    queue_depth: int = 8

    def __post_init__(self) -> None:
        for name in ("channels", "ranks", "banks_per_rank", "row_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.data_rate_mtps <= 0 or self.channel_bits <= 0:
            raise ValueError("data rate and channel width must be positive")

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth in GB/s across channels."""
        return self.channels * self.channel_bits / 8 * self.data_rate_mtps / 1000.0

    def transfer_ns(self, bytes_: int) -> float:
        """Time to move *bytes_* over one channel's data bus."""
        return bytes_ * 8 / (self.channel_bits * self.data_rate_mtps * 1e6) * 1e9


#: FireSim's supported model: DDR3-2000, FR-FCFS, quad rank, one 64-bit channel
#: per memory channel instance (paper Table 5).
DDR3_2000_QUAD_RANK = DRAMConfig(
    name="DDR3-2000 FR-FCFS quad-rank",
    channels=1,
    ranks=4,
    banks_per_rank=8,
    data_rate_mtps=2000.0,
    channel_bits=64,
    timings=DRAMTimings(tCAS=13.75, tRCD=13.75, tRP=13.75, tRAS=35.0, tCTRL=6.0),
)

#: MILK-V Pioneer external memory: 4-channel DDR4-3200.
DDR4_3200_4CH = DRAMConfig(
    name="DDR4-3200 4-channel",
    channels=4,
    ranks=2,
    banks_per_rank=16,
    data_rate_mtps=3200.0,
    channel_bits=64,
    timings=DRAMTimings(tCAS=13.75, tRCD=13.75, tRP=13.75, tRAS=32.0, tCTRL=4.0),
)

#: Banana Pi external memory: dual 32-bit LPDDR4-2666.
LPDDR4_2666_DUAL = DRAMConfig(
    name="LPDDR4-2666 dual 32-bit",
    channels=2,
    ranks=1,
    banks_per_rank=8,
    data_rate_mtps=2666.0,
    channel_bits=32,
    timings=DRAMTimings(tCAS=15.0, tRCD=15.0, tRP=15.0, tRAS=34.0, tCTRL=5.0),
)


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    queue_wait_cycles: int = 0
    refresh_stall_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def reset(self) -> None:
        self.__init__()


class DRAM:
    """Mechanistic DRAM channel/bank timing model.

    Parameters
    ----------
    cfg:
        Device organization and timings.
    core_ghz:
        Frequency of the clock in which callers express time; all returned
        times are in cycles of that clock.
    line_bytes:
        Request granularity (cache line).
    """

    def __init__(self, cfg: DRAMConfig, core_ghz: float, line_bytes: int = 64) -> None:
        if core_ghz <= 0:
            raise ValueError("core_ghz must be positive")
        self.cfg = cfg
        self.core_ghz = float(core_ghz)
        self.line_bytes = int(line_bytes)
        self.stats = DRAMStats()
        nbanks = cfg.channels * cfg.ranks * cfg.banks_per_rank
        # per-bank state
        self._open_row = [-1] * nbanks
        self._bank_ready = [0.0] * nbanks
        # per-channel data-bus occupancy (interval-tracked for skewed
        # multi-tile request streams)
        self._chan_bus = [OccupancyTimeline() for _ in range(cfg.channels)]
        self._inflight: list[list[float]] = [[] for _ in range(cfg.channels)]
        # precomputed cycle counts
        ghz = self.core_ghz
        t = cfg.timings
        self._cCAS = t.tCAS * ghz
        self._cRCD = t.tRCD * ghz
        self._cRP = t.tRP * ghz
        self._cRAS = t.tRAS * ghz
        self._cCTRL = t.tCTRL * ghz
        self._cREFI = t.tREFI * ghz
        self._cRFC = t.tRFC * ghz
        self._cXFER = cfg.transfer_ns(self.line_bytes) * ghz
        self._banks_per_chan = cfg.ranks * cfg.banks_per_rank

    # -- address mapping ------------------------------------------------------

    def map_address(self, addr: int) -> tuple[int, int, int]:
        """Map a byte address to (channel, global bank index, row).

        Channel interleave at line granularity (maximises channel-level
        parallelism for streams, like real controllers); bank interleave at
        row granularity.
        """
        cfg = self.cfg
        line = addr // self.line_bytes
        chan = line % cfg.channels
        row_global = addr // (cfg.row_bytes * cfg.channels)
        bank_in_chan = row_global % self._banks_per_chan
        row = row_global // self._banks_per_chan
        return chan, chan * self._banks_per_chan + bank_in_chan, row

    # -- access -----------------------------------------------------------

    def access(self, addr: int, time: int, is_store: bool = False) -> int:
        """Service a line request at *time*; return completion time (cycles)."""
        st = self.stats
        if is_store:
            st.writes += 1
        else:
            st.reads += 1
        chan, bank, row = self.map_address(int(addr))

        start = time + self._cCTRL

        # queueing: bound channel-level parallelism
        q = self._inflight[chan]
        if q:
            live = [t for t in q if t > start]
            if len(live) >= self.cfg.queue_depth:
                live.sort()
                wait_until = live[-self.cfg.queue_depth]
                st.queue_wait_cycles += int(wait_until - start)
                start = wait_until
            self._inflight[chan] = live

        # refresh: every tREFI the rank is unavailable for tRFC; commands
        # reaching the device inside the window wait it out (and the
        # refresh closes the open row).  Checked at device time (after
        # queueing); the k=0 window is skipped so runs beginning at t=0
        # are not artificially phase-aligned with a refresh.
        if self._cREFI > 0 and start >= self._cREFI:
            since = start % self._cREFI
            if since < self._cRFC:
                st.refresh_stall_cycles += int(self._cRFC - since)
                start += self._cRFC - since
                self._open_row[bank] = -1
        # row-buffer state machine (FR-FCFS: row hits bypass bank busy
        # precharge serialisation but still share the data bus)
        if self.cfg.open_page and self._open_row[bank] == row:
            st.row_hits += 1
            ready = max(start, self._bank_ready[bank] - self._cRAS)  # CAS can overlap tRAS
            access_done = max(ready, start) + self._cCAS
        else:
            st.row_misses += 1
            ready = max(start, self._bank_ready[bank])
            pre = self._cRP if self._open_row[bank] != -1 else 0.0
            access_done = ready + pre + self._cRCD + self._cCAS
            self._open_row[bank] = row if self.cfg.open_page else -1
            self._bank_ready[bank] = access_done + (0.0 if self.cfg.open_page else self._cRP)
        self._bank_ready[bank] = max(self._bank_ready[bank], access_done)

        # data-bus transfer (serialised per channel)
        xfer_start = self._chan_bus[chan].reserve(access_done, self._cXFER)
        finish = xfer_start + self._cXFER
        self._inflight[chan].append(finish)
        if len(self._inflight[chan]) > 4 * self.cfg.queue_depth:
            self._inflight[chan] = [t for t in self._inflight[chan] if t > finish - 1]

        # writes complete at the controller; the caller shouldn't wait for
        # the array update, but the bus/bank occupancy above still counts.
        if is_store:
            return int(start + self._cCTRL)
        return int(finish)

    # -- introspection ------------------------------------------------------

    @property
    def idle_latency_cycles(self) -> float:
        """Unloaded row-miss latency in core cycles (sanity metric)."""
        return self._cCTRL + self._cRCD + self._cCAS + self._cXFER

    def reset(self) -> None:
        nbanks = self.cfg.channels * self._banks_per_chan
        self._open_row = [-1] * nbanks
        self._bank_ready = [0.0] * nbanks
        self._chan_bus = [OccupancyTimeline() for _ in range(self.cfg.channels)]
        self._inflight = [[] for _ in range(self.cfg.channels)]
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"DRAM({self.cfg.name}, {self.cfg.peak_bandwidth_gbps:.1f} GB/s peak, "
            f"idle={self.idle_latency_cycles:.0f} cyc @ {self.core_ghz} GHz)"
        )


def scale_to_frequency(cfg: DRAMConfig, factor: float) -> DRAMConfig:
    """Return a config whose data rate is scaled by *factor* (for ablations)."""
    return replace(cfg, data_rate_mtps=cfg.data_rate_mtps * factor,
                   name=f"{cfg.name} x{factor:g}")
