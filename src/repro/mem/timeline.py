"""Occupancy timelines: busy-interval tracking for shared resources.

Shared components (system bus, L2 banks, DRAM data buses) receive requests
from tiles whose local clocks are *skewed* — the MPI scheduler lets one
rank run a compute chunk ahead of another, so reservation requests do not
arrive in time order.  A single "next-free" high-water mark would charge a
lagging rank phantom contention against reservations made far in its
future; the timeline instead keeps the actual busy intervals and books
each request into the earliest real gap at or after its own time.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["OccupancyTimeline"]


class OccupancyTimeline:
    """Busy intervals of one serially-occupied resource.

    ``reserve(time, duration)`` books the earliest gap of *duration* that
    starts at or after *time* and returns the start.  The interval list is
    pruned from the front once it exceeds ``max_intervals`` (ancient
    history; by then every tile's clock has moved past it).
    """

    __slots__ = ("_starts", "_ends", "max_intervals")

    def __init__(self, max_intervals: int = 512) -> None:
        if max_intervals < 8:
            raise ValueError("max_intervals must be >= 8")
        self._starts: list[float] = []
        self._ends: list[float] = []
        self.max_intervals = max_intervals

    def reserve(self, time: float, duration: float) -> float:
        """Book *duration* units at the earliest feasible start >= *time*."""
        if duration <= 0:
            return float(time)
        starts, ends = self._starts, self._ends
        t = float(time)
        i = bisect_left(starts, t)
        # the interval before the insertion point may still cover t
        if i > 0 and ends[i - 1] > t:
            t = ends[i - 1]
        # walk forward until a gap of `duration` opens
        while i < len(starts) and starts[i] < t + duration:
            if ends[i] > t:
                t = ends[i]
            i += 1
        starts.insert(i, t)
        ends.insert(i, t + duration)
        if len(starts) > self.max_intervals:
            drop = len(starts) - self.max_intervals
            del starts[:drop]
            del ends[:drop]
        return t

    def busy_until(self) -> float:
        """End of the latest reservation (0.0 when empty)."""
        return self._ends[-1] if self._ends else 0.0

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    def __len__(self) -> int:
        return len(self._starts)
