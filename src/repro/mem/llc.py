"""Last-level cache models.

FireSim's LLC model is deliberately simplified: "it behaves like an SRAM
and does not account for detailed cache system latencies such as tag access
delay or data retrieval latency" (paper §4).  :class:`SimplifiedLLC`
reproduces that — exact tag state, but an idealised constant (low) latency
on hits and no tag-lookup charge on the miss path.

:class:`RealisticLLC` is a normal set-associative level with representative
tag+data latencies, used by the silicon models (the SG2042 has a 64 MiB
LLC) and by the ablation bench that asks how much of the MIP anomaly the
simplified model explains.
"""

from __future__ import annotations

from .cache import Cache, CacheConfig

__all__ = ["SimplifiedLLC", "RealisticLLC", "make_llc_slices", "InterleavedLLC"]


class SimplifiedLLC(Cache):
    """FireSim-style SRAM-like LLC: tags are exact, timing is idealised."""

    def __init__(self, size_bytes: int, next_level, line_bytes: int = 64,
                 ways: int = 8, latency: int = 4, name: str = "llc") -> None:
        sets = size_bytes // (ways * line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"LLC size {size_bytes} with {ways} ways / {line_bytes}B lines "
                f"gives a non-power-of-two set count {sets}"
            )
        cfg = CacheConfig(
            sets=sets, ways=ways, line_bytes=line_bytes,
            hit_latency=latency, banks=1, mshrs=16, cycle_time=1,
        )
        super().__init__(cfg, next_level, name=name)


class RealisticLLC(Cache):
    """LLC with representative tag/data access latencies and banking."""

    def __init__(self, size_bytes: int, next_level, line_bytes: int = 64,
                 ways: int = 16, latency: int = 38, banks: int = 8,
                 name: str = "llc") -> None:
        sets = size_bytes // (ways * line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("LLC geometry must give a power-of-two set count")
        cfg = CacheConfig(
            sets=sets, ways=ways, line_bytes=line_bytes,
            hit_latency=latency, banks=banks, mshrs=32, cycle_time=2,
        )
        super().__init__(cfg, next_level, name=name)


class InterleavedLLC:
    """Address-interleaved group of LLC slices, one per memory channel.

    The paper models the MILK-V's 64 MiB LLC "as four 16 MiB LLCs, each
    connected to one of FireSim's four memory channels"; this class
    reproduces that arrangement.
    """

    def __init__(self, slices) -> None:
        if not slices:
            raise ValueError("need at least one LLC slice")
        self.slices = list(slices)
        self._line = self.slices[0].cfg.line_bytes

    def access(self, addr: int, time: int, is_store: bool = False) -> int:
        idx = (addr // self._line) % len(self.slices)
        return self.slices[idx].access(addr, time, is_store)

    @property
    def stats_accesses(self) -> int:
        return sum(s.stats.accesses for s in self.slices)

    @property
    def stats_misses(self) -> int:
        return sum(s.stats.misses for s in self.slices)

    def flush(self) -> None:
        for s in self.slices:
            s.flush()

    def __repr__(self) -> str:
        total = sum(s.cfg.size_bytes for s in self.slices) // (1024 * 1024)
        return f"InterleavedLLC({len(self.slices)} slices, {total} MiB total)"


def make_llc_slices(total_bytes: int, nslices: int, drams, simplified: bool = True,
                    latency: int = 4) -> InterleavedLLC:
    """Build *nslices* LLC slices, slice *i* backed by ``drams[i]``."""
    if len(drams) != nslices:
        raise ValueError("need one DRAM backing per slice")
    per = total_bytes // nslices
    cls = SimplifiedLLC if simplified else RealisticLLC
    kwargs = {"latency": latency} if simplified else {}
    return InterleavedLLC(
        [cls(per, drams[i], name=f"llc{i}", **kwargs) for i in range(nslices)]
    )
