"""Hardware prefetcher models.

The commercial cores the paper measures (SpacemiT K1, T-Head C920 in the
SG2042) ship L1/L2 hardware stride prefetchers; the Rocket and BOOM tiles
FireSim instantiates have none.  That asymmetry is one of the mechanistic
reasons the silicon outruns the simulation on streaming, bandwidth-bound
kernels (DP*, MM_st, NPB IS/MG) while pointer-chasing kernels (MD, MM) see
no benefit — so the silicon models attach a :class:`StridePrefetcher` and
the FireSim models do not.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PrefetcherConfig", "StridePrefetcher", "PrefetchStats"]


@dataclass(frozen=True)
class PrefetcherConfig:
    """Reference-prediction-table stride prefetcher parameters."""

    table_entries: int = 16
    degree: int = 2        #: lines fetched ahead per trigger
    min_confidence: int = 2

    def __post_init__(self) -> None:
        if self.table_entries <= 0 or self.degree <= 0:
            raise ValueError("table_entries and degree must be positive")


@dataclass
class PrefetchStats:
    triggers: int = 0
    issued: int = 0

    def reset(self) -> None:
        self.__init__()


class StridePrefetcher:
    """Classic reference-prediction-table stride prefetcher.

    Streams are tracked per 4 KiB region.  On a confident stride match the
    prefetcher installs the next ``degree`` lines into *cache* via its
    ``warm``-with-timing path: the fill occupies the next level (so
    prefetch traffic consumes real bandwidth) but the requesting core does
    not wait.
    """

    def __init__(self, cfg: PrefetcherConfig, cache) -> None:
        self.cfg = cfg
        self.cache = cache
        self.stats = PrefetchStats()
        # region -> (last_line, stride, confidence); insertion-ordered LRU
        self._table: dict[int, tuple[int, int, int]] = {}
        self._line = cache.cfg.line_bytes

    def observe(self, addr: int, time: int) -> None:
        """Feed a demand access; may issue prefetches into the cache."""
        line = addr // self._line
        region = addr >> 12
        entry = self._table.pop(region, None)
        if entry is None:
            self._table[region] = (line, 0, 0)
        else:
            last, stride, conf = entry
            new_stride = line - last
            if new_stride == 0:
                self._table[region] = (line, stride, conf)
            elif new_stride == stride:
                conf = min(conf + 1, 4)
                self._table[region] = (line, stride, conf)
                if conf >= self.cfg.min_confidence:
                    self.stats.triggers += 1
                    for k in range(1, self.cfg.degree + 1):
                        target = (line + stride * k) * self._line
                        if not self.cache.contains(target):
                            self.stats.issued += 1
                            self.cache.access(target, time, False)
            else:
                self._table[region] = (line, new_stride, 1)
        if len(self._table) > self.cfg.table_entries:
            # evict the oldest stream (dict preserves insertion order)
            self._table.pop(next(iter(self._table)))
