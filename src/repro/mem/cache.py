"""Set-associative cache timing model with banks, MSHRs, and write-back.

All times are in *core clock cycles*.  A cache forwards misses to a
``next_level`` object exposing ``access(addr, time, is_store) -> int``
(finish time); the chain bottoms out at a DRAM model from
:mod:`repro.mem.dram`.

The model tracks true tag state (hits and misses are exact for the access
stream it sees), per-bank busy times (bank conflicts), a finite MSHR pool
(miss-level parallelism limit), and dirty-victim writebacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .timeline import OccupancyTimeline

__all__ = ["CacheConfig", "Cache", "CacheStats", "MemoryPort"]


class MemoryPort:
    """Terminal memory model with a fixed latency (for tests/standalone)."""

    def __init__(self, latency: int = 100) -> None:
        self.latency = int(latency)
        self.accesses = 0

    def access(self, addr: int, time: int, is_store: bool = False) -> int:
        self.accesses += 1
        return time + self.latency


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``mshrs`` bounds the number of outstanding line fills (miss-level
    parallelism); ``banks`` models port conflicts on the data array.
    """

    sets: int = 64
    ways: int = 8
    line_bytes: int = 64
    hit_latency: int = 2
    banks: int = 1
    mshrs: int = 4
    write_back: bool = True
    #: cycles a bank stays busy per access (1 = fully pipelined)
    cycle_time: int = 1
    #: victim selection: "lru" (exact), "plru" (tree pseudo-LRU, what most
    #: commercial L1s implement), or "random"
    replacement: str = "lru"

    def __post_init__(self) -> None:
        for name in ("sets", "ways", "line_bytes", "banks", "mshrs"):
            v = getattr(self, name)
            if v <= 0:
                raise ValueError(f"{name} must be positive, got {v}")
        if self.sets & (self.sets - 1):
            raise ValueError("sets must be a power of two")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if self.replacement not in ("lru", "plru", "random"):
            raise ValueError(f"unknown replacement {self.replacement!r}")
        if self.replacement == "plru" and self.ways & (self.ways - 1):
            raise ValueError("tree-PLRU requires a power-of-two way count")

    @property
    def size_bytes(self) -> int:
        return self.sets * self.ways * self.line_bytes


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    mshr_merges: int = 0
    mshr_stall_cycles: int = 0
    bank_conflict_cycles: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.__init__()


_INVALID = np.int64(-1)


class Cache:
    """One level of a write-back, write-allocate set-associative cache."""

    def __init__(self, cfg: CacheConfig, next_level, name: str = "cache") -> None:
        self.cfg = cfg
        self.next_level = next_level
        self.name = name
        self.stats = CacheStats()
        self._line_shift = cfg.line_bytes.bit_length() - 1
        self._set_mask = cfg.sets - 1
        # tag state: [sets, ways]
        self._tags = np.full((cfg.sets, cfg.ways), _INVALID, dtype=np.int64)
        self._dirty = np.zeros((cfg.sets, cfg.ways), dtype=bool)
        # LRU stamps: larger = more recently used
        self._lru = np.zeros((cfg.sets, cfg.ways), dtype=np.int64)
        self._use_counter = 0
        # tree-PLRU: one bit per internal node, packed per set
        self._plru = np.zeros(cfg.sets, dtype=np.int64)
        self._rng_state = 0x9E3779B9  # deterministic LCG for "random"
        # per-bank occupancy (interval-tracked: shared caches see
        # requests from mutually-skewed tile clocks)
        self._bank_free = [OccupancyTimeline() for _ in range(cfg.banks)]
        # outstanding fills: line_addr -> fill completion time (pruned lazily)
        self._mshr: dict[int, int] = {}

    # -- helpers ----------------------------------------------------------

    def _index(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line

    def _prune_mshrs(self, now: int) -> None:
        if len(self._mshr) > 2 * self.cfg.mshrs:
            done = [a for a, t in self._mshr.items() if t <= now]
            for a in done:
                del self._mshr[a]

    def _touch(self, set_idx: int, way: int) -> None:
        self._use_counter += 1
        self._lru[set_idx, way] = self._use_counter
        if self.cfg.replacement == "plru":
            # walk root->leaf, pointing each node away from this way
            bits = int(self._plru[set_idx])
            node = 0
            span = self.cfg.ways
            lo = 0
            while span > 1:
                half = span // 2
                if way < lo + half:
                    bits |= 1 << node        # point right (away)
                    node = 2 * node + 1
                    span = half
                else:
                    bits &= ~(1 << node)     # point left (away)
                    node = 2 * node + 2
                    lo += half
                    span = half
            self._plru[set_idx] = bits

    def _victim(self, set_idx: int) -> int:
        """Pick a victim way under the configured replacement policy."""
        cfg = self.cfg
        row = self._tags[set_idx]
        invalid = np.nonzero(row == _INVALID)[0]
        if invalid.size:
            return int(invalid[0])
        if cfg.replacement == "lru":
            return int(np.argmin(self._lru[set_idx]))
        if cfg.replacement == "plru":
            bits = int(self._plru[set_idx])
            node = 0
            span = cfg.ways
            lo = 0
            while span > 1:
                half = span // 2
                if bits & (1 << node):       # pointing right
                    node = 2 * node + 2
                    lo += half
                else:
                    node = 2 * node + 1
                span = half
            return lo
        # random: xorshift for speed and determinism
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rng_state = x
        return x % cfg.ways

    # -- main access path ---------------------------------------------------

    def access(self, addr: int, time: int, is_store: bool = False) -> int:
        """Access *addr* at *time*; return the completion time in cycles."""
        cfg = self.cfg
        st = self.stats
        st.accesses += 1
        set_idx, line = self._index(addr)

        # bank arbitration
        bank = line % cfg.banks
        start = self._bank_free[bank].reserve(time, cfg.cycle_time)
        if start > time:
            st.bank_conflict_cycles += int(start - time)

        row = self._tags[set_idx]
        hit_ways = np.nonzero(row == line)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self._touch(set_idx, way)
            if is_store:
                if cfg.write_back:
                    self._dirty[set_idx, way] = True
                else:
                    # write-through: forward the store, don't block the core
                    self.next_level.access(addr, start + cfg.hit_latency, True)
            st.hits += 1
            done = start + cfg.hit_latency
            # the tag is installed at miss time, but data arrives with the
            # fill: a hit on an in-flight line waits for the fill
            pending = self._mshr.get(line << self._line_shift)
            if pending is not None and pending > done:
                return pending
            return done

        # ---- miss ----
        st.misses += 1
        tag_time = start + cfg.hit_latency  # tag check before going out

        line_base = line << self._line_shift
        pending = self._mshr.get(line_base, 0)
        if pending > tag_time:
            # secondary miss to an in-flight line: merge into existing MSHR
            st.mshr_merges += 1
            fill_time = pending
        else:
            # primary miss: need a free MSHR
            in_flight = [t for t in self._mshr.values() if t > tag_time]
            if len(in_flight) >= cfg.mshrs:
                wait_until = min(in_flight)
                st.mshr_stall_cycles += wait_until - tag_time
                tag_time = wait_until
            fill_time = self.next_level.access(line_base, tag_time, False)
            self._mshr[line_base] = fill_time
            self._prune_mshrs(tag_time)

        # victim selection & writeback
        way = self._victim(set_idx)
        if cfg.write_back and self._dirty[set_idx, way] and self._tags[set_idx, way] != _INVALID:
            st.writebacks += 1
            victim_addr = int(self._tags[set_idx, way]) << self._line_shift
            # writeback consumes next-level bandwidth but doesn't block the fill
            self.next_level.access(victim_addr, fill_time, True)
        self._tags[set_idx, way] = line
        self._dirty[set_idx, way] = bool(is_store and cfg.write_back)
        self._touch(set_idx, way)
        if is_store and not cfg.write_back:
            self.next_level.access(addr, fill_time, True)
        return fill_time

    # -- introspection ------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True if the line holding *addr* is currently resident."""
        set_idx, line = self._index(addr)
        return bool(np.any(self._tags[set_idx] == line))

    def flush(self) -> None:
        """Invalidate all lines (does not model writeback traffic)."""
        self._tags.fill(_INVALID)
        self._dirty.fill(False)
        self._lru.fill(0)
        self._plru.fill(0)
        self._mshr.clear()

    def warm(self, addrs) -> None:
        """Install lines for *addrs* without timing side effects."""
        for a in np.asarray(addrs, dtype=np.int64).ravel():
            set_idx, line = self._index(int(a))
            row = self._tags[set_idx]
            hit = np.nonzero(row == line)[0]
            way = int(hit[0]) if hit.size else self._victim(set_idx)
            self._tags[set_idx, way] = line
            self._touch(set_idx, way)

    def resident_lines(self) -> int:
        return int(np.count_nonzero(self._tags != _INVALID))

    def __repr__(self) -> str:
        c = self.cfg
        return (
            f"Cache({self.name}: {c.size_bytes // 1024} KiB, {c.sets}x{c.ways}, "
            f"{c.banks} banks, lat={c.hit_latency})"
        )
