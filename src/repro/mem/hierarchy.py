"""Memory-hierarchy assembly: per-tile L1s/TLBs over a shared uncore.

Layout mirrors the paper's systems (Tables 4/5):

* per tile: L1I + L1D (+ I/D TLBs)
* shared: system bus -> banked L2 -> optional LLC (one slice per memory
  channel, FireSim-style) -> DRAM

The :class:`TilePort` is what the core timing models call into; the
:class:`Uncore` is shared between tiles, so multi-core contention appears
naturally in bus/L2-bank/DRAM-channel occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bus import BusConfig, SystemBus
from .cache import Cache, CacheConfig
from .coherence import SnoopDirectory
from .dram import DRAM, DRAMConfig
from .llc import InterleavedLLC, RealisticLLC, SimplifiedLLC
from .tlb import TLB, TLBConfig, TwoLevelTLB

__all__ = ["HierarchyConfig", "Uncore", "TilePort", "build_uncore"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Full description of a system's memory hierarchy."""

    l1i: CacheConfig = CacheConfig(sets=64, ways=8, hit_latency=1)
    l1d: CacheConfig = CacheConfig(sets=64, ways=8, hit_latency=2)
    l2: CacheConfig = CacheConfig(sets=1024, ways=8, hit_latency=14, banks=1, mshrs=8)
    bus: BusConfig = BusConfig(width_bits=64)
    dram: DRAMConfig = DRAMConfig()
    itlb: TLBConfig = TLBConfig(entries=32)
    dtlb: TLBConfig = TLBConfig(entries=32)
    #: optional BOOM-style L2 TLB (entries; None = absent)
    l2_tlb_entries: int | None = None
    #: LLC size in bytes; None/0 = no LLC (Rocket systems have none)
    llc_bytes: int | None = None
    llc_simplified: bool = True      #: FireSim SRAM-like LLC vs realistic
    llc_slices: int = 1              #: one slice per memory channel
    llc_latency: int = 4             #: hit latency of the simplified LLC
    coherence: bool = True
    core_ghz: float = 1.6


class Uncore:
    """Shared portion of the hierarchy: bus, L2, LLC slices, DRAM."""

    def __init__(self, cfg: HierarchyConfig) -> None:
        self.cfg = cfg
        # DRAM backing: one model per LLC slice, or a single multi-channel
        # model when there is no LLC.
        if cfg.llc_bytes:
            nsl = cfg.llc_slices
            if cfg.dram.channels % nsl:
                raise ValueError(
                    f"{cfg.dram.channels} DRAM channels cannot split over "
                    f"{nsl} LLC slices"
                )
            from dataclasses import replace

            per_chan = replace(cfg.dram, channels=cfg.dram.channels // nsl)
            self.drams = [DRAM(per_chan, cfg.core_ghz) for _ in range(nsl)]
            per_slice = cfg.llc_bytes // nsl
            cls_kwargs = (
                (SimplifiedLLC, {"latency": cfg.llc_latency})
                if cfg.llc_simplified
                else (RealisticLLC, {})
            )
            cls, kwargs = cls_kwargs
            self.llc = InterleavedLLC(
                [cls(per_slice, self.drams[i], name=f"llc{i}", **kwargs)
                 for i in range(nsl)]
            )
            below_l2 = self.llc
        else:
            self.drams = [DRAM(cfg.dram, cfg.core_ghz)]
            self.llc = None
            below_l2 = self.drams[0]
        self.l2 = Cache(cfg.l2, below_l2, name="l2")
        self.bus = SystemBus(cfg.bus)
        self.directory = SnoopDirectory() if cfg.coherence else None
        self._line = cfg.l1d.line_bytes

    def access(self, tile: int, addr: int, time: int, is_store: bool) -> int:
        """L1-miss path: bus -> L2 -> (LLC ->) DRAM. Returns finish time."""
        t = self.bus.transfer(time, self._line)
        if self.directory is not None:
            t += self.directory.observe(tile, addr // self._line, is_store)
        return self.l2.access(addr, t, is_store)

    @property
    def dram(self) -> DRAM:
        """Primary DRAM model (for stats; slice 0 when interleaved)."""
        return self.drams[0]

    def dram_stats(self) -> dict[str, int]:
        return {
            "reads": sum(d.stats.reads for d in self.drams),
            "writes": sum(d.stats.writes for d in self.drams),
            "row_hits": sum(d.stats.row_hits for d in self.drams),
            "row_misses": sum(d.stats.row_misses for d in self.drams),
        }

    def reset_stats(self) -> None:
        self.l2.stats.reset()
        self.bus.stats.reset()
        for d in self.drams:
            d.stats.reset()


class TilePort:
    """Per-tile view of the hierarchy: private L1s and TLBs over the uncore."""

    def __init__(self, uncore: Uncore, tile_id: int = 0) -> None:
        cfg = uncore.cfg
        self.uncore = uncore
        self.tile_id = tile_id

        class _UncoreShim:
            """Adapts Uncore.access to the Cache next_level protocol."""

            def __init__(shim) -> None:
                shim.access = lambda addr, time, is_store=False: uncore.access(
                    tile_id, addr, time, is_store
                )

        shim = _UncoreShim()
        self.l1i = Cache(cfg.l1i, shim, name=f"tile{tile_id}.l1i")
        self.l1d = Cache(cfg.l1d, shim, name=f"tile{tile_id}.l1d")
        self.itlb = TLB(cfg.itlb, name=f"tile{tile_id}.itlb")
        if cfg.l2_tlb_entries:
            self.dtlb: TLB | TwoLevelTLB = TwoLevelTLB(
                cfg.dtlb,
                TLBConfig(entries=cfg.l2_tlb_entries, assoc=1),
                name=f"tile{tile_id}.dtlb",
            )
        else:
            self.dtlb = TLB(cfg.dtlb, name=f"tile{tile_id}.dtlb")
        # page-table walks read through the uncore (they hit in L2 mostly)
        self._walker = lambda addr, time: uncore.l2.access(addr, time, False)
        self.prefetcher = None

    def attach_prefetcher(self, prefetcher) -> None:
        """Attach a hardware prefetcher observing this tile's data accesses
        (silicon models have one; FireSim's Rocket/BOOM tiles do not)."""
        self.prefetcher = prefetcher

    # -- core-facing API ------------------------------------------------------

    def dload(self, addr: int, time: int) -> int:
        t = self.dtlb.translate(addr, time, self._walker)
        done = self.l1d.access(addr, t, is_store=False)
        if self.prefetcher is not None:
            self.prefetcher.observe(addr, t)
        return done

    def dstore(self, addr: int, time: int) -> int:
        t = self.dtlb.translate(addr, time, self._walker)
        done = self.l1d.access(addr, t, is_store=True)
        if self.prefetcher is not None:
            self.prefetcher.observe(addr, t)
        return done

    def ifetch(self, addr: int, time: int) -> int:
        t = self.itlb.translate(addr, time, self._walker)
        return self.l1i.access(addr, t, is_store=False)

    def flush(self) -> None:
        self.l1i.flush()
        self.l1d.flush()
        self.itlb.flush()
        self.dtlb.flush()


def build_uncore(cfg: HierarchyConfig) -> Uncore:
    """Construct the shared uncore for a system."""
    return Uncore(cfg)
