"""System-bus model: width-limited, arbitrated transfer between cache levels.

The paper's Rocket2 / Banana Pi Sim Model configurations widen the system
bus from 64 to 128 bits (Table 4); the bus model makes that knob visible as
transfer beats per cache line plus contention between tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from .timeline import OccupancyTimeline

__all__ = ["BusConfig", "SystemBus", "BusStats"]


@dataclass(frozen=True)
class BusConfig:
    width_bits: int = 64
    #: bus clock as a fraction of the core clock (1.0 = same domain)
    clock_ratio: float = 1.0
    #: fixed arbitration/propagation latency in core cycles
    arbitration_latency: int = 1

    def __post_init__(self) -> None:
        if self.width_bits <= 0 or self.width_bits % 8:
            raise ValueError("width_bits must be a positive multiple of 8")
        if self.clock_ratio <= 0:
            raise ValueError("clock_ratio must be positive")

    def beats(self, bytes_: int) -> int:
        """Number of bus beats to move *bytes_*."""
        per_beat = self.width_bits // 8
        return -(-bytes_ // per_beat)


@dataclass
class BusStats:
    transfers: int = 0
    contention_cycles: int = 0

    def reset(self) -> None:
        self.__init__()


class SystemBus:
    """Single shared bus with per-transfer occupancy.

    ``transfer(time, bytes_)`` returns the completion time; back-to-back
    requests from multiple tiles queue behind each other, which is how
    multi-core memory contention appears below the private caches.
    """

    def __init__(self, cfg: BusConfig, name: str = "sbus") -> None:
        self.cfg = cfg
        self.name = name
        self.stats = BusStats()
        # interval timeline: requesters' clocks may be mutually skewed
        self._timeline = OccupancyTimeline()

    def transfer(self, time: int, bytes_: int) -> int:
        self.stats.transfers += 1
        beats = self.cfg.beats(bytes_)
        occupancy = beats / self.cfg.clock_ratio
        start = self._timeline.reserve(float(time), occupancy)
        if start > time:
            self.stats.contention_cycles += int(start - time)
        return int(start + self.cfg.arbitration_latency + occupancy)

    def reset(self) -> None:
        self._timeline.clear()
        self.stats.reset()

    def __repr__(self) -> str:
        return f"SystemBus({self.cfg.width_bits}-bit)"
