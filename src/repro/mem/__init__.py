"""Memory-hierarchy timing models: caches, TLBs, buses, LLCs, DRAM."""

from .bus import BusConfig, BusStats, SystemBus
from .cache import Cache, CacheConfig, CacheStats, MemoryPort
from .coherence import CoherenceStats, SnoopDirectory
from .dram import (
    DDR3_2000_QUAD_RANK,
    DDR4_3200_4CH,
    DRAM,
    DRAMConfig,
    DRAMStats,
    DRAMTimings,
    LPDDR4_2666_DUAL,
)
from .hierarchy import HierarchyConfig, TilePort, Uncore, build_uncore
from .llc import InterleavedLLC, RealisticLLC, SimplifiedLLC, make_llc_slices
from .tlb import TLB, TLBConfig, TLBStats, TwoLevelTLB

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "MemoryPort",
    "BusConfig",
    "BusStats",
    "SystemBus",
    "SnoopDirectory",
    "CoherenceStats",
    "DRAM",
    "DRAMConfig",
    "DRAMStats",
    "DRAMTimings",
    "DDR3_2000_QUAD_RANK",
    "DDR4_3200_4CH",
    "LPDDR4_2666_DUAL",
    "TLB",
    "TLBConfig",
    "TLBStats",
    "TwoLevelTLB",
    "SimplifiedLLC",
    "RealisticLLC",
    "InterleavedLLC",
    "make_llc_slices",
    "HierarchyConfig",
    "Uncore",
    "TilePort",
    "build_uncore",
]
