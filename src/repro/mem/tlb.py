"""TLB timing models.

Rocket and BOOM tiles have fully-associative 32-entry L1 I/D TLBs; BOOM
adds a 1024-entry direct-mapped L2 TLB (paper Table 5).  A TLB miss costs a
page-table walk, which we charge as a fixed walk latency plus a configurable
number of memory accesses through the data cache hierarchy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["TLBConfig", "TLB", "TwoLevelTLB", "TLBStats"]

PAGE_BYTES = 4096


@dataclass(frozen=True)
class TLBConfig:
    entries: int = 32
    assoc: int | None = None  #: None = fully associative
    page_bytes: int = PAGE_BYTES
    hit_latency: int = 0      #: folded into the cache access on a hit
    walk_latency: int = 20    #: fixed walk cost (cycles) on a miss
    walk_accesses: int = 2    #: page-table loads charged to the hierarchy

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("entries must be positive")
        if self.assoc is not None and not 0 < self.assoc <= self.entries:
            raise ValueError("assoc must be in (0, entries]")


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.__init__()


class TLB:
    """Single-level TLB; fully associative LRU or set-associative."""

    def __init__(self, cfg: TLBConfig, name: str = "tlb") -> None:
        self.cfg = cfg
        self.name = name
        self.stats = TLBStats()
        self._page_shift = cfg.page_bytes.bit_length() - 1
        assoc = cfg.assoc or cfg.entries
        self._num_sets = cfg.entries // assoc
        self._assoc = assoc
        # per-set LRU-ordered dicts of vpn -> True
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    def lookup(self, addr: int) -> bool:
        """Probe and update state; return True on hit."""
        self.stats.accesses += 1
        vpn = addr >> self._page_shift
        s = self._sets[vpn % self._num_sets]
        if vpn in s:
            s.move_to_end(vpn)
            return True
        self.stats.misses += 1
        if len(s) >= self._assoc:
            s.popitem(last=False)
        s[vpn] = True
        return False

    def translate(self, addr: int, time: int, walker=None) -> int:
        """Translate at *time*; return the time the translation is ready.

        *walker*, if given, is a callable ``(addr, time) -> finish_time``
        used for page-table loads (normally the L2 cache port).
        """
        if self.lookup(addr):
            return time + self.cfg.hit_latency
        t = time + self.cfg.walk_latency
        if walker is not None:
            # radix walk: dependent loads at page-table levels
            vpn = addr >> self._page_shift
            for level in range(self.cfg.walk_accesses):
                t = walker(0x8000_0000 + (vpn % 4096) * 8 + level * PAGE_BYTES, t)
        return t

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    def __repr__(self) -> str:
        kind = "FA" if self.cfg.assoc in (None, self.cfg.entries) else f"{self._assoc}-way"
        return f"TLB({self.name}: {self.cfg.entries} entries, {kind})"


class TwoLevelTLB:
    """BOOM-style L1 (fully assoc) + L2 (direct-mapped) TLB pair."""

    def __init__(self, l1: TLBConfig, l2: TLBConfig, name: str = "dtlb") -> None:
        self.l1 = TLB(l1, name=f"{name}.l1")
        self.l2 = TLB(l2, name=f"{name}.l2")
        self.l2_hit_latency = 4

    def translate(self, addr: int, time: int, walker=None) -> int:
        if self.l1.lookup(addr):
            return time + self.l1.cfg.hit_latency
        if self.l2.lookup(addr):
            return time + self.l2_hit_latency
        t = time + self.l1.cfg.walk_latency
        if walker is not None:
            vpn = addr >> (self.l1.cfg.page_bytes.bit_length() - 1)
            for level in range(self.l1.cfg.walk_accesses):
                t = walker(0x8000_0000 + (vpn % 4096) * 8 + level * PAGE_BYTES, t)
        return t

    @property
    def stats(self) -> TLBStats:
        return self.l1.stats

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
