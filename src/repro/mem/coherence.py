"""Lightweight MSI-style snoop directory for multi-tile timing.

The workloads in this study are MPI programs (private address spaces per
rank), so inter-tile sharing is limited to runtime structures; we still
model coherence because stores to lines cached by other tiles must pay an
invalidation round-trip through the shared level, and the paper's
multi-core runs depend on that path existing.

The directory tracks, per line, the set of tiles that have installed it
since the last write, and charges an invalidate latency when ownership
changes hands.  Entries are pruned lazily to bound memory.

Known limitation: the directory observes only traffic that reaches the
shared level.  Store *misses* fill with plain reads (not
read-for-ownership), and store *hits* on lines a tile already holds never
leave the L1 — so the invalidation charge fires only for writes the L1
actually forwards (write-through mode, dirty writebacks).  The study's
MPI workloads never share writable lines, so this path is intentionally
inert; implement RFO fills before using the directory for shared-memory
(OpenMP-style) workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SnoopDirectory", "CoherenceStats"]


@dataclass
class CoherenceStats:
    invalidations: int = 0
    ownership_changes: int = 0
    sharers_tracked: int = 0

    def reset(self) -> None:
        self.__init__()


class SnoopDirectory:
    """Tracks sharers per line and prices invalidations.

    ``observe(tile, line, is_store, time)`` returns extra latency (cycles)
    for coherence actions triggered by this access.
    """

    def __init__(self, invalidate_latency: int = 24, max_lines: int = 1 << 16) -> None:
        if invalidate_latency < 0:
            raise ValueError("invalidate_latency must be non-negative")
        self.invalidate_latency = int(invalidate_latency)
        self.max_lines = int(max_lines)
        self.stats = CoherenceStats()
        self._sharers: dict[int, int] = {}  # line -> bitmask of tile ids
        self._owner: dict[int, int] = {}    # line -> exclusive owner tile

    def observe(self, tile: int, line: int, is_store: bool) -> int:
        """Record an access; return added coherence latency."""
        bit = 1 << tile
        extra = 0
        sharers = self._sharers.get(line, 0)
        if is_store:
            others = sharers & ~bit
            if others:
                # invalidate all other sharers
                self.stats.invalidations += bin(others).count("1")
                extra = self.invalidate_latency
            prev_owner = self._owner.get(line)
            if prev_owner is not None and prev_owner != tile:
                self.stats.ownership_changes += 1
                extra = max(extra, self.invalidate_latency)
            self._sharers[line] = bit
            self._owner[line] = tile
        else:
            if line in self._owner and self._owner[line] != tile:
                # downgrade M -> S at the owner: one round trip
                self.stats.ownership_changes += 1
                del self._owner[line]
                extra = self.invalidate_latency
            self._sharers[line] = sharers | bit
        if len(self._sharers) > self.max_lines:
            self._prune()
        return extra

    def sharers_of(self, line: int) -> int:
        """Bitmask of tiles currently tracked as sharing *line*."""
        return self._sharers.get(line, 0)

    def _prune(self) -> None:
        # Drop half the entries (oldest-inserted first: dicts are ordered).
        drop = len(self._sharers) // 2
        for key in list(self._sharers)[:drop]:
            self._sharers.pop(key, None)
            self._owner.pop(key, None)

    def reset(self) -> None:
        self._sharers.clear()
        self._owner.clear()
        self.stats.reset()
