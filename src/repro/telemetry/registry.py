"""Unified stats collection over a :class:`repro.soc.System`.

Every timing component in the simulator keeps its own ``*Stats`` dataclass
(:class:`repro.mem.cache.CacheStats`, :class:`repro.mem.dram.DRAMStats`,
:class:`repro.core.branch.BranchStats`, ...).  The :class:`StatsRegistry`
walks a system — tiles (branch unit, L1s, TLBs, prefetcher) and the shared
uncore (L2, bus, LLC slices, coherence directory, DRAM channels), plus the
lockstep scheduler when one has run — and captures every counter into one
nested, serialisable :class:`Snapshot`.

Snapshots subtract (``after - before``), which is how warmup-vs-measure
windows are expressed: warm the system, take a baseline, run the measured
pass, and keep only the delta.  The paper's whole §4 tuning loop is driven
by exactly such counter deltas compared between FireSim and silicon.
"""

from __future__ import annotations

import dataclasses
import io
import json
from typing import Any, Iterator

__all__ = ["SCHEMA_VERSION", "Snapshot", "StatsRegistry"]

#: bump when the snapshot tree layout changes shape
SCHEMA_VERSION = 1


def _dump(stats: Any) -> dict[str, int | float]:
    """Numeric fields of one ``*Stats`` dataclass (properties excluded,
    so deltas never subtract ratios)."""
    out: dict[str, int | float] = {}
    for f in dataclasses.fields(stats):
        v = getattr(stats, f.name)
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            continue
        out[f.name] = v
    return out


#: structural identity fields that pass through a delta unchanged
_IDENTITY_KEYS = frozenset({"schema", "tile", "ncores"})


def _diff(after: Any, before: Any) -> Any:
    """Recursive numeric difference of two snapshot trees."""
    if isinstance(after, dict):
        if not isinstance(before, dict):
            return after
        return {k: (v if k in _IDENTITY_KEYS else _diff(v, before.get(k)))
                for k, v in after.items()}
    if isinstance(after, list):
        if not isinstance(before, list) or len(after) != len(before):
            return after
        return [_diff(a, b) for a, b in zip(after, before)]
    if isinstance(after, bool) or not isinstance(after, (int, float)):
        return after
    if isinstance(before, (int, float)) and not isinstance(before, bool):
        return after - before
    return after


class Snapshot:
    """One nested counter record; supports delta, flatten, JSON, and CSV."""

    __slots__ = ("data",)

    def __init__(self, data: dict[str, Any]) -> None:
        self.data = data

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Snapshot) and self.data == other.data

    def __sub__(self, other: "Snapshot") -> "Snapshot":
        """Counter-wise delta (``after - before``); identity fields such
        as names pass through from the left operand."""
        return Snapshot(_diff(self.data, other.data))

    # -- flattening / export ------------------------------------------------

    def _walk(self, node: Any, prefix: str) -> Iterator[tuple[str, Any]]:
        if isinstance(node, dict):
            for k, v in node.items():
                yield from self._walk(v, f"{prefix}.{k}" if prefix else str(k))
        elif isinstance(node, list):
            for i, v in enumerate(node):
                yield from self._walk(v, f"{prefix}.{i}")
        else:
            yield prefix, node

    def flat(self) -> dict[str, Any]:
        """Dotted-path view: ``{"tiles.0.l1d.misses": 12, ...}``."""
        return dict(self._walk(self.data, ""))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.data, indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        return cls(json.loads(text))

    def to_csv(self) -> str:
        """Two-column ``counter,value`` CSV of the flattened tree."""
        buf = io.StringIO()
        buf.write("counter,value\n")
        for key, value in self.flat().items():
            buf.write(f"{key},{value}\n")
        return buf.getvalue()

    def __repr__(self) -> str:
        return f"Snapshot({self.data.get('config', '?')}, {len(self.flat())} counters)"


class StatsRegistry:
    """Walk a :class:`repro.soc.System` and snapshot every stats object.

    The registry holds no state of its own beyond the system reference:
    every call to :meth:`snapshot` reads the live counters, and
    :meth:`delta` subtracts a previously taken baseline, which is the
    warmup-vs-measure idiom::

        reg = StatsRegistry(system)
        system.warm(trace)            # train caches and predictors
        base = reg.snapshot()
        result = system.run(trace)
        measured = reg.delta(base)    # counters for the hot pass only
    """

    def __init__(self, system) -> None:
        self.system = system
        # the process-wide accel counters (repro.accel.stats) outlive any
        # one system, so baseline them here: snapshots report the accel
        # activity observed during *this* registry's lifetime, keeping a
        # fresh system's counters at zero
        if getattr(system.cfg, "accel", "off") == "on":
            from ..accel.stats import global_stats
            self._accel_base: dict[str, int | float] | None = \
                _dump(global_stats())
        else:
            self._accel_base = None

    def snapshot(self) -> Snapshot:
        sys_ = self.system
        tiles = []
        for tile in sys_.tiles:
            port = tile.port
            rec: dict[str, Any] = {
                "tile": tile.tile_id,
                "branch": _dump(tile.core.bru.stats),
                "l1i": _dump(port.l1i.stats),
                "l1d": _dump(port.l1d.stats),
                "itlb": _dump(port.itlb.stats),
                "dtlb": _dump(port.dtlb.stats),
                "prefetch": (_dump(port.prefetcher.stats)
                             if port.prefetcher is not None else None),
            }
            # only present on accelerated cores — keeps accel=off
            # snapshots byte-compatible with pre-accel ones
            astats = getattr(tile.core, "accel_stats", None)
            if astats is not None and getattr(tile.core, "_accel_on", False):
                rec["accel"] = _dump(astats)
            tiles.append(rec)

        uncore = sys_.uncore
        u: dict[str, Any] = {
            "l2": _dump(uncore.l2.stats),
            "bus": _dump(uncore.bus.stats),
            "llc": ([_dump(s.stats) for s in uncore.llc.slices]
                    if uncore.llc is not None else None),
            "coherence": (_dump(uncore.directory.stats)
                          if uncore.directory is not None else None),
            "dram": [_dump(d.stats) for d in uncore.drams],
        }

        data: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "config": sys_.cfg.name,
            "ncores": sys_.cfg.ncores,
            "tiles": tiles,
            "uncore": u,
            "scheduler": (_dump(sys_.last_scheduler.stats)
                          if getattr(sys_, "last_scheduler", None) is not None
                          else None),
        }
        # only present when a run was watched — keeps unwatched snapshots
        # byte-compatible with older ones
        watchdog = getattr(sys_, "last_watchdog", None)
        if watchdog is not None:
            data["watchdog"] = _dump(watchdog.stats)
        # acceleration counters, only when the config opts in.  The memo
        # keys are process-wide, reported relative to this registry's
        # construction-time baseline; the uop coverage keys are summed
        # from the tiles (per-run state, carried through checkpoints) so
        # a resumed run's snapshot stays bit-identical to an
        # uninterrupted one
        if self._accel_base is not None:
            from ..accel.stats import global_stats
            now = _dump(global_stats())
            acc = {k: v - self._accel_base.get(k, 0) for k, v in now.items()}
            acc["fastpath_uops"] = sum(
                t["accel"]["fastpath_uops"] for t in tiles if "accel" in t)
            acc["fallback_uops"] = sum(
                t["accel"]["fallback_uops"] for t in tiles if "accel" in t)
            data["accel"] = acc
        return Snapshot(data)

    def delta(self, before: Snapshot) -> Snapshot:
        """Current counters minus *before* (the measure window)."""
        return self.snapshot() - before
