"""CPI-stack attribution: explain a tile's cycles resource by resource.

The paper explains simulator-vs-silicon mismatch (Figures 4-7) by tracing
runtime differences to concrete resources — branch handling, each cache
level, DRAM technology, the token-synchronised memory path.  This module
builds the same explanation for any run: every cycle of a tile is
attributed to one of the buckets in :data:`BUCKETS`, and the buckets sum
*exactly* to the cycle total, so two stacks can be compared side by side
and their difference is itself a resource attribution.

The attribution is mechanistic-proportional: exact event counts from the
:class:`~repro.telemetry.registry.Snapshot` delta (misses, mispredicts,
queue waits) are priced with the configuration's latencies, then scaled by
largest-remainder apportionment so the stall buckets fill exactly the
cycles not covered by ideal issue (``base``) or lockstep waiting
(``token_stall``).  Shared-uncore events (L2/LLC/DRAM) are divided between
tiles in proportion to each tile's L1 miss traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from .registry import Snapshot

__all__ = ["BUCKETS", "CPIStack", "cpi_stack", "cpi_stacks"]

#: cycle-attribution buckets, in render order; they always sum to ``cycles``
BUCKETS = (
    "base",          # ideal issue-limited cycles (instructions / width)
    "branch",        # mispredict flushes and BTB bubbles
    "l1",            # L1 bank conflicts and MSHR-full stalls
    "l2",            # misses serviced by the shared L2
    "llc",           # misses serviced by the LLC (when one exists)
    "dram",          # misses that reached a DRAM device (incl. queueing)
    "tlb",           # page-table walks from I/D TLB misses
    "store_buffer",  # store-buffer-full (in-order) / LSQ-full (OoO) stalls
    "divider",       # unpipelined divider / structural serialisation
    "token_stall",   # lockstep or MPI waiting for other tiles/ranks
)


@dataclass
class CPIStack:
    """Per-tile cycle attribution; ``sum(buckets.values()) == cycles``."""

    tile: int
    cycles: int
    instructions: int
    buckets: dict[str, int]

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def share(self, bucket: str) -> float:
        """Fraction of all cycles attributed to *bucket*."""
        return self.buckets[bucket] / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "tile": self.tile,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cpi": round(self.cpi, 4),
            "buckets": dict(self.buckets),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CPIStack":
        """Inverse of :meth:`to_dict` (``cpi`` is derived, not stored) —
        the JSON round-trip farmed results take across processes."""
        return cls(
            tile=int(d["tile"]),
            cycles=int(d["cycles"]),
            instructions=int(d["instructions"]),
            buckets={k: int(v) for k, v in d["buckets"].items()},
        )

    def render(self, width: int = 40) -> str:
        """Text bar chart, one row per non-empty bucket."""
        rows = [f"tile {self.tile}: {self.cycles:,} cycles, "
                f"{self.instructions:,} instructions, CPI {self.cpi:.2f}"]
        for name in BUCKETS:
            v = self.buckets.get(name, 0)
            if v == 0:
                continue
            frac = v / self.cycles if self.cycles else 0.0
            bar = "#" * max(1, round(frac * width)) if v else ""
            rows.append(f"  {name:<12} {v:>12,}  {frac:6.1%}  {bar}")
        return "\n".join(rows)


def _largest_remainder(weights: dict[str, float], total: int) -> dict[str, int]:
    """Apportion *total* over *weights* so the parts sum exactly."""
    wsum = sum(weights.values())
    if wsum <= 0 or total <= 0:
        return {k: 0 for k in weights}
    exact = {k: total * w / wsum for k, w in weights.items()}
    out = {k: math.floor(v) for k, v in exact.items()}
    leftover = total - sum(out.values())
    # hand out the remainder by descending fractional part (name-stable ties)
    order = sorted(weights, key=lambda k: (out[k] - exact[k], k))
    for k in order[:leftover]:
        out[k] += 1
    return out


def _tile_record(delta: Snapshot, tile: int) -> dict[str, Any]:
    for rec in delta["tiles"]:
        if rec["tile"] == tile:
            return rec
    raise KeyError(f"no tile {tile} in snapshot")


def _l1_misses(rec: dict[str, Any]) -> int:
    return rec["l1d"]["misses"] + rec["l1i"]["misses"]


def _dram_unloaded_cycles(cfg) -> float:
    """Unloaded DRAM round trip in core cycles (activate + CAS + control)."""
    t = cfg.hierarchy.dram.timings
    return (t.tRCD + t.tCAS + t.tCTRL) * cfg.core_ghz


def cpi_stack(system, result, delta: Snapshot, tile: int = 0,
              makespan: int | None = None, comm_cycles: int = 0) -> CPIStack:
    """Attribute one tile's cycles to the :data:`BUCKETS`.

    Parameters
    ----------
    system:
        The :class:`repro.soc.System` the run executed on (for latencies).
    result:
        The tile's :class:`repro.core.base.CoreResult` (or any object with
        ``cycles``, ``instructions``, and a ``stalls`` dict).
    delta:
        Measure-window counter delta from :class:`StatsRegistry`.
    tile:
        Which tile to attribute.
    makespan:
        For lockstep/MPI runs: the slowest lane's cycle count.  The gap
        ``makespan - result.cycles`` lands in ``token_stall``.
    comm_cycles:
        Cycles this lane spent blocked in communication (MPI runs); they
        move from the compute buckets into ``token_stall``.
    """
    cfg = system.cfg
    cycles = int(result.cycles)
    instructions = int(result.instructions)
    stalls = dict(getattr(result, "stalls", {}) or {})

    token = max(0, int(comm_cycles))
    if makespan is not None and makespan > cycles:
        token += makespan - cycles
    own = max(0, cycles - max(0, int(comm_cycles)))

    if cfg.core_type == "inorder":
        icfg = cfg.inorder
        width = icfg.issue_width
        flush_pen, bubble_pen = icfg.flush_penalty, icfg.bubble_penalty
        sb_stall = stalls.get("mem", 0)
        div_stall = stalls.get("structural", 0)
    else:
        ocfg = cfg.ooo
        width = ocfg.effective_commit_width
        flush_pen, bubble_pen = ocfg.frontend_depth, 3
        sb_stall = stalls.get("lsq", 0)
        div_stall = 0

    base = min(own, math.ceil(instructions / width)) if instructions else 0
    residual = own - base

    td = _tile_record(delta, tile)
    ud = delta["uncore"]
    all_l1 = sum(_l1_misses(rec) for rec in delta["tiles"])
    mine = _l1_misses(td)
    share = mine / all_l1 if all_l1 else 0.0

    h = cfg.hierarchy
    l2_hits = max(0, ud["l2"]["accesses"] - ud["l2"]["misses"])
    llc = ud.get("llc")
    llc_hits = (sum(max(0, s["accesses"] - s["misses"]) for s in llc)
                if llc else 0)
    llc_latency = h.llc_latency if h.llc_simplified else 38
    dram_acc = sum(d["reads"] + d["writes"] for d in ud["dram"])
    dram_wait = sum(d["queue_wait_cycles"] + d["refresh_stall_cycles"]
                    for d in ud["dram"])

    raw: dict[str, float] = {
        "branch": (td["branch"]["mispredicts"] * flush_pen
                   + td["branch"]["btb_misses"] * bubble_pen),
        "l1": (td["l1d"]["bank_conflict_cycles"] + td["l1d"]["mshr_stall_cycles"]
               + td["l1i"]["bank_conflict_cycles"] + td["l1i"]["mshr_stall_cycles"]),
        "l2": share * l2_hits * h.l2.hit_latency,
        "llc": share * llc_hits * llc_latency,
        "dram": share * (dram_acc * _dram_unloaded_cycles(cfg) + dram_wait),
        "tlb": ((td["itlb"]["misses"] + td["dtlb"]["misses"])
                * h.dtlb.walk_latency),
        "store_buffer": sb_stall,
        "divider": div_stall,
    }

    buckets = _largest_remainder(raw, residual)
    if sum(buckets.values()) < residual:
        # no stall evidence at all: the leftover is issue-limited time
        base += residual - sum(buckets.values())
    buckets["base"] = base
    buckets["token_stall"] = token
    return CPIStack(
        tile=tile,
        cycles=own + token,
        instructions=instructions,
        buckets={k: buckets.get(k, 0) for k in BUCKETS},
    )


def cpi_stacks(system, results, delta: Snapshot,
               comm_cycles: list[int] | None = None) -> list[CPIStack]:
    """Stacks for a multi-tile run; ``results[i]`` belongs to tile *i*.

    The makespan (slowest lane) is derived from the results, so every
    stack sums to the same total and faster lanes show ``token_stall``.
    """
    makespan = max((int(r.cycles) for r in results), default=0)
    comm = comm_cycles or [0] * len(results)
    return [
        cpi_stack(system, r, delta, tile=i, makespan=makespan,
                  comm_cycles=comm[i])
        for i, r in enumerate(results)
    ]
