"""Unified telemetry: system-wide counter snapshots and CPI-stack
attribution.

Entry points:

* :class:`StatsRegistry` — walk a :class:`repro.soc.System` and snapshot
  every component's ``*Stats`` counters into one nested record.
* :class:`Snapshot` — the record: delta (``after - before``), dotted-path
  flattening, JSON round-trip, CSV export.
* :func:`cpi_stack` / :func:`cpi_stacks` — attribute a run's cycles to
  {base, branch, l1, l2, llc, dram, tlb, store_buffer, divider,
  token_stall} buckets that sum exactly to the cycle total.

See ``docs/observability.md`` for the data model and a worked example.
"""

from .cpi import BUCKETS, CPIStack, cpi_stack, cpi_stacks
from .registry import SCHEMA_VERSION, Snapshot, StatsRegistry

__all__ = [
    "SCHEMA_VERSION",
    "Snapshot",
    "StatsRegistry",
    "BUCKETS",
    "CPIStack",
    "cpi_stack",
    "cpi_stacks",
]
