"""In-order core timing model (Rocket-like; also the SpacemiT K1 silicon model).

A timestamp-scoreboard model: instructions issue strictly in program order,
bounded by issue width per cycle, operand readiness (full bypass network),
structural hazards (one memory port, unpipelined divider, store-buffer
capacity), I-cache miss stalls, and branch-redirect penalties scaled to the
pipeline depth.  Loads are non-blocking (hit-under-miss): a miss only
stalls the first dependent consumer, which matches Rocket's scoreboard.

This style of model is O(1) per instruction, which is what makes sweeping
39 microbenchmarks across many SoC configurations tractable in Python while
still being *mechanistic* — every stall traces back to a concrete resource.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..isa.opcodes import DEFAULT_LATENCIES, LatencyTable, OpClass
from ..isa.trace import NUM_REGS, Trace
from .base import CoreModel, CoreResult
from .branch import BranchUnit, rocket_branch_unit
from .vector import VectorConfig

__all__ = ["InOrderConfig", "InOrderCore"]


@dataclass(frozen=True)
class InOrderConfig:
    """Parameters of the in-order pipeline.

    ``pipeline_depth`` sets the mispredict flush penalty (redirect from
    execute back to fetch); Rocket is 5 stages, the SpacemiT K1 is 8.
    ``issue_width`` is 1 for Rocket, 2 for the K1's dual-issue cores.
    """

    issue_width: int = 1
    fetch_width: int = 2
    pipeline_depth: int = 5
    mem_ports: int = 1
    store_buffer: int = 4
    load_to_use: int = 1        #: extra cycles between load data and use
    latencies: LatencyTable = DEFAULT_LATENCIES
    #: unpipelined divider (next div waits for previous)
    pipelined_div: bool = False
    #: optional RVV unit (None = scalar-only core; vector ops then raise)
    vector: VectorConfig | None = None

    def __post_init__(self) -> None:
        if self.issue_width < 1 or self.fetch_width < 1:
            raise ValueError("widths must be >= 1")
        if self.pipeline_depth < 3:
            raise ValueError("pipeline_depth must be >= 3")

    @property
    def flush_penalty(self) -> int:
        """Cycles lost on a branch mispredict (fetch..execute refill)."""
        return self.pipeline_depth - 2

    @property
    def bubble_penalty(self) -> int:
        """Cycles lost on a taken-branch BTB miss (fetch redirect)."""
        return 2


class InOrderCore(CoreModel):
    """Rocket-like in-order scoreboard core."""

    def __init__(self, cfg: InOrderConfig, port, branch_unit: BranchUnit | None = None,
                 icache_hit_latency: int = 1, accel: bool = False) -> None:
        self.cfg = cfg
        self.port = port
        self.bru = branch_unit if branch_unit is not None else rocket_branch_unit()
        self._icache_hit = icache_hit_latency
        # accelerated engine (repro.accel): bit-identical fast path, built
        # lazily on first run so reference-only cores never import numpy
        # mirrors; accel_stats tracks its fast-path coverage
        self._accel_on = accel
        self._accel = None
        from ..accel.stats import AccelStats
        self.accel_stats = AccelStats()
        self.reset()

    def reset(self) -> None:
        self._reg_ready = [0] * NUM_REGS
        self._div_free = 0
        self._vu_free = 0
        self._sb: deque[int] = deque()
        self._cur_fetch_line = -1
        self._fe_ready = 0
        self._time = 0

    @property
    def local_time(self) -> int:
        """Current position of this core's target clock, in cycles."""
        return self._time

    # -- main loop ---------------------------------------------------------

    def run(self, trace: Trace, start_time: int = 0) -> CoreResult:
        if self._accel_on and hasattr(self.port, "uncore"):
            if self._accel is None:
                from ..accel.engine import AccelEngine
                self._accel = AccelEngine(self)
            return self._accel.run(trace, start_time)
        cfg = self.cfg
        lat = cfg.latencies
        port = self.port
        bru = self.bru
        reg_ready = self._reg_ready
        sb = self._sb
        line_shift = 6  # 64-byte fetch lines

        op_a = trace.op
        dst_a = trace.dst
        src1_a = trace.src1
        src2_a = trace.src2
        addr_a = trace.addr
        size_a = trace.size
        taken_a = trace.taken
        pc_a = trace.pc
        tgt_a = trace.target
        n = len(op_a)

        LOAD, STORE, BRANCH = int(OpClass.LOAD), int(OpClass.STORE), int(OpClass.BRANCH)
        JUMP, CALL, RET = int(OpClass.JUMP), int(OpClass.CALL), int(OpClass.RET)
        DIV, AMO = int(OpClass.INT_DIV), int(OpClass.AMO)
        VLOAD, VSTORE = int(OpClass.VLOAD), int(OpClass.VSTORE)
        VALU, VFMA = int(OpClass.VALU), int(OpClass.VFMA)
        vcfg = cfg.vector
        vu_free = self._vu_free

        cycle = max(start_time, self._time)
        t0 = cycle
        slots = 0
        mem_slots_used = 0
        ctrl_slots_used = 0
        fe_ready = max(self._fe_ready, cycle)
        cur_line = self._cur_fetch_line
        line_entry = cycle  #: when we started consuming the current fetch line
        div_free = self._div_free

        stall_fe = stall_dep = stall_mem = stall_struct = 0
        l1d_miss0 = port.l1d.stats.misses
        l1i_miss0 = port.l1i.stats.misses
        br0 = bru.stats.branches
        mp0 = bru.stats.mispredicts
        sb_depth = cfg.store_buffer
        flush_pen = cfg.flush_penalty
        bubble_pen = cfg.bubble_penalty
        lat_of = lat.latency_of
        icache_hit = self._icache_hit

        for i in range(n):
            op = op_a[i]
            pc = int(pc_a[i])

            # ---- front end: I-cache line fetch ----
            # Sequential line crossings model next-line fetch-ahead: the
            # access is issued when the previous line started draining, so
            # short fills overlap with execution.  Redirects pay in full.
            line = pc >> line_shift
            if line != cur_line:
                need_at = cycle if cycle > fe_ready else fe_ready
                issue_at = line_entry if line == cur_line + 1 else need_at
                cur_line = line
                done = port.ifetch(pc, issue_at)
                extra = done - need_at - icache_hit
                if extra > 0:
                    fe_ready = need_at + extra
                    stall_fe += extra
                line_entry = fe_ready if fe_ready > cycle else cycle

            # ---- operand readiness ----
            t = cycle
            if fe_ready > t:
                t = fe_ready
            s1 = src1_a[i]
            if s1 > 0 and reg_ready[s1] > t:
                stall_dep += reg_ready[s1] - t
                t = reg_ready[s1]
            s2 = src2_a[i]
            if s2 > 0 and reg_ready[s2] > t:
                stall_dep += reg_ready[s2] - t
                t = reg_ready[s2]

            # ---- structural hazards ----
            if op == DIV and not cfg.pipelined_div and div_free > t:
                stall_struct += div_free - t
                t = div_free
            is_vec = VLOAD <= op <= VALU or op == VFMA
            if is_vec:
                if vcfg is None:
                    raise ValueError(
                        "trace contains RVV vector ops but this core has "
                        "no vector unit (InOrderConfig.vector is None)"
                    )
                if vu_free > t:
                    stall_struct += vu_free - t
                    t = vu_free

            # ---- issue-slot accounting (in-order) ----
            if t > cycle:
                cycle = t
                slots = 0
                mem_slots_used = 0
                ctrl_slots_used = 0
            is_mem = op == LOAD or op == STORE or op == AMO or op == VLOAD or op == VSTORE
            is_ctrl = op == BRANCH or op == JUMP or op == CALL or op == RET
            while (slots >= cfg.issue_width
                   or (is_mem and mem_slots_used >= cfg.mem_ports)
                   or (is_ctrl and ctrl_slots_used >= 1)):
                cycle += 1
                slots = 0
                mem_slots_used = 0
                ctrl_slots_used = 0
            t = cycle
            slots += 1
            if is_mem:
                mem_slots_used += 1
            if is_ctrl:
                ctrl_slots_used += 1

            # ---- execute ----
            dst = dst_a[i]
            if op == LOAD:
                done = port.dload(int(addr_a[i]), t + 1)
                if dst > 0:
                    reg_ready[dst] = done + cfg.load_to_use
            elif op == STORE:
                # store buffer: prune retired entries, stall if full
                while sb and sb[0] <= t:
                    sb.popleft()
                if len(sb) >= sb_depth:
                    wait = sb.popleft()
                    if wait > t:
                        stall_mem += wait - t
                        cycle = wait
                        slots = 1
                        mem_slots_used = 1
                        ctrl_slots_used = 0
                        t = wait
                done = port.dstore(int(addr_a[i]), t + 1)
                sb.append(done)
            elif op == AMO:
                done = port.dstore(int(addr_a[i]), t + 1) + lat.amo_extra
                if dst > 0:
                    reg_ready[dst] = done
            elif op == VLOAD or op == VSTORE:
                nbytes = int(size_a[i])
                base_addr = int(addr_a[i])
                is_st = op == VSTORE
                done = t + 1
                for off in range(0, nbytes, 64):
                    acc = (port.dstore if is_st else port.dload)(
                        base_addr + off, t + 1)
                    if acc > done:
                        done = acc
                occ = vcfg.startup + vcfg.mem_beats(nbytes)
                vu_free = t + occ
                if dst > 0 and not is_st:
                    reg_ready[dst] = max(done, t + occ)
            elif op == VALU or op == VFMA:
                occ = vcfg.startup + vcfg.exec_beats(int(size_a[i]) * 8)
                vu_free = t + occ
                if dst > 0:
                    reg_ready[dst] = t + occ + lat_of(OpClass(op)) - 1
            elif is_ctrl:
                kind = bru.resolve(op, pc, bool(taken_a[i]), int(tgt_a[i]))
                if kind == BranchUnit.FLUSH:
                    fe_ready = t + 1 + flush_pen
                elif kind == BranchUnit.BUBBLE:
                    fe_ready = t + 1 + bubble_pen
                if dst > 0:  # call writes link register
                    reg_ready[dst] = t + 1
            else:
                l = lat_of(OpClass(op))
                if dst > 0:
                    reg_ready[dst] = t + l
                if op == DIV and not cfg.pipelined_div:
                    div_free = t + l

        # drain: final time is the last issue cycle plus pipeline drain
        end = cycle + cfg.pipeline_depth - 1
        self._time = cycle + 1
        self._fe_ready = fe_ready
        self._cur_fetch_line = cur_line
        self._div_free = div_free
        self._vu_free = vu_free

        return CoreResult(
            cycles=end - t0,
            instructions=n,
            stalls={
                "frontend": stall_fe,
                "dep": stall_dep,
                "mem": stall_mem,
                "structural": stall_struct,
            },
            branches=bru.stats.branches - br0,
            mispredicts=bru.stats.mispredicts - mp0,
            l1d_misses=port.l1d.stats.misses - l1d_miss0,
            l1i_misses=port.l1i.stats.misses - l1i_miss0,
        )
