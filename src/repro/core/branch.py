"""Branch-prediction models: bimodal BHT, gshare, BTB, RAS, and TAGE-L.

Rocket tiles use a BTB + BHT + RAS front end; BOOM uses a TAGE-L
predictor with a fetch-target queue (paper Table 5).  These are real
predictor implementations — tables, tags, useful counters — not statistical
stand-ins, because several MicroBench kernels (Cca, Cce, CCh, CRd, CRf,
CS1, CS3) exist specifically to separate predictable from unpredictable
control flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..isa.opcodes import OpClass

__all__ = [
    "BimodalBHT",
    "GShare",
    "BTB",
    "ReturnAddressStack",
    "TAGE",
    "BranchUnit",
    "BranchStats",
    "rocket_branch_unit",
    "boom_branch_unit",
]


class BimodalBHT:
    """Table of 2-bit saturating counters indexed by PC."""

    def __init__(self, entries: int = 512) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self._ctr = np.full(entries, 1, dtype=np.int8)  # weakly not-taken

    def _idx(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return bool(self._ctr[self._idx(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        i = self._idx(pc)
        c = self._ctr[i] + (1 if taken else -1)
        self._ctr[i] = min(3, max(0, c))


class GShare:
    """Global-history-XOR-PC indexed 2-bit counter table."""

    def __init__(self, entries: int = 1024, hist_bits: int = 10) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.hist_bits = hist_bits
        self._ctr = np.full(entries, 1, dtype=np.int8)
        self._hist = 0

    def _idx(self, pc: int) -> int:
        return ((pc >> 2) ^ self._hist) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return bool(self._ctr[self._idx(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        i = self._idx(pc)
        c = self._ctr[i] + (1 if taken else -1)
        self._ctr[i] = min(3, max(0, c))
        self._hist = ((self._hist << 1) | int(taken)) & ((1 << self.hist_bits) - 1)


class BTB:
    """Branch target buffer: set-associative PC -> target mapping."""

    def __init__(self, entries: int = 32, assoc: int = 2) -> None:
        if entries % assoc:
            raise ValueError("entries must be divisible by assoc")
        self.sets = entries // assoc
        self.assoc = assoc
        self._tag = np.full((self.sets, assoc), -1, dtype=np.int64)
        self._target = np.zeros((self.sets, assoc), dtype=np.int64)
        self._lru = np.zeros((self.sets, assoc), dtype=np.int64)
        self._stamp = 0

    def lookup(self, pc: int) -> int | None:
        s = (pc >> 2) % self.sets
        tag = pc >> 2
        ways = np.nonzero(self._tag[s] == tag)[0]
        if ways.size:
            w = int(ways[0])
            self._stamp += 1
            self._lru[s, w] = self._stamp
            return int(self._target[s, w])
        return None

    def insert(self, pc: int, target: int) -> None:
        s = (pc >> 2) % self.sets
        tag = pc >> 2
        ways = np.nonzero(self._tag[s] == tag)[0]
        w = int(ways[0]) if ways.size else int(np.argmin(self._lru[s]))
        self._tag[s, w] = tag
        self._target[s, w] = target
        self._stamp += 1
        self._lru[s, w] = self._stamp


class ReturnAddressStack:
    """Fixed-depth RAS; overflow wraps (overwrites oldest), as in hardware."""

    def __init__(self, depth: int = 8) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: list[int] = []

    def push(self, ret_addr: int) -> None:
        self._stack.append(ret_addr)
        if len(self._stack) > self.depth:
            del self._stack[0]

    def pop(self) -> int | None:
        return self._stack.pop() if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)


class TAGE:
    """TAGE predictor: bimodal base + tagged tables with geometric history.

    A functional implementation of the TAGE scheme (Seznec): provider =
    longest-history tagged hit; alternate prediction on low-confidence new
    entries; usefulness counters steer allocation on mispredicts.
    """

    def __init__(
        self,
        num_tables: int = 4,
        table_bits: int = 9,
        tag_bits: int = 9,
        min_hist: int = 4,
        max_hist: int = 64,
        base_entries: int = 2048,
    ) -> None:
        self.num_tables = num_tables
        self.size = 1 << table_bits
        self.tag_bits = tag_bits
        self.base = BimodalBHT(base_entries)
        # geometric history lengths
        if num_tables == 1:
            self.hist_len = [min_hist]
        else:
            ratio = (max_hist / min_hist) ** (1 / (num_tables - 1))
            self.hist_len = [int(round(min_hist * ratio**i)) for i in range(num_tables)]
        self._ctr = [np.zeros(self.size, dtype=np.int8) for _ in range(num_tables)]
        self._tag = [np.full(self.size, -1, dtype=np.int32) for _ in range(num_tables)]
        self._useful = [np.zeros(self.size, dtype=np.int8) for _ in range(num_tables)]
        self._hist = 0
        self._rng = np.random.default_rng(0xB00)

    def _fold(self, bits: int, out_bits: int) -> int:
        h = self._hist & ((1 << bits) - 1)
        folded = 0
        while h:
            folded ^= h & ((1 << out_bits) - 1)
            h >>= out_bits
        return folded

    def _index(self, pc: int, t: int) -> int:
        return ((pc >> 2) ^ self._fold(self.hist_len[t], self.size.bit_length() - 1)) % self.size

    def _tag_of(self, pc: int, t: int) -> int:
        return ((pc >> 2) ^ self._fold(self.hist_len[t], self.tag_bits)
                ^ (self._fold(self.hist_len[t], self.tag_bits - 1) << 1)) & (
            (1 << self.tag_bits) - 1
        )

    def predict(self, pc: int) -> bool:
        pred, _, _ = self._predict_full(pc)
        return pred

    def _predict_full(self, pc: int) -> tuple[bool, int, int]:
        """Return (prediction, provider table or -1, provider index)."""
        for t in range(self.num_tables - 1, -1, -1):
            i = self._index(pc, t)
            if self._tag[t][i] == self._tag_of(pc, t):
                return bool(self._ctr[t][i] >= 0), t, i
        return self.base.predict(pc), -1, 0

    def update(self, pc: int, taken: bool) -> None:
        pred, prov, idx = self._predict_full(pc)
        mispredicted = pred != taken
        if prov >= 0:
            c = self._ctr[prov][idx] + (1 if taken else -1)
            self._ctr[prov][idx] = min(3, max(-4, c))
            u = self._useful[prov][idx] + (0 if mispredicted else 1)
            self._useful[prov][idx] = min(3, max(0, u - (1 if mispredicted else 0)))
        else:
            self.base.update(pc, taken)
        if mispredicted and prov < self.num_tables - 1:
            # allocate in a longer-history table with a non-useful entry
            candidates = range(prov + 1, self.num_tables)
            allocated = False
            for t in candidates:
                i = self._index(pc, t)
                if self._useful[t][i] == 0:
                    self._tag[t][i] = self._tag_of(pc, t)
                    self._ctr[t][i] = 0 if taken else -1
                    allocated = True
                    break
            if not allocated:
                # decay usefulness so future allocations can succeed
                for t in candidates:
                    i = self._index(pc, t)
                    self._useful[t][i] = max(0, self._useful[t][i] - 1)
        self._hist = ((self._hist << 1) | int(taken)) & ((1 << 64) - 1)


@dataclass
class BranchStats:
    branches: int = 0
    mispredicts: int = 0
    btb_misses: int = 0
    ras_mispredicts: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def reset(self) -> None:
        self.__init__()


class BranchUnit:
    """Front-end control-flow handling shared by both core models.

    ``resolve`` processes one control op and returns the redirect class:
    ``0`` = correctly predicted, ``1`` = taken-but-BTB-miss (front-end
    bubble), ``2`` = full mispredict (pipeline flush).
    """

    CORRECT, BUBBLE, FLUSH = 0, 1, 2

    def __init__(self, direction, btb: BTB, ras: ReturnAddressStack) -> None:
        self.direction = direction
        self.btb = btb
        self.ras = ras
        self.stats = BranchStats()

    def resolve(self, op: int, pc: int, taken: bool, target: int) -> int:
        self.stats.branches += 1
        if op == OpClass.BRANCH:
            pred = self.direction.predict(pc)
            self.direction.update(pc, taken)
            if pred != taken:
                self.stats.mispredicts += 1
                if taken:
                    self.btb.insert(pc, target)
                return self.FLUSH
            if taken and self.btb.lookup(pc) != target:
                self.btb.insert(pc, target)
                self.stats.btb_misses += 1
                return self.BUBBLE
            return self.CORRECT
        if op == OpClass.JUMP or op == OpClass.CALL:
            if op == OpClass.CALL:
                self.ras.push(pc + 4)
            pred = self.btb.lookup(pc)
            if pred == target:
                return self.CORRECT
            self.btb.insert(pc, target)
            if pred is None:
                # cold BTB: direct jumps still resolve at decode (bubble)
                self.stats.btb_misses += 1
                return self.BUBBLE
            # stale target: an indirect jump/call went elsewhere — full flush
            self.stats.mispredicts += 1
            return self.FLUSH
        if op == OpClass.RET:
            pred_target = self.ras.pop()
            if pred_target != target:
                self.stats.mispredicts += 1
                self.stats.ras_mispredicts += 1
                return self.FLUSH
            return self.CORRECT
        return self.CORRECT


def rocket_branch_unit(bht_entries: int = 512, btb_entries: int = 32,
                       ras_depth: int = 6) -> BranchUnit:
    """Rocket-style front end: bimodal BHT + small BTB + RAS."""
    return BranchUnit(BimodalBHT(bht_entries), BTB(btb_entries),
                      ReturnAddressStack(ras_depth))


def boom_branch_unit(tables: int = 6, table_bits: int = 10,
                     btb_entries: int = 128, ras_depth: int = 32) -> BranchUnit:
    """BOOM-style front end: TAGE-L + larger BTB + deep RAS."""
    return BranchUnit(
        TAGE(num_tables=tables, table_bits=table_bits, max_hist=128),
        BTB(btb_entries, assoc=4),
        ReturnAddressStack(ras_depth),
    )
