"""Core timing models: in-order (Rocket-like), out-of-order (BOOM-like),
and branch predictors."""

from .base import CoreModel, CoreResult
from .branch import (
    BTB,
    BimodalBHT,
    BranchStats,
    BranchUnit,
    GShare,
    ReturnAddressStack,
    TAGE,
    boom_branch_unit,
    rocket_branch_unit,
)
from .inorder import InOrderConfig, InOrderCore
from .ooo import OoOConfig, OoOCore

__all__ = [
    "CoreModel",
    "CoreResult",
    "BimodalBHT",
    "GShare",
    "BTB",
    "ReturnAddressStack",
    "TAGE",
    "BranchUnit",
    "BranchStats",
    "rocket_branch_unit",
    "boom_branch_unit",
    "InOrderConfig",
    "InOrderCore",
    "OoOConfig",
    "OoOCore",
]
