"""Out-of-order core timing model (BOOM-like; also the SG2042 silicon model).

A timestamp-dataflow model in the tradition of interval analysis: each
micro-op's fetch, dispatch, issue, completion, and commit times are computed
from explicit resource constraints —

* fetch bandwidth (``fetch_width``/cycle) and I-cache line availability,
* decode/dispatch bandwidth (``decode_width``/cycle),
* ROB occupancy (dispatch blocks until the op ``rob_size`` older commits),
* per-issue-queue capacity and issue ports (int / mem / fp queues),
* load-queue / store-queue occupancy (freed at commit),
* functional-unit latencies and an unpipelined divider,
* branch resolution redirecting fetch with a front-end refill penalty.

Bandwidth chains use fractional-cycle accumulation (an op consumes
``1/width`` of a cycle of its stage), the standard O(1)-per-instruction
approximation; capacity constraints are exact ring-buffer bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.opcodes import DEFAULT_LATENCIES, FP_OPS, LatencyTable, OpClass
from ..isa.trace import NUM_REGS, Trace
from .base import CoreModel, CoreResult
from .branch import BranchUnit, boom_branch_unit

__all__ = ["OoOConfig", "OoOCore"]


@dataclass(frozen=True)
class OoOConfig:
    """BOOM-style resource parameters (paper Table 4 columns)."""

    fetch_width: int = 4
    decode_width: int = 1
    rob_size: int = 32
    int_iq: int = 8           #: integer issue-queue entries
    int_issue: int = 1        #: integer issue ports
    mem_iq: int = 8
    mem_issue: int = 1
    fp_iq: int = 8
    fp_issue: int = 1
    ldq: int = 8              #: load-queue entries
    stq: int = 8              #: store-queue entries
    commit_width: int = 0     #: 0 = same as decode_width
    frontend_depth: int = 10  #: mispredict redirect penalty (fetch refill)
    latencies: LatencyTable = DEFAULT_LATENCIES

    def __post_init__(self) -> None:
        for name in ("fetch_width", "decode_width", "rob_size", "int_iq",
                     "mem_iq", "fp_iq", "ldq", "stq"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def effective_commit_width(self) -> int:
        return self.commit_width or self.decode_width


class OoOCore(CoreModel):
    """BOOM-like out-of-order core."""

    def __init__(self, cfg: OoOConfig, port, branch_unit: BranchUnit | None = None,
                 icache_hit_latency: int = 1, accel: bool = False) -> None:
        self.cfg = cfg
        self.port = port
        self.bru = branch_unit if branch_unit is not None else boom_branch_unit()
        self._icache_hit = icache_hit_latency
        # accelerated engine (repro.accel): bit-identical transliteration
        # over compiled trace columns, built lazily on first run so
        # reference-only cores never touch the mirror layer
        self._accel_on = accel
        self._accel = None
        from ..accel.stats import AccelStats
        self.accel_stats = AccelStats()
        self.reset()

    def reset(self) -> None:
        cfg = self.cfg
        self._reg_ready = [0.0] * NUM_REGS
        self._rob_ring = [0.0] * cfg.rob_size
        self._ldq_ring = [0.0] * cfg.ldq
        self._stq_ring = [0.0] * cfg.stq
        self._intq_ring = [0.0] * cfg.int_iq
        self._memq_ring = [0.0] * cfg.mem_iq
        self._fpq_ring = [0.0] * cfg.fp_iq
        self._int_ports = [0.0] * cfg.int_issue
        self._mem_ports = [0.0] * cfg.mem_issue
        self._fp_ports = [0.0] * cfg.fp_issue
        self._rob_head = 0
        self._ldq_head = 0
        self._stq_head = 0
        self._intq_head = 0
        self._memq_head = 0
        self._fpq_head = 0
        self._fetch_chain = 0.0
        self._dispatch_chain = 0.0
        self._commit_chain = 0.0
        self._fetch_floor = 0.0       #: redirect constraint on fetch
        self._div_free = 0.0
        self._cur_line = -1
        self._pending_stores: dict[int, float] = {}
        self._time = 0

    @property
    def local_time(self) -> int:
        """Current position of this core's target clock, in cycles."""
        return self._time

    # -- main loop ---------------------------------------------------------

    def run(self, trace: Trace, start_time: int = 0) -> CoreResult:
        if self._accel_on and hasattr(self.port, "uncore"):
            if self._accel is None:
                from ..accel.ooo import OoOAccelEngine
                self._accel = OoOAccelEngine(self)
            return self._accel.run(trace, start_time)
        cfg = self.cfg
        lat = cfg.latencies
        port = self.port
        bru = self.bru
        reg_ready = self._reg_ready

        op_a = trace.op
        dst_a = trace.dst
        src1_a = trace.src1
        src2_a = trace.src2
        addr_a = trace.addr
        taken_a = trace.taken
        pc_a = trace.pc
        tgt_a = trace.target
        n = len(op_a)

        LOAD, STORE = int(OpClass.LOAD), int(OpClass.STORE)
        BRANCH, JUMP = int(OpClass.BRANCH), int(OpClass.JUMP)
        CALL, RET = int(OpClass.CALL), int(OpClass.RET)
        DIV, AMO = int(OpClass.INT_DIV), int(OpClass.AMO)
        VLOAD, VSETVL = int(OpClass.VLOAD), int(OpClass.VSETVL)
        FP_SET = frozenset(int(o) for o in FP_OPS)

        d_fetch = 1.0 / cfg.fetch_width
        d_disp = 1.0 / cfg.decode_width
        d_commit = 1.0 / cfg.effective_commit_width

        fetch_chain = max(self._fetch_chain, float(start_time))
        dispatch_chain = max(self._dispatch_chain, float(start_time))
        commit_chain = max(self._commit_chain, float(start_time))
        fetch_floor = max(self._fetch_floor, float(start_time))
        t0 = commit_chain
        div_free = self._div_free
        cur_line = self._cur_line
        line_entry = fetch_chain

        rob_ring, rob_head = self._rob_ring, self._rob_head
        ldq_ring, ldq_head = self._ldq_ring, self._ldq_head
        stq_ring, stq_head = self._stq_ring, self._stq_head
        intq_ring, intq_head = self._intq_ring, self._intq_head
        memq_ring, memq_head = self._memq_ring, self._memq_head
        fpq_ring, fpq_head = self._fpq_ring, self._fpq_head
        int_ports, mem_ports, fp_ports = self._int_ports, self._mem_ports, self._fp_ports
        rob_size = cfg.rob_size
        pending_stores = self._pending_stores

        stall_fe = stall_rob = stall_iq = stall_lsq = 0.0
        l1d_miss0 = port.l1d.stats.misses
        l1i_miss0 = port.l1i.stats.misses
        br0, mp0 = bru.stats.branches, bru.stats.mispredicts
        icache_hit = self._icache_hit
        fe_depth = cfg.frontend_depth
        lat_of = lat.latency_of

        last_commit = commit_chain

        for i in range(n):
            op = int(op_a[i])
            pc = int(pc_a[i])
            if VLOAD <= op < VSETVL:
                raise ValueError(
                    "trace contains RVV vector ops, but the BOOM-like "
                    "out-of-order model has no vector unit (the study's "
                    "FireSim targets run scalar code only)"
                )

            # ---- fetch ----
            f = fetch_chain + d_fetch
            if fetch_floor > f:
                stall_fe += fetch_floor - f
                f = fetch_floor
            line = pc >> 6
            if line != cur_line:
                # sequential crossings use next-line fetch-ahead (issued when
                # the previous line started draining); redirects pay in full
                issue_at = line_entry if line == cur_line + 1 else f
                cur_line = line
                done = port.ifetch(pc, int(issue_at))
                extra = done - f - icache_hit
                if extra > 0:
                    stall_fe += extra
                    f += extra
                line_entry = f
            fetch_chain = f

            # ---- dispatch (decode bandwidth, ROB, IQ, LSQ space) ----
            d = dispatch_chain + d_disp
            if f + 1.0 > d:  # 1-cycle decode stage after fetch
                d = f + 1.0
            rob_free = rob_ring[rob_head]
            if rob_free > d:
                stall_rob += rob_free - d
                d = rob_free

            is_mem = op == LOAD or op == STORE or op == AMO
            is_fp = op in FP_SET
            if is_mem:
                ring, head = memq_ring, memq_head
            elif is_fp:
                ring, head = fpq_ring, fpq_head
            else:
                ring, head = intq_ring, intq_head
            iq_free = ring[head]
            if iq_free > d:
                stall_iq += iq_free - d
                d = iq_free
            if op == LOAD:
                lq_free = ldq_ring[ldq_head]
                if lq_free > d:
                    stall_lsq += lq_free - d
                    d = lq_free
            elif op == STORE or op == AMO:
                sq_free = stq_ring[stq_head]
                if sq_free > d:
                    stall_lsq += sq_free - d
                    d = sq_free
            dispatch_chain = d

            # ---- issue: operands + issue port ----
            t = d + 1.0
            s1 = src1_a[i]
            if s1 > 0 and reg_ready[s1] > t:
                t = reg_ready[s1]
            s2 = src2_a[i]
            if s2 > 0 and reg_ready[s2] > t:
                t = reg_ready[s2]
            if is_mem:
                ports = mem_ports
            elif is_fp:
                ports = fp_ports
            else:
                ports = int_ports
            pi = 0
            pmin = ports[0]
            for k in range(1, len(ports)):
                if ports[k] < pmin:
                    pmin = ports[k]
                    pi = k
            if pmin > t:
                t = pmin
            ports[pi] = t + 1.0
            if op == DIV and div_free > t:
                t = max(t, div_free)

            # record issue time for IQ occupancy (entry freed at issue)
            ring[head] = t + 1.0
            if is_mem:
                memq_head = (head + 1) % len(memq_ring)
            elif is_fp:
                fpq_head = (head + 1) % len(fpq_ring)
            else:
                intq_head = (head + 1) % len(intq_ring)

            # ---- execute / complete ----
            dst = int(dst_a[i])
            if op == LOAD:
                addr = int(addr_a[i])
                lineaddr = addr >> 6
                st_pending = pending_stores.get(lineaddr)
                if st_pending is not None and st_pending > t:
                    # memory ordering: wait for the older store's data
                    t = st_pending
                complete = float(port.dload(addr, int(t) + 1))
            elif op == STORE:
                addr = int(addr_a[i])
                complete = float(port.dstore(addr, int(t) + 1))
                lineaddr = addr >> 6
                pending_stores[lineaddr] = t + 2.0
                if len(pending_stores) > 4 * cfg.stq:
                    pending_stores.clear()
            elif op == AMO:
                complete = float(port.dstore(int(addr_a[i]), int(t) + 1)) + lat.amo_extra
            else:
                l = lat_of(OpClass(op))
                complete = t + l
                if op == DIV:
                    div_free = complete
            if dst > 0:
                reg_ready[dst] = complete

            # ---- control resolution ----
            if op == BRANCH or op == JUMP or op == CALL or op == RET:
                kind = bru.resolve(op, pc, bool(taken_a[i]), int(tgt_a[i]))
                if kind == BranchUnit.FLUSH:
                    nf = complete + fe_depth
                    if nf > fetch_floor:
                        fetch_floor = nf
                elif kind == BranchUnit.BUBBLE:
                    nf = f + 3.0
                    if nf > fetch_floor:
                        fetch_floor = nf

            # ---- commit (in-order, commit-width limited) ----
            c = commit_chain + d_commit
            if complete + 1.0 > c:
                c = complete + 1.0
            commit_chain = c
            last_commit = c
            rob_ring[rob_head] = c
            rob_head = (rob_head + 1) % rob_size
            if op == LOAD:
                ldq_ring[ldq_head] = c
                ldq_head = (ldq_head + 1) % len(ldq_ring)
            elif op == STORE or op == AMO:
                stq_ring[stq_head] = c
                stq_head = (stq_head + 1) % len(stq_ring)

        self._fetch_chain = fetch_chain
        self._dispatch_chain = dispatch_chain
        self._commit_chain = commit_chain
        self._fetch_floor = fetch_floor
        self._div_free = div_free
        self._cur_line = cur_line
        self._rob_head, self._ldq_head, self._stq_head = rob_head, ldq_head, stq_head
        self._intq_head, self._memq_head, self._fpq_head = intq_head, memq_head, fpq_head
        self._time = int(last_commit) + 1

        return CoreResult(
            cycles=max(1, int(round(last_commit - t0))),
            instructions=n,
            stalls={
                "frontend": int(stall_fe),
                "rob": int(stall_rob),
                "iq": int(stall_iq),
                "lsq": int(stall_lsq),
            },
            branches=bru.stats.branches - br0,
            mispredicts=bru.stats.mispredicts - mp0,
            l1d_misses=port.l1d.stats.misses - l1d_miss0,
            l1i_misses=port.l1i.stats.misses - l1i_miss0,
        )
