"""Common result/statistics types and the core-model interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..isa.trace import Trace

__all__ = ["CoreResult", "CoreModel"]


@dataclass
class CoreResult:
    """Outcome of running a trace on a core timing model."""

    cycles: int
    instructions: int
    #: stall-cycle attribution (approximate, for analysis — keys like
    #: "frontend", "mem", "dep", "structural")
    stalls: dict[str, int] = field(default_factory=dict)
    branches: int = 0
    mispredicts: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def seconds(self, ghz: float) -> float:
        """Wall-clock target time at a given core frequency."""
        return self.cycles / (ghz * 1e9)

    def __add__(self, other: "CoreResult") -> "CoreResult":
        stalls = dict(self.stalls)
        for k, v in other.stalls.items():
            stalls[k] = stalls.get(k, 0) + v
        return CoreResult(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            stalls=stalls,
            branches=self.branches + other.branches,
            mispredicts=self.mispredicts + other.mispredicts,
            l1d_misses=self.l1d_misses + other.l1d_misses,
            l1i_misses=self.l1i_misses + other.l1i_misses,
        )


class CoreModel(abc.ABC):
    """A core timing model bound to a :class:`repro.mem.TilePort`."""

    @abc.abstractmethod
    def run(self, trace: Trace, start_time: int = 0) -> CoreResult:
        """Consume *trace* starting at cycle *start_time*; return timing."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all microarchitectural state (predictors keep warm caches?
        No — reset clears everything; use warmup runs to train)."""
