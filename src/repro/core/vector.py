"""RVV vector-unit timing model (in-order attach).

The SpacemiT K1 implements the 256-bit RISC-V Vector extension v1.0
(paper §3.1.2), but the study ran everything scalar because the FireSim
Rocket/BOOM targets have no vector unit.  This model answers the obvious
follow-up — *how much was left on the table?* — by letting the in-order
core execute vector micro-ops:

* ``VALU``/``VFMA`` occupy the vector datapath for ``ceil(vl_bits /
  lane_bits)`` cycles (a 256-bit op on a 128-bit datapath takes 2 beats);
* ``VLOAD``/``VSTORE`` touch every cache line under the vector access and
  are additionally throughput-limited by the unit's memory width;
* the scalar pipelines are untouched, so scalar-only traces time
  identically whether or not a vector unit is attached.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VectorConfig"]


@dataclass(frozen=True)
class VectorConfig:
    """Vector-unit resources.

    ``vlen_bits`` is the architectural register length; ``lane_bits`` the
    execution datapath per cycle; ``mem_bits_per_cycle`` the load/store
    path into the L1.
    """

    vlen_bits: int = 256
    lane_bits: int = 128
    mem_bits_per_cycle: int = 128
    #: startup cycles per vector instruction (sequencer overhead)
    startup: int = 1

    def __post_init__(self) -> None:
        for name in ("vlen_bits", "lane_bits", "mem_bits_per_cycle"):
            v = getattr(self, name)
            if v <= 0 or v % 8:
                raise ValueError(f"{name} must be a positive multiple of 8")
        if self.startup < 0:
            raise ValueError("startup must be non-negative")

    def exec_beats(self, op_bits: int) -> int:
        """Datapath beats for an arithmetic op over *op_bits* of data."""
        return max(1, -(-op_bits // self.lane_bits))

    def mem_beats(self, nbytes: int) -> int:
        """Beats to move *nbytes* through the vector memory port."""
        return max(1, -(-(nbytes * 8) // self.mem_bits_per_cycle))
