"""repro — Bridging Simulation and Silicon (FireSim vs RISC-V hardware).

A Python reproduction of the SC 2025 RISCV-HPC study comparing FireSim
simulation models (Rocket / BOOM tiles, Chipyard-style configs) against
commercial RISC-V silicon (Banana Pi BPI-F3 / SpacemiT K1 and MILK-V
Pioneer / SOPHON SG2042).

Subpackages
-----------
``repro.isa``
    Micro-op trace IR, RV64IMFD encoder/assembler/interpreter.
``repro.core``
    In-order and out-of-order core timing models, branch predictors.
``repro.mem``
    Caches, TLBs, buses, LLC models, DDR3/DDR4/LPDDR4 DRAM timing.
``repro.soc``
    Chipyard-like SoC configuration and multi-tile systems.
``repro.firesim``
    FireSim-style simulation manager and FPGA host-rate model.
``repro.farm``
    Run-farm orchestration: parallel job scheduling across worker
    processes, content-addressed result caching, fault tolerance.
``repro.silicon``
    Reference "hardware" models standing in for the physical boards.
``repro.smpi``
    Simulated MPI runtime for multi-rank workloads.
``repro.workloads``
    MicroBench (40 kernels), NPB (CG/EP/IS/MG), UME, LAMMPS-mini.
``repro.analysis``
    Relative-speedup metric, tuning loop, experiment registry, reports.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
