"""Shared retry schedule for the batch farm and the serve layer.

Both the :class:`~repro.farm.runfarm.RunFarm` relaunch path and the
:class:`~repro.serve.server.FarmServer` re-queue path used to hard-code
``min(backoff_s * attempt, 2.0)``.  That linear ramp is now one small
policy object so the two layers cannot drift and operators can tune the
schedule (``--backoff`` base, growth factor, cap) in one place.

The default is exponential: attempt *n* waits ``base_s * factor**(n-1)``
seconds, capped at ``cap_s``.  ``factor=1.0`` recovers a flat delay and
``cap_s`` bounds the tail so a long retry budget never waits minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic relaunch-delay schedule (no jitter: replayable)."""

    base_s: float = 0.25    #: delay before the first retry
    factor: float = 2.0     #: per-attempt growth
    cap_s: float = 2.0      #: upper bound on any single delay

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {self.base_s}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.cap_s < 0:
            raise ValueError(f"cap_s must be >= 0, got {self.cap_s}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before relaunching after failed *attempt*
        (1-based).  Exponential in the attempt number, capped."""
        if self.base_s == 0.0:
            return 0.0
        n = max(1, int(attempt))
        return min(self.base_s * self.factor ** (n - 1), self.cap_s)

    def describe(self) -> dict[str, float]:
        return {"base_s": self.base_s, "factor": self.factor,
                "cap_s": self.cap_s}
