"""Run-farm orchestration: parallel sweeps, result caching, fault tolerance.

FireSim's manager turns "one figure" into a batch of independent
simulations farmed across FPGA hosts; this package is the same substrate
for the reproduction.  Entry points:

* :class:`Job` — spec of one simulation (config + workload + ranks + seed).
* :class:`RunFarm` / :func:`run_jobs` — shard a job list across worker
  processes with per-job timeouts and bounded retries; merged results
  are bit-identical to a serial run regardless of worker count.
* :class:`ResultCache` — content-addressed on-disk payload cache keyed
  by the full job identity; warm re-runs simulate nothing.
* :class:`SharedResultStore` — the cache promoted to a cross-run store:
  LRU size budgets and durable hit/miss/eviction stats safe under
  concurrent server workers (``docs/serving.md``).
* :class:`DeployManager` — pluggable host-slot backends (local pool,
  FireSim-style externally provisioned fleet); results are
  bit-identical across backends.
* :class:`FarmStats` — scheduler counters (cache hits, retries,
  timeouts), exported as a :class:`repro.telemetry.Snapshot`.

Environment defaults: ``$REPRO_WORKERS`` (worker count) and
``$REPRO_CACHE_DIR`` (cache location) apply wherever the caller does not
say otherwise, which is how ``scripts/reproduce_all.sh`` parallelises a
full reproduction.  See ``docs/farm.md``.
"""

from .cache import CACHE_SCHEMA, ResultCache, cache_key
from .deploy import (
    DeployManager,
    ExternallyProvisionedDeployManager,
    HostHealth,
    HostSpec,
    LocalDeployManager,
    parse_deploy_spec,
    resolve_deploy,
)
from .job import JOB_KINDS, Job, JobResult, execute_job
from .retry import RetryPolicy
from .runfarm import (
    FARM_SCHEMA,
    FarmEvent,
    FarmStats,
    RunFarm,
    resolve_cache,
    resolve_workers,
    run_jobs,
)
from .store import STORE_SCHEMA, SharedResultStore, StoreStats

__all__ = [
    "CACHE_SCHEMA",
    "DeployManager",
    "ExternallyProvisionedDeployManager",
    "FARM_SCHEMA",
    "FarmEvent",
    "FarmStats",
    "HostHealth",
    "HostSpec",
    "JOB_KINDS",
    "Job",
    "JobResult",
    "LocalDeployManager",
    "ResultCache",
    "RetryPolicy",
    "RunFarm",
    "STORE_SCHEMA",
    "SharedResultStore",
    "StoreStats",
    "cache_key",
    "execute_job",
    "parse_deploy_spec",
    "resolve_cache",
    "resolve_deploy",
    "resolve_workers",
    "run_jobs",
]
