"""Run-farm orchestration: parallel sweeps, result caching, fault tolerance.

FireSim's manager turns "one figure" into a batch of independent
simulations farmed across FPGA hosts; this package is the same substrate
for the reproduction.  Entry points:

* :class:`Job` — spec of one simulation (config + workload + ranks + seed).
* :class:`RunFarm` / :func:`run_jobs` — shard a job list across worker
  processes with per-job timeouts and bounded retries; merged results
  are bit-identical to a serial run regardless of worker count.
* :class:`ResultCache` — content-addressed on-disk payload cache keyed
  by the full job identity; warm re-runs simulate nothing.
* :class:`FarmStats` — scheduler counters (cache hits, retries,
  timeouts), exported as a :class:`repro.telemetry.Snapshot`.

Environment defaults: ``$REPRO_WORKERS`` (worker count) and
``$REPRO_CACHE_DIR`` (cache location) apply wherever the caller does not
say otherwise, which is how ``scripts/reproduce_all.sh`` parallelises a
full reproduction.  See ``docs/farm.md``.
"""

from .cache import CACHE_SCHEMA, ResultCache, cache_key
from .job import JOB_KINDS, Job, JobResult, execute_job
from .runfarm import (
    FARM_SCHEMA,
    FarmEvent,
    FarmStats,
    RunFarm,
    resolve_cache,
    resolve_workers,
    run_jobs,
)

__all__ = [
    "CACHE_SCHEMA",
    "FARM_SCHEMA",
    "FarmEvent",
    "FarmStats",
    "JOB_KINDS",
    "Job",
    "JobResult",
    "ResultCache",
    "RunFarm",
    "cache_key",
    "execute_job",
    "resolve_cache",
    "resolve_workers",
    "run_jobs",
]
