"""Deploy managers: pluggable run-farm host-slot backends.

FireSim separates *what* to run (the manager's job list) from *where* to
run it (a run farm of provisioned hosts).  Its ``externally_provisioned``
run farm takes a fixed fleet of pre-existing hosts, each with a declared
simulation capacity, and the manager packs simulations onto free slots.
This module is the same split for the reproduction: a
:class:`DeployManager` owns the host-slot inventory, and the scheduler
(:class:`~repro.farm.runfarm.RunFarm` or the ``repro.serve`` server)
asks it for a slot before launching each worker and hands the slot back
when the worker is reaped.

Backends:

* :class:`LocalDeployManager` — one host (``local``) with N identical
  slots; byte-for-byte the farm's historical ``workers=N`` pool.
* :class:`ExternallyProvisionedDeployManager` — a fixed fleet of named
  hosts with per-host capacities (FireSim's ``externally_provisioned``
  analogue).  Slot assignment is deterministic (least-loaded fraction,
  ties broken by declaration order) so a re-run packs jobs onto the
  same hosts.

Where a job runs is **provenance, never identity**: every backend
launches the same worker entry point on the same machine, so payloads
are bit-identical across backends by construction — the host name only
lands in :class:`~repro.farm.job.JobResult` host-side metadata.

Spec strings (``--deploy`` / ``$REPRO_DEPLOY``)::

    local            one slot (serial)
    local:8          eight local slots
    hosts:a=2,b=4    externally provisioned: host a (2 slots), b (4)

Host health
-----------

Every host carries a :class:`HostHealth` record driven by the scheduler
reporting outcomes back (:meth:`DeployManager.report_success` /
:meth:`DeployManager.report_failure`).  Only *host-correlated* failures
(worker crashes, wall-clock timeouts — not a job raising in its own
workload) count against a host.  A consecutive-failure circuit breaker
moves a host ``healthy -> suspect -> quarantined``:

* **healthy** — preferred for placement;
* **suspect** — still schedulable, but only when no healthy host has a
  free slot;
* **quarantined** — excluded from :meth:`DeployManager.acquire` except
  for deterministic *half-open probe* jobs: once ``probe_interval``
  acquire ticks have passed, a single in-flight job may land on the
  host; success restores it to healthy, failure re-quarantines it with
  an exponentially growing probe delay.  When every host is quarantined
  the breaker fails open (a probe is allowed early) so the farm cannot
  deadlock itself.

Everything is counted in acquire ticks, not wall-clock, so a replay of
the same acquire/report sequence makes identical placement decisions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "DeployManager",
    "ExternallyProvisionedDeployManager",
    "HostHealth",
    "HostSpec",
    "LocalDeployManager",
    "parse_deploy_spec",
    "resolve_deploy",
]

#: probe-delay growth is capped at probe_interval * 2**_MAX_PROBE_BACKOFF
_MAX_PROBE_BACKOFF = 4


@dataclass(frozen=True)
class HostSpec:
    """One run-farm host: a name and how many simulations it can hold."""

    name: str
    slots: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.slots < 1:
            raise ValueError(f"host {self.name!r} needs >= 1 slot, "
                             f"got {self.slots}")


@dataclass
class HostHealth:
    """Circuit-breaker state for one host (see module docstring)."""

    state: str = "healthy"          #: healthy | suspect | quarantined
    consecutive_failures: int = 0   #: host-correlated failures in a row
    failures: int = 0               #: lifetime host-correlated failures
    successes: int = 0
    quarantines: int = 0            #: times the breaker fully opened
    probe_due: int = 0              #: acquire tick when a probe unlocks
    probe_backoff: int = field(default=1, repr=False)
    probing: bool = field(default=False, repr=False)

    def describe(self) -> dict[str, Any]:
        return {"state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "failures": self.failures,
                "successes": self.successes,
                "quarantines": self.quarantines}


class DeployManager:
    """Host-slot inventory shared by every run-farm backend.

    The scheduler contract is two calls: :meth:`acquire` returns the
    name of a host with a free slot (or ``None`` when the farm is
    saturated) and marks it busy; :meth:`release` frees it.  Acquisition
    order is deterministic for a fixed acquire/release sequence.

    Schedulers that want the circuit breaker additionally call
    :meth:`report_success` / :meth:`report_failure` after each reaped
    worker; a manager that never receives reports behaves exactly like
    the pre-health inventory (every host stays healthy forever).
    """

    kind = "base"

    def __init__(self, hosts: Sequence[HostSpec], *,
                 suspect_after: int = 2,
                 quarantine_after: int = 3,
                 probe_interval: int = 8) -> None:
        if not hosts:
            raise ValueError("a deploy manager needs at least one host")
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names in {names}")
        if suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {suspect_after}")
        if quarantine_after < suspect_after:
            raise ValueError(
                f"quarantine_after ({quarantine_after}) must be >= "
                f"suspect_after ({suspect_after})")
        if probe_interval < 1:
            raise ValueError(f"probe_interval must be >= 1, "
                             f"got {probe_interval}")
        self.hosts = tuple(hosts)
        self.suspect_after = int(suspect_after)
        self.quarantine_after = int(quarantine_after)
        self.probe_interval = int(probe_interval)
        self._busy: dict[str, int] = {h.name: 0 for h in hosts}
        self._health: dict[str, HostHealth] = {h.name: HostHealth()
                                               for h in hosts}
        self._tick = 0

    @property
    def total_slots(self) -> int:
        return sum(h.slots for h in self.hosts)

    @property
    def busy_slots(self) -> int:
        return sum(self._busy.values())

    @property
    def free_slots(self) -> int:
        return self.total_slots - self.busy_slots

    def acquire(self) -> str | None:
        """Claim one slot; returns its host name, or None when full.

        Healthy hosts are preferred over suspect ones; within a class
        the host with the lowest occupancy *fraction* wins (spreading
        load the way FireSim packs FPGAs across hosts), declaration
        order breaking ties, so assignment is reproducible.  Quarantined
        hosts are skipped entirely except for half-open probes (see
        module docstring).
        """
        self._tick += 1
        best: HostSpec | None = None
        best_key: tuple[bool, float, int] | None = None
        for i, h in enumerate(self.hosts):
            busy = self._busy[h.name]
            if busy >= h.slots:
                continue
            hh = self._health[h.name]
            if hh.state == "quarantined":
                continue
            key = (hh.state == "suspect", busy / h.slots, i)
            if best_key is None or key < best_key:
                best, best_key = h, key
        if best is not None:
            self._busy[best.name] += 1
            return best.name
        probe = self._pick_probe(require_due=True)
        if probe is None and all(hh.state == "quarantined"
                                 for hh in self._health.values()):
            # fail open: every host is quarantined, so waiting for the
            # probe window would deadlock the farm — probe early
            probe = self._pick_probe(require_due=False)
        if probe is not None:
            self._health[probe].probing = True
            self._busy[probe] += 1
            return probe
        return None

    def _pick_probe(self, *, require_due: bool) -> str | None:
        """The quarantined host (if any) due for a half-open probe:
        one in-flight probe per host, earliest ``probe_due`` first,
        declaration order breaking ties."""
        best: str | None = None
        best_key: tuple[int, int] | None = None
        for i, h in enumerate(self.hosts):
            hh = self._health[h.name]
            if (hh.state != "quarantined" or hh.probing
                    or self._busy[h.name] >= h.slots):
                continue
            if require_due and self._tick < hh.probe_due:
                continue
            key = (hh.probe_due, i)
            if best_key is None or key < best_key:
                best, best_key = h.name, key
        return best

    def release(self, host: str) -> None:
        if self._busy.get(host, 0) <= 0:
            raise ValueError(f"release of idle/unknown host {host!r}")
        self._busy[host] -= 1
        self._health[host].probing = False

    # -- health reporting ----------------------------------------------------

    def health(self, host: str) -> HostHealth:
        try:
            return self._health[host]
        except KeyError:
            raise ValueError(f"unknown host {host!r}") from None

    def report_success(self, host: str) -> None:
        """A worker on *host* finished cleanly: close the breaker."""
        hh = self.health(host)
        hh.successes += 1
        hh.consecutive_failures = 0
        hh.probe_backoff = 1
        hh.state = "healthy"

    def report_failure(self, host: str, *,
                       job_intrinsic: bool = False) -> None:
        """A worker on *host* crashed/timed out.

        ``job_intrinsic=True`` means the failure was attributed to the
        job itself (its workload raised, or it failed identically on
        other hosts) and must not count against the host.
        """
        hh = self.health(host)
        if job_intrinsic:
            return
        hh.failures += 1
        hh.consecutive_failures += 1
        if hh.state == "quarantined":
            # a failed half-open probe: back off exponentially
            hh.quarantines += 1
            hh.probe_backoff = min(hh.probe_backoff * 2,
                                   2 ** _MAX_PROBE_BACKOFF)
            hh.probe_due = self._tick + self.probe_interval * hh.probe_backoff
        elif hh.consecutive_failures >= self.quarantine_after:
            hh.state = "quarantined"
            hh.quarantines += 1
            hh.probe_backoff = 1
            hh.probe_due = self._tick + self.probe_interval
        elif hh.consecutive_failures >= self.suspect_after:
            hh.state = "suspect"

    def quarantined_hosts(self) -> list[str]:
        return [h.name for h in self.hosts
                if self._health[h.name].state == "quarantined"]

    def describe(self) -> dict[str, Any]:
        """JSON-able inventory summary (manifests, `repro status`)."""
        return {
            "kind": self.kind,
            "total_slots": self.total_slots,
            "hosts": [{"name": h.name, "slots": h.slots,
                       "busy": self._busy[h.name],
                       **self._health[h.name].describe()}
                      for h in self.hosts],
        }

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.busy_slots}/"
                f"{self.total_slots} slots busy)")


class LocalDeployManager(DeployManager):
    """The historical multiprocessing pool: one host, N identical slots."""

    kind = "local"

    def __init__(self, workers: int = 1, **health_kw: int) -> None:
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"local deploy needs >= 1 worker, "
                             f"got {workers}")
        super().__init__([HostSpec("local", workers)], **health_kw)


class ExternallyProvisionedDeployManager(DeployManager):
    """A fixed fleet of named hosts with per-host simulation capacity.

    Modeled on FireSim's ``externally_provisioned`` run farm: the fleet
    is declared up front (nothing is launched or torn down), and the
    manager only packs simulations onto the declared slots.  Workers
    still execute locally — the host name is provenance that flows into
    ``JobResult.host`` and the run manifest.
    """

    kind = "externally-provisioned"

    def __init__(self, hosts: Sequence[HostSpec | tuple[str, int] | str],
                 **health_kw: int) -> None:
        specs: list[HostSpec] = []
        for h in hosts:
            if isinstance(h, HostSpec):
                specs.append(h)
            elif isinstance(h, str):
                specs.append(HostSpec(h))
            else:
                name, slots = h
                specs.append(HostSpec(str(name), int(slots)))
        super().__init__(specs, **health_kw)


def parse_deploy_spec(spec: str) -> DeployManager:
    """Build a deploy manager from a spec string (see module docstring)."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty deploy spec")
    if spec == "local":
        return LocalDeployManager(1)
    if spec.startswith("local:"):
        try:
            workers = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad local deploy spec {spec!r} "
                             "(want local:<workers>)") from None
        # a parsed-but-bad count (local:0, local:-2) propagates the
        # LocalDeployManager ValueError, which names the real problem
        return LocalDeployManager(workers)
    if spec.startswith("hosts:"):
        body = spec.split(":", 1)[1]
        hosts: list[HostSpec] = []
        for part in body.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                name, _, slots = part.partition("=")
                try:
                    hosts.append(HostSpec(name.strip(), int(slots)))
                except ValueError:
                    raise ValueError(
                        f"bad host entry {part!r} in {spec!r} "
                        "(want name=slots)") from None
            else:
                hosts.append(HostSpec(part))
        if not hosts:
            raise ValueError(f"deploy spec {spec!r} names no hosts")
        return ExternallyProvisionedDeployManager(hosts)
    raise ValueError(
        f"unknown deploy spec {spec!r}; want 'local[:N]' or "
        "'hosts:name=slots,...'")


def resolve_deploy(deploy: DeployManager | str | None = None,
                   workers: int | None = None) -> DeployManager:
    """Normalise a deploy argument the way :func:`resolve_workers` does.

    Precedence: an explicit manager or spec string, else ``$REPRO_DEPLOY``,
    else a :class:`LocalDeployManager` sized by *workers* (which itself
    falls back to ``$REPRO_WORKERS``, then 1).
    """
    if isinstance(deploy, DeployManager):
        return deploy
    if isinstance(deploy, str):
        return parse_deploy_spec(deploy)
    env = os.environ.get("REPRO_DEPLOY")
    if env:
        return parse_deploy_spec(env)
    from .runfarm import resolve_workers
    return LocalDeployManager(resolve_workers(workers))
