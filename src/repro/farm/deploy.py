"""Deploy managers: pluggable run-farm host-slot backends.

FireSim separates *what* to run (the manager's job list) from *where* to
run it (a run farm of provisioned hosts).  Its ``externally_provisioned``
run farm takes a fixed fleet of pre-existing hosts, each with a declared
simulation capacity, and the manager packs simulations onto free slots.
This module is the same split for the reproduction: a
:class:`DeployManager` owns the host-slot inventory, and the scheduler
(:class:`~repro.farm.runfarm.RunFarm` or the ``repro.serve`` server)
asks it for a slot before launching each worker and hands the slot back
when the worker is reaped.

Backends:

* :class:`LocalDeployManager` — one host (``local``) with N identical
  slots; byte-for-byte the farm's historical ``workers=N`` pool.
* :class:`ExternallyProvisionedDeployManager` — a fixed fleet of named
  hosts with per-host capacities (FireSim's ``externally_provisioned``
  analogue).  Slot assignment is deterministic (least-loaded fraction,
  ties broken by declaration order) so a re-run packs jobs onto the
  same hosts.

Where a job runs is **provenance, never identity**: every backend
launches the same worker entry point on the same machine, so payloads
are bit-identical across backends by construction — the host name only
lands in :class:`~repro.farm.job.JobResult` host-side metadata.

Spec strings (``--deploy`` / ``$REPRO_DEPLOY``)::

    local            one slot (serial)
    local:8          eight local slots
    hosts:a=2,b=4    externally provisioned: host a (2 slots), b (4)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Sequence

__all__ = [
    "DeployManager",
    "ExternallyProvisionedDeployManager",
    "HostSpec",
    "LocalDeployManager",
    "parse_deploy_spec",
    "resolve_deploy",
]


@dataclass(frozen=True)
class HostSpec:
    """One run-farm host: a name and how many simulations it can hold."""

    name: str
    slots: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.slots < 1:
            raise ValueError(f"host {self.name!r} needs >= 1 slot, "
                             f"got {self.slots}")


class DeployManager:
    """Host-slot inventory shared by every run-farm backend.

    The scheduler contract is two calls: :meth:`acquire` returns the
    name of a host with a free slot (or ``None`` when the farm is
    saturated) and marks it busy; :meth:`release` frees it.  Acquisition
    order is deterministic for a fixed acquire/release sequence.
    """

    kind = "base"

    def __init__(self, hosts: Sequence[HostSpec]) -> None:
        if not hosts:
            raise ValueError("a deploy manager needs at least one host")
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names in {names}")
        self.hosts = tuple(hosts)
        self._busy: dict[str, int] = {h.name: 0 for h in hosts}

    @property
    def total_slots(self) -> int:
        return sum(h.slots for h in self.hosts)

    @property
    def busy_slots(self) -> int:
        return sum(self._busy.values())

    @property
    def free_slots(self) -> int:
        return self.total_slots - self.busy_slots

    def acquire(self) -> str | None:
        """Claim one slot; returns its host name, or None when full.

        Picks the host with the lowest occupancy *fraction* (spreading
        load the way FireSim packs FPGAs across hosts), declaration
        order breaking ties, so assignment is reproducible.
        """
        best: HostSpec | None = None
        best_frac = 2.0
        for h in self.hosts:
            busy = self._busy[h.name]
            if busy >= h.slots:
                continue
            frac = busy / h.slots
            if frac < best_frac:
                best, best_frac = h, frac
        if best is None:
            return None
        self._busy[best.name] += 1
        return best.name

    def release(self, host: str) -> None:
        if self._busy.get(host, 0) <= 0:
            raise ValueError(f"release of idle/unknown host {host!r}")
        self._busy[host] -= 1

    def describe(self) -> dict[str, Any]:
        """JSON-able inventory summary (manifests, `repro status`)."""
        return {
            "kind": self.kind,
            "total_slots": self.total_slots,
            "hosts": [{"name": h.name, "slots": h.slots,
                       "busy": self._busy[h.name]} for h in self.hosts],
        }

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.busy_slots}/"
                f"{self.total_slots} slots busy)")


class LocalDeployManager(DeployManager):
    """The historical multiprocessing pool: one host, N identical slots."""

    kind = "local"

    def __init__(self, workers: int = 1) -> None:
        super().__init__([HostSpec("local", max(1, int(workers)))])


class ExternallyProvisionedDeployManager(DeployManager):
    """A fixed fleet of named hosts with per-host simulation capacity.

    Modeled on FireSim's ``externally_provisioned`` run farm: the fleet
    is declared up front (nothing is launched or torn down), and the
    manager only packs simulations onto the declared slots.  Workers
    still execute locally — the host name is provenance that flows into
    ``JobResult.host`` and the run manifest.
    """

    kind = "externally-provisioned"

    def __init__(self, hosts: Sequence[HostSpec | tuple[str, int] | str],
                 ) -> None:
        specs: list[HostSpec] = []
        for h in hosts:
            if isinstance(h, HostSpec):
                specs.append(h)
            elif isinstance(h, str):
                specs.append(HostSpec(h))
            else:
                name, slots = h
                specs.append(HostSpec(str(name), int(slots)))
        super().__init__(specs)


def parse_deploy_spec(spec: str) -> DeployManager:
    """Build a deploy manager from a spec string (see module docstring)."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty deploy spec")
    if spec == "local":
        return LocalDeployManager(1)
    if spec.startswith("local:"):
        try:
            return LocalDeployManager(int(spec.split(":", 1)[1]))
        except ValueError:
            raise ValueError(f"bad local deploy spec {spec!r} "
                             "(want local:<workers>)") from None
    if spec.startswith("hosts:"):
        body = spec.split(":", 1)[1]
        hosts: list[HostSpec] = []
        for part in body.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                name, _, slots = part.partition("=")
                try:
                    hosts.append(HostSpec(name.strip(), int(slots)))
                except ValueError:
                    raise ValueError(
                        f"bad host entry {part!r} in {spec!r} "
                        "(want name=slots)") from None
            else:
                hosts.append(HostSpec(part))
        if not hosts:
            raise ValueError(f"deploy spec {spec!r} names no hosts")
        return ExternallyProvisionedDeployManager(hosts)
    raise ValueError(
        f"unknown deploy spec {spec!r}; want 'local[:N]' or "
        "'hosts:name=slots,...'")


def resolve_deploy(deploy: DeployManager | str | None = None,
                   workers: int | None = None) -> DeployManager:
    """Normalise a deploy argument the way :func:`resolve_workers` does.

    Precedence: an explicit manager or spec string, else ``$REPRO_DEPLOY``,
    else a :class:`LocalDeployManager` sized by *workers* (which itself
    falls back to ``$REPRO_WORKERS``, then 1).
    """
    if isinstance(deploy, DeployManager):
        return deploy
    if isinstance(deploy, str):
        return parse_deploy_spec(deploy)
    env = os.environ.get("REPRO_DEPLOY")
    if env:
        return parse_deploy_spec(env)
    from .runfarm import resolve_workers
    return LocalDeployManager(resolve_workers(workers))
