"""Job specs and the worker-side execution of one farmed simulation.

A :class:`Job` is the unit FireSim's manager ships to a run-farm host:
the complete recipe for one independent simulation — which SoC
configuration, which workload, how many ranks, which seed.  Jobs are
plain frozen dataclasses so they pickle across the process boundary and
hash stably into the result cache (see :mod:`repro.farm.cache`).

:func:`execute_job` is the *only* execution path: the serial fallback,
every pool worker, and the cache-fill path all call it, which is what
makes farmed results bit-identical to serial runs — the payload a job
produces depends only on the job, never on which process ran it or in
what order.

Payloads are JSON-trees (ints, floats, strings, lists, dicts) rather
than live objects: they cross the worker pipe, land in the on-disk
cache, and are rehydrated into :class:`~repro.firesim.manager.SimulationReport`
objects by the callers that want them.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..soc.config import SoCConfig

__all__ = ["ExecContext", "Job", "JobResult", "JOB_KINDS", "execute_job",
           "execute_job_meta"]


@dataclass
class ExecContext:
    """Host-side execution context for one attempt of one job.

    Everything here is *provenance*, never identity: a job's payload must
    not depend on any of it (checkpoint resume is bit-identical, faults
    only kill/delay, ``in_process`` only selects how a kill manifests).
    """

    #: injected fault for this (job, attempt), from a FaultPlan
    fault: Any = None
    #: directory for mid-run checkpoints (None: checkpointing off)
    checkpoint_dir: str | os.PathLike | None = None
    #: quanta between checkpoint saves
    checkpoint_every: int = 8
    #: True when running in the caller's process (serial mode)
    in_process: bool = True
    #: instrumentation recipe (``InstrumentSpec.to_dict()`` form) to
    #: attach to kernel jobs; None leaves runs uninstrumented
    instrument_spec: dict[str, Any] | None = None
    #: directory for per-job instrument streams (``<label>.jsonl``,
    #: tail-able while the job runs); None keeps streams in memory
    instrument_dir: str | os.PathLike | None = None
    #: filled by the runner: {"resumed": bool, "checkpoints": int,
    #: "stream": path}
    meta: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Job:
    """One independent simulation: config + workload + ranks + seed."""

    config: SoCConfig
    kind: str                   #: "kernel" | "sweep" | "npb" | "selftest" | "checkprog"
    workload: str               #: kernel name / NPB benchmark / selftest mode
    seed: int = 0
    ranks: int = 1
    #: sorted (key, value) pairs of kind-specific knobs (scale, cls, ...)
    params: tuple[tuple[str, Any], ...] = ()
    #: per-job timeout override (None: use the farm-wide timeout)
    timeout_s: float | None = None
    #: selftest jobs carry injected faults and must never be cached
    cacheable: bool = True

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; available: {sorted(JOB_KINDS)}"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def kernel(cls, config: SoCConfig, name: str, scale: float = 1.0,
               seed: int = 0, warmup: bool = True,
               timeout_s: float | None = None,
               quantum: int | None = None,
               chunk: int | None = None) -> "Job":
        """A MicroBench kernel run (the fig1/fig2 inner loop).

        With *quantum* set, the measured pass runs through the token
        lockstep path in quanta of that many cycles — the execution mode
        that supports mid-run checkpointing and farm resume.  Chunked
        lockstep timing differs (legitimately) from the monolithic path,
        so the quantum is part of the job's identity: compare and cache
        only runs with identical execution options.  ``chunk`` defaults
        to ``quantum // 2``.
        """
        params: list[tuple[str, Any]] = [
            ("scale", float(scale)), ("warmup", bool(warmup))]
        if quantum is not None:
            params.append(("quantum", int(quantum)))
            if chunk is not None:
                params.append(("chunk", int(chunk)))
        return cls(config=config, kind="kernel", workload=name, seed=seed,
                   params=tuple(sorted(params)), timeout_s=timeout_s)

    @classmethod
    def sweep(cls, configs: Sequence[SoCConfig], name: str,
              scale: float = 1.0, seed: int = 0, warmup: bool = True,
              timeout_s: float | None = None) -> "Job":
        """One config-batched kernel sweep: every config, one compiled trace.

        The worker runs :func:`repro.accel.batch.batched_sweep` — the
        trace is compiled once and all configurations are evaluated over
        it in a single config-vectorized pass.  The payload maps config
        name to exactly the payload the matching ``Job.kernel`` would
        produce (the ``batch`` check tier enforces this bit-for-bit).
        Config names must be unique: they key the payload and the
        per-config checkpoint/resume bookkeeping.
        """
        configs = tuple(configs)
        if not configs:
            raise ValueError("sweep needs at least one config")
        names = [c.name for c in configs]
        dup = {n for n in names if names.count(n) > 1}
        if dup:
            raise ValueError(
                f"sweep configs must have unique names, got duplicates: "
                f"{sorted(dup)}")
        params: list[tuple[str, Any]] = [
            ("scale", float(scale)), ("warmup", bool(warmup)),
            ("configs", configs)]
        return cls(config=configs[0], kind="sweep", workload=name, seed=seed,
                   params=tuple(sorted(params)), timeout_s=timeout_s)

    @classmethod
    def npb(cls, config: SoCConfig, benchmark: str, ranks: int = 1,
            npb_class: str = "A", timeout_s: float | None = None) -> "Job":
        """An NPB benchmark run across *ranks* MPI ranks."""
        return cls(config=config, kind="npb", workload=benchmark, ranks=ranks,
                   params=(("cls", npb_class),), timeout_s=timeout_s)

    @classmethod
    def checkprog(cls, config: SoCConfig, name: str, source: str,
                  base: int = 0x1_0000, fuel: int = 200_000,
                  timeout_s: float | None = None) -> "Job":
        """A differential-checking program (see :mod:`repro.check`).

        *source* is RISC-V assembly text; the worker assembles it,
        interprets it for its micro-op trace, and times the trace on
        *config*.  The payload carries the full architectural result
        (register files, memory digest) plus the timing summary, so a
        farmed run can be diffed bit-for-bit against a serial one.
        """
        return cls(config=config, kind="checkprog", workload=name,
                   params=(("base", int(base)), ("fuel", int(fuel)),
                           ("source", source)),
                   timeout_s=timeout_s)

    @classmethod
    def selftest(cls, mode: str = "ok", config: SoCConfig | None = None,
                 timeout_s: float | None = None, **params: Any) -> "Job":
        """A fault-injection job for exercising the farm itself.

        Modes: ``ok`` (return a value), ``raise`` (always fail),
        ``hang`` (sleep ``sleep_s``, default 60), ``flaky`` (fail the
        first ``fail_times`` attempts, then succeed).
        """
        if config is None:
            from ..soc.presets import ROCKET1

            config = ROCKET1
        return cls(config=config, kind="selftest", workload=mode,
                   params=tuple(sorted(params.items())),
                   timeout_s=timeout_s, cacheable=False)

    # -- identity ------------------------------------------------------------

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    @property
    def label(self) -> str:
        if self.kind == "sweep":
            nconf = len(self.param("configs", ()))
            return f"{self.workload}@sweep[{nconf}]"
        return f"{self.workload}@{self.config.name}" + (
            f"x{self.ranks}" if self.ranks > 1 else "")

    def describe(self) -> dict[str, Any]:
        """Canonical identity tree: everything the result depends on.

        The cache key is a hash of exactly this tree, so two jobs collide
        iff they would produce the same payload — the full ``SoCConfig``
        contents are included, not just the config *name*, which is what
        keeps swept/composed variants (``Rocket1[4]``) distinct.
        """
        params: dict[str, Any] = {}
        for k, v in self.params:
            if (isinstance(v, tuple) and v
                    and all(dataclasses.is_dataclass(c) for c in v)):
                # sweep config tuples: hash their full contents, not the
                # (unserializable, repr-unstable) dataclass objects
                v = [dataclasses.asdict(c) for c in v]
            params[k] = v
        return {
            "kind": self.kind,
            "workload": self.workload,
            "seed": self.seed,
            "ranks": self.ranks,
            "params": params,
            "config": dataclasses.asdict(self.config),
        }


@dataclass
class JobResult:
    """Outcome of one job as the farm saw it (payload + provenance)."""

    job: Job
    index: int                  #: position in the submitted job list
    status: str = "ok"          #: "ok" | "failed" | "interrupted"
    payload: dict[str, Any] | None = None
    attempts: int = 0           #: executions performed (0 for a cache hit)
    from_cache: bool = False
    error: str | None = None    #: last error when status != "ok"
    elapsed_s: float = 0.0      #: host wall-clock of the final attempt
    #: final successful attempt resumed from a mid-run checkpoint
    resumed: bool = False
    #: deploy-manager host slot that ran the final attempt (provenance —
    #: payloads are bit-identical regardless of which host produced them)
    host: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __str__(self) -> str:
        if not self.ok:
            return f"[{self.job.label}] FAILED: {self.error}"
        src = "cache" if self.from_cache else f"{self.attempts} attempt(s)"
        cyc = self.payload.get("cycles") if self.payload else None
        body = f"{cyc:,} cycles" if cyc is not None else "ok"
        return f"[{self.job.label}] {body} ({src})"


# -- runners ----------------------------------------------------------------


def _checkpoint_file(job: Job, ctx: ExecContext) -> Path | None:
    if ctx.checkpoint_dir is None:
        return None
    from .cache import cache_key
    return Path(ctx.checkpoint_dir) / f"{cache_key(job)}.ckpt"


def _job_instrument(job: Job, ctx: ExecContext):
    """Build the per-job Instrument an ExecContext asks for (or None).

    Streams land at ``<instrument_dir>/<label>.jsonl`` so an operator
    (or ``repro tail``) can follow a job while it is still running.
    Instrumentation is host-side provenance: it never changes the
    payload, which stays a pure function of the job.
    """
    if ctx.instrument_spec is None:
        return None
    from ..instrument import Instrument, InstrumentSpec
    spec = InstrumentSpec.from_dict(ctx.instrument_spec)
    path = None
    if ctx.instrument_dir is not None:
        path = Path(ctx.instrument_dir) / f"{job.label}.jsonl"
        ctx.meta["stream"] = str(path)
    return Instrument(spec, path=str(path) if path is not None else None)


def _run_kernel_job(job: Job, attempt: int, ctx: ExecContext) -> dict[str, Any]:
    """Run one kernel job, sealing any attached instrument stream on the
    way out (success or failure — a torn stream should only ever mean a
    killed worker)."""
    instrument = _job_instrument(job, ctx)
    try:
        return _run_kernel_job_inner(job, attempt, ctx, instrument)
    finally:
        if instrument is not None:
            instrument.seal()


def _run_kernel_job_inner(job: Job, attempt: int, ctx: ExecContext,
                          instrument=None) -> dict[str, Any]:
    """Replicate :func:`repro.workloads.microbench.run_kernel` exactly
    (same scale clamp, same warmup pass) and add the telemetry capture
    that `repro stats` performs, so one farmed run yields cycles,
    counters, and the CPI stack in a single simulation.

    Jobs carrying a ``quantum`` param run the measured pass through the
    lockstep path; with ``ctx.checkpoint_dir`` set, that pass saves a
    checkpoint every ``ctx.checkpoint_every`` quanta and a later attempt
    resumes from it bit-identically instead of restarting from zero.
    """
    from ..accel import memo
    from ..soc.system import System
    from ..telemetry import StatsRegistry, Snapshot, cpi_stack
    from ..workloads.microbench import get_kernel

    kern = get_kernel(job.workload)
    if kern.spec.broken:
        raise RuntimeError(f"kernel {kern.spec.name} is marked broken")
    cfg = job.config
    scale = max(float(job.param("scale", 1.0)), kern.min_harness_scale)
    accel = getattr(cfg, "accel", "off") == "on"
    if accel:
        trace = memo.shared_trace(
            job.workload, scale, job.seed,
            lambda: kern.build(scale=scale, seed=job.seed))
    else:
        trace = kern.build(scale=scale, seed=job.seed)
    system = System(cfg)
    if instrument is not None:
        system.attach_instrument(instrument)
    registry = StatsRegistry(system)
    quantum = job.param("quantum")
    mkey = None

    if quantum is None:
        do_warmup = bool(job.param("warmup", True) and kern.needs_warmup)
        # fresh-system serial runs are a pure function of (trace, config):
        # memoize the whole payload (in-process workers and repeated
        # sweep points skip the simulation entirely) — unless the
        # operator asked for a stream, which only a real run can produce
        if (accel and job.cacheable and ctx.fault is None
                and instrument is None and memo.memo_enabled()):
            mkey = memo.memo_key(trace, cfg, system.uncore,
                                 extra=("farm_kernel", do_warmup))
            hit = memo.memo_get(mkey)
            if hit is not None:
                # the key is content-addressed (trace + config digests),
                # so seed-invariant kernels collide across seeds: the
                # simulation outputs transfer, the job-identity metadata
                # does not — re-stamp it for *this* job
                hit["workload"] = kern.spec.name
                hit["seed"] = job.seed
                hit["scale"] = scale
                return hit
        if do_warmup:
            system.run(trace)
        base = registry.snapshot()
        result = system.run(trace)
    else:
        quantum = int(quantum)
        chunk = int(job.param("chunk", max(1, quantum // 2)))
        ckpt_file = _checkpoint_file(job, ctx)
        run = base = None
        if ckpt_file is not None and ckpt_file.exists():
            from ..reliability.checkpoint import CheckpointError, SimCheckpoint
            try:
                ckpt = SimCheckpoint.load(ckpt_file)
                run = system.restore(ckpt, [trace])
                base = Snapshot(ckpt.extras["baseline"])
                ctx.meta["resumed"] = True
            except (CheckpointError, KeyError):
                run = base = None  # unusable checkpoint: start over
        if run is None:
            if job.param("warmup", True) and kern.needs_warmup:
                system.run(trace)
            base = registry.snapshot()
            run = system.start_parallel([trace], quantum=quantum, chunk=chunk)
        fault = ctx.fault
        kill_after = (int(fault.param("after"))
                      if (fault is not None and fault.kind == "kill"
                          and fault.param("after") is not None) else None)
        while True:
            alive = run.step()
            if (ckpt_file is not None and run.quanta > 0
                    and run.quanta % ctx.checkpoint_every == 0):
                run.checkpoint(extras={"baseline": base.data}).save(ckpt_file)
                ctx.meta["checkpoints"] = ctx.meta.get("checkpoints", 0) + 1
            if kill_after is not None and run.quanta >= kill_after:
                from ..reliability.faults import apply_worker_fault
                apply_worker_fault(fault, in_process=ctx.in_process)
            if not alive:
                break
        result = run.results()[0]
        if ckpt_file is not None:
            try:
                ckpt_file.unlink()
            except OSError:
                pass

    payload = kernel_payload(cfg, kern, job.seed, scale, registry, base,
                             result, system, quantum=quantum)
    if mkey is not None:
        memo.memo_put(mkey, payload)
    return payload


def kernel_payload(cfg, kern, seed: int, scale: float, registry, base,
                   result, system, quantum: int | None = None) -> dict[str, Any]:
    """Assemble one kernel run's payload from its measured pass.

    The single payload constructor shared by the serial job runner and
    the batched sweep driver (:func:`repro.accel.batch.batched_sweep`) —
    sharing the code is part of what keeps batched sweep points
    bit-identical to serial ones.
    """
    from ..telemetry import cpi_stack

    delta = registry.delta(base)
    # accel counters are implementation provenance, not simulation
    # output: the process-wide ones (memo/trace-cache hits) depend on
    # run history, and the per-tile coverage ones on which execution
    # path ran.  A payload must stay a pure function of the job — and
    # identical whether a config ran the reference models, the solo
    # engines, or the batched sweep driver — so strip them all
    delta.data.pop("accel", None)
    for tile_rec in delta.data.get("tiles", []):
        tile_rec.pop("accel", None)
    stack = cpi_stack(system, result, delta)
    payload: dict[str, Any] = {
        "kind": "kernel",
        "config": cfg.name,
        "workload": kern.spec.name,
        "seed": seed,
        "scale": scale,
        "core_ghz": cfg.core_ghz,
        "cycles": int(result.cycles),
        "instructions": int(result.instructions),
        "seconds": result.cycles / (cfg.core_ghz * 1e9),
        "branches": int(result.branches),
        "mispredicts": int(result.mispredicts),
        "l1d_misses": int(result.l1d_misses),
        "l1i_misses": int(result.l1i_misses),
        "stalls": {k: int(v) for k, v in sorted(result.stalls.items())},
        "telemetry": delta.data,
        "cpi": [stack.to_dict()],
    }
    if quantum is not None:
        payload["quantum"] = quantum
    return payload


#: schema stamp for on-disk sweep checkpoints
_SWEEP_CKPT_SCHEMA = 1


def _run_sweep_job(job: Job, attempt: int, ctx: ExecContext) -> dict[str, Any]:
    """Run one config-batched sweep, checkpointing per completed config.

    The checkpoint is a JSON file of finished per-config payloads keyed
    by the job's cache key; a retried attempt loads it, skips the
    completed configs, and batches only the remainder — bit-identically,
    because each config's simulation is independent (fresh system per
    config) and payloads are pure JSON trees.  A ``kill`` fault with an
    ``after=N`` parameter fires once N configs have completed, modelling
    a worker crash mid-sweep.
    """
    import json

    from ..accel.batch import batched_sweep
    from .cache import cache_key

    configs = job.param("configs")
    key = cache_key(job)
    ckpt_file = _checkpoint_file(job, ctx)
    done: dict[str, dict[str, Any]] = {}
    if ckpt_file is not None and ckpt_file.exists():
        try:
            saved = json.loads(ckpt_file.read_text())
            if (saved.get("schema") == _SWEEP_CKPT_SCHEMA
                    and saved.get("key") == key):
                done = saved["points"]
                ctx.meta["resumed"] = True
        except (OSError, ValueError, KeyError):
            done = {}  # unusable checkpoint: start over

    fault = ctx.fault
    kill_after = (int(fault.param("after"))
                  if (fault is not None and fault.kind == "kill"
                      and fault.param("after") is not None) else None)
    completed = 0

    def on_point(name: str, payload: dict[str, Any]) -> None:
        nonlocal completed
        done[name] = payload
        completed += 1
        if ckpt_file is not None and completed % ctx.checkpoint_every == 0:
            blob = json.dumps({"schema": _SWEEP_CKPT_SCHEMA, "key": key,
                               "points": done})
            tmp = ckpt_file.with_suffix(".tmp")
            tmp.write_text(blob)
            os.replace(tmp, ckpt_file)
            ctx.meta["checkpoints"] = ctx.meta.get("checkpoints", 0) + 1
        if kill_after is not None and completed >= kill_after:
            from ..reliability.faults import apply_worker_fault
            apply_worker_fault(fault, in_process=ctx.in_process)

    # on_point fills `done` as configs complete; merging the returned
    # points too keeps the payload whole even if a future engine path
    # stops routing every completion through the callback.
    done.update(batched_sweep(configs, job.workload,
                              scale=float(job.param("scale", 1.0)),
                              seed=job.seed,
                              warmup=bool(job.param("warmup", True)),
                              on_point=on_point, skip=tuple(done)))
    if ckpt_file is not None:
        try:
            ckpt_file.unlink()
        except OSError:
            pass
    return {
        "kind": "sweep",
        "workload": job.workload,
        "seed": job.seed,
        "scale": float(job.param("scale", 1.0)),
        "configs": [cfg.name for cfg in configs],
        "points": {cfg.name: done[cfg.name] for cfg in configs},
    }


def _run_npb_job(job: Job, attempt: int, ctx: ExecContext) -> dict[str, Any]:
    from ..workloads.npb import NPB_RUNNERS

    res = NPB_RUNNERS[job.workload](job.config, nranks=job.ranks,
                                    cls=job.param("cls", "A"))
    return {
        "kind": "npb",
        "config": job.config.name,
        "workload": res.benchmark,
        "cls": res.cls,
        "ranks": res.nranks,
        "verified": bool(res.verified),
        "core_ghz": res.core_ghz,
        "cycles": int(res.cycles),
        "seconds": res.cycles / (res.core_ghz * 1e9),
        "rank_results": [
            {
                "rank": r.rank,
                "cycles": int(r.cycles),
                "instructions": int(r.instructions),
                "compute_cycles": int(r.compute_cycles),
                "comm_cycles": int(r.comm_cycles),
                "messages_sent": int(r.messages_sent),
                "bytes_sent": int(r.bytes_sent),
            }
            for r in res.ranks
        ],
    }


def _run_checkprog_job(job: Job, attempt: int,
                       ctx: ExecContext) -> dict[str, Any]:
    """Assemble, interpret, and time one differential-checking program.

    The payload is the complete observable outcome — architectural
    register files (FP as raw bit patterns), a memory digest, and the
    timing/telemetry summary — so ``repro.check``'s farm oracle can
    require bit-identity between serial and farmed execution.
    """
    import hashlib
    import struct as _struct

    from ..isa.assembler import assemble
    from ..isa.interp import Interpreter
    from ..soc.system import System
    from ..telemetry import StatsRegistry

    base = int(job.param("base", 0x1_0000))
    words = assemble(str(job.param("source")), base=base)
    interp = Interpreter(words, base=base, trace=True)
    trace = interp.run(int(job.param("fuel", 200_000)))

    mem_digest = hashlib.sha256()
    for pno in sorted(interp.mem._pages):
        mem_digest.update(pno.to_bytes(16, "little"))
        mem_digest.update(bytes(interp.mem._pages[pno]))

    system = System(job.config)
    registry = StatsRegistry(system)
    snap_base = registry.snapshot()
    result = system.run(trace)
    delta = registry.delta(snap_base)
    delta.data.pop("accel", None)  # process-wide, not a job property

    def _fbits(v: float) -> int:
        return _struct.unpack("<Q", _struct.pack("<d", v))[0]

    return {
        "kind": "checkprog",
        "config": job.config.name,
        "workload": job.workload,
        "retired": int(interp.retired),
        "xregs": [int(r) for r in interp.regs],
        "fregs": [_fbits(f) for f in interp.fregs],
        "mem_sha256": mem_digest.hexdigest(),
        "cycles": int(result.cycles),
        "instructions": int(result.instructions),
        "stalls": {k: int(v) for k, v in sorted(result.stalls.items())},
        "telemetry": delta.data,
    }


def _run_selftest_job(job: Job, attempt: int, ctx: ExecContext) -> dict[str, Any]:
    mode = job.workload
    if mode == "raise":
        raise RuntimeError("selftest: injected failure")
    if mode == "interrupt":
        # stands in for the operator's Ctrl-C / SIGTERM in shutdown tests
        raise KeyboardInterrupt("selftest: injected interrupt")
    if mode == "hang":
        time.sleep(float(job.param("sleep_s", 60.0)))
    elif mode == "flaky" and attempt <= int(job.param("fail_times", 1)):
        raise RuntimeError(f"selftest: injected failure (attempt {attempt})")
    elif mode not in ("ok", "flaky"):
        raise ValueError(f"unknown selftest mode {mode!r}")
    return {"kind": "selftest", "mode": mode, "value": job.param("value", 42)}


#: job kind -> runner; the registry makes kinds pluggable without the
#: scheduler knowing workload specifics
JOB_KINDS: dict[str, Callable[[Job, int, ExecContext], dict[str, Any]]] = {
    "kernel": _run_kernel_job,
    "sweep": _run_sweep_job,
    "npb": _run_npb_job,
    "selftest": _run_selftest_job,
    "checkprog": _run_checkprog_job,
}


def execute_job_meta(job: Job, attempt: int = 1,
                     ctx: ExecContext | None = None,
                     ) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run one job; returns ``(payload, meta)``.

    The payload depends only on the job (the determinism contract); meta
    is host-side provenance — whether the attempt resumed from a
    checkpoint, how many checkpoints it wrote.  Worker faults without an
    ``after=`` parameter fire here, before the workload starts.
    """
    ctx = ctx if ctx is not None else ExecContext()
    fault = ctx.fault
    if fault is not None and (fault.kind in ("hang", "error", "host-stall")
                              or (fault.kind == "kill"
                                  and fault.param("after") is None)):
        from ..reliability.faults import apply_worker_fault
        apply_worker_fault(fault, in_process=ctx.in_process)
    payload = JOB_KINDS[job.kind](job, attempt, ctx)
    return payload, dict(ctx.meta)


def execute_job(job: Job, attempt: int = 1,
                ctx: ExecContext | None = None) -> dict[str, Any]:
    """Run one job to completion in the calling process.

    The single execution path shared by serial mode and every pool
    worker; *attempt* is 1-based and only consulted by fault-injection
    jobs (real workloads must not depend on it, or determinism breaks).
    """
    return execute_job_meta(job, attempt=attempt, ctx=ctx)[0]
