"""Run-farm scheduler: shard independent jobs across worker processes.

Modeled on FireSim's manager (``deploy/runtools``), which farms one
simulation per FPGA host and babysits the fleet: here each "host" is a
``multiprocessing`` worker process running exactly one :class:`Job`.
One process per job (rather than a long-lived pool) is what makes the
fault model simple — a crashed, raising, or hung worker is terminated
and retried with backoff without poisoning any shared executor state,
and a per-job timeout is just ``Process.terminate``.

Host-slot inventory is delegated to a pluggable
:class:`~repro.farm.deploy.DeployManager` (the FireSim manager/run-farm
split): the scheduler acquires a slot before launching a worker and
releases it at reap, so the local pool and an externally provisioned
host fleet run through one code path and produce bit-identical results.

Determinism contract: the merged result list is ordered by submission
index and every payload comes from :func:`repro.farm.job.execute_job`,
so the output is bit-identical for any worker count and any completion
order.  Host-side provenance (attempts, wall-clock, cache hits) lives
on :class:`~repro.farm.job.JobResult` next to the payload, never inside
it.

Graceful degradation: ``workers=1`` (or an unavailable multiprocessing
stack) runs everything in-process through the same code path, minus
preemptive timeouts.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import pathlib
import signal
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..telemetry import Snapshot
from .cache import ResultCache, cache_key
from .deploy import DeployManager, resolve_deploy
from .job import ExecContext, Job, JobResult, execute_job_meta
from .retry import RetryPolicy

__all__ = [
    "FARM_SCHEMA",
    "FarmEvent",
    "FarmStats",
    "RunFarm",
    "resolve_cache",
    "resolve_workers",
    "run_jobs",
]

#: schema of the farm-stats telemetry snapshot
FARM_SCHEMA = 1


def resolve_workers(workers: int | None = None) -> int:
    """Explicit worker count, else ``$REPRO_WORKERS``, else 1 (serial)."""
    if workers is None:
        try:
            workers = int(os.environ.get("REPRO_WORKERS", "1"))
        except ValueError:
            workers = 1
    return max(1, int(workers))


def resolve_cache(cache: ResultCache | str | os.PathLike | None = None,
                  ) -> ResultCache | None:
    """Normalise a cache argument: pass through, wrap a path, or fall
    back to ``$REPRO_CACHE_DIR`` (unset: no caching)."""
    if cache is None:
        env = os.environ.get("REPRO_CACHE_DIR")
        return ResultCache(env) if env else None
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(cache)
    return cache


@dataclass
class FarmStats:
    """Farm-level counters, exposed via telemetry like any other stats."""

    jobs: int = 0
    ok: int = 0
    failed: int = 0
    simulated: int = 0      #: attempts that ran a simulation to completion
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    errors: int = 0         #: attempts that raised in the workload
    timeouts: int = 0       #: attempts killed by the per-job timeout
    crashes: int = 0        #: workers that died without reporting
    corrupt: int = 0        #: cache entries quarantined as corrupt
    resumed: int = 0        #: attempts resumed from a mid-run checkpoint
    interrupted: int = 0    #: jobs abandoned by a graceful shutdown

    def to_snapshot(self) -> Snapshot:
        """Counters as a :class:`repro.telemetry.Snapshot` (flat/JSON/CSV
        export and delta arithmetic come for free)."""
        return Snapshot({"schema": FARM_SCHEMA,
                         "farm": dataclasses.asdict(self)})


@dataclass
class FarmEvent:
    """One progress notification (job picked up, finished, retried...)."""

    kind: str               #: "cache-hit" | "start" | "ok" | "retry" |
                            #: "failed" | "interrupted"
    index: int              #: job position in the submitted list
    total: int
    job: Job
    attempt: int = 0
    error: str | None = None
    elapsed_s: float = 0.0


class _Running:
    """Parent-side record of one in-flight worker process."""

    __slots__ = ("proc", "conn", "key", "attempt", "started", "host")

    def __init__(self, proc, conn, key: str | None, attempt: int,
                 host: str | None = None) -> None:
        self.proc = proc
        self.conn = conn
        self.key = key
        self.attempt = attempt
        self.started = time.monotonic()
        self.host = host


def _worker_main(conn, job: Job, attempt: int,
                 ctx: ExecContext | None = None) -> None:
    """Child entry point: run one job, report ("ok", payload, meta) or
    ("error", message) over the pipe, exit."""
    try:
        payload, meta = execute_job_meta(job, attempt=attempt, ctx=ctx)
        conn.send(("ok", payload, meta))
    except BaseException as exc:  # report, don't let the child unwind noisily
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class RunFarm:
    """Schedule a job list across workers with caching and retries.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` reads ``$REPRO_WORKERS``; 1 runs
        serially in-process.  Ignored when *deploy* is given (the
        backend's slot inventory wins).
    deploy:
        :class:`~repro.farm.deploy.DeployManager`, a spec string
        (``"local:4"``, ``"hosts:a=2,b=4"``), or ``None``
        (``$REPRO_DEPLOY`` if set, else a local pool of *workers*
        slots).  Selects where jobs land; results are bit-identical
        across backends.
    cache:
        :class:`ResultCache`, a directory path, or ``None``
        (``$REPRO_CACHE_DIR`` if set, else uncached).
    timeout_s:
        Per-job wall-clock limit, enforced in parallel mode by killing
        the worker (jobs may override via ``Job.timeout_s``).  Serial
        mode cannot preempt and ignores it.
    max_retries:
        Extra attempts after the first for a raising/crashed/hung job;
        a job that exhausts them is reported ``failed`` without
        aborting the rest of the sweep.
    backoff_s:
        Base relaunch delay; attempt *n* waits
        ``backoff_s * 2**(n-1)`` (capped at 2 s) before going back on
        a worker.  Shorthand for ``retry_policy=RetryPolicy(base_s=
        backoff_s)``; an explicit *retry_policy* wins.
    retry_policy:
        Full :class:`~repro.farm.retry.RetryPolicy` (base, growth
        factor, cap) shared with the serve layer's re-queue path.
    on_event:
        Optional ``Callable[[FarmEvent], None]`` for live progress.
    fault_plan:
        Optional :class:`repro.reliability.FaultPlan`; worker faults
        (kill/hang/error) are delivered to the matching (job index,
        attempt), cache faults damage entries before the preload pass.
    checkpoint_dir:
        Directory for mid-run job checkpoints.  Lockstep kernel jobs
        (built with ``Job.kernel(..., quantum=...)``) save a checkpoint
        every ``checkpoint_every`` quanta there, and a retry of a
        crashed/timed-out job **resumes from the last checkpoint**
        (bit-identically) instead of restarting from zero — still
        bounded by ``max_retries``.
    manifest_path:
        When set, a JSON manifest of per-job outcomes and farm stats is
        written there after every run — including a partial one cut
        short by Ctrl-C/SIGTERM.
    instrument:
        Optional :class:`repro.instrument.InstrumentSpec` (or its
        ``to_dict()`` form) attached to every kernel job.  Streams are
        written to ``instrument_dir`` as ``<label>.jsonl`` and are
        tail-able (``repro tail`` / :func:`repro.instrument.tail_stream`)
        while the job is still running.  Instrumented sweeps always
        simulate: the result cache and payload memo are bypassed so a
        stream actually exists, and payloads stay bit-identical to
        uninstrumented runs.
    instrument_dir:
        Where per-job streams land; defaults to the checkpoint dir's
        sibling behaviour (in-memory, discarded) when unset.
    """

    def __init__(self, workers: int | None = None,
                 cache: ResultCache | str | os.PathLike | None = None,
                 timeout_s: float | None = None, max_retries: int = 2,
                 backoff_s: float = 0.25,
                 on_event: Callable[[FarmEvent], None] | None = None,
                 fault_plan=None,
                 checkpoint_dir: str | os.PathLike | None = None,
                 checkpoint_every: int = 8,
                 manifest_path: str | os.PathLike | None = None,
                 instrument=None,
                 instrument_dir: str | os.PathLike | None = None,
                 deploy: DeployManager | str | None = None,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.deploy = resolve_deploy(deploy, workers)
        self.workers = self.deploy.total_slots
        self.cache = resolve_cache(cache)
        self.timeout_s = timeout_s
        self.max_retries = max(0, int(max_retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy(base_s=self.backoff_s))
        self.on_event = on_event
        self.fault_plan = fault_plan
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.manifest_path = manifest_path
        # normalise to the picklable dict form once, here, so every
        # worker (fork or spawn) sees the identical recipe
        self.instrument_spec = (instrument.to_dict()
                                if hasattr(instrument, "to_dict")
                                else instrument)
        self.instrument_dir = instrument_dir
        self.stats = FarmStats()
        #: True when the last run was cut short by Ctrl-C / SIGTERM
        self.interrupted = False

    # -- public API ----------------------------------------------------------

    def run(self, jobs: Iterable[Job]) -> list[JobResult]:
        """Run every job; returns results in submission order.

        A ``KeyboardInterrupt`` or SIGTERM mid-run shuts down gracefully:
        in-flight results are kept, workers are reaped, the remaining
        jobs are reported with status ``"interrupted"``, and the manifest
        (if configured) records the partial sweep.
        """
        jobs = list(jobs)
        self.stats = stats = FarmStats(jobs=len(jobs))
        results: list[JobResult | None] = [None] * len(jobs)
        self._total = len(jobs)
        self.interrupted = False
        corrupt_before = (self.cache.corrupt_quarantined
                          if self.cache is not None else 0)
        if self.fault_plan is not None and self.cache is not None:
            self._apply_cache_faults(jobs)

        todo: list[tuple[int, str | None]] = []
        for i, job in enumerate(jobs):
            # instrumented sweeps bypass the cache: a hit would return a
            # payload without producing the stream the operator asked for
            key = (cache_key(job)
                   if self.cache is not None and job.cacheable
                   and self.instrument_spec is None else None)
            payload = self.cache.get(key) if key is not None else None
            if payload is not None:
                stats.cache_hits += 1
                results[i] = JobResult(job=job, index=i, status="ok",
                                       payload=payload, from_cache=True)
                self._emit("cache-hit", i, job)
            else:
                if key is not None:
                    stats.cache_misses += 1
                todo.append((i, key))

        restore_handler = self._install_sigterm()
        try:
            if todo:
                if self.workers > 1 and len(todo) > 1:
                    try:
                        self._run_parallel(jobs, todo, results)
                    except OSError:
                        # pool unavailable (fd limits, sandboxed fork, ...):
                        # degrade to in-process execution of whatever is left
                        left = [(i, k) for i, k in todo if results[i] is None]
                        self._run_serial(jobs, left, results)
                else:
                    self._run_serial(jobs, todo, results)
        except KeyboardInterrupt:
            self.interrupted = True
        finally:
            restore_handler()

        for i, job in enumerate(jobs):
            if results[i] is None:
                stats.interrupted += 1
                results[i] = JobResult(
                    job=job, index=i, status="interrupted",
                    error="farm shut down before this job finished")
                self._emit("interrupted", i, job)
        out = [r for r in results if r is not None]
        assert len(out) == len(jobs), "scheduler lost a job"
        stats.ok = sum(1 for r in out if r.ok)
        stats.failed = len(out) - stats.ok - stats.interrupted
        if self.cache is not None:
            stats.corrupt = self.cache.corrupt_quarantined - corrupt_before
        self._write_manifest(out)
        return out

    # -- shared plumbing -----------------------------------------------------

    def _emit(self, kind: str, index: int, job: Job, attempt: int = 0,
              error: str | None = None, elapsed_s: float = 0.0) -> None:
        if self.on_event is not None:
            self.on_event(FarmEvent(kind=kind, index=index, total=self._total,
                                    job=job, attempt=attempt, error=error,
                                    elapsed_s=elapsed_s))

    def _job_timeout(self, job: Job) -> float | None:
        return job.timeout_s if job.timeout_s is not None else self.timeout_s

    def _exec_ctx(self, index: int, attempt: int, *,
                  in_process: bool) -> ExecContext:
        """Per-attempt execution context (fault + checkpoint policy)."""
        fault = (self.fault_plan.worker_fault(index, attempt)
                 if self.fault_plan is not None else None)
        return ExecContext(fault=fault,
                           checkpoint_dir=self.checkpoint_dir,
                           checkpoint_every=self.checkpoint_every,
                           in_process=in_process,
                           instrument_spec=self.instrument_spec,
                           instrument_dir=self.instrument_dir)

    def _install_sigterm(self) -> Callable[[], None]:
        """Route SIGTERM into KeyboardInterrupt for the graceful-shutdown
        path; returns a restorer.  No-op off the main thread (signal
        handlers can only be installed there)."""

        def _to_interrupt(signum, frame):
            raise KeyboardInterrupt("SIGTERM")

        try:
            previous = signal.signal(signal.SIGTERM, _to_interrupt)
        except ValueError:  # not the main thread
            return lambda: None
        return lambda: signal.signal(signal.SIGTERM, previous)

    def _apply_cache_faults(self, jobs: Sequence[Job]) -> None:
        """Damage on-disk cache entries named by the fault plan (chaos
        testing the quarantine path)."""
        from ..reliability.faults import corrupt_cache_entry
        rng = self.fault_plan.rng()
        for fault in self.fault_plan.cache_faults():
            index = fault.param("entry", fault.param("job"))
            if index is None or not 0 <= int(index) < len(jobs):
                continue
            job = jobs[int(index)]
            if not job.cacheable:
                continue
            mode = ("truncate" if fault.kind == "truncate-cache"
                    else str(fault.param("mode", "garbage")))
            corrupt_cache_entry(self.cache, cache_key(job), mode=mode,
                                rng=rng)

    def _write_manifest(self, results: Sequence[JobResult]) -> None:
        if self.manifest_path is None:
            return
        path = pathlib.Path(self.manifest_path)
        doc = {
            "schema": FARM_SCHEMA,
            "interrupted": self.interrupted,
            "deploy": self.deploy.describe(),
            "stats": dataclasses.asdict(self.stats),
            "jobs": [
                {"index": r.index, "label": r.job.label, "status": r.status,
                 "attempts": r.attempts, "from_cache": r.from_cache,
                 "resumed": r.resumed, "error": r.error, "host": r.host,
                 "elapsed_s": round(r.elapsed_s, 6)}
                for r in results
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(doc, f, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _complete(self, results, index: int, job: Job, key: str | None,
                  payload: dict[str, Any], attempts: int,
                  elapsed_s: float, meta: dict | None = None,
                  host: str | None = None) -> None:
        self.stats.simulated += 1
        resumed = bool(meta and meta.get("resumed"))
        if resumed:
            self.stats.resumed += 1
        if key is not None and self.cache is not None:
            self.cache.put(key, job, payload)
        results[index] = JobResult(job=job, index=index, status="ok",
                                   payload=payload, attempts=attempts,
                                   elapsed_s=elapsed_s, resumed=resumed,
                                   host=host)
        self._emit("ok", index, job, attempt=attempts, elapsed_s=elapsed_s)

    def _fail(self, results, index: int, job: Job, attempts: int,
              error: str, elapsed_s: float, host: str | None = None) -> None:
        results[index] = JobResult(job=job, index=index, status="failed",
                                   attempts=attempts, error=error,
                                   elapsed_s=elapsed_s, host=host)
        self._emit("failed", index, job, attempt=attempts, error=error,
                   elapsed_s=elapsed_s)

    # -- serial mode ---------------------------------------------------------

    def _run_serial(self, jobs: Sequence[Job],
                    todo: Sequence[tuple[int, str | None]],
                    results: list[JobResult | None]) -> None:
        host = self.deploy.hosts[0].name
        for index, key in todo:
            job = jobs[index]
            error = "not attempted"
            for attempt in range(1, self.max_retries + 2):
                self._emit("start", index, job, attempt=attempt)
                t0 = time.monotonic()
                try:
                    payload, meta = execute_job_meta(
                        job, attempt=attempt,
                        ctx=self._exec_ctx(index, attempt, in_process=True))
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    self.stats.errors += 1
                    # serial exceptions surface from the workload itself
                    self.deploy.report_failure(host, job_intrinsic=True)
                    if attempt <= self.max_retries:
                        self.stats.retries += 1
                        self._emit("retry", index, job, attempt=attempt,
                                   error=error)
                        delay = self.retry_policy.delay(attempt)
                        if delay:
                            time.sleep(delay)
                else:
                    self.deploy.report_success(host)
                    self._complete(results, index, job, key, payload,
                                   attempts=attempt,
                                   elapsed_s=time.monotonic() - t0,
                                   meta=meta, host=host)
                    break
            else:
                self._fail(results, index, job,
                           attempts=self.max_retries + 1, error=error,
                           elapsed_s=0.0, host=host)

    # -- parallel mode -------------------------------------------------------

    def _context(self):
        # fork shares the warmed parent image (cheap start, inherited
        # hash seed keeps any hash-ordered iteration identical); fall
        # back to the platform default where fork does not exist
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _run_parallel(self, jobs: Sequence[Job],
                      todo: Sequence[tuple[int, str | None]],
                      results: list[JobResult | None]) -> None:
        ctx = self._context()
        #: (not-before time, index, key, attempt) of jobs awaiting a worker
        waiting: list[tuple[float, int, str | None, int]] = [
            (0.0, index, key, 1) for index, key in todo
        ]
        running: dict[int, _Running] = {}

        def launch(index: int, key: str | None, attempt: int,
                   host: str) -> None:
            recv, send = ctx.Pipe(duplex=False)
            exec_ctx = self._exec_ctx(index, attempt, in_process=False)
            proc = ctx.Process(target=_worker_main,
                               args=(send, jobs[index], attempt, exec_ctx),
                               daemon=True)
            proc.start()
            send.close()
            running[index] = _Running(proc, recv, key, attempt, host=host)
            self._emit("start", index, jobs[index], attempt=attempt)

        def reap(index: int) -> _Running:
            r = running.pop(index)
            try:
                r.conn.close()
            except Exception:
                pass
            if r.proc.is_alive():
                r.proc.terminate()
            r.proc.join(timeout=5.0)
            if r.host is not None:
                self.deploy.release(r.host)
            return r

        def retry_or_fail(index: int, r: _Running, error: str) -> None:
            if r.attempt <= self.max_retries:
                self.stats.retries += 1
                self._emit("retry", index, jobs[index], attempt=r.attempt,
                           error=error)
                delay = self.retry_policy.delay(r.attempt)
                waiting.append((time.monotonic() + delay, index, r.key,
                                r.attempt + 1))
            else:
                self._fail(results, index, jobs[index], attempts=r.attempt,
                           error=error,
                           elapsed_s=time.monotonic() - r.started,
                           host=r.host)

        try:
            while waiting or running:
                now = time.monotonic()
                waiting.sort()
                while waiting and waiting[0][0] <= now:
                    host = self.deploy.acquire()
                    if host is None:
                        break
                    _, index, key, attempt = waiting.pop(0)
                    launch(index, key, attempt, host)

                progressed = False
                for index in list(running):
                    r = running[index]
                    if r.conn.poll():
                        meta: dict | None = None
                        try:
                            msg = r.conn.recv()
                            status, data = msg[0], msg[1]
                            if len(msg) > 2:
                                meta = msg[2]
                        except (EOFError, OSError):
                            status, data = "error", "worker pipe closed early"
                        reap(index)
                        if status == "ok":
                            if r.host is not None:
                                self.deploy.report_success(r.host)
                            self._complete(results, index, jobs[index], r.key,
                                           data, attempts=r.attempt,
                                           elapsed_s=now - r.started,
                                           meta=meta, host=r.host)
                        else:
                            self.stats.errors += 1
                            # the workload itself raised: not the host's fault
                            if r.host is not None:
                                self.deploy.report_failure(
                                    r.host, job_intrinsic=True)
                            retry_or_fail(index, r, str(data))
                        progressed = True
                    elif not r.proc.is_alive():
                        code = r.proc.exitcode
                        reap(index)
                        self.stats.crashes += 1
                        if r.host is not None:
                            self.deploy.report_failure(r.host)
                        retry_or_fail(index, r,
                                      f"worker crashed (exit code {code})")
                        progressed = True
                    else:
                        limit = self._job_timeout(jobs[index])
                        if limit is not None and now - r.started > limit:
                            reap(index)
                            self.stats.timeouts += 1
                            if r.host is not None:
                                self.deploy.report_failure(r.host)
                            retry_or_fail(index, r,
                                          f"timed out after {limit:g}s")
                            progressed = True
                if not progressed:
                    # nothing finished this pass: nap briefly instead of
                    # spinning (workers run for seconds, not micros)
                    time.sleep(0.005)
        finally:
            for index in list(running):
                reap(index)


def run_jobs(jobs: Iterable[Job], *, workers: int | None = None,
             cache: ResultCache | str | os.PathLike | None = None,
             timeout_s: float | None = None, max_retries: int = 2,
             backoff_s: float = 0.25,
             on_event: Callable[[FarmEvent], None] | None = None,
             fault_plan=None,
             checkpoint_dir: str | os.PathLike | None = None,
             checkpoint_every: int = 8,
             manifest_path: str | os.PathLike | None = None,
             instrument=None,
             instrument_dir: str | os.PathLike | None = None,
             deploy: DeployManager | str | None = None,
             retry_policy: RetryPolicy | None = None,
             strict: bool = False) -> list[JobResult]:
    """One-call convenience: build a :class:`RunFarm`, run *jobs*.

    With ``strict=True`` any failed job raises ``RuntimeError`` (the
    sweep still ran to completion first, so the message lists every
    failure at once).
    """
    farm = RunFarm(workers=workers, cache=cache, timeout_s=timeout_s,
                   max_retries=max_retries, backoff_s=backoff_s,
                   on_event=on_event, fault_plan=fault_plan,
                   checkpoint_dir=checkpoint_dir,
                   checkpoint_every=checkpoint_every,
                   manifest_path=manifest_path,
                   instrument=instrument, instrument_dir=instrument_dir,
                   deploy=deploy, retry_policy=retry_policy)
    results = farm.run(jobs)
    if strict:
        failed = [r for r in results if not r.ok]
        if failed:
            lines = "; ".join(f"{r.job.label}: {r.error}" for r in failed)
            raise RuntimeError(
                f"{len(failed)}/{len(results)} farmed job(s) failed: {lines}")
    return results
