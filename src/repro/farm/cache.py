"""Content-addressed on-disk result cache for farmed simulations.

The key is a SHA-256 over the canonical JSON of everything a payload
depends on: the full ``SoCConfig`` tree (not just its name), the
workload identity and parameters, the seed/ranks, the cache schema
version, and the repro package version.  Any change to any of those —
an ablated L2 bank count, a bumped simulator version — yields a new key,
so stale entries are never *invalidated*, they are simply never hit
again.  Re-running a sweep therefore only simulates cache misses.

Entries are one JSON file each, fanned out over 256 two-hex-digit
subdirectories (git-object style) and written atomically
(tempfile + ``os.replace``) so a crashed or concurrent writer can never
leave a truncated entry behind.  A truncated, corrupt, or
schema-mismatched entry found on *read* (disk damage, foreign writers,
version skew) is moved to ``<cache>/corrupt/`` for post-mortem, counted
in ``corrupt_quarantined``, and reported as a miss so the farm simply
re-runs the job instead of crashing or serving garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any

from .. import __version__
from .job import Job

__all__ = ["CACHE_SCHEMA", "ResultCache", "cache_key"]

#: bump when the payload layout changes shape (invalidates every entry)
CACHE_SCHEMA = 1


def cache_key(job: Job) -> str:
    """Deterministic content hash of one job's full identity."""
    ident = {
        "cache_schema": CACHE_SCHEMA,
        "repro_version": __version__,
        "job": job.describe(),
    }
    blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of ``<key[:2]>/<key>.json`` payload files."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        #: corrupt entries quarantined by this instance (farm telemetry)
        self.corrupt_quarantined = 0

    def path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / "corrupt"

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        """Move a damaged entry aside (never deletes evidence)."""
        self.corrupt_quarantined += 1
        dest = self.quarantine_dir / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
            dest.with_suffix(".reason").write_text(reason + "\n")
        except OSError:
            pass  # quarantine is best-effort; the miss already protects us

    def get(self, key: str) -> dict[str, Any] | None:
        """Payload for *key*, or None on miss (never raises).

        A present-but-invalid entry — unparsable JSON, wrong key, wrong
        schema, malformed payload — is quarantined and reads as a miss.
        """
        path = self.path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None  # genuinely absent (or unreadable): a plain miss
        reason = None
        payload: dict[str, Any] | None = None
        try:
            entry = json.loads(blob.decode("utf-8"))
        except UnicodeDecodeError as exc:
            reason = f"not UTF-8 (binary damage?): {exc}"
            entry = None
        except ValueError as exc:
            reason = f"unparsable JSON (truncated?): {exc}"
            entry = None
        else:
            if not isinstance(entry, dict):
                reason = f"entry is {type(entry).__name__}, not an object"
            elif entry.get("key") != key:
                reason = f"key mismatch: entry claims {entry.get('key')!r}"
            elif entry.get("schema") != CACHE_SCHEMA:
                reason = (f"schema {entry.get('schema')!r} != "
                          f"{CACHE_SCHEMA}")
            elif not isinstance(entry.get("payload"), dict):
                reason = "payload missing or not an object"
            else:
                payload = entry["payload"]
        if reason is not None:
            self._quarantine(path, reason)
            return None
        return payload

    def put(self, key: str, job: Job, payload: dict[str, Any]) -> None:
        """Store *payload* atomically; concurrent writers race benignly
        (same key means same content, so last-rename-wins is harmless)."""
        entry = {
            "key": key,
            "schema": CACHE_SCHEMA,
            "repro_version": __version__,
            "label": job.label,
            "job": job.describe(),
            "payload": payload,
        }
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(entry, f, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def sweep_orphans(self, max_age_s: float = 3600.0) -> int:
        """Delete ``*.tmp`` files left behind by hard-killed writers.

        ``put`` cleans its tempfile on any exception, but a writer killed
        between ``mkstemp`` and ``os.replace`` (SIGKILL, power loss)
        leaves the orphan on disk forever.  Entries are never served from
        ``.tmp`` files, so this is purely a disk-space sweep; the age
        threshold keeps it from yanking a live writer's file mid-write.
        Returns how many orphans were removed.
        """
        import time
        if not self.root.is_dir():
            return 0
        now = time.time()
        n = 0
        for p in self.root.glob("??/*.tmp"):
            try:
                if now - p.stat().st_mtime >= max_age_s:
                    p.unlink()
                    n += 1
            except OSError:
                pass
        return n

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for p in self.root.glob("??/*.json"):
            try:
                p.unlink()
                n += 1
            except OSError:
                pass
        return n

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, {len(self)} entries)"
