"""Content-addressed on-disk result cache for farmed simulations.

The key is a SHA-256 over the canonical JSON of everything a payload
depends on: the full ``SoCConfig`` tree (not just its name), the
workload identity and parameters, the seed/ranks, the cache schema
version, and the repro package version.  Any change to any of those —
an ablated L2 bank count, a bumped simulator version — yields a new key,
so stale entries are never *invalidated*, they are simply never hit
again.  Re-running a sweep therefore only simulates cache misses.

Entries are one JSON file each, fanned out over 256 two-hex-digit
subdirectories (git-object style) and written atomically
(tempfile + ``os.replace``) so a crashed or concurrent writer can never
leave a truncated entry behind; unreadable entries read as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any

from .. import __version__
from .job import Job

__all__ = ["CACHE_SCHEMA", "ResultCache", "cache_key"]

#: bump when the payload layout changes shape (invalidates every entry)
CACHE_SCHEMA = 1


def cache_key(job: Job) -> str:
    """Deterministic content hash of one job's full identity."""
    ident = {
        "cache_schema": CACHE_SCHEMA,
        "repro_version": __version__,
        "job": job.describe(),
    }
    blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of ``<key[:2]>/<key>.json`` payload files."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)

    def path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Payload for *key*, or None on miss/corruption (never raises)."""
        try:
            with open(self.path(key), "r", encoding="utf-8") as f:
                entry = json.load(f)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, job: Job, payload: dict[str, Any]) -> None:
        """Store *payload* atomically; concurrent writers race benignly
        (same key means same content, so last-rename-wins is harmless)."""
        entry = {
            "key": key,
            "schema": CACHE_SCHEMA,
            "repro_version": __version__,
            "label": job.label,
            "job": job.describe(),
            "payload": payload,
        }
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(entry, f, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for p in self.root.glob("??/*.json"):
            try:
                p.unlink()
                n += 1
            except OSError:
                pass
        return n

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, {len(self)} entries)"
