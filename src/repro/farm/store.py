"""Shared cross-run result store: the ResultCache promoted to a service.

A plain :class:`~repro.farm.cache.ResultCache` is already safe for
concurrent writers (atomic rename, quarantine-on-read), but it grows
without bound and keeps no usage statistics — fine for one sweep, wrong
for a long-lived ``repro serve`` instance feeding many tenants.  The
:class:`SharedResultStore` adds exactly the service-layer concerns:

* **Bounded size with LRU eviction.**  ``max_entries`` / ``max_bytes``
  budgets; every hit freshens the entry's mtime, and inserts evict the
  least-recently-used entries until the store fits.  Eviction runs under
  the store lock so two server workers never double-delete.
* **Durable hit/miss/eviction statistics.**  Counters persist in
  ``<root>/store.stats.json``, updated read-modify-write under the store
  lock, so concurrent processes *add* to the totals instead of clobbering
  each other (no lost or double-counted hits).  Exported as a
  :class:`repro.telemetry.Snapshot` (``repro stats --store DIR``).
* **Safe concurrent access.**  The lock is an ``fcntl.flock`` on
  ``<root>/.store.lock`` where available, with an ``O_EXCL`` lock-file
  spin fallback; entry reads/writes themselves stay lock-free (they were
  already atomic), only stats and eviction serialize.

The content-addressed key discipline is unchanged: same key means same
payload, so cross-run and cross-tenant sharing is automatic and safe.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass
from typing import Any

from ..telemetry import Snapshot
from .cache import ResultCache
from .job import Job

__all__ = ["STORE_SCHEMA", "SharedResultStore", "StoreStats"]

#: bump when the persisted stats layout changes incompatibly
STORE_SCHEMA = 1


@dataclass
class StoreStats:
    """Cross-process usage counters (persisted under the store lock)."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    evicted_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _StoreLock:
    """``flock`` on ``<root>/.store.lock``; O_EXCL-spin where absent."""

    def __init__(self, root: pathlib.Path) -> None:
        self.path = root / ".store.lock"
        try:
            import fcntl
            self._fcntl = fcntl
        except ImportError:  # non-posix: degrade to a lock-file spin
            self._fcntl = None
        self._fd: int | None = None

    def __enter__(self) -> "_StoreLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._fcntl is not None:
            self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            self._fcntl.flock(self._fd, self._fcntl.LOCK_EX)
        else:
            spin = self.path.with_suffix(".spin")
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    self._fd = os.open(spin, os.O_CREAT | os.O_EXCL
                                       | os.O_RDWR)
                    break
                except FileExistsError:
                    if time.monotonic() > deadline:  # stale lock: steal it
                        try:
                            os.unlink(spin)
                        except OSError:
                            pass
                    time.sleep(0.005)
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            if self._fcntl is not None:
                self._fcntl.flock(self._fd, self._fcntl.LOCK_UN)
                os.close(self._fd)
            else:
                os.close(self._fd)
                try:
                    os.unlink(self.path.with_suffix(".spin"))
                except OSError:
                    pass
            self._fd = None


class SharedResultStore(ResultCache):
    """A :class:`ResultCache` with LRU budgets and durable shared stats.

    Parameters
    ----------
    root:
        Store directory (shared across runs, servers, and tenants).
    max_entries:
        Entry-count budget; ``None`` leaves the count unbounded.
    max_bytes:
        Payload-bytes budget (sum of entry file sizes); ``None``
        unbounded.  Both budgets may be active at once; eviction runs
        until the store satisfies every configured budget.
    """

    def __init__(self, root: str | os.PathLike,
                 max_entries: int | None = None,
                 max_bytes: int | None = None) -> None:
        super().__init__(root)
        self.max_entries = (None if max_entries is None
                            else max(1, int(max_entries)))
        self.max_bytes = None if max_bytes is None else max(1, int(max_bytes))
        self._lock = _StoreLock(self.root)
        #: this instance's share of the persisted counters
        self.local = StoreStats()

    # -- persisted stats -----------------------------------------------------

    @property
    def stats_path(self) -> pathlib.Path:
        return self.root / "store.stats.json"

    def _load_stats(self) -> StoreStats:
        try:
            doc = json.loads(self.stats_path.read_text(encoding="utf-8"))
            if doc.get("schema") != STORE_SCHEMA:
                return StoreStats()
            return StoreStats(**{f.name: int(doc.get(f.name, 0))
                                 for f in dataclasses.fields(StoreStats)})
        except (OSError, ValueError, TypeError):
            return StoreStats()

    def _save_stats(self, stats: StoreStats) -> None:
        doc = {"schema": STORE_SCHEMA, **dataclasses.asdict(stats)}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(doc, f, sort_keys=True)
            os.replace(tmp, self.stats_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _bump(self, **deltas: int) -> None:
        """Add *deltas* to the persisted counters under the store lock.

        Read-modify-write under an exclusive lock is what makes the
        counters additive across processes: two concurrent hits yield
        ``hits += 2``, never a lost update.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with self._lock:
            stats = self._load_stats()
            for name, delta in deltas.items():
                setattr(stats, name, getattr(stats, name) + delta)
            self._save_stats(stats)
        for name, delta in deltas.items():
            setattr(self.local, name, getattr(self.local, name) + delta)

    # -- cache interface -----------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        payload = super().get(key)
        if payload is None:
            self._bump(misses=1)
            return None
        try:
            os.utime(self.path(key))  # freshen for LRU ordering
        except OSError:
            pass
        self._bump(hits=1)
        return payload

    def put(self, key: str, job: Job, payload: dict[str, Any]) -> None:
        super().put(key, job, payload)
        self._bump(inserts=1)
        if self.max_entries is not None or self.max_bytes is not None:
            self.evict(protect=key)

    # -- eviction ------------------------------------------------------------

    def _entries(self) -> list[tuple[float, int, pathlib.Path]]:
        """``(mtime, size, path)`` for every entry, oldest first."""
        out = []
        for p in self.root.glob("??/*.json"):
            try:
                st = p.stat()
            except OSError:
                continue  # concurrently evicted
            out.append((st.st_mtime, st.st_size, p))
        out.sort(key=lambda t: (t[0], str(t[2])))
        return out

    def evict(self, protect: str | None = None) -> int:
        """Remove least-recently-used entries until the budgets hold.

        *protect* shields one key (typically the entry just written)
        from clock-skew accidents.  Returns how many entries were
        evicted by this call.
        """
        if self.max_entries is None and self.max_bytes is None:
            return 0
        protected = self.path(protect) if protect is not None else None
        evicted = 0
        evicted_bytes = 0
        with self._lock:
            entries = self._entries()
            total = len(entries)
            total_bytes = sum(size for _, size, _ in entries)
            for mtime, size, path in entries:
                over = ((self.max_entries is not None
                         and total > self.max_entries)
                        or (self.max_bytes is not None
                            and total_bytes > self.max_bytes))
                if not over:
                    break
                if protected is not None and path == protected:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue  # lost a race with another evictor
                total -= 1
                total_bytes -= size
                evicted += 1
                evicted_bytes += size
            if evicted:
                stats = self._load_stats()
                stats.evictions += evicted
                stats.evicted_bytes += evicted_bytes
                self._save_stats(stats)
        if evicted:
            self.local.evictions += evicted
            self.local.evicted_bytes += evicted_bytes
        return evicted

    # -- reporting -----------------------------------------------------------

    def usage(self) -> tuple[int, int]:
        """Current ``(entries, bytes)`` on disk."""
        entries = self._entries()
        return len(entries), sum(size for _, size, _ in entries)

    def stats_snapshot(self) -> Snapshot:
        """Durable counters + live usage as a telemetry snapshot."""
        stats = self._load_stats()
        entries, nbytes = self.usage()
        return Snapshot({
            "schema": STORE_SCHEMA,
            "store": {
                **dataclasses.asdict(stats),
                "hit_rate": round(stats.hit_rate, 6),
                "entries": entries,
                "bytes": nbytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            },
        })

    def __repr__(self) -> str:
        budget = []
        if self.max_entries is not None:
            budget.append(f"max_entries={self.max_entries}")
        if self.max_bytes is not None:
            budget.append(f"max_bytes={self.max_bytes}")
        extra = (", " + ", ".join(budget)) if budget else ""
        return f"SharedResultStore({str(self.root)!r}, {len(self)} entries{extra})"
