"""Lockstep progress watchdog: detect hangs instead of spinning forever.

A deadlocked or livelocked lockstep simulation looks like a scheduler
that keeps granting quanta to lanes whose local clocks never move.  The
:class:`LockstepWatchdog` observes the scheduler after every quantum and
raises a structured :class:`SimulationHang` — with per-tile stall
attribution pulled from partial results and telemetry — once no live
lane has made progress for ``k_quanta`` consecutive quanta, or once a
token channel is left non-empty at a quantum boundary (token
starvation/leak).

:class:`SimulationHang` is also the base class of the SMPI runtime's
``DeadlockError``, so every "the simulation stopped advancing" condition
in the reproduction is one exception family with a ``diagnostics`` dict.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimulationHang", "LockstepWatchdog", "WatchdogStats"]


class SimulationHang(RuntimeError):
    """The simulation stopped making forward progress.

    ``diagnostics`` holds structured evidence: per-lane clocks/offsets,
    stall attribution from partial results, token-channel occupancy,
    and (when a system is attached) a full telemetry snapshot.
    """

    def __init__(self, message: str, diagnostics: dict | None = None) -> None:
        super().__init__(message)
        self.diagnostics = dict(diagnostics or {})


@dataclass
class WatchdogStats:
    """Counters the telemetry registry exports under ``watchdog``."""

    checks: int = 0
    #: consecutive quanta with zero lane progress (current run length)
    stalled_quanta: int = 0
    worst_stall: int = 0
    hangs: int = 0


class LockstepWatchdog:
    """Progress monitor for a :class:`repro.soc.LockstepScheduler`.

    Pass one to ``System.run_parallel(..., watchdog=...)`` (or set it as
    ``scheduler.watchdog``).  ``observe`` is called after every quantum;
    it raises :class:`SimulationHang` after ``k_quanta`` quanta without
    any live lane's clock advancing or any lane finishing.
    """

    def __init__(self, k_quanta: int = 64, system=None) -> None:
        if k_quanta <= 0:
            raise ValueError("k_quanta must be positive")
        self.k_quanta = k_quanta
        self.system = system
        self.stats = WatchdogStats()
        self._last_times: dict[int, int] | None = None

    def reset(self) -> None:
        self.stats = WatchdogStats()
        self._last_times = None

    # scheduler.watchdog is called with the scheduler itself
    def __call__(self, scheduler) -> None:
        self.observe(scheduler)

    def observe(self, scheduler) -> None:
        """Check progress after a quantum; raise on a detected hang."""
        self.stats.checks += 1
        live = scheduler.live_lanes
        if not live:
            self.stats.stalled_quanta = 0
            self._last_times = None
            return
        times = {i: scheduler.lanes[i].local_time() for i in live}
        leaked = [i for i, ch in enumerate(scheduler.channels)
                  if ch.occupancy != 0]
        if self._last_times is not None and any(
                times[i] < self._last_times[i]
                for i in times if i in self._last_times):
            # A lane clock moved backward: the scheduler was rewound
            # (checkpoint restore) under us.  Re-arm from the new
            # baseline instead of flagging the rewind as a stall.
            self._last_times = None
            self.stats.stalled_quanta = 0
        progressed = (
            self._last_times is None
            or set(times) != set(self._last_times)  # a lane finished
            or any(times[i] > self._last_times[i] for i in times)
        )
        if progressed and not leaked:
            self.stats.stalled_quanta = 0
        else:
            self.stats.stalled_quanta += 1
            if self.stats.stalled_quanta > self.stats.worst_stall:
                self.stats.worst_stall = self.stats.stalled_quanta
        self._last_times = times
        if self.stats.stalled_quanta >= self.k_quanta:
            self.stats.hangs += 1
            what = ("token channel starvation" if leaked
                    else "no lane progress")
            raise SimulationHang(
                f"lockstep hang: {what} for {self.stats.stalled_quanta} "
                f"consecutive quanta (lanes {live} stuck)",
                diagnostics=self.diagnose(scheduler, leaked))

    def diagnose(self, scheduler, leaked: list[int] | None = None) -> dict:
        """Structured per-tile stall attribution for a hang report."""
        lanes = []
        for i, lane in enumerate(scheduler.lanes):
            entry: dict = {"lane": i, "local_time": lane.local_time(),
                           "live": i in scheduler._live}
            offset = getattr(lane, "offset", None)
            trace = getattr(lane, "trace", None)
            if offset is not None:
                entry["offset"] = offset
            if trace is not None:
                entry["remaining_ops"] = len(trace) - (offset or 0)
            result = getattr(lane, "result", None)
            if result is not None:
                entry["stalls"] = dict(result.stalls)
                entry["instructions"] = result.instructions
            ch = scheduler.channels[i]
            entry["tokens"] = ch.state()
            lanes.append(entry)
        diag = {
            "quanta": scheduler.stats.quanta,
            "quantum": scheduler.quantum,
            "stalled_quanta": self.stats.stalled_quanta,
            "starved_channels": list(leaked or []),
            "lanes": lanes,
        }
        if self.system is not None:
            from ..telemetry import StatsRegistry  # local: avoid import cycle
            diag["telemetry"] = StatsRegistry(self.system).snapshot().data
        return diag
