"""Versioned, content-hashed simulation checkpoints.

FireSim survives multi-hour FPGA runs by snapshotting target state and
replaying deterministically from the snapshot; this module is the
reproduction's equivalent for :class:`repro.soc.System`.  A
:class:`SimCheckpoint` captures every piece of mutable simulation state —
tile pipelines, branch predictors, caches/TLBs/LLC/DRAM/bus/directory,
lockstep-scheduler position, token channels, and partial per-lane
results — at a quantum boundary, so a resumed ``run_parallel`` produces
**bit-identical** :class:`~repro.core.base.CoreResult`\\ s to an
uninterrupted run.

Design notes:

* ``System`` holds lambdas (page-walkers, the per-tile uncore shim), so
  it is neither picklable nor safely deep-copyable.  Capture therefore
  walks each component's ``__dict__`` explicitly and restore applies the
  captured values **in place** onto the existing component objects —
  component identity never changes, which preserves the shared
  references (LLC slices → DRAM channels, walker closures → L2).
* Checkpoints are self-verifying: a sha-256 digest over the pickled
  payload detects torn/corrupted files, a config fingerprint refuses
  restores onto a mismatched topology, and :func:`audit_checkpoint`
  checks physical invariants (token conservation, monotonic lane clocks,
  cache tag uniqueness, dirty ⊆ valid, TLB set bounds) on every restore.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import io
import json
import os
import pickle
import tempfile
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointAuditError",
    "SimCheckpoint",
    "audit_checkpoint",
    "capture_system",
    "restore_system",
    "config_fingerprint",
    "trace_fingerprint",
]

#: bump when the capture layout below changes incompatibly
CHECKPOINT_SCHEMA = 1

_PICKLE_PROTOCOL = 4  # fixed so digests are stable across interpreters


class CheckpointError(RuntimeError):
    """A checkpoint could not be created, read, or applied."""


class CheckpointAuditError(CheckpointError):
    """A checkpoint failed its invariant audit.

    ``problems`` lists every violated invariant (the audit does not stop
    at the first failure).
    """

    def __init__(self, problems: list[str]) -> None:
        self.problems = list(problems)
        lines = "\n".join(f"  - {p}" for p in self.problems)
        super().__init__(
            f"checkpoint failed invariant audit "
            f"({len(self.problems)} problem(s)):\n{lines}")


# -- fingerprints -------------------------------------------------------------


def config_fingerprint(cfg) -> str:
    """sha-256 over the canonical JSON of a (frozen dataclass) config.

    The ``accel`` knob is excluded: accelerated runs are bit-identical to
    reference runs by contract, so a checkpoint taken in either mode must
    restore into the other.
    """
    tree = dataclasses.asdict(cfg)
    tree.pop("accel", None)
    blob = json.dumps(tree, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def trace_fingerprint(trace) -> str:
    """sha-256 over a Trace's column arrays (content identity)."""
    h = hashlib.sha256()
    for name in trace.__slots__:
        arr = np.ascontiguousarray(getattr(trace, name))
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


# -- component state capture --------------------------------------------------

#: attribute names never captured: configs/wiring, not mutable sim state
_WIRING = {"cfg", "name", "next_level", "port", "bru", "uncore", "cache",
           "tile_id", "prefetcher", "_walker", "_accel", "_accel_on"}


def _grab(obj) -> dict[str, Any]:
    """Deep-copy every mutable (non-wiring, non-callable) attribute."""
    out: dict[str, Any] = {}
    for k, v in vars(obj).items():
        if k in _WIRING or callable(v):
            continue
        out[k] = copy.deepcopy(v)
    return out


def _apply(obj, state: dict[str, Any]) -> None:
    """Write captured state back onto an existing object, in place.

    Values are deep-copied on the way in so one checkpoint can be
    restored into several systems without aliasing live state.
    """
    for k, v in state.items():
        if not hasattr(obj, k):
            raise CheckpointError(
                f"checkpoint state key {k!r} does not exist on "
                f"{type(obj).__name__}; schema drift?")
        setattr(obj, k, copy.deepcopy(v))


def capture_system(system) -> dict:
    """Capture the full mutable state tree of a :class:`repro.soc.System`."""
    tiles = []
    for tile in system.tiles:
        port = tile.port
        tiles.append({
            "core": _grab(tile.core),
            "bru": _grab(tile.core.bru),
            "l1i": _grab(port.l1i),
            "l1d": _grab(port.l1d),
            "itlb": _grab(port.itlb),
            "dtlb": _grab(port.dtlb),
            "prefetch": _grab(port.prefetcher) if port.prefetcher else None,
        })
    unc = system.uncore
    return {
        "tiles": tiles,
        "uncore": {
            "l2": _grab(unc.l2),
            "bus": _grab(unc.bus),
            "directory": _grab(unc.directory) if unc.directory else None,
            "drams": [_grab(d) for d in unc.drams],
            "llc": ([_grab(s) for s in unc.llc.slices]
                    if unc.llc is not None else None),
        },
    }


def restore_system(system, state: dict) -> None:
    """Apply a :func:`capture_system` tree onto *system*, in place."""
    tiles = state["tiles"]
    if len(tiles) != len(system.tiles):
        raise CheckpointError(
            f"checkpoint has {len(tiles)} tiles, system has "
            f"{len(system.tiles)}")
    for tile, ts in zip(system.tiles, tiles):
        port = tile.port
        _apply(tile.core, ts["core"])
        _apply(tile.core.bru, ts["bru"])
        _apply(port.l1i, ts["l1i"])
        _apply(port.l1d, ts["l1d"])
        _apply(port.itlb, ts["itlb"])
        _apply(port.dtlb, ts["dtlb"])
        if (ts["prefetch"] is None) != (port.prefetcher is None):
            raise CheckpointError("prefetcher presence mismatch")
        if ts["prefetch"] is not None:
            _apply(port.prefetcher, ts["prefetch"])
    unc = system.uncore
    ustate = state["uncore"]
    _apply(unc.l2, ustate["l2"])
    _apply(unc.bus, ustate["bus"])
    if (ustate["directory"] is None) != (unc.directory is None):
        raise CheckpointError("coherence directory presence mismatch")
    if ustate["directory"] is not None:
        _apply(unc.directory, ustate["directory"])
    if len(ustate["drams"]) != len(unc.drams):
        raise CheckpointError(
            f"checkpoint has {len(ustate['drams'])} DRAM channels, system "
            f"has {len(unc.drams)}")
    for dram, ds in zip(unc.drams, ustate["drams"]):
        _apply(dram, ds)
    if (ustate["llc"] is None) != (unc.llc is None):
        raise CheckpointError("LLC presence mismatch")
    if ustate["llc"] is not None:
        if len(ustate["llc"]) != len(unc.llc.slices):
            raise CheckpointError("LLC slice count mismatch")
        for sl, ss in zip(unc.llc.slices, ustate["llc"]):
            _apply(sl, ss)


# -- invariant audit ----------------------------------------------------------


def _audit_cache(label: str, cs: dict, problems: list[str]) -> None:
    tags = cs.get("_tags")
    dirty = cs.get("_dirty")
    if tags is None:
        return
    valid = tags != -1
    for s in range(tags.shape[0]):
        row = tags[s][valid[s]]
        if len(row) != len(np.unique(row)):
            problems.append(
                f"{label}: duplicate valid tag in set {s} "
                f"(cache line corruption)")
    if dirty is not None and bool(np.any(dirty & ~valid)):
        problems.append(f"{label}: dirty bit set on an invalid way")


def _audit_tlb(label: str, ts: dict, problems: list[str]) -> None:
    if "_sets" in ts:  # single-level TLB
        assoc = ts.get("_assoc")
        for s, entries in enumerate(ts["_sets"]):
            if assoc is not None and len(entries) > assoc:
                problems.append(
                    f"{label}: set {s} holds {len(entries)} entries "
                    f"(assoc {assoc})")
    else:  # TwoLevelTLB captured as whole TLB objects
        for lvl in ("l1", "l2"):
            tlb = ts.get(lvl)
            if tlb is None:
                continue
            for s, entries in enumerate(tlb._sets):
                if len(entries) > tlb._assoc:
                    problems.append(
                        f"{label}.{lvl}: set {s} holds {len(entries)} "
                        f"entries (assoc {tlb._assoc})")


def audit_checkpoint(ckpt: "SimCheckpoint", system=None) -> list[str]:
    """Check a checkpoint's physical invariants; returns all problems.

    Invariants: schema match, (optional) config fingerprint vs *system*,
    token conservation on every channel, monotonic non-negative lane
    clocks with offsets inside the trace, per-set cache tag uniqueness,
    dirty ⊆ valid, and TLB set occupancy within associativity.
    """
    problems: list[str] = []
    if ckpt.schema != CHECKPOINT_SCHEMA:
        problems.append(
            f"schema {ckpt.schema} != supported {CHECKPOINT_SCHEMA}")
    if system is not None:
        fp = config_fingerprint(system.cfg)
        if fp != ckpt.config_fp:
            problems.append(
                f"config fingerprint mismatch: checkpoint is for "
                f"{ckpt.config_name!r}, system is {system.cfg.name!r}")

    sched = ckpt.scheduler
    if sched is not None:
        total = 0
        for i, ch in enumerate(sched.get("channels", [])):
            produced, consumed = int(ch["produced"]), int(ch["consumed"])
            if produced != consumed:
                problems.append(
                    f"token channel {i}: produced {produced} != consumed "
                    f"{consumed} at quantum boundary (token leak)")
            if consumed > produced:
                problems.append(
                    f"token channel {i}: consumed {consumed} exceeds "
                    f"produced {produced}")
            total += produced
        if total != int(sched.get("quanta", 0)):
            problems.append(
                f"token conservation: {total} tokens across channels != "
                f"{sched.get('quanta')} scheduler quanta")
        live = set(sched.get("live", []))
    else:
        live = set()

    if ckpt.lanes is not None:
        for i, lane in enumerate(ckpt.lanes):
            t = int(lane["local_time"])
            off, n = int(lane["offset"]), int(lane["trace_len"])
            if t < 0:
                problems.append(f"lane {i}: negative local time {t}")
            if not 0 <= off <= n:
                problems.append(
                    f"lane {i}: offset {off} outside trace [0, {n}]")
            if i not in live and off != n:
                problems.append(
                    f"lane {i}: marked done at offset {off} of {n}")
            res = lane.get("result")
            if res is not None and (res["cycles"] < 0
                                    or res["instructions"] < 0):
                problems.append(f"lane {i}: negative partial result")

    for t, ts in enumerate(ckpt.state.get("tiles", [])):
        _audit_cache(f"tile{t}.l1i", ts["l1i"], problems)
        _audit_cache(f"tile{t}.l1d", ts["l1d"], problems)
        _audit_tlb(f"tile{t}.itlb", ts["itlb"], problems)
        _audit_tlb(f"tile{t}.dtlb", ts["dtlb"], problems)
    ustate = ckpt.state.get("uncore", {})
    if ustate:
        _audit_cache("l2", ustate["l2"], problems)
        for i, ss in enumerate(ustate["llc"] or []):
            _audit_cache(f"llc{i}", ss, problems)
    return problems


# -- content hashing ----------------------------------------------------------


def _digest_update(h, obj) -> None:
    """Feed *obj* into hash *h* by structure, not by pickle bytes."""
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        h.update(b"S" + obj.encode())
    elif isinstance(obj, bytes):
        h.update(b"Y" + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"A" + str(arr.dtype).encode() + repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, (list, tuple, deque)):
        h.update(b"L" + str(len(obj)).encode())
        for v in obj:
            _digest_update(h, v)
    elif isinstance(obj, dict):
        # insertion order is state (OrderedDict = LRU order in TLBs)
        h.update(b"D" + str(len(obj)).encode())
        for k, v in obj.items():
            _digest_update(h, k)
            _digest_update(h, v)
    elif dataclasses.is_dataclass(obj):
        h.update(b"C" + type(obj).__name__.encode())
        for f in dataclasses.fields(obj):
            h.update(f.name.encode())
            _digest_update(h, getattr(obj, f.name))
    elif hasattr(obj, "__dict__"):
        h.update(b"O" + type(obj).__name__.encode())
        for k in sorted(vars(obj)):
            h.update(k.encode())
            _digest_update(h, vars(obj)[k])
    elif hasattr(obj, "__slots__"):
        h.update(b"O" + type(obj).__name__.encode())
        for k in obj.__slots__:
            h.update(k.encode())
            _digest_update(h, getattr(obj, k))
    else:
        # opaque leaf (e.g. np.random.Generator): lone-object pickle is
        # deterministic enough — no cross-object sharing to perturb it
        h.update(b"P" + pickle.dumps(obj, protocol=_PICKLE_PROTOCOL))


# -- the checkpoint record ----------------------------------------------------


@dataclass
class SimCheckpoint:
    """One versioned, digest-protected snapshot of a simulation.

    ``lanes``/``scheduler`` are None for a bare system snapshot (no
    in-flight ``run_parallel``); ``extras`` is caller data carried
    verbatim (the farm stashes its telemetry baseline there so a resumed
    job reports identical deltas).
    """

    schema: int
    config_name: str
    config_fp: str
    state: dict
    lanes: list[dict] | None = None
    scheduler: dict | None = None
    extras: dict = field(default_factory=dict)
    digest: str = ""

    # -- construction ---------------------------------------------------------

    @classmethod
    def capture(cls, system, run=None, extras: dict | None = None,
                ) -> "SimCheckpoint":
        """Snapshot *system* (and the in-flight *run*, if any), sealed."""
        lanes = scheduler = None
        if run is not None:
            lanes = [lane_state(lane) for lane in run.lanes]
            scheduler = run.scheduler.state()
        ckpt = cls(
            schema=CHECKPOINT_SCHEMA,
            config_name=system.cfg.name,
            config_fp=config_fingerprint(system.cfg),
            state=capture_system(system),
            lanes=lanes,
            scheduler=scheduler,
            extras=dict(extras or {}),
        )
        ckpt.digest = ckpt.compute_digest()
        return ckpt

    # -- integrity ------------------------------------------------------------

    def compute_digest(self) -> str:
        """Structural sha-256 over the checkpoint content.

        Walks the value tree in deterministic order rather than hashing
        pickle bytes: pickle output depends on object-sharing/interning
        accidents, so it is not stable across a dump/load round-trip.
        """
        h = hashlib.sha256()
        for name in ("schema", "config_name", "config_fp", "state",
                     "lanes", "scheduler", "extras"):
            h.update(name.encode())
            _digest_update(h, getattr(self, name))
        return h.hexdigest()

    def verify(self) -> None:
        """Raise :class:`CheckpointError` if content does not match digest."""
        actual = self.compute_digest()
        if actual != self.digest:
            raise CheckpointError(
                f"checkpoint digest mismatch: stored {self.digest[:12]}…, "
                f"content hashes to {actual[:12]}… (corrupt or tampered)")

    def audit(self, system=None) -> None:
        """Run the invariant audit; raise :class:`CheckpointAuditError`."""
        problems = audit_checkpoint(self, system)
        if problems:
            raise CheckpointAuditError(problems)

    # -- (de)serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        # shallow field dict, NOT dataclasses.asdict: the state tree holds
        # component stats dataclasses that must survive as objects
        body = {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}
        return pickle.dumps(body, protocol=_PICKLE_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SimCheckpoint":
        try:
            body = pickle.loads(blob)
            ckpt = cls(**body)
        except Exception as exc:  # torn file, bad pickle, missing keys
            raise CheckpointError(f"unreadable checkpoint: {exc}") from exc
        ckpt.verify()
        return ckpt

    def save(self, path: str | Path) -> Path:
        """Atomically write the checkpoint to *path*."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with io.open(fd, "wb") as fh:
                fh.write(self.to_bytes())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SimCheckpoint":
        try:
            blob = Path(path).read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
                from exc
        return cls.from_bytes(blob)

    @property
    def quanta(self) -> int:
        """Scheduler quanta completed when this checkpoint was taken."""
        return int(self.scheduler["quanta"]) if self.scheduler else 0


def result_from_state(d: dict):
    """Rebuild a :class:`~repro.core.base.CoreResult` from its asdict form."""
    from ..core.base import CoreResult  # local: keep import graph acyclic
    return CoreResult(**d)


def lane_state(lane) -> dict:
    """Serializable progress of one ``_TileLane``."""
    result = lane.result
    return {
        "offset": lane.offset,
        "chunk": lane.chunk,
        "trace_len": len(lane.trace),
        "trace_fp": trace_fingerprint(lane.trace),
        "local_time": lane.local_time(),
        "result": (dataclasses.asdict(result)
                   if result is not None else None),
    }
