"""Reliability layer: checkpoints, hang detection, and fault injection.

Long deterministic lockstep runs (the FireSim methodology this repo
reproduces) need three safety nets, and this package provides all of
them:

* :class:`SimCheckpoint` — versioned, sha-256-digested snapshots of full
  :class:`repro.soc.System` state at quantum boundaries; restored runs
  are bit-identical to uninterrupted ones, and every restore passes an
  invariant audit (token conservation, monotonic clocks, cache/TLB
  integrity).
* :class:`LockstepWatchdog` — raises a structured
  :class:`SimulationHang` (per-tile stall attribution, token-channel
  state, telemetry snapshot) when no lane advances for K quanta, instead
  of spinning forever.
* :class:`FaultPlan` — a seeded chaos DSL (worker kill/hang, token
  drop/dup, cache-line and cache-file corruption) driven through
  ``RunFarm`` and ``System`` so the nets above are exercised
  deterministically in CI (``scripts/chaos_smoke.py``).

See ``docs/reliability.md``.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointAuditError,
    CheckpointError,
    SimCheckpoint,
    audit_checkpoint,
    capture_system,
    config_fingerprint,
    restore_system,
    trace_fingerprint,
)
from .faults import (
    FAULT_KINDS,
    Fault,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    apply_token_fault,
    apply_worker_fault,
    corrupt_cache_entry,
    corrupt_cache_line,
)
from .watchdog import LockstepWatchdog, SimulationHang, WatchdogStats

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointAuditError",
    "CheckpointError",
    "FAULT_KINDS",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "LockstepWatchdog",
    "SimCheckpoint",
    "SimulationHang",
    "WatchdogStats",
    "apply_token_fault",
    "apply_worker_fault",
    "audit_checkpoint",
    "capture_system",
    "config_fingerprint",
    "corrupt_cache_entry",
    "corrupt_cache_line",
    "restore_system",
    "trace_fingerprint",
]
