"""Seeded, deterministic fault injection for chaos-testing the stack.

A :class:`FaultPlan` is a reproducible list of :class:`Fault`\\ s parsed
from a tiny DSL (one fault per line or ``;``-separated)::

    kill job=2                      # worker exits hard on job 2, attempt 1
    kill job=2 attempt=1 after=8    # ... after 8 scheduler quanta
    hang job=1 sleep=30             # worker sleeps until the farm timeout
    error job=3 attempt=2           # worker raises FaultInjected
    token-drop lane=0 quantum=10    # steal a token -> channel underflow
    token-dup lane=1 quantum=10     # forge a token -> audit/watchdog trips
    corrupt-line tile=0 cache=l1d   # duplicate a cache tag -> audit trips
    corrupt-cache entry=0           # garbage a farm cache file
    truncate-cache entry=1          # cut a farm cache file in half
    host-stall host=a count=2       # first 2 launches on host a hang
    socket-drop request=3           # server drops client connection 3

Farm faults (``kill``/``hang``/``error``) key on the job *index* in the
submitted batch and an optional ``attempt`` (default 1), so retries run
clean and the batch still converges.  ``corrupt-cache``/``truncate-cache``
key on the batch index of the job whose cache entry to damage.  The plan
carries a seed; anything random (which bytes to garble, which set to
corrupt) derives from it, so a chaos run is exactly replayable.

Serve-layer faults extend the same plan up the stack (PR 8's chaos
harness): ``host-stall`` keys on a deploy-manager host name and hangs
the first ``count`` worker launches placed on it (exercising timeout →
quarantine → checkpoint migration), and ``socket-drop`` keys on the
server's 1-based request ordinal, closing that client connection
*before* the request is dispatched — so a client retry is always safe
and never double-submits.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "apply_token_fault",
    "apply_worker_fault",
    "corrupt_cache_entry",
    "corrupt_cache_line",
]

FAULT_KINDS = frozenset({
    "kill", "hang", "error",            # farm worker faults
    "token-drop", "token-dup",          # lockstep token faults
    "corrupt-line",                     # in-simulation cache corruption
    "corrupt-cache", "truncate-cache",  # on-disk result-cache damage
    "host-stall", "socket-drop",        # serve-layer chaos faults
})

_WORKER_KINDS = frozenset({"kill", "hang", "error"})
_CACHE_KINDS = frozenset({"corrupt-cache", "truncate-cache"})
_TOKEN_KINDS = frozenset({"token-drop", "token-dup"})


class FaultPlanError(ValueError):
    """A fault-plan DSL string could not be parsed."""


class FaultInjected(RuntimeError):
    """An injected fault fired (the in-process flavour of a worker kill)."""


def _coerce(text: str) -> Any:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


@dataclass(frozen=True)
class Fault:
    """One injected fault: a kind plus ``key=value`` parameters."""

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def describe(self) -> str:
        """The DSL line that parses back to this fault."""
        parts = [self.kind] + [f"{k}={v}" for k, v in self.params]
        return " ".join(parts)

    @classmethod
    def parse(cls, line: str) -> "Fault":
        tokens = line.split()
        kind, params = tokens[0], []
        for tok in tokens[1:]:
            if "=" not in tok:
                raise FaultPlanError(
                    f"bad fault parameter {tok!r} in {line!r} "
                    f"(expected key=value)")
            k, _, v = tok.partition("=")
            params.append((k, _coerce(v)))
        return cls(kind, tuple(params))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded collection of faults."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the DSL: one fault per line, ``#`` comments, ``;`` splits."""
        faults = []
        for raw in text.replace(";", "\n").splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                faults.append(Fault.parse(line))
        return cls(tuple(faults), seed=seed)

    @classmethod
    def of(cls, faults: Iterable[Fault], seed: int = 0) -> "FaultPlan":
        return cls(tuple(faults), seed=seed)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def describe(self) -> str:
        return "\n".join(f.describe() for f in self.faults)

    def rng(self) -> random.Random:
        """A fresh deterministic stream (same seed → same damage)."""
        return random.Random(self.seed)

    # -- selectors ------------------------------------------------------------

    def worker_fault(self, index: int, attempt: int = 1) -> Fault | None:
        """The kill/hang/error fault for batch job *index* on *attempt*."""
        for f in self.faults:
            if (f.kind in _WORKER_KINDS and f.param("job") == index
                    and f.param("attempt", 1) == attempt):
                return f
        return None

    def token_faults(self, quantum: int) -> list[Fault]:
        """Token faults due when the scheduler has completed *quantum* quanta."""
        return [f for f in self.faults
                if f.kind in _TOKEN_KINDS and f.param("quantum", 0) == quantum]

    def line_faults(self, quantum: int) -> list[Fault]:
        """corrupt-line faults due at *quantum* (default: quantum 0)."""
        return [f for f in self.faults
                if f.kind == "corrupt-line"
                and f.param("quantum", 0) == quantum]

    def cache_faults(self) -> list[Fault]:
        return [f for f in self.faults if f.kind in _CACHE_KINDS]

    def host_stall(self, host: str, launch: int) -> Fault | None:
        """The host-stall fault covering 0-based *launch* on *host*.

        ``host-stall host=a count=2`` stalls launches 0 and 1 placed on
        host ``a``; the stalled worker sleeps ``sleep`` seconds (default
        3600 — in practice "until the watchdog kills it")."""
        for f in self.faults:
            if (f.kind == "host-stall" and str(f.param("host")) == host
                    and launch < int(f.param("count", 1))):
                return f
        return None

    def socket_drop(self, request: int) -> bool:
        """True when the server should drop *request* (1-based ordinal)
        before dispatching it."""
        return any(f.kind == "socket-drop" and f.param("request") == request
                   for f in self.faults)


# -- appliers -----------------------------------------------------------------


def apply_worker_fault(fault: Fault, *, in_process: bool) -> None:
    """Fire a worker fault.  ``in_process`` = serial mode (no real kill)."""
    if fault.kind == "kill":
        if in_process:
            raise FaultInjected(f"injected worker kill ({fault.describe()})")
        os._exit(13)
    elif fault.kind in ("hang", "host-stall"):
        time.sleep(float(fault.param("sleep", 3600.0)))
    elif fault.kind == "error":
        raise FaultInjected(f"injected worker error ({fault.describe()})")
    else:
        raise FaultPlanError(f"{fault.kind!r} is not a worker fault")


def apply_token_fault(fault: Fault, scheduler) -> None:
    """Drop or forge one token on a lane's channel."""
    lane = int(fault.param("lane", 0))
    if not 0 <= lane < len(scheduler.channels):
        raise FaultPlanError(f"token fault lane {lane} out of range")
    channel = scheduler.channels[lane]
    if fault.kind == "token-drop":
        channel.consume(1)  # underflows: consumer ran ahead
    elif fault.kind == "token-dup":
        channel.produce(1)  # forged token: conservation audit now fails
    else:
        raise FaultPlanError(f"{fault.kind!r} is not a token fault")


def corrupt_cache_line(system, tile: int = 0, cache: str = "l1d",
                       rng: random.Random | None = None) -> str:
    """Duplicate a valid tag inside one cache set (silent data corruption).

    The damage is exactly what the checkpoint audit's per-set
    tag-uniqueness invariant detects.  Returns the damaged cache's name.
    """
    rng = rng or random.Random(0)
    if cache == "l2":
        target = system.uncore.l2
    else:
        port = system.tiles[tile].port
        target = {"l1i": port.l1i, "l1d": port.l1d}.get(cache)
        if target is None:
            raise FaultPlanError(f"unknown cache {cache!r} for corrupt-line")
    tags = target._tags
    sets, ways = tags.shape
    if ways < 2:
        raise FaultPlanError(f"{target.name}: direct-mapped, cannot "
                             f"duplicate a tag within a set")
    # prefer a set that already holds a valid line; else forge one
    candidates = [s for s in range(sets) if (tags[s] != -1).any()]
    s = rng.choice(candidates) if candidates else rng.randrange(sets)
    row = tags[s]
    valid_ways = [w for w in range(ways) if row[w] != -1]
    src = valid_ways[0] if valid_ways else 0
    if not valid_ways:
        row[src] = 0x51C0FFEE
    dst = (src + 1) % ways
    row[dst] = row[src]
    return target.name


def corrupt_cache_entry(cache, key: str, mode: str = "garbage",
                        rng: random.Random | None = None) -> Path | None:
    """Damage the on-disk farm cache entry for *key*; returns its path.

    Modes: ``garbage`` (overwrite a byte span), ``truncate`` (cut the
    file in half), ``schema`` (valid JSON, wrong schema number).  Returns
    None if the entry does not exist.
    """
    rng = rng or random.Random(0)
    path = cache.path(key)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    if mode == "truncate":
        path.write_bytes(blob[:max(1, len(blob) // 2)])
    elif mode == "garbage":
        data = bytearray(blob)
        start = rng.randrange(max(1, len(data) - 8))
        for i in range(start, min(len(data), start + 8)):
            data[i] = rng.randrange(256)
        # ensure it is no longer valid JSON at all
        data[0:1] = b"\x00"
        path.write_bytes(bytes(data))
    elif mode == "schema":
        import json
        entry = json.loads(blob)
        entry["schema"] = -1
        path.write_text(json.dumps(entry))
    else:
        raise FaultPlanError(f"unknown cache-corruption mode {mode!r}")
    return path
