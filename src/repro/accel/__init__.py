"""Hot-path acceleration layer: fast in-order engine + memoization.

``repro.accel`` makes single-process sweeps several times faster without
changing a single simulated number:

* :class:`~repro.accel.engine.AccelEngine` — a bit-identical fast
  execution path for :class:`~repro.core.inorder.InOrderCore`, selected
  by the ``SoCConfig.accel`` knob (``"on"``/``"off"``).  Generic exec
  runs are solved in closed form with numpy; everything else goes
  through a transliterated scalar loop over mirrored component state.
* :mod:`~repro.accel.memo` — content-digest trace identity, shared
  workload traces across sweep points, and an in-process LRU for
  whole-run results.
* :mod:`~repro.accel.stats` — per-core fast-path coverage counters and
  process-wide memo counters, surfaced through telemetry snapshots as
  ``accel.*`` keys.

The bit-identity contract (``accel="on"`` equals ``accel="off"`` for
cycles, stall attribution, CPI stacks, and all component stats) is
regression-tested across every named config; see docs/performance.md.
"""

from .fastpath import MIN_SPAN, SPAN_ELIGIBLE, build_spans, segment_spans
from .memo import (clear_caches, config_digest, memo_enabled, shared_trace,
                   trace_digest)
from .stats import AccelGlobalStats, AccelStats, global_stats, \
    reset_global_stats

__all__ = [
    "AccelStats",
    "AccelGlobalStats",
    "global_stats",
    "reset_global_stats",
    "trace_digest",
    "shared_trace",
    "config_digest",
    "memo_enabled",
    "clear_caches",
    "SPAN_ELIGIBLE",
    "MIN_SPAN",
    "build_spans",
    "segment_spans",
]
