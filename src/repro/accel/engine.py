"""Accelerated execution engine for :class:`~repro.core.inorder.InOrderCore`.

The reference model is exact but pays Python/numpy overhead on every
micro-op: numpy scalar unboxing on each trace column read, ``np.nonzero``
tag probes per cache access, attribute chases through the hierarchy, and
per-branch predictor table indexing.  This engine removes that overhead
while producing **bit-identical results** by construction: every timing
decision is a line-for-line transliteration of the reference code paths,
executed over plain-Python mirrors of the component state.

How it stays exact
------------------

* **Mirrors, not models.**  At ``run()`` entry the engine copies each hot
  component's array state into plain lists (cache tags/dirty/LRU/PLRU,
  BTB, direction-predictor counters) and writes everything back when the
  run ends — including on exceptions — so the reference objects always
  hold the authoritative state between runs.  Structures that are cheap
  to use directly (MSHR dicts, bank timelines, TLB sets, the RAS, the
  store buffer, the register scoreboard, all stats dataclasses) are
  shared in place.  Everything below the L2 (LLC, DRAM, bus, coherence
  directory) is reached through the ordinary reference ``access`` calls,
  in exactly the order the reference would make them.

* **Scalar fast loop.**  Micro-ops execute through a transliteration of
  ``InOrderCore.run`` over pre-decoded Python-list trace columns with
  closure-bound memory/branch operations — the same arithmetic on the
  same values, minus the interpreter overhead.

* **Vectorized spans.**  Maximal runs of generic exec ops (no memory,
  control, divide, or vector work — see :mod:`repro.accel.fastpath`) are
  solved in closed form with numpy.  The solution is optimistic about the
  front end (``fe_ready`` assumed constant); afterwards each I-cache line
  crossing inside the span is replayed with real fetches in program
  order, and if a fetch stalls, only the prefix before it is committed
  and the scalar loop resumes exactly where the reference would be.
  Spans whose dependence fixed point does not converge are handed to the
  scalar loop untouched (the solver has no side effects).

Because all simulated times are integral-valued (possibly float-typed,
matching the reference, whose bank timelines return floats), float64
arithmetic in the span solver is exact and the two modes agree value-
for-value on cycles, stall attribution, and every stats counter.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CoreResult
from repro.core.branch import TAGE, BTB, BimodalBHT, BranchUnit, GShare
from repro.isa.trace import NUM_REGS
from repro.mem.dram import DRAM
from repro.mem.tlb import TLB, TwoLevelTLB

from . import memo
from .fastpath import solve_span

__all__ = ["AccelEngine"]


# -- component mirrors --------------------------------------------------------

def _mirror_cache(cache, next_access):
    """Closure-compiled twin of ``Cache.access`` over list mirrors.

    Tag/dirty/LRU/PLRU state and the use counter/rng live in locals for
    the duration of a run; MSHRs, bank timelines, and stats are the
    shared reference objects.  Returns ``(access, contains, detach)``.
    """
    cfg = cache.cfg
    st = cache.stats
    line_shift = cache._line_shift
    set_mask = cache._set_mask
    hit_lat = cfg.hit_latency
    banks = cfg.banks
    ways = cfg.ways
    n_mshrs = cfg.mshrs
    write_back = cfg.write_back
    cyc = cfg.cycle_time
    is_plru = cfg.replacement == "plru"
    is_lru = cfg.replacement == "lru"
    tags = cache._tags.tolist()
    dirty = cache._dirty.tolist()
    lru = cache._lru.tolist()
    plru = cache._plru.tolist()
    use_counter = cache._use_counter
    rng = cache._rng_state
    mshr = cache._mshr
    bank_tl = cache._bank_free
    # stats accumulate in locals and flush at detach (same totals, fewer
    # attribute round-trips on the hottest call in the simulator)
    n_access = n_hits = n_misses = n_wb = n_merges = 0
    n_conflict = 0
    n_mshr_stall = 0

    def touch(set_idx, way):
        nonlocal use_counter
        use_counter += 1
        lru[set_idx][way] = use_counter
        if is_plru:
            bits = plru[set_idx]
            node = 0
            span = ways
            lo = 0
            while span > 1:
                half = span // 2
                if way < lo + half:
                    bits |= 1 << node
                    node = 2 * node + 1
                    span = half
                else:
                    bits &= ~(1 << node)
                    node = 2 * node + 2
                    lo += half
                    span = half
            plru[set_idx] = bits

    def victim(set_idx):
        nonlocal rng
        row = tags[set_idx]
        if -1 in row:
            return row.index(-1)
        if is_lru:
            lr = lru[set_idx]
            return lr.index(min(lr))
        if is_plru:
            bits = plru[set_idx]
            node = 0
            span = ways
            lo = 0
            while span > 1:
                half = span // 2
                if bits & (1 << node):
                    node = 2 * node + 2
                    lo += half
                else:
                    node = 2 * node + 1
                span = half
            return lo
        x = rng
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        rng = x
        return x % ways

    def access(addr, time, is_store):
        nonlocal n_access, n_hits, n_misses, n_wb, n_merges, n_conflict, \
            n_mshr_stall
        n_access += 1
        line = addr >> line_shift
        set_idx = line & set_mask

        tl = bank_tl[line % banks]
        if cyc <= 0:
            start = float(time)
        else:
            ends = tl._ends
            t = float(time)
            if not ends or t >= ends[-1]:
                tl._starts.append(t)
                ends.append(t + cyc)
                if len(ends) > tl.max_intervals:
                    drop = len(ends) - tl.max_intervals
                    del tl._starts[:drop]
                    del ends[:drop]
                start = t
            else:
                start = tl.reserve(time, cyc)
        if start > time:
            n_conflict += int(start - time)

        row = tags[set_idx]
        if line in row:
            way = row.index(line)
            touch(set_idx, way)
            if is_store:
                if write_back:
                    dirty[set_idx][way] = True
                else:
                    next_access(addr, start + hit_lat, True)
            n_hits += 1
            done = start + hit_lat
            pending = mshr.get(line << line_shift)
            if pending is not None and pending > done:
                return pending
            return done

        n_misses += 1
        tag_time = start + hit_lat
        line_base = line << line_shift
        pending = mshr.get(line_base, 0)
        if pending > tag_time:
            n_merges += 1
            fill_time = pending
        else:
            if len(mshr) >= n_mshrs:
                in_flight = [ft for ft in mshr.values() if ft > tag_time]
                if len(in_flight) >= n_mshrs:
                    wait_until = min(in_flight)
                    n_mshr_stall += wait_until - tag_time
                    tag_time = wait_until
            fill_time = next_access(line_base, tag_time, False)
            mshr[line_base] = fill_time
            if len(mshr) > 2 * n_mshrs:
                for a in [a for a, ft in mshr.items() if ft <= tag_time]:
                    del mshr[a]

        way = victim(set_idx)
        vtag = row[way]
        if write_back and dirty[set_idx][way] and vtag != -1:
            n_wb += 1
            next_access(vtag << line_shift, fill_time, True)
        row[way] = line
        dirty[set_idx][way] = bool(is_store and write_back)
        touch(set_idx, way)
        if is_store and not write_back:
            next_access(addr, fill_time, True)
        return fill_time

    def contains(addr):
        line = addr >> line_shift
        return line in tags[line & set_mask]

    def detach():
        cache._tags[:] = tags
        cache._dirty[:] = dirty
        cache._lru[:] = lru
        if is_plru:
            cache._plru[:] = plru
        cache._use_counter = use_counter
        cache._rng_state = rng
        st.accesses += n_access
        st.hits += n_hits
        st.misses += n_misses
        st.writebacks += n_wb
        st.mshr_merges += n_merges
        st.bank_conflict_cycles += n_conflict
        if n_mshr_stall:
            st.mshr_stall_cycles += n_mshr_stall

    return access, contains, detach


def _mirror_dram(dram):
    """Closure twin of ``DRAM.access`` (all state shared in place).

    Nothing is mirrored — bank state lists, channel timelines, in-flight
    queues, and stats are the reference objects — but the per-request
    attribute chases, the ``map_address`` call, and the common-case
    channel-bus reservation (monotone arrivals append at the tail) are
    flattened into one closure.
    """
    cfg = dram.cfg
    st = dram.stats
    line_bytes = dram.line_bytes
    channels = cfg.channels
    row_div = cfg.row_bytes * channels
    banks_per_chan = dram._banks_per_chan
    open_row = dram._open_row
    bank_ready = dram._bank_ready
    chan_bus = dram._chan_bus
    inflight = dram._inflight
    cCAS = dram._cCAS
    cRCD = dram._cRCD
    cRP = dram._cRP
    cRAS = dram._cRAS
    cCTRL = dram._cCTRL
    cREFI = dram._cREFI
    cRFC = dram._cRFC
    cXFER = dram._cXFER
    queue_depth = cfg.queue_depth
    open_page = cfg.open_page
    qmax = 4 * queue_depth

    def access(addr, time, is_store):
        if is_store:
            st.writes += 1
        else:
            st.reads += 1
        line = addr // line_bytes
        chan = line % channels
        row_global = addr // row_div
        bank = chan * banks_per_chan + row_global % banks_per_chan
        row = row_global // banks_per_chan

        start = time + cCTRL
        q = inflight[chan]
        if q:
            live = [t for t in q if t > start]
            if len(live) >= queue_depth:
                live.sort()
                wait_until = live[-queue_depth]
                st.queue_wait_cycles += int(wait_until - start)
                start = wait_until
            inflight[chan] = live

        if cREFI > 0 and start >= cREFI:
            since = start % cREFI
            if since < cRFC:
                st.refresh_stall_cycles += int(cRFC - since)
                start += cRFC - since
                open_row[bank] = -1
        if open_page and open_row[bank] == row:
            st.row_hits += 1
            ready = bank_ready[bank] - cRAS
            if start > ready:
                ready = start
            access_done = ready + cCAS
        else:
            st.row_misses += 1
            ready = bank_ready[bank]
            if start > ready:
                ready = start
            pre = cRP if open_row[bank] != -1 else 0.0
            access_done = ready + pre + cRCD + cCAS
            open_row[bank] = row if open_page else -1
            bank_ready[bank] = access_done + (0.0 if open_page else cRP)
        if access_done > bank_ready[bank]:
            bank_ready[bank] = access_done

        tl = chan_bus[chan]
        if cXFER <= 0:
            xfer_start = float(access_done)
        else:
            ends = tl._ends
            t = float(access_done)
            if not ends or t >= ends[-1]:
                tl._starts.append(t)
                ends.append(t + cXFER)
                if len(ends) > tl.max_intervals:
                    drop = len(ends) - tl.max_intervals
                    del tl._starts[:drop]
                    del ends[:drop]
                xfer_start = t
            else:
                xfer_start = tl.reserve(access_done, cXFER)
        finish = xfer_start + cXFER
        q = inflight[chan]
        q.append(finish)
        if len(q) > qmax:
            inflight[chan] = [ft for ft in q if ft > finish - 1]
        if is_store:
            return int(start + cCTRL)
        return int(finish)

    return access


def _fast_tlb(tlb, walker):
    """Closure twin of ``translate`` for TLB / TwoLevelTLB.

    Set dicts and stats are shared in place; the per-level ``lookup``
    bodies are inlined into ``translate`` so a hit costs one call.
    """
    if type(tlb) is TwoLevelTLB:
        l1cfg = tlb.l1.cfg
        l1st = tlb.l1.stats
        l1_shift = tlb.l1._page_shift
        l1_nsets = tlb.l1._num_sets
        l1_assoc = tlb.l1._assoc
        l1_sets = tlb.l1._sets
        l2st = tlb.l2.stats
        l2_shift = tlb.l2._page_shift
        l2_nsets = tlb.l2._num_sets
        l2_assoc = tlb.l2._assoc
        l2_sets = tlb.l2._sets
        l1_hit = l1cfg.hit_latency
        l2_hit = tlb.l2_hit_latency
        walk_lat = l1cfg.walk_latency
        walk_n = l1cfg.walk_accesses
        shift = tlb.l1._page_shift

        def translate(addr, time):
            l1st.accesses += 1
            vpn = addr >> l1_shift
            s = l1_sets[vpn % l1_nsets]
            if vpn in s:
                s.move_to_end(vpn)
                return time + l1_hit
            l1st.misses += 1
            if len(s) >= l1_assoc:
                s.popitem(last=False)
            s[vpn] = True
            l2st.accesses += 1
            vpn = addr >> l2_shift
            s = l2_sets[vpn % l2_nsets]
            if vpn in s:
                s.move_to_end(vpn)
                return time + l2_hit
            l2st.misses += 1
            if len(s) >= l2_assoc:
                s.popitem(last=False)
            s[vpn] = True
            t = time + walk_lat
            base = 0x8000_0000 + ((addr >> shift) % 4096) * 8
            for level in range(walk_n):
                t = walker(base + level * 4096, t)
            return t

        return translate
    if type(tlb) is TLB:
        cfg = tlb.cfg
        st = tlb.stats
        shift = tlb._page_shift
        nsets = tlb._num_sets
        assoc = tlb._assoc
        sets = tlb._sets
        hit_lat = cfg.hit_latency
        walk_lat = cfg.walk_latency
        walk_n = cfg.walk_accesses

        def translate(addr, time):
            st.accesses += 1
            vpn = addr >> shift
            s = sets[vpn % nsets]
            if vpn in s:
                s.move_to_end(vpn)
                return time + hit_lat
            st.misses += 1
            if len(s) >= assoc:
                s.popitem(last=False)
            s[vpn] = True
            t = time + walk_lat
            base = 0x8000_0000 + ((addr >> shift) % 4096) * 8
            for level in range(walk_n):
                t = walker(base + level * 4096, t)
            return t

        return translate
    # unknown TLB subclass: use its own translate over the fast walker
    return lambda addr, time: tlb.translate(addr, time, walker)


def _mirror_direction(d):
    """Mirror of a direction predictor; returns (predict, update, detach)."""
    if type(d) is BimodalBHT:
        ctr = d._ctr.tolist()
        mask = d.entries - 1

        def predict(pc):
            return ctr[(pc >> 2) & mask] >= 2

        def update(pc, taken):
            i = (pc >> 2) & mask
            c = ctr[i] + (1 if taken else -1)
            ctr[i] = 3 if c > 3 else (0 if c < 0 else c)

        def detach():
            d._ctr[:] = ctr

        return predict, update, detach

    if type(d) is GShare:
        ctr = d._ctr.tolist()
        mask = d.entries - 1
        hmask = (1 << d.hist_bits) - 1
        hist = d._hist

        def predict(pc):
            return ctr[((pc >> 2) ^ hist) & mask] >= 2

        def update(pc, taken):
            nonlocal hist
            i = ((pc >> 2) ^ hist) & mask
            c = ctr[i] + (1 if taken else -1)
            ctr[i] = 3 if c > 3 else (0 if c < 0 else c)
            hist = ((hist << 1) | (1 if taken else 0)) & hmask

        def detach():
            d._ctr[:] = ctr
            d._hist = hist

        return predict, update, detach

    if type(d) is TAGE:
        nt = d.num_tables
        size = d.size
        tag_bits = d.tag_bits
        nbits = size.bit_length() - 1
        hist_len = d.hist_len
        ctrs = [a.tolist() for a in d._ctr]
        tags = [a.tolist() for a in d._tag]
        useful = [a.tolist() for a in d._useful]
        hist = d._hist
        base_ctr = d.base._ctr.tolist()
        base_mask = d.base.entries - 1

        def fold(bits, out_bits):
            h = hist & ((1 << bits) - 1)
            folded = 0
            omask = (1 << out_bits) - 1
            while h:
                folded ^= h & omask
                h >>= out_bits
            return folded

        def t_index(pc, t):
            return ((pc >> 2) ^ fold(hist_len[t], nbits)) % size

        def t_tag(pc, t):
            return ((pc >> 2) ^ fold(hist_len[t], tag_bits)
                    ^ (fold(hist_len[t], tag_bits - 1) << 1)) & (
                (1 << tag_bits) - 1)

        def predict_full(pc):
            for t in range(nt - 1, -1, -1):
                i = t_index(pc, t)
                if tags[t][i] == t_tag(pc, t):
                    return ctrs[t][i] >= 0, t, i
            return base_ctr[(pc >> 2) & base_mask] >= 2, -1, 0

        def predict(pc):
            return predict_full(pc)[0]

        def update(pc, taken):
            nonlocal hist
            pred, prov, idx = predict_full(pc)
            mis = pred != taken
            if prov >= 0:
                c = ctrs[prov][idx] + (1 if taken else -1)
                ctrs[prov][idx] = 3 if c > 3 else (-4 if c < -4 else c)
                u = useful[prov][idx] + (0 if mis else 1)
                u -= 1 if mis else 0
                useful[prov][idx] = 3 if u > 3 else (0 if u < 0 else u)
            else:
                i = (pc >> 2) & base_mask
                c = base_ctr[i] + (1 if taken else -1)
                base_ctr[i] = 3 if c > 3 else (0 if c < 0 else c)
            if mis and prov < nt - 1:
                allocated = False
                for t in range(prov + 1, nt):
                    i = t_index(pc, t)
                    if useful[t][i] == 0:
                        tags[t][i] = t_tag(pc, t)
                        ctrs[t][i] = 0 if taken else -1
                        allocated = True
                        break
                if not allocated:
                    for t in range(prov + 1, nt):
                        i = t_index(pc, t)
                        u = useful[t][i] - 1
                        useful[t][i] = u if u > 0 else 0
            hist = ((hist << 1) | (1 if taken else 0)) & ((1 << 64) - 1)

        def detach():
            for t in range(nt):
                d._ctr[t][:] = ctrs[t]
                d._tag[t][:] = tags[t]
                d._useful[t][:] = useful[t]
            d._hist = hist
            d.base._ctr[:] = base_ctr

        return predict, update, detach

    return d.predict, d.update, None


def _mirror_branch_unit(bru):
    """Closure twin of ``BranchUnit.resolve``; returns (resolve, detach)."""
    if type(bru) is not BranchUnit or type(bru.btb) is not BTB:
        return bru.resolve, None
    bst = bru.stats
    predict, update, dir_detach = _mirror_direction(bru.direction)
    btb = bru.btb
    nsets = btb.sets
    tag_m = btb._tag.tolist()
    tgt_m = btb._target.tolist()
    lru_m = btb._lru.tolist()
    stamp = btb._stamp
    ras = bru.ras._stack
    ras_depth = bru.ras.depth

    def lookup(pc):
        nonlocal stamp
        s = (pc >> 2) % nsets
        tag = pc >> 2
        row = tag_m[s]
        if tag not in row:
            return None
        w = row.index(tag)
        stamp += 1
        lru_m[s][w] = stamp
        return tgt_m[s][w]

    def insert(pc, target):
        nonlocal stamp
        s = (pc >> 2) % nsets
        tag = pc >> 2
        row = tag_m[s]
        if tag in row:
            w = row.index(tag)
        else:
            lr = lru_m[s]
            w = lr.index(min(lr))
        row[w] = tag
        tgt_m[s][w] = target
        stamp += 1
        lru_m[s][w] = stamp

    def resolve(op, pc, taken, target):
        bst.branches += 1
        if op == 6:  # BRANCH
            pred = predict(pc)
            update(pc, taken)
            if pred != taken:
                bst.mispredicts += 1
                if taken:
                    insert(pc, target)
                return 2
            if taken and lookup(pc) != target:
                insert(pc, target)
                bst.btb_misses += 1
                return 1
            return 0
        if op == 7 or op == 8:  # JUMP / CALL
            if op == 8:
                ras.append(pc + 4)
                if len(ras) > ras_depth:
                    del ras[0]
            pred = lookup(pc)
            if pred == target:
                return 0
            insert(pc, target)
            if pred is None:
                bst.btb_misses += 1
                return 1
            bst.mispredicts += 1
            return 2
        if op == 9:  # RET
            pred_target = ras.pop() if ras else None
            if pred_target != target:
                bst.mispredicts += 1
                bst.ras_mispredicts += 1
                return 2
            return 0
        return 0

    def detach():
        btb._tag[:] = tag_m
        btb._target[:] = tgt_m
        btb._lru[:] = lru_m
        btb._stamp = stamp
        if dir_detach is not None:
            dir_detach()

    return resolve, detach


def _inline_prefetcher(pf, contains_f, access_f):
    """Closure twin of ``StridePrefetcher.observe`` over a mirrored cache.

    The reference ``observe`` would probe/fill the numpy tag arrays the
    mirror has superseded mid-run, so prefetch traffic must flow through
    the same fast closures as demand traffic.
    """
    cfg = pf.cfg
    st = pf.stats
    table = pf._table
    line_b = pf._line
    degree = cfg.degree
    min_conf = cfg.min_confidence
    max_entries = cfg.table_entries

    def observe(addr, time):
        line = addr // line_b
        region = addr >> 12
        entry = table.pop(region, None)
        if entry is None:
            table[region] = (line, 0, 0)
        else:
            last, stride, conf = entry
            new_stride = line - last
            if new_stride == 0:
                table[region] = (line, stride, conf)
            elif new_stride == stride:
                conf = conf + 1 if conf < 4 else 4
                table[region] = (line, stride, conf)
                if conf >= min_conf:
                    st.triggers += 1
                    for k in range(1, degree + 1):
                        target = (line + stride * k) * line_b
                        if not contains_f(target):
                            st.issued += 1
                            access_f(target, time, False)
            else:
                table[region] = (line, new_stride, 1)
        if len(table) > max_entries:
            table.pop(next(iter(table)))

    return observe


# -- port attachment ----------------------------------------------------------

def attach_port(port):
    """Build the fast memory call graph over one TilePort's mirrored state.

    Returns ``(dload, dstore, ifetch, detach)`` — closure twins of the
    TilePort entry points (TLB translate, L1 access, prefetcher observe,
    uncore bus/directory/L2 traversal, all over list mirrors).  Shared by
    the in-order engine, the out-of-order engine, and the batched sweep
    driver; ``detach`` flushes every mirror back and must run exactly
    once, even when the simulated trace raises.
    """
    uncore = port.uncore
    l2 = uncore.l2
    below_l2 = l2.next_level
    l2_access, l2_contains, l2_detach = _mirror_cache(
        l2, _mirror_dram(below_l2) if type(below_l2) is DRAM
        else below_l2.access)
    bus = uncore.bus
    bus_st = bus.stats
    bus_tl = bus._timeline
    bus_starts = bus_tl._starts
    bus_ends = bus_tl._ends
    bus_max = bus_tl.max_intervals
    bus_reserve = bus_tl.reserve
    line_bytes = uncore._line
    bus_occ = bus.cfg.beats(line_bytes) / bus.cfg.clock_ratio
    bus_arb = bus.cfg.arbitration_latency
    directory = uncore.directory
    tile_id = port.tile_id
    if directory is not None:
        # bus.transfer + SnoopDirectory.observe + L2, fused; the bus
        # timeline fast-appends monotone arrivals like the bank
        # timelines in _mirror_cache, falling back to reserve()
        dst = directory.stats
        shr = directory._sharers
        own = directory._owner
        inv_lat = directory.invalidate_latency
        max_lines = directory.max_lines
        dir_prune = directory._prune
        bit = 1 << tile_id

        def uncore_access(addr, time, is_store):
            bus_st.transfers += 1
            t = float(time)
            if not bus_ends or t >= bus_ends[-1]:
                bus_starts.append(t)
                bus_ends.append(t + bus_occ)
                if len(bus_ends) > bus_max:
                    drop = len(bus_ends) - bus_max
                    del bus_starts[:drop]
                    del bus_ends[:drop]
                start = t
            else:
                start = bus_reserve(t, bus_occ)
            if start > time:
                bus_st.contention_cycles += int(start - time)
            t = int(start + bus_arb + bus_occ)
            dline = addr // line_bytes
            extra = 0
            sharers = shr.get(dline, 0)
            if is_store:
                others = sharers & ~bit
                if others:
                    dst.invalidations += bin(others).count("1")
                    extra = inv_lat
                prev_owner = own.get(dline)
                if prev_owner is not None and prev_owner != tile_id:
                    dst.ownership_changes += 1
                    if inv_lat > extra:
                        extra = inv_lat
                shr[dline] = bit
                own[dline] = tile_id
            else:
                if dline in own and own[dline] != tile_id:
                    dst.ownership_changes += 1
                    del own[dline]
                    extra = inv_lat
                shr[dline] = sharers | bit
            if len(shr) > max_lines:
                dir_prune()
            return l2_access(addr, t + extra, is_store)
    else:
        def uncore_access(addr, time, is_store):
            bus_st.transfers += 1
            t = float(time)
            if not bus_ends or t >= bus_ends[-1]:
                bus_starts.append(t)
                bus_ends.append(t + bus_occ)
                if len(bus_ends) > bus_max:
                    drop = len(bus_ends) - bus_max
                    del bus_starts[:drop]
                    del bus_ends[:drop]
                start = t
            else:
                start = bus_reserve(t, bus_occ)
            if start > time:
                bus_st.contention_cycles += int(start - time)
            return l2_access(addr, int(start + bus_arb + bus_occ),
                             is_store)

    l1d_access, l1d_contains, l1d_detach = _mirror_cache(
        port.l1d, uncore_access)
    l1i_access, _, l1i_detach = _mirror_cache(port.l1i, uncore_access)

    def walker(addr, time):
        # page-table walks go straight to L2, as TilePort._walker does
        return l2_access(addr, time, False)

    itlb_translate = _fast_tlb(port.itlb, walker)
    dtlb_translate = _fast_tlb(port.dtlb, walker)

    pf = port.prefetcher
    observe = None
    if pf is not None:
        if pf.cache is port.l1d:
            observe = _inline_prefetcher(pf, l1d_contains, l1d_access)
        elif pf.cache is uncore.l2:
            observe = _inline_prefetcher(pf, l2_contains, l2_access)
        else:
            observe = pf.observe  # foreign cache: no mirror to corrupt

    if observe is None:
        def dload(addr, time):
            return l1d_access(addr, dtlb_translate(addr, time), False)

        def dstore(addr, time):
            return l1d_access(addr, dtlb_translate(addr, time), True)
    else:
        def dload(addr, time):
            t = dtlb_translate(addr, time)
            done = l1d_access(addr, t, False)
            observe(addr, t)
            return done

        def dstore(addr, time):
            t = dtlb_translate(addr, time)
            done = l1d_access(addr, t, True)
            observe(addr, t)
            return done

    def ifetch(addr, time):
        return l1i_access(addr, itlb_translate(addr, time), False)

    def detach():
        l1i_detach()
        l1d_detach()
        l2_detach()

    return dload, dstore, ifetch, detach


# -- the engine ---------------------------------------------------------------

class _InOrderRun:
    """One attached accelerated run, advanceable in segment-sized steps.

    Holds everything :meth:`AccelEngine.run` used to keep in locals —
    mirrored closures, decoded columns, live scoreboard state, stall and
    span counters — so a driver can interleave progress across *several*
    runs.  The solo engine and the config-batched sweep driver
    (:mod:`repro.accel.batch`) both advance instances of this class
    through the same methods, which is what keeps lockstep batched
    execution bit-identical to solo execution by construction: the only
    difference between the two drivers is who computes the span schedule
    (``solve_span`` vs ``solve_span_batch``) — and those agree exactly.

    Protocol: construct (attaches mirrors), call :meth:`scalar_to` /
    :meth:`commit_span` until ``i == n``, then :meth:`close` (always, in
    a ``finally``) and :meth:`finish` for the CoreResult.
    """

    __slots__ = (
        "core", "i", "n", "spans",
        "op_l", "dst_l", "s1_l", "s2_l", "addr_l", "size_l", "taken_l",
        "pc_l", "tgt_l", "lat_list", "lat_np",
        "dload", "dstore", "ifetch", "resolve", "mem_detach", "bru_detach",
        "reg_ready", "sb", "vcfg", "vu_free", "cycle", "t0", "slots",
        "mem_used", "ctrl_used", "fe_ready", "cur_line", "line_entry",
        "div_free", "stall_fe", "stall_dep", "stall_mem", "stall_struct",
        "l1d_st", "l1i_st", "bst", "l1d_miss0", "l1i_miss0", "br0", "mp0",
        "sb_depth", "flush_pen", "bubble_pen", "icache_hit", "W",
        "mem_ports", "pipelined_div", "load_to_use", "amo_extra",
        "fast_uops", "slow_uops", "span_att", "span_done", "span_noconv",
        "span_fehaz", "closed",
    )

    def __init__(self, core, trace, start_time: int = 0) -> None:
        cfg = core.cfg
        port = core.port
        bru = core.bru
        self.core = core

        from .compile import compiled_trace
        view = compiled_trace(trace).cols
        self.op_l = view["op"]
        self.dst_l = view["dst"]
        self.s1_l = view["src1"]
        self.s2_l = view["src2"]
        self.addr_l = view["addr"]
        self.size_l = view["size"]
        self.taken_l = view["taken"]
        self.pc_l = view["pc"]
        self.tgt_l = view["target"]
        self.spans = view["spans"]
        self.n = len(self.op_l)
        self.lat_list, self.lat_np = memo.latency_lut(cfg.latencies)

        # ---- attach: build the fast call graph over mirrored state ----
        self.dload, self.dstore, self.ifetch, self.mem_detach = \
            attach_port(port)
        self.resolve, self.bru_detach = _mirror_branch_unit(bru)

        # ---- loop state (identical to the reference prologue) ----
        self.reg_ready = core._reg_ready
        self.sb = core._sb
        self.vcfg = cfg.vector
        self.vu_free = core._vu_free
        self.cycle = max(start_time, core._time)
        self.t0 = self.cycle
        self.slots = 0
        self.mem_used = 0
        self.ctrl_used = 0
        self.fe_ready = max(core._fe_ready, self.cycle)
        self.cur_line = core._cur_fetch_line
        self.line_entry = self.cycle
        self.div_free = core._div_free
        self.stall_fe = self.stall_dep = 0
        self.stall_mem = self.stall_struct = 0
        self.l1d_st = port.l1d.stats
        self.l1i_st = port.l1i.stats
        self.bst = bru.stats
        self.l1d_miss0 = self.l1d_st.misses
        self.l1i_miss0 = self.l1i_st.misses
        self.br0 = self.bst.branches
        self.mp0 = self.bst.mispredicts
        self.sb_depth = cfg.store_buffer
        self.flush_pen = cfg.flush_penalty
        self.bubble_pen = cfg.bubble_penalty
        self.icache_hit = core._icache_hit
        self.W = cfg.issue_width
        self.mem_ports = cfg.mem_ports
        self.pipelined_div = cfg.pipelined_div
        self.load_to_use = cfg.load_to_use
        self.amo_extra = cfg.latencies.amo_extra
        self.fast_uops = 0
        self.slow_uops = 0
        self.span_att = self.span_done = 0
        self.span_noconv = self.span_fehaz = 0
        self.i = 0
        self.closed = False

    def commit_span(self, sp, lat_arr, sol) -> bool:
        """Apply one solved span: replay I-line crossings with real
        fetches, commit the hazard-free prefix, update counters.

        Returns True when the whole span committed (the caller moves to
        the next span); False on a fetch hazard — ``i`` then points at
        the first uncommitted op and the caller runs the scalar loop to
        ``sp.end``.
        """
        issue, d1, d2 = sol
        issue_l = issue.tolist()
        # replay I-line crossings with real fetches; a fetch stall
        # invalidates the constant-fe assumption from that op on
        cycle = self.cycle
        fe_ready = self.fe_ready
        ifetch = self.ifetch
        icache_hit = self.icache_hit
        k_abort = -1
        lines = sp.lines_l
        sp_pc = sp.pc_l
        wl_cur = self.cur_line
        wl_entry = self.line_entry
        for k in sp.cross_cand:
            line = lines[k]
            if line == wl_cur:
                continue
            ec = cycle if k == 0 else issue_l[k - 1]
            need_at = ec if ec > fe_ready else fe_ready
            issue_at = (wl_entry if line == wl_cur + 1
                        else need_at)
            wl_cur = line
            done = ifetch(sp_pc[k], issue_at)
            extra = done - need_at - icache_hit
            if extra > 0:
                fe_ready = need_at + extra
                self.stall_fe += extra
            wl_entry = fe_ready if fe_ready > ec else ec
            if extra > 0:
                k_abort = k
                break
        self.fe_ready = fe_ready
        m = sp.end - sp.start
        k = m if k_abort < 0 else k_abort
        if k > 0:
            reg_ready = self.reg_ready
            dsts = sp.dst[:k]
            writer = dsts > 0
            if writer.any():
                done_t = issue[:k] + lat_arr[:k]
                wr = np.full(NUM_REGS, -np.inf)
                wr[dsts[writer]] = done_t[writer]
                for r in np.nonzero(wr > -np.inf)[0].tolist():
                    reg_ready[r] = float(wr[r])
            ds = float(d1[:k].sum() + d2[:k].sum())
            if ds:
                self.stall_dep += ds
            new_cycle = issue_l[k - 1]
            same = int(np.count_nonzero(issue[:k] == new_cycle))
            if new_cycle == cycle:
                self.slots += same
            else:
                self.slots = same
                self.mem_used = 0
                self.ctrl_used = 0
            self.cycle = new_cycle
            self.fast_uops += k
            self.i += k
        self.cur_line = wl_cur
        self.line_entry = wl_entry
        if k_abort < 0:
            self.span_done += 1
            return True
        self.span_fehaz += 1
        return False

    def scalar_to(self, limit: int) -> None:
        """Transliterated scalar loop over ``[i, limit)``.

        State lives in locals for the duration (the hot loop), loading
        from and storing back to the instance at the call boundaries.
        """
        i = self.i
        if limit <= i:
            return
        self.slow_uops += limit - i
        op_l = self.op_l
        dst_l = self.dst_l
        s1_l = self.s1_l
        s2_l = self.s2_l
        addr_l = self.addr_l
        size_l = self.size_l
        taken_l = self.taken_l
        pc_l = self.pc_l
        tgt_l = self.tgt_l
        lat_list = self.lat_list
        dload = self.dload
        dstore = self.dstore
        ifetch = self.ifetch
        resolve = self.resolve
        reg_ready = self.reg_ready
        sb = self.sb
        vcfg = self.vcfg
        vu_free = self.vu_free
        cycle = self.cycle
        slots = self.slots
        mem_used = self.mem_used
        ctrl_used = self.ctrl_used
        fe_ready = self.fe_ready
        cur_line = self.cur_line
        line_entry = self.line_entry
        div_free = self.div_free
        stall_fe = self.stall_fe
        stall_dep = self.stall_dep
        stall_mem = self.stall_mem
        stall_struct = self.stall_struct
        sb_depth = self.sb_depth
        flush_pen = self.flush_pen
        bubble_pen = self.bubble_pen
        icache_hit = self.icache_hit
        W = self.W
        mem_ports = self.mem_ports
        pipelined_div = self.pipelined_div
        load_to_use = self.load_to_use
        amo_extra = self.amo_extra
        try:
            for i in range(i, limit):
                op = op_l[i]
                pc = pc_l[i]

                line = pc >> 6
                if line != cur_line:
                    need_at = cycle if cycle > fe_ready else fe_ready
                    issue_at = (line_entry if line == cur_line + 1
                                else need_at)
                    cur_line = line
                    done = ifetch(pc, issue_at)
                    extra = done - need_at - icache_hit
                    if extra > 0:
                        fe_ready = need_at + extra
                        stall_fe += extra
                    line_entry = fe_ready if fe_ready > cycle else cycle

                t = cycle
                if fe_ready > t:
                    t = fe_ready
                s1 = s1_l[i]
                if s1 > 0:
                    r = reg_ready[s1]
                    if r > t:
                        stall_dep += r - t
                        t = r
                s2 = s2_l[i]
                if s2 > 0:
                    r = reg_ready[s2]
                    if r > t:
                        stall_dep += r - t
                        t = r

                if op == 3 and not pipelined_div and div_free > t:
                    stall_struct += div_free - t
                    t = div_free
                if 20 <= op <= 23:
                    if vcfg is None:
                        raise ValueError(
                            "trace contains RVV vector ops but this "
                            "core has no vector unit "
                            "(InOrderConfig.vector is None)"
                        )
                    if vu_free > t:
                        stall_struct += vu_free - t
                        t = vu_free

                if t > cycle:
                    cycle = t
                    slots = 0
                    mem_used = 0
                    ctrl_used = 0
                is_mem = (op == 4 or op == 5 or op == 19
                          or op == 20 or op == 21)
                is_ctrl = 6 <= op <= 9
                while (slots >= W
                       or (is_mem and mem_used >= mem_ports)
                       or (is_ctrl and ctrl_used >= 1)):
                    cycle += 1
                    slots = 0
                    mem_used = 0
                    ctrl_used = 0
                t = cycle
                slots += 1
                if is_mem:
                    mem_used += 1
                if is_ctrl:
                    ctrl_used += 1

                dst = dst_l[i]
                if op == 4:  # LOAD
                    done = dload(addr_l[i], t + 1)
                    if dst > 0:
                        reg_ready[dst] = done + load_to_use
                elif op == 5:  # STORE
                    while sb and sb[0] <= t:
                        sb.popleft()
                    if len(sb) >= sb_depth:
                        wait = sb.popleft()
                        if wait > t:
                            stall_mem += wait - t
                            cycle = wait
                            slots = 1
                            mem_used = 1
                            ctrl_used = 0
                            t = wait
                    done = dstore(addr_l[i], t + 1)
                    sb.append(done)
                elif op == 19:  # AMO
                    done = dstore(addr_l[i], t + 1) + amo_extra
                    if dst > 0:
                        reg_ready[dst] = done
                elif op == 20 or op == 21:  # VLOAD / VSTORE
                    nbytes = size_l[i]
                    base_addr = addr_l[i]
                    is_st = op == 21
                    done = t + 1
                    macc = dstore if is_st else dload
                    for off in range(0, nbytes, 64):
                        acc = macc(base_addr + off, t + 1)
                        if acc > done:
                            done = acc
                    occ = vcfg.startup + vcfg.mem_beats(nbytes)
                    vu_free = t + occ
                    if dst > 0 and not is_st:
                        reg_ready[dst] = max(done, t + occ)
                elif op == 22 or op == 23:  # VALU / VFMA
                    occ = vcfg.startup + vcfg.exec_beats(size_l[i] * 8)
                    vu_free = t + occ
                    if dst > 0:
                        reg_ready[dst] = t + occ + lat_list[op] - 1
                elif is_ctrl:
                    kind = resolve(op, pc, taken_l[i], tgt_l[i])
                    if kind == 2:
                        fe_ready = t + 1 + flush_pen
                    elif kind == 1:
                        fe_ready = t + 1 + bubble_pen
                    if dst > 0:
                        reg_ready[dst] = t + 1
                else:
                    l = lat_list[op]
                    if dst > 0:
                        reg_ready[dst] = t + l
                    if op == 3 and not pipelined_div:
                        div_free = t + l
            i = limit
        finally:
            # on an exception (vector op on a vector-less core) the
            # reference loses its locals too; counters saved here only
            # feed the stats flush at close(), matching reference totals
            self.i = i
            self.vu_free = vu_free
            self.cycle = cycle
            self.slots = slots
            self.mem_used = mem_used
            self.ctrl_used = ctrl_used
            self.fe_ready = fe_ready
            self.cur_line = cur_line
            self.line_entry = line_entry
            self.div_free = div_free
            self.stall_fe = stall_fe
            self.stall_dep = stall_dep
            self.stall_mem = stall_mem
            self.stall_struct = stall_struct

    def close(self) -> None:
        """Flush every mirror and counter back to the reference objects."""
        if self.closed:
            return
        self.closed = True
        self.mem_detach()
        if self.bru_detach is not None:
            self.bru_detach()
        astats = self.core.accel_stats
        astats.fastpath_uops += self.fast_uops
        astats.fallback_uops += self.slow_uops
        astats.spans += self.span_att
        astats.spans_completed += self.span_done
        astats.span_aborts += self.span_noconv + self.span_fehaz
        astats.aborts_no_converge += self.span_noconv
        astats.aborts_fe_hazard += self.span_fehaz
        g = memo.global_stats()
        g.fastpath_uops += self.fast_uops
        g.fallback_uops += self.slow_uops
        g.spans += self.span_att
        g.spans_completed += self.span_done
        g.aborts_no_converge += self.span_noconv
        g.aborts_fe_hazard += self.span_fehaz

    def finish(self) -> CoreResult:
        """Write end-of-run core state back; build the CoreResult."""
        core = self.core
        cfg = core.cfg
        end = self.cycle + cfg.pipeline_depth - 1
        core._time = self.cycle + 1
        core._fe_ready = self.fe_ready
        core._cur_fetch_line = self.cur_line
        core._div_free = self.div_free
        core._vu_free = self.vu_free
        return CoreResult(
            cycles=end - self.t0,
            instructions=self.n,
            stalls={
                "frontend": self.stall_fe,
                "dep": self.stall_dep,
                "mem": self.stall_mem,
                "structural": self.stall_struct,
            },
            branches=self.bst.branches - self.br0,
            mispredicts=self.bst.mispredicts - self.mp0,
            l1d_misses=self.l1d_st.misses - self.l1d_miss0,
            l1i_misses=self.l1i_st.misses - self.l1i_miss0,
        )


class AccelEngine:
    """Drives one :class:`InOrderCore` through the accelerated path."""

    def __init__(self, core) -> None:
        self.core = core

    def start(self, trace, start_time: int = 0) -> _InOrderRun:
        """Attach mirrors and return the stepwise run (batched driver)."""
        return _InOrderRun(self.core, trace, start_time)

    def run(self, trace, start_time: int = 0) -> CoreResult:
        r = _InOrderRun(self.core, trace, start_time)
        spans = r.spans
        nspans = len(spans)
        span_idx = 0
        try:
            while r.i < r.n:
                limit = r.n
                if span_idx < nspans:
                    sp = spans[span_idx]
                    if sp.start == r.i:
                        # ---- vectorized span ----
                        span_idx += 1
                        r.span_att += 1
                        lat_arr = r.lat_np[sp.op]
                        sol = solve_span(sp, lat_arr, r.W, r.cycle,
                                         r.slots, r.fe_ready, r.reg_ready)
                        if sol is None:
                            r.span_noconv += 1
                            limit = sp.end
                        elif r.commit_span(sp, lat_arr, sol):
                            continue
                        else:
                            limit = sp.end
                            if r.i >= limit:
                                continue
                    else:
                        limit = sp.start
                r.scalar_to(limit)
        finally:
            r.close()
        return r.finish()
