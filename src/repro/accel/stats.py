"""Counters for the hot-path acceleration layer.

Two scopes:

* :class:`AccelStats` — per-core fast-path coverage.  Each accelerated
  :class:`~repro.core.inorder.InOrderCore` owns one; the counters say how
  many micro-ops retired through the vectorized span engine
  (``fastpath_uops``) versus the transliterated scalar loop
  (``fallback_uops``), and how often a span had to be abandoned at a
  front-end hazard (``span_aborts``).
* :func:`global_stats` — process-wide memoization counters (result memo,
  shared trace cache, interpreter decode cache).  These live outside any
  :class:`~repro.soc.System` because a memo hit never builds a system at
  all.

Both surface through :class:`repro.telemetry.StatsRegistry` snapshots
under conditional ``accel`` keys (present only when the config runs with
``accel="on"``), mirroring how watchdog stats stay absent on unwatched
runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccelStats", "AccelGlobalStats", "global_stats",
           "reset_global_stats"]


@dataclass
class AccelStats:
    """Per-core fast-path coverage counters."""

    fastpath_uops: int = 0     #: uops retired by the vectorized span engine
    fallback_uops: int = 0     #: uops retired by the scalar scoreboard path
    spans: int = 0             #: spans attempted by the vector engine
    span_aborts: int = 0       #: spans cut short (front-end miss / no converge)
    spans_completed: int = 0   #: spans solved and retired end to end
    #: rejection reasons behind ``span_aborts`` (the engagement split
    #: ``repro bench`` reports): readiness fixed point failed to
    #: converge vs. a real I-fetch stall invalidating the constant
    #: front-end assumption mid-span
    aborts_no_converge: int = 0
    aborts_fe_hazard: int = 0

    @property
    def coverage(self) -> float:
        total = self.fastpath_uops + self.fallback_uops
        return self.fastpath_uops / total if total else 0.0

    def reset(self) -> None:
        self.__init__()


@dataclass
class AccelGlobalStats:
    """Process-wide accel counters: memo caches plus aggregate coverage.

    ``fastpath_uops``/``fallback_uops`` accumulate across every engine in
    the process (systems are often built and discarded per run, so the
    per-core :class:`AccelStats` may be gone by the time a harness wants
    coverage numbers).
    """

    memo_hits: int = 0
    memo_misses: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    #: compiled-trace fetches served by / missed in a shared result store
    compile_store_hits: int = 0
    compile_store_misses: int = 0
    decode_hits: int = 0
    decode_misses: int = 0
    fastpath_uops: int = 0
    fallback_uops: int = 0
    spans: int = 0
    spans_completed: int = 0
    aborts_no_converge: int = 0
    aborts_fe_hazard: int = 0

    @property
    def coverage(self) -> float:
        total = self.fastpath_uops + self.fallback_uops
        return self.fastpath_uops / total if total else 0.0

    def reset(self) -> None:
        self.__init__()


_GLOBAL = AccelGlobalStats()


def global_stats() -> AccelGlobalStats:
    """The process-wide accel counter record (a single shared instance)."""
    return _GLOBAL


def reset_global_stats() -> None:
    _GLOBAL.reset()
