"""Trace and result memoization for the acceleration layer.

Sweeps rerun the same decoded workloads over and over: every config point
of ``sweep_configs`` rebuilds the same kernel trace, and warmup/measure
harnesses run each trace twice on a fresh system.  This module removes the
redundancy without touching semantics:

* :func:`trace_digest` — content identity of a :class:`~repro.isa.trace.Trace`
  (sha-256 over its column arrays, the same hashing the checkpoint layer
  uses), computed once per trace object.
* :func:`trace_arrays` — per-trace decoded view for the fast engine
  (python lists of every column plus the pre-segmented eligible spans).
* :func:`shared_trace` — process-wide ``(kernel, scale, seed) -> Trace``
  cache so sweeps share one decoded trace across configurations.
* :func:`memo_get` / :func:`memo_put` — a bounded in-process LRU keyed on
  ``(trace_digest, core_config_digest, uncore_state_class)`` for whole-run
  results (cold-start, fresh-system runs only: those are the only runs
  whose outcome is a pure function of that key).

All caches hold deep-copied payloads on the way out, so a memo hit can
never alias live state, and everything is disabled either per-config
(``accel="off"``) or globally (``REPRO_ACCEL_MEMO=0``).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from .stats import global_stats

__all__ = [
    "trace_digest",
    "trace_arrays",
    "shared_trace",
    "memo_key",
    "memo_get",
    "memo_put",
    "memo_enabled",
    "clear_caches",
    "config_digest",
    "latency_lut",
]

#: columns of a Trace, in hashing order (mirrors Trace.__slots__)
_TRACE_COLUMNS = ("op", "dst", "src1", "src2", "addr", "size", "taken",
                  "pc", "target")

#: bound on cached whole-run results
_MEMO_MAX = 256
#: bound on decoded per-trace array views (each can be large)
_ARRAYS_MAX = 8
#: bound on shared workload traces
_TRACE_MAX = 64


def memo_enabled() -> bool:
    """Whether the in-process result memo is active (env kill-switch)."""
    return os.environ.get("REPRO_ACCEL_MEMO", "1") != "0"


# -- trace content identity ---------------------------------------------------

#: id(trace) -> (trace, digest); the strong trace reference pins the id
_digests: OrderedDict[int, tuple[Any, str]] = OrderedDict()


def trace_digest(trace) -> str:
    """sha-256 over a trace's column arrays; cached per trace object."""
    key = id(trace)
    hit = _digests.get(key)
    if hit is not None:
        if hit[0] is trace:
            _digests.move_to_end(key)
            return hit[1]
        # id() reuse: the pinned trace died elsewhere (e.g. clear_caches
        # raced) and CPython recycled its address.  Purge, then rehash.
        del _digests[key]
    h = hashlib.sha256()
    for name in _TRACE_COLUMNS:
        arr = np.ascontiguousarray(getattr(trace, name))
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    digest = h.hexdigest()
    _digests[key] = (trace, digest)
    if len(_digests) > _TRACE_MAX:
        _digests.popitem(last=False)
    return digest


# -- decoded array views for the fast engine ----------------------------------

#: id(trace) -> (trace, arrays-dict); strong reference pins the id
_arrays: OrderedDict[int, tuple[Any, dict[str, Any]]] = OrderedDict()


def trace_arrays(trace) -> dict[str, Any]:
    """Python-list views of a trace's columns plus its eligible spans.

    ``tolist()`` converts numpy scalars to plain ints/bools once, so the
    scalar fast loop never pays per-element numpy unboxing.  The result is
    cached per trace object (bounded; traces are immutable).
    """
    key = id(trace)
    hit = _arrays.get(key)
    if hit is not None:
        if hit[0] is trace:
            _arrays.move_to_end(key)
            return hit[1]
        del _arrays[key]  # id() reuse after an external purge: rebuild
    from .fastpath import build_spans
    view: dict[str, Any] = {
        "op": trace.op.tolist(),
        "dst": trace.dst.tolist(),
        "src1": trace.src1.tolist(),
        "src2": trace.src2.tolist(),
        "addr": trace.addr.tolist(),
        "size": trace.size.tolist(),
        "taken": trace.taken.tolist(),
        "pc": trace.pc.tolist(),
        "target": trace.target.tolist(),
        "spans": build_spans(trace),
        "trace": trace,
    }
    _arrays[key] = (trace, view)
    if len(_arrays) > _ARRAYS_MAX:
        _arrays.popitem(last=False)
    return view


# -- latency lookup tables ----------------------------------------------------

_lat_luts: dict = {}


def latency_lut(lat_table):
    """``(list, ndarray)`` of per-OpClass latencies, cached per table.

    ``LatencyTable`` is a frozen (hashable) dataclass, so the table
    itself keys the cache; the list feeds the scalar loop, the float64
    array the span solver.
    """
    hit = _lat_luts.get(lat_table)
    if hit is None:
        from repro.isa.opcodes import OpClass
        lut = [lat_table.latency_of(op) for op in OpClass]
        hit = (lut, np.asarray(lut, dtype=np.float64))
        _lat_luts[lat_table] = hit
    return hit


# -- shared workload traces ---------------------------------------------------

_traces: OrderedDict[tuple, Any] = OrderedDict()


def shared_trace(name: str, scale: float, seed: int,
                 build: Callable[[], Any]):
    """Process-wide decoded-trace cache keyed ``(kernel, scale, seed)``.

    ``sweep_configs``/``sweep_knob`` hit this once per workload instead of
    rebuilding the same trace at every configuration point.  Traces are
    immutable, so sharing one object across systems is safe.
    """
    g = global_stats()
    key = (name, float(scale), int(seed))
    trace = _traces.get(key)
    if trace is not None:
        _traces.move_to_end(key)
        g.trace_cache_hits += 1
        return trace
    g.trace_cache_misses += 1
    trace = build()
    _traces[key] = trace
    if len(_traces) > _TRACE_MAX:
        _traces.popitem(last=False)
    return trace


# -- whole-run result memo ----------------------------------------------------

_memo: OrderedDict[tuple, Any] = OrderedDict()


def config_digest(cfg) -> str:
    """sha-256 of a config's asdict tree, minus the ``accel`` knob.

    The accel mode is excluded because the bit-identity contract makes
    results mode-independent; see docs/performance.md.
    """
    import dataclasses
    tree = dataclasses.asdict(cfg)
    tree.pop("accel", None)
    blob = json.dumps(tree, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def memo_key(trace, cfg, uncore, extra: tuple = ()) -> tuple:
    """LRU key: (trace digest, core-config digest, uncore state class)."""
    return (trace_digest(trace), config_digest(cfg),
            type(uncore).__name__ if uncore is not None else None, extra)


def memo_get(key: tuple):
    """Deep copy of the memoized payload for *key*, or None."""
    g = global_stats()
    if not memo_enabled():
        return None
    hit = _memo.get(key)
    if hit is None:
        g.memo_misses += 1
        return None
    _memo.move_to_end(key)
    g.memo_hits += 1
    return copy.deepcopy(hit)


def memo_put(key: tuple, payload) -> None:
    if not memo_enabled():
        return
    _memo[key] = copy.deepcopy(payload)
    if len(_memo) > _MEMO_MAX:
        _memo.popitem(last=False)


def clear_caches() -> None:
    """Drop every in-process cache (benchmarks call this between timed
    passes so a measurement never feeds on an earlier pass's work)."""
    from .compile import clear_compiled
    _digests.clear()
    _arrays.clear()
    _traces.clear()
    _memo.clear()
    _lat_luts.clear()
    clear_compiled()
