"""Accelerated execution engine for :class:`~repro.core.ooo.OoOCore`.

The out-of-order timestamp-dataflow model dominates sweep wall-clock:
an ALL_CONFIGS sweep spends roughly 85% of its time in the five
BOOM-like configurations, each paying numpy scalar unboxing per trace
column read plus the reference memory-hierarchy attribute chases on
every micro-op.  This engine removes that overhead the same way
:class:`~repro.accel.engine.AccelEngine` does for the in-order model,
and under the same contract: **bit-identical results by construction**.

Every timing decision below is a line-for-line transliteration of
``OoOCore.run`` — the same fractional-cycle bandwidth chains, the same
ring-buffer capacity bookkeeping, the same issue-port min-scan, in the
same order on the same values — executed over the plain-list columns of
a :class:`~repro.accel.compile.CompiledTrace` with the closure-bound
memory and branch mirrors from :mod:`repro.accel.engine`
(:func:`~repro.accel.engine.attach_port`,
:func:`~repro.accel.engine._mirror_branch_unit`).  Mirrors flush back at
detach — including when the trace raises — so the reference objects
always hold the authoritative state between runs.

There is no span fast path here: the OoO model has no span-shaped
generic rule (every op touches rings, ports, and chains), so all uops
retire through the transliterated loop and count as ``fallback_uops``
in the coverage metrics.
"""

from __future__ import annotations

from repro.core.base import CoreResult
from repro.isa.opcodes import OpClass

from . import memo
from .compile import compiled_trace
from .engine import _mirror_branch_unit, attach_port

__all__ = ["OoOAccelEngine"]

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_AMO = int(OpClass.AMO)
_DIV = int(OpClass.INT_DIV)
_VLOAD = int(OpClass.VLOAD)
_VSETVL = int(OpClass.VSETVL)


class OoOAccelEngine:
    """Drives one :class:`OoOCore` through the accelerated path."""

    def __init__(self, core) -> None:
        self.core = core

    def run(self, trace, start_time: int = 0) -> CoreResult:
        core = self.core
        cfg = core.cfg
        port = core.port
        bru = core.bru
        astats = core.accel_stats

        ct = compiled_trace(trace)
        cols = ct.cols
        op_l = cols["op"]
        dst_l = cols["dst"]
        s1_l = cols["src1"]
        s2_l = cols["src2"]
        addr_l = cols["addr"]
        taken_l = cols["taken"]
        pc_l = cols["pc"]
        tgt_l = cols["target"]
        lines_l = ct.lines
        fp_l = ct.is_fp
        n = ct.n
        lat_list, _ = memo.latency_lut(cfg.latencies)

        dload, dstore, ifetch, mem_detach = attach_port(port)
        resolve, bru_detach = _mirror_branch_unit(bru)

        # ---- loop state (identical to the reference prologue) ----
        reg_ready = core._reg_ready
        d_fetch = 1.0 / cfg.fetch_width
        d_disp = 1.0 / cfg.decode_width
        d_commit = 1.0 / cfg.effective_commit_width

        fetch_chain = max(core._fetch_chain, float(start_time))
        dispatch_chain = max(core._dispatch_chain, float(start_time))
        commit_chain = max(core._commit_chain, float(start_time))
        fetch_floor = max(core._fetch_floor, float(start_time))
        t0 = commit_chain
        div_free = core._div_free
        cur_line = core._cur_line
        line_entry = fetch_chain

        rob_ring, rob_head = core._rob_ring, core._rob_head
        ldq_ring, ldq_head = core._ldq_ring, core._ldq_head
        stq_ring, stq_head = core._stq_ring, core._stq_head
        intq_ring, intq_head = core._intq_ring, core._intq_head
        memq_ring, memq_head = core._memq_ring, core._memq_head
        fpq_ring, fpq_head = core._fpq_ring, core._fpq_head
        int_ports = core._int_ports
        mem_ports = core._mem_ports
        fp_ports = core._fp_ports
        n_int_ports = len(int_ports)
        n_mem_ports = len(mem_ports)
        n_fp_ports = len(fp_ports)
        rob_size = cfg.rob_size
        ldq_size = len(ldq_ring)
        stq_size = len(stq_ring)
        intq_size = len(intq_ring)
        memq_size = len(memq_ring)
        fpq_size = len(fpq_ring)
        pending_stores = core._pending_stores
        pending_max = 4 * cfg.stq

        stall_fe = stall_rob = stall_iq = stall_lsq = 0.0
        l1d_st = port.l1d.stats
        l1i_st = port.l1i.stats
        bst = bru.stats
        l1d_miss0 = l1d_st.misses
        l1i_miss0 = l1i_st.misses
        br0, mp0 = bst.branches, bst.mispredicts
        icache_hit = core._icache_hit
        fe_depth = cfg.frontend_depth
        amo_extra = cfg.latencies.amo_extra

        last_commit = commit_chain

        try:
            for i in range(n):
                op = op_l[i]
                pc = pc_l[i]
                if _VLOAD <= op < _VSETVL:
                    raise ValueError(
                        "trace contains RVV vector ops, but the BOOM-like "
                        "out-of-order model has no vector unit (the study's "
                        "FireSim targets run scalar code only)"
                    )

                # ---- fetch ----
                f = fetch_chain + d_fetch
                if fetch_floor > f:
                    stall_fe += fetch_floor - f
                    f = fetch_floor
                line = lines_l[i]
                if line != cur_line:
                    # sequential crossings use next-line fetch-ahead
                    # (issued when the previous line started draining);
                    # redirects pay in full
                    issue_at = line_entry if line == cur_line + 1 else f
                    cur_line = line
                    done = ifetch(pc, int(issue_at))
                    extra = done - f - icache_hit
                    if extra > 0:
                        stall_fe += extra
                        f += extra
                    line_entry = f
                fetch_chain = f

                # ---- dispatch (decode bandwidth, ROB, IQ, LSQ space) ----
                d = dispatch_chain + d_disp
                if f + 1.0 > d:  # 1-cycle decode stage after fetch
                    d = f + 1.0
                rob_free = rob_ring[rob_head]
                if rob_free > d:
                    stall_rob += rob_free - d
                    d = rob_free

                is_mem = op == _LOAD or op == _STORE or op == _AMO
                is_fp = fp_l[i]
                if is_mem:
                    ring, head = memq_ring, memq_head
                elif is_fp:
                    ring, head = fpq_ring, fpq_head
                else:
                    ring, head = intq_ring, intq_head
                iq_free = ring[head]
                if iq_free > d:
                    stall_iq += iq_free - d
                    d = iq_free
                if op == _LOAD:
                    lq_free = ldq_ring[ldq_head]
                    if lq_free > d:
                        stall_lsq += lq_free - d
                        d = lq_free
                elif op == _STORE or op == _AMO:
                    sq_free = stq_ring[stq_head]
                    if sq_free > d:
                        stall_lsq += sq_free - d
                        d = sq_free
                dispatch_chain = d

                # ---- issue: operands + issue port ----
                t = d + 1.0
                s1 = s1_l[i]
                if s1 > 0 and reg_ready[s1] > t:
                    t = reg_ready[s1]
                s2 = s2_l[i]
                if s2 > 0 and reg_ready[s2] > t:
                    t = reg_ready[s2]
                if is_mem:
                    ports = mem_ports
                    nports = n_mem_ports
                elif is_fp:
                    ports = fp_ports
                    nports = n_fp_ports
                else:
                    ports = int_ports
                    nports = n_int_ports
                pi = 0
                pmin = ports[0]
                for k in range(1, nports):
                    if ports[k] < pmin:
                        pmin = ports[k]
                        pi = k
                if pmin > t:
                    t = pmin
                ports[pi] = t + 1.0
                if op == _DIV and div_free > t:
                    t = div_free

                # record issue time for IQ occupancy (entry freed at issue)
                ring[head] = t + 1.0
                if is_mem:
                    memq_head = (head + 1) % memq_size
                elif is_fp:
                    fpq_head = (head + 1) % fpq_size
                else:
                    intq_head = (head + 1) % intq_size

                # ---- execute / complete ----
                dst = dst_l[i]
                if op == _LOAD:
                    addr = addr_l[i]
                    lineaddr = addr >> 6
                    st_pending = pending_stores.get(lineaddr)
                    if st_pending is not None and st_pending > t:
                        # memory ordering: wait for the older store's data
                        t = st_pending
                    complete = float(dload(addr, int(t) + 1))
                elif op == _STORE:
                    addr = addr_l[i]
                    complete = float(dstore(addr, int(t) + 1))
                    lineaddr = addr >> 6
                    pending_stores[lineaddr] = t + 2.0
                    if len(pending_stores) > pending_max:
                        pending_stores.clear()
                elif op == _AMO:
                    complete = float(dstore(addr_l[i], int(t) + 1)) + amo_extra
                else:
                    l = lat_list[op]
                    complete = t + l
                    if op == _DIV:
                        div_free = complete
                if dst > 0:
                    reg_ready[dst] = complete

                # ---- control resolution ----
                if 6 <= op <= 9:  # BRANCH / JUMP / CALL / RET
                    kind = resolve(op, pc, taken_l[i], tgt_l[i])
                    if kind == 2:  # FLUSH
                        nf = complete + fe_depth
                        if nf > fetch_floor:
                            fetch_floor = nf
                    elif kind == 1:  # BUBBLE
                        nf = f + 3.0
                        if nf > fetch_floor:
                            fetch_floor = nf

                # ---- commit (in-order, commit-width limited) ----
                c = commit_chain + d_commit
                if complete + 1.0 > c:
                    c = complete + 1.0
                commit_chain = c
                last_commit = c
                rob_ring[rob_head] = c
                rob_head = (rob_head + 1) % rob_size
                if op == _LOAD:
                    ldq_ring[ldq_head] = c
                    ldq_head = (ldq_head + 1) % ldq_size
                elif op == _STORE or op == _AMO:
                    stq_ring[stq_head] = c
                    stq_head = (stq_head + 1) % stq_size
        finally:
            mem_detach()
            if bru_detach is not None:
                bru_detach()

        astats.fallback_uops += n
        memo.global_stats().fallback_uops += n

        core._fetch_chain = fetch_chain
        core._dispatch_chain = dispatch_chain
        core._commit_chain = commit_chain
        core._fetch_floor = fetch_floor
        core._div_free = div_free
        core._cur_line = cur_line
        core._rob_head, core._ldq_head, core._stq_head = \
            rob_head, ldq_head, stq_head
        core._intq_head, core._memq_head, core._fpq_head = \
            intq_head, memq_head, fpq_head
        core._time = int(last_commit) + 1

        return CoreResult(
            cycles=max(1, int(round(last_commit - t0))),
            instructions=n,
            stalls={
                "frontend": int(stall_fe),
                "rob": int(stall_rob),
                "iq": int(stall_iq),
                "lsq": int(stall_lsq),
            },
            branches=bst.branches - br0,
            mispredicts=bst.mispredicts - mp0,
            l1d_misses=l1d_st.misses - l1d_miss0,
            l1i_misses=l1i_st.misses - l1i_miss0,
        )
