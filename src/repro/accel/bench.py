"""Tracked hot-path benchmark: the ``repro bench`` harness.

Times the 39-kernel microbench sweep twice on the same configuration —
reference path (``accel="off"``) then accelerated path (``accel="on"``) —
verifies the two passes are bit-identical, and times the RV64 functional
interpreter.  The result is written as ``BENCH_<n>.json`` at the repo
root, the perf-trajectory artifact every subsequent PR is measured
against (the CI ``bench-smoke`` job fails on >10% regression).

Every in-process cache is dropped before each timed pass, so a pass
never feeds on work done by an earlier one: the accelerated pass pays
for its own trace building, span segmentation, and memoization.

``repro bench --batched`` adds a second experiment on the same record:
the full (kernel x ALL_CONFIGS) sweep timed serial-per-config versus
config-batched (:func:`run_batched_bench`), with its own bit-identity
flag and span diagnostics.
"""

from __future__ import annotations

import json
import time
from typing import Any

from . import memo
from .stats import global_stats, reset_global_stats

__all__ = ["run_suite_bench", "run_batched_bench", "run_interp_bench",
           "run_bench", "write_bench_json", "BENCH_SCHEMA"]

BENCH_SCHEMA = 1


def _suite_pass(config, scale: float, seed: int, kernels):
    """One timed, cold-cache pass of the microbench suite."""
    from ..workloads.microbench.suite import run_suite

    memo.clear_caches()
    t0 = time.perf_counter()
    runs = run_suite(config, scale=scale, seed=seed, kernels=kernels)
    elapsed = time.perf_counter() - t0
    return runs, elapsed


def run_suite_bench(config=None, scale: float = 0.5, seed: int = 0,
                    kernels: list[str] | None = None) -> dict[str, Any]:
    """Time the microbench sweep with accel off, then on.

    Returns a record with both wall-clock times, the speedup, throughput
    in retired uops/second, fast-path coverage of the accelerated pass,
    and an ``identical`` flag asserting the bit-identity contract held
    for every kernel's cycle count and stall attribution.
    """
    if config is None:
        from ..soc.presets import ROCKET1 as config

    off_runs, off_s = _suite_pass(config.with_(accel="off"), scale, seed,
                                  kernels)
    reset_global_stats()
    on_runs, on_s = _suite_pass(config.with_(accel="on"), scale, seed,
                                kernels)
    g = global_stats()

    identical = all(
        a.result.cycles == b.result.cycles
        and a.result.stalls == b.result.stalls
        and a.result.instructions == b.result.instructions
        for a, b in zip(off_runs.values(), on_runs.values())
    )
    uops = sum(r.result.instructions for r in on_runs.values())
    return {
        "config": config.name,
        "kernels": len(on_runs),
        "scale": scale,
        "seed": seed,
        "off_seconds": round(off_s, 3),
        "on_seconds": round(on_s, 3),
        "speedup": round(off_s / on_s, 2) if on_s else 0.0,
        "uops": uops,
        "off_uops_per_second": round(uops / off_s) if off_s else 0,
        "on_uops_per_second": round(uops / on_s) if on_s else 0,
        "fastpath_coverage": round(g.coverage, 4),
        "span_solver": _span_solver_record(on_runs),
        "identical": identical,
    }


def _span_solver_record(on_runs) -> dict[str, Any]:
    """Per-kernel span-solver engagement for the accelerated pass.

    Answers the question a bare ``fastpath_coverage: 0.0`` leaves open:
    did the solver never *try* (no eligible spans in the traces — a
    workload property) or did it try and *give up* (aborts — an engine
    property)?  Per kernel: spans attempted/completed, the two abort
    reasons, fast-path coverage, and the static analysis of why the
    trace segments the way it does; plus a suite-wide roll-up including
    the aggregate hazard-density histogram.
    """
    totals = {"spans": 0, "spans_completed": 0,
              "aborts_no_converge": 0, "aborts_fe_hazard": 0,
              "uops": 0, "eligible_uops": 0, "span_uops": 0,
              "runs_below_min_span": 0}
    hazard = [0] * 10
    per_kernel: dict[str, Any] = {}
    for name, run in on_runs.items():
        info = getattr(run, "accel", None)
        if not info:
            continue
        eng, static = info["engine"], info["static"]
        fast = eng.get("fastpath_uops", 0)
        slow = eng.get("fallback_uops", 0)
        per_kernel[name] = {
            "spans": eng.get("spans", 0),
            "spans_completed": eng.get("spans_completed", 0),
            "aborts_no_converge": eng.get("aborts_no_converge", 0),
            "aborts_fe_hazard": eng.get("aborts_fe_hazard", 0),
            "coverage": round(fast / (fast + slow), 4)
            if fast + slow else 0.0,
            "eligible_uops": static["eligible_uops"],
            "uops": static["uops"],
            "runs_below_min_span": static["runs_below_min_span"],
        }
        for k in ("spans", "spans_completed",
                  "aborts_no_converge", "aborts_fe_hazard"):
            totals[k] += eng.get(k, 0)
        for k in ("uops", "eligible_uops", "span_uops",
                  "runs_below_min_span"):
            totals[k] += static[k]
        hazard = [a + b for a, b in zip(hazard, static["hazard_density"])]
    totals["eligible_frac"] = (round(totals["eligible_uops"]
                                     / totals["uops"], 4)
                               if totals["uops"] else 0.0)
    totals["hazard_density"] = hazard
    totals["per_kernel"] = per_kernel
    return totals


def run_batched_bench(configs=None, scale: float = 0.3, seed: int = 0,
                      kernels: list[str] | None = None) -> dict[str, Any]:
    """Time the (kernel x config) sweep serial-per-config, then batched.

    The serial leg runs one ``Job.kernel`` per (kernel, config) pair on
    the reference models (``accel="off"``) — the per-config path every
    batched point is contractually bit-identical to.  The batched leg
    runs one config-batched ``Job.sweep`` per kernel: the trace is
    compiled once and every configuration evaluated over it in a single
    vectorized pass.  Both legs start cache-cold; ``identical`` asserts
    full payload equality on every (kernel, config) point, and
    ``span_diagnostics`` reports how the batched pass earned its time
    (fast-path coverage, span engagement, compiled-trace store traffic).
    """
    from ..farm.job import Job, execute_job
    from ..soc.presets import ALL_CONFIGS
    from ..workloads.microbench import runnable_kernels

    if configs is None:
        configs = [ALL_CONFIGS[n] for n in sorted(ALL_CONFIGS)]
    names = kernels or [k.spec.name for k in runnable_kernels()]

    memo.clear_caches()
    serial: dict[str, dict[str, Any]] = {}
    t0 = time.perf_counter()
    for kname in names:
        serial[kname] = {
            cfg.name: execute_job(Job.kernel(cfg.with_(accel="off"), kname,
                                             scale=scale, seed=seed))
            for cfg in configs
        }
    serial_s = time.perf_counter() - t0

    memo.clear_caches()
    reset_global_stats()
    batched: dict[str, dict[str, Any]] = {}
    t0 = time.perf_counter()
    for kname in names:
        payload = execute_job(Job.sweep(configs, kname,
                                        scale=scale, seed=seed))
        batched[kname] = payload["points"]
    batched_s = time.perf_counter() - t0
    g = global_stats()

    identical = all(
        serial[kname][cfg.name] == batched[kname][cfg.name]
        for kname in names for cfg in configs
    )
    return {
        "configs": [cfg.name for cfg in configs],
        "kernels": len(names),
        "scale": scale,
        "seed": seed,
        "serial_seconds": round(serial_s, 3),
        "batched_seconds": round(batched_s, 3),
        "speedup": round(serial_s / batched_s, 2) if batched_s else 0.0,
        "identical": identical,
        "span_diagnostics": {
            "fastpath_uops": g.fastpath_uops,
            "fallback_uops": g.fallback_uops,
            "coverage": round(g.coverage, 4),
            "spans": g.spans,
            "spans_completed": g.spans_completed,
            "aborts_no_converge": g.aborts_no_converge,
            "aborts_fe_hazard": g.aborts_fe_hazard,
            "compile_store_hits": g.compile_store_hits,
            "compile_store_misses": g.compile_store_misses,
        },
    }


def run_interp_bench(iterations: int = 40) -> dict[str, Any]:
    """Time the functional interpreter on a store/load/ALU inner loop.

    The loop body touches the page-backed :class:`~repro.isa.interp.Memory`
    on every iteration and re-enters the same decoded words, so this
    measures exactly what the interpreter satellites optimized: memory
    word paths and the instruction decode cache.
    """
    from ..isa.assembler import assemble
    from ..isa.interp import Interpreter

    src = """
        addi x5, x0, 0
        addi x6, x0, {n}
        slli x6, x6, 3
        addi x7, x0, 0
    loop:
        andi x8, x5, 2047
        slli x8, x8, 3
        addi x8, x8, 1024
        sd   x7, 0(x8)
        ld   x9, 0(x8)
        add  x7, x7, x9
        addi x5, x5, 1
        blt  x5, x6, loop
        ecall
    """.format(n=min(iterations * 8, 2047))

    prog = assemble(src)
    from ..isa import interp as _interp

    _interp._DECODE_CACHE.clear()
    reset_global_stats()
    retired = 0
    t0 = time.perf_counter()
    # two executions of the same program: the second one decodes
    # entirely out of the instruction cache
    for _ in range(2):
        interp = Interpreter(prog, trace=False)
        interp.run(max_instructions=10_000_000)
        retired += interp.retired
    elapsed = time.perf_counter() - t0
    g = global_stats()
    return {
        "instructions": retired,
        "seconds": round(elapsed, 3),
        "instructions_per_second": (round(interp.retired / elapsed)
                                    if elapsed else 0),
        "mem_bytes": len(interp.mem),
        "decode_hits": g.decode_hits,
        "decode_misses": g.decode_misses,
    }


def run_bench(config=None, scale: float = 0.5, seed: int = 0,
              kernels: list[str] | None = None,
              batched: bool = False) -> dict[str, Any]:
    """Full tracked benchmark: microbench sweep + interpreter.

    With *batched* (CLI ``repro bench --batched``) the record also gets
    a ``batched`` section timing the full (kernel x ALL_CONFIGS) sweep
    serial-per-config versus config-batched.
    """
    record = {
        "schema": BENCH_SCHEMA,
        "suite": run_suite_bench(config, scale=scale, seed=seed,
                                 kernels=kernels),
        "interp": run_interp_bench(),
    }
    if batched:
        record["batched"] = run_batched_bench(kernels=kernels, seed=seed)
    return record


def write_bench_json(record: dict[str, Any], path) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
