"""Vectorized span analysis for the in-order fast path.

The in-order scoreboard in :class:`~repro.core.inorder.InOrderCore` only
needs its full per-op machinery for micro-ops that touch the memory
system, the branch unit, the unpipelined divider, or the vector unit.
Everything else — integer/FP exec ops, CSRs, fences, ``vsetvl`` — flows
through one generic timing rule: wait for operands, pack into issue
slots, write the destination at ``issue + latency``.

This module pre-segments a trace into maximal runs of such ops
("spans"), links each span operand to its in-span producer, and solves a
whole span's issue schedule in closed form with numpy:

* slot packing — for span op *k* with ``e_k = slots_in + k`` issue-slot
  consumptions since span entry at cycle *C* on a *W*-wide core,

  ``issue_k = (max(W*C, max_{j<=k}(W*ready_j - e_j)) + e_k) // W``

  which reproduces the scalar ``while slots >= W: cycle += 1`` packing
  exactly (prefix maximum via ``np.maximum.accumulate``);
* operand readiness — a monotone fixed-point over
  ``ready_k = max(fe, issue[prod] + lat[prod], carried reg_ready)``,
  converging in at most dependency-chain-depth iterations; spans whose
  chains exceed the iteration cap are handed back to the scalar engine
  untouched (no side effects happen before convergence).

All times are integral-valued (possibly float-typed) simulation cycles,
so float64 floor-division is exact and the schedule matches the scalar
loop bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.isa.opcodes import OpClass

__all__ = ["SPAN_ELIGIBLE", "MIN_SPAN", "Span", "build_spans",
           "segment_spans", "solve_span", "solve_span_batch",
           "span_diagnostics"]

#: ops the generic timing rule covers: no memory port, no branch unit,
#: no divider interlock, no vector unit occupancy
SPAN_ELIGIBLE = frozenset({
    OpClass.NOP, OpClass.INT_ALU, OpClass.INT_MUL,
    OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_FMA, OpClass.FP_DIV,
    OpClass.FP_SQRT, OpClass.FP_CVT, OpClass.FP_MOV,
    OpClass.CSR, OpClass.FENCE, OpClass.VSETVL,
})

#: below this length the numpy setup costs more than the scalar loop
MIN_SPAN = 32

_ELIGIBLE_LUT = np.zeros(256, dtype=bool)
_ELIGIBLE_LUT[[int(op) for op in SPAN_ELIGIBLE]] = True

#: fixed-point iteration cap; deeper serial chains fall back to scalar
_MAX_ITER = 64


class Span:
    """One eligible run ``[start, end)`` with pre-linked producers.

    ``cross_cand`` lists the in-span op indices where the front end may
    see a new 64-byte fetch line (index 0 plus every line change); the
    engine replays real I-fetches only at those points.
    """

    __slots__ = ("start", "end", "op", "dst", "s1", "s2",
                 "prod1", "prod2", "pc_l", "lines_l", "cross_cand")

    def __init__(self, trace, start: int, end: int):
        self.start = start
        self.end = end
        self.op = trace.op[start:end].astype(np.int64)
        self.dst = trace.dst[start:end].astype(np.int64)
        self.s1 = trace.src1[start:end].astype(np.int64)
        self.s2 = trace.src2[start:end].astype(np.int64)
        pc = trace.pc[start:end].astype(np.int64)
        self.pc_l = pc.tolist()
        lines = pc >> 6
        self.lines_l = lines.tolist()
        self.cross_cand = [0] + (np.nonzero(np.diff(lines) != 0)[0]
                                 + 1).tolist()
        self.prod1 = _link_producers(self.dst, self.s1)
        self.prod2 = _link_producers(self.dst, self.s2)

    def __len__(self) -> int:
        return self.end - self.start


def _link_producers(dst: np.ndarray, src: np.ndarray) -> np.ndarray:
    """For each op *i*, the last ``j < i`` with ``dst[j] == src[i] > 0``.

    Encodes producers as sorted keys ``dst*m + j`` and binary-searches
    ``src*m + i``; the predecessor of the insertion point is the latest
    earlier write to that register (an op's own write never counts — its
    key equals the query, and searchsorted's left side excludes it).
    """
    m = len(dst)
    prod = np.full(m, -1, dtype=np.int64)
    writers = dst > 0
    if not writers.any():
        return prod
    idx = np.arange(m, dtype=np.int64)
    keys = dst[writers] * m + idx[writers]
    order = np.argsort(keys, kind="stable")
    skeys = keys[order]
    sidx = idx[writers][order]
    pos = np.searchsorted(skeys, src * m + idx)
    cand = pos - 1
    safe = np.clip(cand, 0, None)
    hit = (cand >= 0) & (src > 0) & (skeys[safe] // m == src)
    prod[hit] = sidx[safe[hit]]
    return prod


def segment_spans(op_col) -> list:
    """Maximal ``(start, end)`` runs of eligible ops, length >= MIN_SPAN."""
    op = np.asarray(op_col, dtype=np.uint8)
    if op.size == 0:
        return []
    elig = _ELIGIBLE_LUT[op]
    edges = np.diff(np.concatenate(([False], elig, [False])).astype(np.int8))
    starts = np.nonzero(edges == 1)[0]
    ends = np.nonzero(edges == -1)[0]
    return [(int(s), int(e))
            for s, e in zip(starts, ends) if e - s >= MIN_SPAN]


def build_spans(trace) -> list:
    """Pre-analyzed :class:`Span` objects for every eligible run."""
    return [Span(trace, s, e) for s, e in segment_spans(trace.op)]


def span_diagnostics(op_col, window: int = 256) -> dict:
    """Static span-eligibility analysis of one trace (``repro bench``).

    Explains *why* fast-path coverage is what it is, independent of any
    simulation: how many uops are even eligible, how they clump into
    accepted spans versus runs rejected for being shorter than
    :data:`MIN_SPAN` (the dominant static rejection reason), and a
    hazard-density histogram — the fraction of span-breaking uops in
    each *window*-uop slice of the trace, bucketed by decile.  A trace
    whose windows sit in the high-density buckets cannot form long
    spans no matter how the segmenter cuts it.
    """
    op = np.asarray(op_col, dtype=np.uint8)
    n = int(op.size)
    out = {
        "uops": n,
        "eligible_uops": 0,
        "min_span": MIN_SPAN,
        "spans": 0,
        "span_uops": 0,
        "runs_below_min_span": 0,
        "uops_below_min_span": 0,
        #: windows per hazard-fraction decile [0-10%), [10-20%), ... 90%+
        "hazard_density": [0] * 10,
        "window": int(window),
    }
    if n == 0:
        return out
    elig = _ELIGIBLE_LUT[op]
    out["eligible_uops"] = int(elig.sum())
    edges = np.diff(np.concatenate(([False], elig, [False])).astype(np.int8))
    starts = np.nonzero(edges == 1)[0]
    ends = np.nonzero(edges == -1)[0]
    lens = ends - starts
    ok = lens >= MIN_SPAN
    out["spans"] = int(ok.sum())
    out["span_uops"] = int(lens[ok].sum())
    out["runs_below_min_span"] = int((~ok).sum())
    out["uops_below_min_span"] = int(lens[~ok].sum())
    window = max(1, int(window))
    nwin = (n + window - 1) // window
    hazards = np.zeros(nwin * window, dtype=np.float64)
    hazards[:n] = ~elig
    per_win = hazards.reshape(nwin, window).sum(axis=1)
    sizes = np.full(nwin, float(window))
    sizes[-1] = n - (nwin - 1) * window
    frac = per_win / sizes
    bins = np.minimum((frac * 10).astype(np.int64), 9)
    out["hazard_density"] = np.bincount(bins, minlength=10).tolist()
    return out


def solve_span(span: Span, lat: np.ndarray, width: int, cycle,
               slots_in: int, fe_ready, reg_ready: list):
    """Closed-form issue schedule for one span.

    ``lat`` is the per-op latency array (``lat_lut[span.op]``), ``cycle``
    the issue time of the op preceding the span, ``slots_in`` the issue
    slots already consumed at that cycle, ``fe_ready`` the (assumed
    constant) front-end ready time, and ``reg_ready`` the live scoreboard.

    Returns ``(issue, d1, d2)`` — per-op issue cycles and the exact
    src1/src2 dependence-stall attribution the scalar loop would record —
    or ``None`` when the readiness fixed point fails to converge (the
    caller then runs the span through the scalar engine instead).
    """
    m = len(lat)
    s1, s2 = span.s1, span.s2
    p1, p2 = span.prod1, span.prod2
    s1pos, s2pos = s1 > 0, s2 > 0
    # carried scoreboard values for operands with no in-span producer
    rr = np.asarray(reg_ready, dtype=np.float64)
    carry1 = np.where(s1pos & (p1 < 0), rr[s1], 0.0)
    carry2 = np.where(s2pos & (p2 < 0), rr[s2], 0.0)
    sp1, sp2 = np.clip(p1, 0, None), np.clip(p2, 0, None)
    use_p1, use_p2 = s1pos & (p1 >= 0), s2pos & (p2 >= 0)
    e = np.arange(slots_in, slots_in + m, dtype=np.float64)
    seed = width * cycle
    issue = np.full(m, float(cycle))
    r1_eff = r2_eff = None
    for _ in range(_MAX_ITER):
        done = issue + lat
        r1_eff = np.where(use_p1, done[sp1], carry1)
        r2_eff = np.where(use_p2, done[sp2], carry2)
        ready = np.maximum(float(fe_ready),
                           np.maximum(np.where(s1pos, r1_eff, 0.0),
                                      np.where(s2pos, r2_eff, 0.0)))
        nxt = (np.maximum(seed, np.maximum.accumulate(width * ready - e))
               + e) // width
        if np.array_equal(nxt, issue):
            break
        issue = nxt
    else:
        return None
    prev_issue = np.empty(m)
    prev_issue[0] = cycle
    prev_issue[1:] = issue[:-1]
    t0 = np.maximum(prev_issue, float(fe_ready))
    d1 = np.where(s1pos, np.maximum(r1_eff - t0, 0.0), 0.0)
    t_mid = np.where(s1pos, np.maximum(t0, r1_eff), t0)
    d2 = np.where(s2pos, np.maximum(r2_eff - t_mid, 0.0), 0.0)
    return issue, d1, d2


def solve_span_batch(span: Span, lats, widths, cycles, slots_ins,
                     fe_readys, reg_readys) -> list:
    """Solve one span's issue schedule for *C* configurations at once.

    The span layout is a pure function of the trace's op column, so
    every config of a batched sweep reaches the same span boundaries;
    only the timing inputs differ.  Those inputs become a leading config
    axis: *lats* is a ``(C, m)`` per-op latency stack (configs may carry
    different :class:`~repro.isa.opcodes.LatencyTable`\\ s), *widths* /
    *cycles* / *slots_ins* / *fe_readys* are per-config scalars, and
    *reg_readys* the per-config live scoreboards.

    The fixed point runs on the whole ``(C, m)`` batch.  Per-row
    convergence is tracked exactly as :func:`solve_span` does per call:
    a converged row is a fixed point of the iteration map, so extra
    applications leave it unchanged and the batch result equals the solo
    result value-for-value.  Returns a list of per-config
    ``(issue, d1, d2)`` rows, with ``None`` for rows that did not
    converge within the cap (those configs fall back to the scalar
    engine, exactly as a solo run would).
    """
    C = len(lats)
    s1, s2 = span.s1, span.s2
    p1, p2 = span.prod1, span.prod2
    m = len(s1)
    s1pos, s2pos = s1 > 0, s2 > 0
    rr = np.asarray(reg_readys, dtype=np.float64)          # (C, NUM_REGS)
    no_p1 = (s1pos & (p1 < 0))[None, :]
    no_p2 = (s2pos & (p2 < 0))[None, :]
    carry1 = np.where(no_p1, rr[:, s1], 0.0)               # (C, m)
    carry2 = np.where(no_p2, rr[:, s2], 0.0)
    sp1, sp2 = np.clip(p1, 0, None), np.clip(p2, 0, None)
    use_p1 = (s1pos & (p1 >= 0))[None, :]
    use_p2 = (s2pos & (p2 >= 0))[None, :]
    lat = np.asarray(lats, dtype=np.float64)               # (C, m)
    W = np.asarray(widths, dtype=np.float64)[:, None]      # (C, 1)
    cyc = np.asarray(cycles, dtype=np.float64)[:, None]    # (C, 1)
    e = (np.asarray(slots_ins, dtype=np.float64)[:, None]
         + np.arange(m, dtype=np.float64)[None, :])        # (C, m)
    seed = W * cyc
    fe = np.asarray(fe_readys, dtype=np.float64)[:, None]  # (C, 1)
    issue = np.broadcast_to(cyc, (C, m)).copy()
    conv = np.zeros(C, dtype=bool)
    r1_eff = r2_eff = None
    for _ in range(_MAX_ITER):
        done = issue + lat
        r1_eff = np.where(use_p1, done[:, sp1], carry1)
        r2_eff = np.where(use_p2, done[:, sp2], carry2)
        ready = np.maximum(fe, np.maximum(np.where(s1pos, r1_eff, 0.0),
                                          np.where(s2pos, r2_eff, 0.0)))
        nxt = (np.maximum(seed,
                          np.maximum.accumulate(W * ready - e, axis=1))
               + e) // W
        conv = np.all(nxt == issue, axis=1)
        if conv.all():
            break
        issue = nxt
    prev_issue = np.empty((C, m))
    prev_issue[:, 0] = cyc[:, 0]
    prev_issue[:, 1:] = issue[:, :-1]
    t0 = np.maximum(prev_issue, fe)
    d1 = np.where(s1pos, np.maximum(r1_eff - t0, 0.0), 0.0)
    t_mid = np.where(s1pos, np.maximum(t0, r1_eff), t0)
    d2 = np.where(s2pos, np.maximum(r2_eff - t_mid, 0.0), 0.0)
    return [(issue[c], d1[c], d2[c]) if conv[c] else None
            for c in range(C)]
