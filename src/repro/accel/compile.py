"""Trace compiler: one pre-analyzed, shareable form per decoded trace.

A config sweep evaluates the *same* dynamic micro-op stream under N
timing configurations, so everything that depends only on the trace —
decoding numpy columns to plain-Python lists, classifying each op
(fetch line, FP-ness, latency class), segmenting and pre-linking the
span-eligible runs — is computed exactly once here and reused by every
engine attached to the trace:

* :class:`CompiledTrace` bundles the per-uop arrays: the plain-list
  columns the scalar fast loops index, dense numpy opcode/operand
  columns (``ops`` doubles as the latency-class index — per-config
  latencies are ``lat_np[ct.ops]``), derived per-uop classifications
  (``lines``, ``is_fp``), and the pre-linked :class:`~repro.accel.fastpath.Span`
  list whose layout is config-independent (it is a pure function of the
  op column) — the property the config-batched sweep driver relies on.
* :func:`compiled_trace` caches one compiled form per live trace object
  (bounded, id-keyed, like :func:`repro.accel.memo.trace_arrays`).
* :func:`shared_compiled` adds cross-process sharing through a
  :class:`~repro.farm.store.SharedResultStore`: the compiled columns are
  published as a JSON payload keyed by workload identity, stamped with
  the trace's sha-256 content digest, and verified against that digest
  on the way back in — a corrupted or stale store entry silently falls
  back to rebuilding from the kernel generator.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Optional

import numpy as np

from repro.isa.opcodes import FP_OPS
from repro.isa.trace import Trace

from . import memo
from .stats import global_stats

__all__ = ["CompiledTrace", "compiled_trace", "shared_compiled",
           "compiled_store_key", "trace_payload", "trace_from_payload",
           "COMPILE_SCHEMA"]

#: payload schema for store-shared compiled traces
COMPILE_SCHEMA = 1

_FP_LUT = np.zeros(256, dtype=bool)
_FP_LUT[[int(op) for op in FP_OPS]] = True


class CompiledTrace:
    """One trace, decoded and pre-analyzed for every engine at once."""

    __slots__ = ("trace", "digest", "n", "cols", "spans",
                 "ops", "operands", "lines", "is_fp")

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.digest = memo.trace_digest(trace)
        view = memo.trace_arrays(trace)
        self.cols = view
        self.spans = view["spans"]
        self.n = len(view["op"])
        #: dense opcode column; also the latency-class index — a
        #: config's per-uop latencies are ``lat_np[ct.ops]``
        self.ops = trace.op.astype(np.int64)
        #: (3, n) operand column stack: dst, src1, src2
        self.operands = np.stack([
            trace.dst.astype(np.int64),
            trace.src1.astype(np.int64),
            trace.src2.astype(np.int64),
        ])
        pc = trace.pc.astype(np.int64)
        #: per-uop 64-byte fetch line (what the front-end replay keys on)
        self.lines = (pc >> 6).tolist()
        #: per-uop FP classification (issue-queue steering in the OoO model)
        self.is_fp = _FP_LUT[trace.op].tolist()

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (f"CompiledTrace(n={self.n}, spans={len(self.spans)}, "
                f"digest={self.digest[:12]})")


#: id(trace) -> (trace, CompiledTrace); strong reference pins the id
_compiled: dict[int, tuple[Any, CompiledTrace]] = {}
_COMPILED_MAX = 8


def compiled_trace(trace: Trace) -> CompiledTrace:
    """The compiled form of *trace*, cached per live trace object."""
    key = id(trace)
    hit = _compiled.get(key)
    if hit is not None:
        if hit[0] is trace:
            return hit[1]
        del _compiled[key]  # id() reuse after an external purge: rebuild
    ct = CompiledTrace(trace)
    _compiled[key] = (trace, ct)
    while len(_compiled) > _COMPILED_MAX:
        del _compiled[next(iter(_compiled))]
    return ct


def clear_compiled() -> None:
    """Drop the in-process compiled-trace cache (bench cold passes)."""
    _compiled.clear()


# -- store sharing ------------------------------------------------------------


def compiled_store_key(workload: str, scale: float, seed: int) -> str:
    """Stable store key for one workload's compiled trace."""
    blob = json.dumps({"compile_schema": COMPILE_SCHEMA,
                       "kind": "compiled-trace", "workload": workload,
                       "scale": float(scale), "seed": int(seed)},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def trace_payload(trace: Trace) -> dict[str, Any]:
    """JSON form of a trace's columns, stamped with its content digest."""
    return {
        "schema": COMPILE_SCHEMA,
        "digest": memo.trace_digest(trace),
        "n": len(trace),
        "columns": {
            "op": trace.op.tolist(),
            "dst": trace.dst.tolist(),
            "src1": trace.src1.tolist(),
            "src2": trace.src2.tolist(),
            "addr": trace.addr.tolist(),
            "size": trace.size.tolist(),
            "taken": trace.taken.tolist(),
            "pc": trace.pc.tolist(),
            "target": trace.target.tolist(),
        },
    }


def trace_from_payload(payload: dict[str, Any]) -> Optional[Trace]:
    """Rebuild a trace from a store payload; None when the payload is
    not usable (wrong schema, missing columns, digest mismatch)."""
    if not isinstance(payload, dict) or payload.get("schema") != COMPILE_SCHEMA:
        return None
    cols = payload.get("columns")
    if not isinstance(cols, dict):
        return None
    try:
        trace = Trace(
            np.asarray(cols["op"]), np.asarray(cols["dst"]),
            np.asarray(cols["src1"]), np.asarray(cols["src2"]),
            np.asarray(cols["addr"]), np.asarray(cols["size"]),
            np.asarray(cols["taken"]), np.asarray(cols["pc"]),
            np.asarray(cols["target"]),
        )
    except (KeyError, TypeError, ValueError, OverflowError):
        return None
    if memo.trace_digest(trace) != payload.get("digest"):
        return None  # stale or corrupted entry: rebuild from source
    return trace


class _TraceKey:
    """Duck-typed job stand-in for publishing traces into a result store
    (the store records ``label`` and ``describe()`` as entry metadata)."""

    def __init__(self, workload: str, scale: float, seed: int) -> None:
        self.workload = workload
        self.scale = float(scale)
        self.seed = int(seed)
        self.label = f"trace:{workload}@s{self.scale}"

    def describe(self) -> dict[str, Any]:
        return {"kind": "compiled-trace", "workload": self.workload,
                "scale": self.scale, "seed": self.seed,
                "schema": COMPILE_SCHEMA}


def shared_compiled(workload: str, scale: float, seed: int,
                    build: Callable[[], Trace],
                    store=None) -> CompiledTrace:
    """Compiled trace for one workload, shared as widely as possible.

    Resolution order: the in-process shared-trace cache, then *store*
    (a :class:`~repro.farm.store.SharedResultStore` or compatible
    ``get``/``put`` object — content-verified against the stamped
    digest), then *build*; a freshly built trace is published back to
    the store so sibling processes skip the kernel generator entirely.
    """
    g = global_stats()

    def build_or_fetch() -> Trace:
        skey = compiled_store_key(workload, scale, seed)
        if store is not None:
            trace = trace_from_payload(store.get(skey) or {})
            if trace is not None:
                g.compile_store_hits += 1
                return trace
            g.compile_store_misses += 1
        trace = build()
        if store is not None:
            try:
                store.put(skey, _TraceKey(workload, scale, seed),
                          trace_payload(trace))
            except OSError:
                pass  # a full/readonly store never fails the run
        return trace

    trace = memo.shared_trace(workload, scale, seed, build_or_fetch)
    return compiled_trace(trace)
