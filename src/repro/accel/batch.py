"""Config-batched sweep engine: one compiled trace, every config at once.

A configuration sweep re-simulates the *same* dynamic micro-op stream
under N timing configurations.  The serial path pays the full per-config
cost N times — trace build, numpy decode, span segmentation, and a
per-config solve of every span.  This driver exploits the one structural
fact that makes batching sound: **span layout is config-independent**
(spans are segmented purely from the op column, see
:mod:`repro.accel.fastpath`), so every configuration reaches exactly the
same span boundaries.  That turns the sweep inside out:

* the trace is compiled once (:func:`~repro.accel.compile.shared_compiled`
  — shareable across processes through a
  :class:`~repro.farm.store.SharedResultStore`),
* every span is solved for **all** in-order configs in a single
  config-vectorized call (:func:`~repro.accel.fastpath.solve_span_batch`:
  the config knobs — latency tables, issue widths, live scoreboards —
  become a leading broadcast axis over the per-uop arrays),
* configs that diverge structurally fall back per config: the scalar
  loop inside each :class:`~repro.accel.engine._InOrderRun` for a span
  that one config's solver rejects, the out-of-order engine
  (:mod:`repro.accel.ooo`) for BOOM-like configs, and plain
  ``System.run`` for configs that opted out of acceleration entirely.

Bit-identity is by construction: the lockstep driver advances the very
same :class:`~repro.accel.engine._InOrderRun` objects through the very
same methods as the solo engine — the only difference is who computes
the span schedule (``solve_span_batch`` vs ``solve_span``), and those
agree exactly per config.  The ``batch`` tier of :mod:`repro.check`
enforces the contract end to end (``repro check --tiers batch``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.core.base import CoreResult
from repro.core.inorder import InOrderCore

from .engine import _InOrderRun
from .fastpath import solve_span_batch

__all__ = ["run_batch", "batched_sweep"]


def _drive_lockstep(runs: Sequence[_InOrderRun]) -> None:
    """Advance attached runs to completion in span lockstep.

    Invariant: every run sits at the same trace index ``i`` whenever
    control returns to the top of the loop — span boundaries are shared,
    and both failure paths (no convergence, fetch hazard) end at
    ``sp.end`` just like the solo engine.  Callers own ``close()`` /
    ``finish()`` (in a ``finally``, as always).
    """
    lead = runs[0]
    spans = lead.spans
    nspans = len(spans)
    n = lead.n
    si = 0
    while lead.i < n:
        limit = n
        if si < nspans:
            sp = spans[si]
            if sp.start == lead.i:
                si += 1
                lat_arrs = [r.lat_np[sp.op] for r in runs]
                sols = solve_span_batch(
                    sp, lat_arrs,
                    [r.W for r in runs],
                    [r.cycle for r in runs],
                    [r.slots for r in runs],
                    [r.fe_ready for r in runs],
                    [r.reg_ready for r in runs])
                for r, lat_arr, sol in zip(runs, lat_arrs, sols):
                    r.span_att += 1
                    if sol is None:
                        r.span_noconv += 1
                        r.scalar_to(sp.end)
                    elif not r.commit_span(sp, lat_arr, sol):
                        if r.i < sp.end:
                            r.scalar_to(sp.end)
                continue
            limit = sp.start
        for r in runs:
            r.scalar_to(limit)


def run_batch(systems: Sequence[Any], trace) -> list[CoreResult]:
    """Run *trace* on tile 0 of every system, batching where possible.

    Systems whose tile-0 core is an accelerated in-order core form one
    lockstep group solved span-by-span across the whole batch; every
    other system (out-of-order, or acceleration off) runs through its
    own ``System.run`` — which is the engine path for accelerated OoO
    configs and the reference path otherwise.  Results are returned in
    input order and are bit-identical to calling ``system.run(trace)``
    on each system serially.
    """
    results: list[Optional[CoreResult]] = [None] * len(systems)
    group: list[int] = []
    for idx, system in enumerate(systems):
        core = system.tiles[0].core
        if (type(core) is InOrderCore and core._accel_on
                and hasattr(core.port, "uncore")
                and system.instrument is None):
            group.append(idx)
        else:
            results[idx] = system.run(trace)
    if group:
        runs: list[_InOrderRun] = []
        try:
            for idx in group:
                runs.append(_InOrderRun(systems[idx].tiles[0].core, trace))
            _drive_lockstep(runs)
        finally:
            for r in runs:
                r.close()
        for idx, r in zip(group, runs):
            results[idx] = r.finish()
    return results


def batched_sweep(configs: Sequence[Any], kernel: str, scale: float = 1.0,
                  seed: int = 0, *, warmup: bool = True, store=None,
                  on_point: Optional[Callable[[str, dict], None]] = None,
                  skip: Sequence[str] = ()) -> dict[str, dict[str, Any]]:
    """Evaluate every config of a sweep over one compiled trace.

    Returns ``{config.name: payload}`` where each payload is
    bit-identical to what :func:`repro.farm.job.execute_job` produces
    for the matching ``Job.kernel`` — same memo keys, same telemetry
    stripping, same CPI stack — so batched sweep points are
    interchangeable with serial ones everywhere (result cache, figure
    drivers, the farm).

    *on_point* fires once per completed config, in deterministic order
    (the lockstep in-order group first, then solo configs, each in
    input order) — the hook the sweep job kind uses for mid-run
    checkpointing and fault injection.  *skip* names configs whose
    payloads the caller already holds (checkpoint resume).
    """
    from ..farm.job import kernel_payload
    from ..soc.system import System
    from ..telemetry import StatsRegistry
    from ..workloads.microbench import get_kernel
    from . import memo
    from .compile import shared_compiled

    names = [cfg.name for cfg in configs]
    dup = {n for n in names if names.count(n) > 1}
    if dup:
        raise ValueError(
            f"sweep configs must have unique names, got duplicates: "
            f"{sorted(dup)}")

    kern = get_kernel(kernel)
    if kern.spec.broken:
        raise RuntimeError(f"kernel {kern.spec.name} is marked broken")
    todo = [cfg for cfg in configs if cfg.name not in set(skip)]
    if not todo:
        return {}
    eff_scale = max(float(scale), kern.min_harness_scale)
    ct = shared_compiled(kernel, eff_scale, seed,
                         lambda: kern.build(scale=eff_scale, seed=seed),
                         store=store)
    trace = ct.trace
    do_warmup = bool(warmup and kern.needs_warmup)

    points: dict[str, dict[str, Any]] = {}
    group: list[tuple[Any, Any, Any, Any]] = []  # (cfg, system, registry, mkey)
    solo: list[Any] = []
    for cfg in todo:
        if getattr(cfg, "accel", "off") != "on":
            solo.append(cfg)  # operator asked for the reference models
            continue
        system = System(cfg)
        registry = StatsRegistry(system)
        mkey = None
        if memo.memo_enabled():
            mkey = memo.memo_key(trace, cfg, system.uncore,
                                 extra=("farm_kernel", do_warmup))
            hit = memo.memo_get(mkey)
            if hit is not None:
                hit["workload"] = kern.spec.name
                hit["seed"] = seed
                hit["scale"] = eff_scale
                points[cfg.name] = hit
                if on_point is not None:  # a served point is a done point
                    on_point(cfg.name, hit)
                continue
        if type(system.tiles[0].core) is InOrderCore:
            group.append((cfg, system, registry, mkey))
        else:
            solo.append((cfg, system, registry, mkey))

    def finish_point(cfg, system, registry, mkey, base, result) -> None:
        payload = kernel_payload(cfg, kern, seed, eff_scale, registry,
                                 base, result, system)
        if mkey is not None:
            memo.memo_put(mkey, payload)
        points[cfg.name] = payload
        if on_point is not None:
            on_point(cfg.name, payload)

    # ---- lockstep in-order group: all configs over one span schedule ----
    if group:
        if do_warmup:
            runs = []
            try:
                for _, system, _, _ in group:
                    runs.append(_InOrderRun(system.tiles[0].core, trace))
                _drive_lockstep(runs)
            finally:
                for r in runs:
                    r.close()
            for r in runs:
                r.finish()
        bases = [registry.snapshot() for _, _, registry, _ in group]
        runs = []
        try:
            for _, system, _, _ in group:
                runs.append(_InOrderRun(system.tiles[0].core, trace))
            _drive_lockstep(runs)
        finally:
            for r in runs:
                r.close()
        for (cfg, system, registry, mkey), base, r in zip(group, bases, runs):
            finish_point(cfg, system, registry, mkey, base, r.finish())

    # ---- solo configs: per-config engines or reference models ----
    for entry in solo:
        if isinstance(entry, tuple):
            cfg, system, registry, mkey = entry
        else:  # accel="off": mirror the serial job runner exactly
            cfg, mkey = entry, None
            system = System(cfg)
            registry = StatsRegistry(system)
        if do_warmup:
            system.run(trace)
        base = registry.snapshot()
        result = system.run(trace)
        finish_point(cfg, system, registry, mkey, base, result)

    # reports in input order, resumed points excluded
    return {cfg.name: points[cfg.name] for cfg in todo}
