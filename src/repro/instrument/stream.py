"""Append-only JSONL instrumentation streams.

One stream carries every record kind an instrumented run produces —
trace-window instructions, periodic counter samples, workload markers —
interleaved in emission order, one JSON object per line.  The format is
deliberately boring: it can be consumed by ``jq``, tailed while the run
is still executing (the farm case), and parsed incrementally without
framing state.

Record kinds (the ``"t"`` field):

``meta``
    First line of every (re)opened stream: schema version, config name,
    whether this segment resumes a checkpointed run.
``window``
    A trace window opened or closed (``event`` = ``open`` | ``close``,
    with the trigger label and the reason for closing).
``trace``
    One decoded instruction inside an open window (TracerV analogue).
``counter``
    One periodic counter sample (AutoCounter analogue).
``marker``
    One decoded magic-store marker (synth-print analogue).
``seal``
    Last line of a stream segment: record count and reason.  A stream
    without a final seal was torn by a crash — readers treat the
    partial tail as valid data, exactly like a torn TracerV capture.

Writers flush after every record, so a concurrent reader
(:func:`tail_stream`) never waits more than one record behind the
producer.  A half-written final line (torn write) is skipped by the
readers rather than raising.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path
from typing import Any, Iterator

__all__ = ["STREAM_SCHEMA", "InstrumentStream", "read_stream", "tail_stream"]

#: bump when record layouts change incompatibly
STREAM_SCHEMA = 1


class InstrumentStream:
    """Append-only JSONL record sink, on disk or in memory.

    With a *path*, records are appended to the file and flushed per
    record (tail-able live).  With ``path=None`` the stream is
    memory-backed — records accumulate in :attr:`records` — which is
    what tests and short interactive sessions use.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.records: list[dict[str, Any]] = []
        self.written = 0
        self.sealed = False
        self._fh: io.TextIOBase | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict[str, Any]) -> None:
        """Append one record (dict with a ``"t"`` kind field)."""
        if self.sealed:
            raise RuntimeError("stream is sealed; no further records")
        self.written += 1
        if self._fh is not None:
            self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._fh.flush()
        else:
            self.records.append(record)

    def seal(self, reason: str = "closed", **extra: Any) -> None:
        """Write the terminal ``seal`` record and close the sink.

        Idempotent: sealing a sealed stream is a no-op, so shutdown
        paths (run completion, ``finally`` blocks, checkpoint hand-off)
        can all seal defensively.
        """
        if self.sealed:
            return
        record = {"t": "seal", "schema": STREAM_SCHEMA, "reason": reason,
                  "records": self.written, **extra}
        self.write(record)
        self.sealed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def close(self) -> None:
        """Close without sealing (the torn-stream case, for tests)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "<memory>"
        return f"InstrumentStream({where}, {self.written} records)"


def _parse_lines(lines: Iterator[str]) -> Iterator[dict[str, Any]]:
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            # torn final line of a crashed writer: stop at the tear
            return


def read_stream(source: str | os.PathLike | InstrumentStream,
                ) -> list[dict[str, Any]]:
    """Parse a whole stream (file path or memory-backed stream).

    Tolerates a torn trailing line; everything before the tear is
    returned.
    """
    if isinstance(source, InstrumentStream):
        if source.path is None:
            return list(source.records)
        source = source.path
    # bytes + lossy decode: a writer killed mid-append can leave a torn
    # multibyte UTF-8 sequence that text-mode reading would raise on
    text = Path(source).read_bytes().decode("utf-8", errors="replace")
    return list(_parse_lines(iter(text.splitlines())))


def tail_stream(path: str | os.PathLike, follow: bool = False,
                poll_s: float = 0.05, timeout_s: float = 30.0,
                ) -> Iterator[dict[str, Any]]:
    """Yield records from a stream file, optionally following the writer.

    With ``follow=True`` the generator keeps polling for new lines —
    the live-farm-tailing case — until a ``seal`` record arrives or
    *timeout_s* passes with no progress.  Without it, yields what is
    currently on disk and returns.
    """
    path = Path(path)
    deadline = time.monotonic() + timeout_s
    buf = b""
    pos = 0
    while True:
        if path.exists():
            # binary reads: a writer killed mid-append leaves a torn
            # final record — possibly mid-multibyte-sequence — which a
            # text-mode read would raise UnicodeDecodeError on instead
            # of waiting for the next writer to complete the line
            with open(path, "rb") as fh:
                fh.seek(pos)
                chunk = fh.read()
                pos = fh.tell()
            buf += chunk
            while b"\n" in buf:
                raw, buf = buf.split(b"\n", 1)
                if not raw.strip():
                    continue
                try:
                    record = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    # a torn record fused with a resumed writer's next
                    # append: skip the damaged line, keep tailing
                    continue
                if not isinstance(record, dict):
                    continue
                yield record
                deadline = time.monotonic() + timeout_s
                if record.get("t") == "seal":
                    return
        if not follow:
            return
        if time.monotonic() > deadline:
            return
        time.sleep(poll_s)
