"""Synthesized-print markers: FireSim's magic-store printf analogue.

FireSim's synthesized prints piggyback on the target's own instruction
stream: the workload executes ordinary stores to a magic address region
and out-of-band hardware decodes them into host-side print records
without perturbing target timing.  We reproduce the scheme at the trace
level: a marker is a normal ``STORE`` micro-op whose address encodes a
16-bit marker id and a 32-bit payload under a magic tag in the top
address bits.

Because the marker store is part of the trace itself, it executes (and
costs cycles) identically whether or not an :class:`~repro.instrument.Instrument`
is attached — capture is pure observation, so instrumented runs stay
bit-identical to uninstrumented ones on the same trace.

Address layout (64 bits)::

    63      48 47      32 31                0
    [ 0xF17E ] [  id    ] [     value       ]

Ids below :data:`FIRST_USER_MARKER` are reserved; ids 1/2 bracket named
regions and feed the flame-graph folder in :mod:`repro.analysis.instrument`.
"""

from __future__ import annotations

__all__ = [
    "MARKER_MAGIC",
    "MARKER_REGION_BEGIN",
    "MARKER_REGION_END",
    "FIRST_USER_MARKER",
    "marker_addr",
    "is_marker_addr",
    "decode_marker",
]

#: magic tag in address bits 63..48 identifying a marker store
MARKER_MAGIC = 0xF17E

#: reserved marker ids
MARKER_REGION_BEGIN = 1     #: value = region id (flamegraph frame push)
MARKER_REGION_END = 2       #: value = region id (flamegraph frame pop)
FIRST_USER_MARKER = 16      #: first id free for workload-defined meanings


def marker_addr(marker_id: int, value: int = 0) -> int:
    """Encode ``(marker_id, value)`` into a magic store address."""
    if not 0 <= marker_id <= 0xFFFF:
        raise ValueError(f"marker id {marker_id} not in [0, 65535]")
    if not 0 <= value <= 0xFFFF_FFFF:
        raise ValueError(f"marker value {value} not in [0, 2^32)")
    return (MARKER_MAGIC << 48) | (marker_id << 32) | value


def is_marker_addr(addr: int) -> bool:
    """True if *addr* carries the marker magic tag."""
    return (int(addr) >> 48) == MARKER_MAGIC


def decode_marker(addr: int) -> tuple[int, int]:
    """Decode a magic store address back into ``(marker_id, value)``."""
    addr = int(addr)
    if not is_marker_addr(addr):
        raise ValueError(f"address {addr:#x} is not a marker store")
    return (addr >> 32) & 0xFFFF, addr & 0xFFFF_FFFF
