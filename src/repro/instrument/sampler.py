"""Periodic counter sampling: the AutoCounter analogue.

FireSim's AutoCounter reads accumulation registers out-of-band every N
target cycles and streams the deltas to the host.  Here the registers
are the live ``*Stats`` counters a :class:`~repro.telemetry.StatsRegistry`
already knows how to walk, and "every N cycles" is evaluated at chunk
boundaries — the only points where the simulator's counters are
coherent — so a sample is taken at the first boundary at-or-after each
scheduled tick.  Coarser chunks mean coarser sample alignment, never
skewed counter values.

Each ``counter`` record carries the delta since the previous sample
(zero-valued counters elided, so quiet intervals are cheap lines) plus
the cumulative instruction/cycle pair, which is what the interval-CPI
helper in :mod:`repro.analysis.instrument` consumes.
"""

from __future__ import annotations

from typing import Any

from ..telemetry import StatsRegistry
from .stream import InstrumentStream

__all__ = ["CounterSampler"]


class CounterSampler:
    """Sample StatsRegistry deltas every *interval* target cycles."""

    def __init__(self, interval: int, stream: InstrumentStream) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive cycles")
        self.interval = int(interval)
        self.stream = stream
        self.registry: StatsRegistry | None = None
        self._prev_flat: dict[str, Any] | None = None
        self._prev_inst = 0
        self._prev_cycle = 0
        self.next_at = self.interval
        self.samples = 0

    # -- lifecycle ------------------------------------------------------------

    def attach(self, system) -> None:
        """Bind to a system and baseline its counters.

        After a restore the baseline is the resume point: deltas cover
        only work done in this segment, which pairs with the stream
        segment written after re-arming.
        """
        self.registry = StatsRegistry(system)
        self._prev_flat = self.registry.snapshot().flat()

    # -- the per-boundary hot path -------------------------------------------

    def observe(self, cycle: int, instructions: int = 0) -> int:
        """Called at a chunk boundary with the current target cycle and
        the cumulative observed instruction count."""
        if self.registry is None or cycle < self.next_at:
            return 0
        tick = self.next_at
        # decimate, don't duplicate: one sample per boundary no matter
        # how many scheduled ticks the chunk skipped over
        self.next_at = (cycle // self.interval + 1) * self.interval
        self._emit(cycle, instructions, tick=tick)
        return 1

    def finalize(self, cycle: int, instructions: int = 0) -> int:
        """Terminal sample at seal time.

        Guarantees at least one sample even when the configured interval
        exceeds the whole run — the shorter-than-one-tick edge case.
        """
        if self.registry is None:
            return 0
        self._emit(cycle, instructions, tick=None, final=True)
        return 1

    def _emit(self, cycle: int, instructions: int, tick: int | None,
              final: bool = False) -> None:
        flat = self.registry.snapshot().flat()
        prev = self._prev_flat or {}
        delta = {}
        for key, value in flat.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            d = value - prev.get(key, 0)
            if d:
                delta[key] = d
        self._prev_flat = flat
        self.samples += 1
        record: dict[str, Any] = {
            "t": "counter", "cycle": int(cycle), "sample": self.samples,
            # cycle/instruction deltas carried explicitly: they are what
            # interval-CPI needs and the registry tree does not expose a
            # per-tile retired-instruction counter
            "dcycles": int(cycle) - self._prev_cycle,
            "dinstructions": int(instructions) - self._prev_inst,
            "counters": delta,
        }
        self._prev_cycle = int(cycle)
        self._prev_inst = int(instructions)
        if tick is not None:
            record["tick"] = int(tick)
        if final:
            record["final"] = True
        self.stream.write(record)

    # -- checkpoint support ---------------------------------------------------

    def state(self) -> dict[str, Any]:
        return {"interval": self.interval, "next_at": self.next_at,
                "samples": self.samples, "prev_inst": self._prev_inst,
                "prev_cycle": self._prev_cycle}

    def load_state(self, d: dict[str, Any]) -> None:
        if int(d["interval"]) != self.interval:
            raise ValueError(
                f"checkpoint sampled every {d['interval']} cycles, sampler "
                f"configured for {self.interval}")
        self.next_at = int(d["next_at"])
        self.samples = int(d["samples"])
        self._prev_inst = int(d.get("prev_inst", 0))
        self._prev_cycle = int(d.get("prev_cycle", 0))
