"""The Instrument orchestrator: one stream per instrumented system.

An :class:`Instrument` bundles what to capture (:class:`InstrumentSpec`)
with where it goes (an :class:`~repro.instrument.InstrumentStream`) and
binds to one :class:`repro.soc.System` via ``system.attach_instrument``.
The execution loop then feeds it observed chunks — pure read-only
observation at chunk boundaries, never inside the per-instruction hot
path — so an attached instrument changes nothing about simulated
results: same cycles, same counter values, same chunking.  The
bit-identity tier in :mod:`repro.check` enforces exactly that.

Checkpoint contract: ``System.save_checkpoint`` folds
:meth:`Instrument.state` into the checkpoint extras; on
``System.restore`` an attached instrument is re-armed from that state
(window cursors, sampler phase, per-tile instruction indices) and its
stream opens a new *resumed* segment.  Sealed donor streams plus a
resumed segment concatenate into one coherent record of the logical
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .sampler import CounterSampler
from .stream import STREAM_SCHEMA, InstrumentStream
from .tracer import Tracer
from .triggers import TraceTrigger

__all__ = ["InstrumentSpec", "Instrument"]


@dataclass(frozen=True)
class InstrumentSpec:
    """What an instrumented run captures.

    Everything defaults off-ish: no triggers means no trace windows, no
    interval means no counter samples; ``markers=True`` alone only costs
    one vectorised scan per chunk and emits records only when the
    workload actually executes magic stores.
    """

    triggers: tuple[TraceTrigger, ...] = ()
    counter_interval: int | None = None     #: cycles between counter samples
    markers: bool = True                    #: decode magic-store markers

    def __post_init__(self) -> None:
        object.__setattr__(self, "triggers", tuple(self.triggers))
        if self.counter_interval is not None and self.counter_interval <= 0:
            raise ValueError("counter_interval must be positive cycles")

    def to_dict(self) -> dict[str, Any]:
        return {"triggers": [t.to_dict() for t in self.triggers],
                "counter_interval": self.counter_interval,
                "markers": self.markers}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "InstrumentSpec":
        return cls(
            triggers=tuple(TraceTrigger.from_dict(t)
                           for t in d.get("triggers", ())),
            counter_interval=d.get("counter_interval"),
            markers=bool(d.get("markers", True)),
        )


class Instrument:
    """Streaming observer for one system: windows + samples + markers."""

    def __init__(self, spec: InstrumentSpec | None = None,
                 path: str | None = None,
                 stream: InstrumentStream | None = None) -> None:
        self.spec = spec if spec is not None else InstrumentSpec()
        self.stream = stream if stream is not None else InstrumentStream(path)
        self.tracer = Tracer(self.spec.triggers, self.stream,
                             markers=self.spec.markers)
        self.sampler = (CounterSampler(self.spec.counter_interval, self.stream)
                        if self.spec.counter_interval is not None else None)
        self.system = None
        #: per-tile global instruction index (trace records are numbered
        #: across chunks, surviving checkpoint/restore)
        self._inst: dict[int, int] = {}
        self._max_cycle = 0

    # -- lifecycle ------------------------------------------------------------

    def attach(self, system, resumed: bool = False) -> None:
        """Bind to *system* and open a stream segment (meta record)."""
        self.system = system
        if self.sampler is not None:
            self.sampler.attach(system)
        self.stream.write({
            "t": "meta", "schema": STREAM_SCHEMA, "config": system.cfg.name,
            "ncores": system.cfg.ncores, "resumed": bool(resumed),
            "spec": self.spec.to_dict(),
        })

    def seal(self, reason: str = "done") -> None:
        """Close open windows, take the terminal sample, seal the stream.

        A ``"checkpoint"`` seal leaves open windows and the sampler
        untouched: the run continues in a resumed segment, which will
        emit the close event and cover the remaining interval — closing
        here would double-count both across the seam.
        """
        if self.stream.sealed:
            return
        if reason != "checkpoint":
            self.tracer.close_open_windows(reason="eof")
            if self.sampler is not None:
                self.sampler.finalize(self._max_cycle,
                                      sum(self._inst.values()))
        self.stream.seal(reason=reason)

    def __enter__(self) -> "Instrument":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seal(reason="done" if exc_type is None else "error")

    # -- the per-chunk observation hook ---------------------------------------

    def observe(self, tile: int, seg, t0: int, t1: int) -> None:
        """Observe one executed chunk: tile, trace segment, cycle span."""
        inst0 = self._inst.get(tile, 0)
        self.tracer.observe(tile, seg, t0, t1, inst0)
        self._inst[tile] = inst0 + len(seg)
        if t1 > self._max_cycle:
            self._max_cycle = t1
        if self.sampler is not None:
            self.sampler.observe(self._max_cycle, sum(self._inst.values()))

    # -- checkpoint support ---------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Cursor state folded into checkpoint extras by the system."""
        d: dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "windows": self.tracer.state(),
            "inst": {str(k): v for k, v in self._inst.items()},
            "max_cycle": self._max_cycle,
        }
        if self.sampler is not None:
            d["sampler"] = self.sampler.state()
        return d

    def load_state(self, d: dict[str, Any]) -> None:
        """Re-arm from checkpointed cursor state (the restore path)."""
        self.tracer.load_state(d["windows"])
        self._inst = {int(k): int(v) for k, v in d.get("inst", {}).items()}
        self._max_cycle = int(d.get("max_cycle", 0))
        if self.sampler is not None and "sampler" in d:
            self.sampler.load_state(d["sampler"])

    def __repr__(self) -> str:
        nw = len(self.tracer.windows)
        return (f"Instrument({nw} windows, "
                f"interval={self.spec.counter_interval}, {self.stream!r})")
