"""Trigger-armed trace windows (the TracerV trigger model).

FireSim's TracerV does not stream every committed instruction — at
FPGA speeds that would drown the host — it arms *triggers* that open
and close a capture window: start/stop on a PC match or on a target
cycle.  :class:`TraceTrigger` is the immutable recipe for one such
window; the mutable per-run cursor (armed → open → done, records
emitted so far) lives in :class:`WindowState` so it can be captured
into a checkpoint and re-armed on restore.

A window is always bounded: by an explicit stop condition, by
``length`` (instruction count), and unconditionally by ``max_records``
— the bounded-overhead guarantee.  ``length=0`` is legal and produces
an empty open/close pair (useful as a PC tripwire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["TraceTrigger", "WindowState"]

#: WindowState.state values
ARMED, OPEN, DONE = "armed", "open", "done"


@dataclass(frozen=True)
class TraceTrigger:
    """Recipe for one trigger-armed trace window.

    Start condition: first ``start_pc`` match, or target clock reaching
    ``start_cycle`` (both unset: the window opens on the first observed
    instruction).  Stop condition: first ``stop_pc`` match at-or-after
    the opening instruction (inclusive), target clock reaching
    ``stop_cycle``, or ``length`` captured instructions — whichever
    comes first; ``max_records`` caps the window regardless.
    """

    start_pc: int | None = None
    start_cycle: int | None = None
    stop_pc: int | None = None
    stop_cycle: int | None = None
    length: int | None = None
    max_records: int = 65536
    label: str = ""
    tile: int | None = None     #: restrict to one tile (None: every tile)

    def __post_init__(self) -> None:
        if self.start_pc is not None and self.start_cycle is not None:
            raise ValueError("give start_pc or start_cycle, not both")
        if self.length is not None and self.length < 0:
            raise ValueError("length must be >= 0")
        if self.max_records <= 0:
            raise ValueError("max_records must be positive")

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if self.start_pc is not None:
            return f"pc@{self.start_pc:#x}"
        if self.start_cycle is not None:
            return f"cycle@{self.start_cycle}"
        return "immediate"

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_pc": self.start_pc, "start_cycle": self.start_cycle,
            "stop_pc": self.stop_pc, "stop_cycle": self.stop_cycle,
            "length": self.length, "max_records": self.max_records,
            "label": self.label, "tile": self.tile,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TraceTrigger":
        return cls(**d)


class WindowState:
    """Mutable per-run cursor of one trigger's window."""

    __slots__ = ("trigger", "state", "emitted", "opened_cycle",
                 "closed_reason")

    def __init__(self, trigger: TraceTrigger) -> None:
        self.trigger = trigger
        self.state = ARMED
        self.emitted = 0            #: trace records written so far
        self.opened_cycle: int | None = None
        self.closed_reason: str | None = None

    @property
    def armed(self) -> bool:
        return self.state == ARMED

    @property
    def open(self) -> bool:
        return self.state == OPEN

    @property
    def done(self) -> bool:
        return self.state == DONE

    def budget(self) -> int:
        """Instructions this window may still emit."""
        caps = [self.trigger.max_records - self.emitted]
        if self.trigger.length is not None:
            caps.append(self.trigger.length - self.emitted)
        return max(0, min(caps))

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {"state": self.state, "emitted": self.emitted,
                "opened_cycle": self.opened_cycle,
                "closed_reason": self.closed_reason}

    def load_state(self, d: dict[str, Any]) -> None:
        self.state = str(d["state"])
        self.emitted = int(d["emitted"])
        self.opened_cycle = (int(d["opened_cycle"])
                             if d["opened_cycle"] is not None else None)
        self.closed_reason = d["closed_reason"]

    def __repr__(self) -> str:
        return (f"WindowState({self.trigger.name}, {self.state}, "
                f"{self.emitted} records)")
