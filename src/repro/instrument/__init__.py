"""Streaming instrumentation: FireSim's out-of-band observability, in model.

The paper's FireSim methodology debugs and characterises runs *while
they execute* through three out-of-band streams: TracerV (trigger-armed
committed-instruction trace), AutoCounter (periodic counter sampling),
and synthesized prints (magic-store printf).  This package reproduces
all three against the trace-driven simulator:

- :class:`TraceTrigger` windows that open/close on PC match or cycle
  count and stream decoded instruction records (TracerV analogue);
- :class:`CounterSampler` snapshots of StatsRegistry deltas every N
  target cycles (AutoCounter analogue);
- magic-store markers (:func:`marker_addr`) decoded from the target's
  own instruction stream (synth-print analogue);

all interleaved into one append-only JSONL
:class:`InstrumentStream` that can be tailed live
(:func:`tail_stream`) while a farm job is still running.

Observation happens only at chunk boundaries and is strictly read-only:
an attached :class:`Instrument` never changes simulated results or
chunking, which the ``instrument`` bit-identity check in
:mod:`repro.check` enforces.  Everything here is off unless a system
explicitly attaches an instrument.
"""

from .core import Instrument, InstrumentSpec
from .markers import (
    FIRST_USER_MARKER,
    MARKER_MAGIC,
    MARKER_REGION_BEGIN,
    MARKER_REGION_END,
    decode_marker,
    is_marker_addr,
    marker_addr,
)
from .sampler import CounterSampler
from .stream import STREAM_SCHEMA, InstrumentStream, read_stream, tail_stream
from .tracer import Tracer, decode_record
from .triggers import TraceTrigger, WindowState

__all__ = [
    "Instrument",
    "InstrumentSpec",
    "TraceTrigger",
    "WindowState",
    "Tracer",
    "decode_record",
    "CounterSampler",
    "InstrumentStream",
    "read_stream",
    "tail_stream",
    "STREAM_SCHEMA",
    "MARKER_MAGIC",
    "MARKER_REGION_BEGIN",
    "MARKER_REGION_END",
    "FIRST_USER_MARKER",
    "marker_addr",
    "is_marker_addr",
    "decode_marker",
]
