"""Window decoding: turn raw micro-op chunks into trace-stream records.

The tracer sees the run as a sequence of observed chunks — ``(tile,
trace segment, start cycle, end cycle)`` — exactly the granularity the
execution loop already advances in (``System.run`` calls and lockstep
lane chunks).  Per chunk it advances every window's state machine
(:mod:`repro.instrument.triggers`) and decodes only the instructions
inside open windows, so the cost of an armed-but-closed trigger is one
vectorised PC scan per chunk and the cost of an open window is bounded
by its record budget.

Cycle stamps are interpolated linearly across a chunk (instruction
``i`` of ``n`` spanning ``(t0, t1]`` stamps ``t0 + (t1-t0)*(i+1)//n``):
exact at chunk boundaries, monotonic within.  Smaller lockstep chunks
buy finer timestamps — the same resolution/overhead dial FireSim turns
with its token quantum.
"""

from __future__ import annotations

import numpy as np

from ..isa.opcodes import OpClass
from .markers import decode_marker, is_marker_addr
from .stream import InstrumentStream
from .triggers import ARMED, DONE, OPEN, WindowState

__all__ = ["Tracer", "decode_record"]

_STORE = int(OpClass.STORE)
_MEM = frozenset(int(o) for o in (OpClass.LOAD, OpClass.STORE, OpClass.AMO,
                                  OpClass.VLOAD, OpClass.VSTORE))
_CTRL = frozenset(int(o) for o in (OpClass.BRANCH, OpClass.JUMP,
                                   OpClass.CALL, OpClass.RET))


def _cycles(t0: int, t1: int, n: int) -> np.ndarray:
    """Interpolated cycle stamps for *n* instructions spanning (t0, t1]."""
    return t0 + ((t1 - t0) * np.arange(1, n + 1, dtype=np.int64)) // n


def decode_record(seg, i: int, tile: int, cycle: int, window: str,
                  index: int) -> dict:
    """One trace-stream record for instruction *i* of chunk *seg*."""
    op = int(seg.op[i])
    rec = {
        "t": "trace", "window": window, "tile": tile, "i": index,
        "cycle": int(cycle), "pc": f"{int(seg.pc[i]):#x}",
        "op": OpClass(op).name,
    }
    dst, s1, s2 = int(seg.dst[i]), int(seg.src1[i]), int(seg.src2[i])
    if dst >= 0:
        rec["dst"] = dst
    if s1 >= 0:
        rec["src1"] = s1
    if s2 >= 0:
        rec["src2"] = s2
    if op in _MEM:
        rec["addr"] = f"{int(seg.addr[i]):#x}"
        rec["size"] = int(seg.size[i])
    if op in _CTRL:
        rec["taken"] = bool(seg.taken[i])
        rec["target"] = f"{int(seg.target[i]):#x}"
    return rec


class Tracer:
    """Advance every window over one observed chunk; emit records."""

    def __init__(self, triggers, stream: InstrumentStream,
                 markers: bool = True) -> None:
        self.windows = [WindowState(t) for t in triggers]
        self.stream = stream
        self.markers = markers

    @property
    def all_done(self) -> bool:
        return all(w.done for w in self.windows)

    # -- checkpoint support ---------------------------------------------------

    def state(self) -> list[dict]:
        return [w.state_dict() for w in self.windows]

    def load_state(self, states: list[dict]) -> None:
        if len(states) != len(self.windows):
            raise ValueError(
                f"instrument state has {len(states)} windows, tracer has "
                f"{len(self.windows)} (trigger list changed?)")
        for w, s in zip(self.windows, states):
            w.load_state(s)

    # -- the per-chunk hot path ----------------------------------------------

    def observe(self, tile: int, seg, t0: int, t1: int, inst0: int) -> int:
        """Process one chunk; returns records written."""
        n = len(seg)
        if n == 0:
            return 0
        written = 0
        cyc = None  # computed lazily: most chunks trigger nothing
        for ws in self.windows:
            trig = ws.trigger
            if ws.done or (trig.tile is not None and trig.tile != tile):
                continue

            start_i = 0
            if ws.armed:
                if trig.start_pc is not None:
                    hits = np.flatnonzero(seg.pc == np.uint64(trig.start_pc))
                    if not len(hits):
                        continue
                    start_i = int(hits[0])
                elif trig.start_cycle is not None:
                    if t1 < trig.start_cycle:
                        continue
                    if cyc is None:
                        cyc = _cycles(t0, t1, n)
                    start_i = int(np.searchsorted(cyc, trig.start_cycle))
                    if start_i >= n:
                        continue
                if cyc is None:
                    cyc = _cycles(t0, t1, n)
                ws.state = OPEN
                ws.opened_cycle = int(cyc[start_i])
                self.stream.write({
                    "t": "window", "event": "open", "window": trig.name,
                    "tile": tile, "cycle": ws.opened_cycle,
                    "pc": f"{int(seg.pc[start_i]):#x}", "i": inst0 + start_i,
                })
                written += 1

            # OPEN: find the inclusive end of what this chunk contributes
            if cyc is None:
                cyc = _cycles(t0, t1, n)
            end_i, reason = n - 1, None
            if trig.stop_pc is not None:
                hits = np.flatnonzero(
                    seg.pc[start_i:] == np.uint64(trig.stop_pc))
                if len(hits):
                    end_i, reason = start_i + int(hits[0]), "pc"
            if trig.stop_cycle is not None and t1 >= trig.stop_cycle:
                sc = int(np.searchsorted(cyc, trig.stop_cycle))
                sc = min(sc, n - 1)
                if sc < end_i or reason is None:
                    end_i, reason = min(end_i, sc), "cycle"
            budget = ws.budget()
            if end_i - start_i + 1 > budget:
                end_i = start_i + budget - 1
                reason = ("length" if trig.length is not None
                          and ws.emitted + budget >= trig.length
                          else "max-records")

            for i in range(start_i, end_i + 1):
                self.stream.write(decode_record(
                    seg, i, tile, int(cyc[i]), trig.name, inst0 + i))
            ws.emitted += max(0, end_i - start_i + 1)
            written += max(0, end_i - start_i + 1)

            if reason is not None:
                ws.state = DONE
                ws.closed_reason = reason
                close_cycle = int(cyc[end_i]) if end_i >= start_i else (
                    ws.opened_cycle if ws.opened_cycle is not None else t0)
                self.stream.write({
                    "t": "window", "event": "close", "window": trig.name,
                    "tile": tile, "cycle": close_cycle, "reason": reason,
                    "records": ws.emitted,
                })
                written += 1

        if self.markers:
            written += self._scan_markers(tile, seg, t0, t1, inst0, cyc)
        return written

    def _scan_markers(self, tile: int, seg, t0: int, t1: int, inst0: int,
                      cyc: np.ndarray | None) -> int:
        # one vectorised scan per chunk; no stores in the magic region
        # means no per-record work at all
        magic = (seg.op == _STORE) & ((seg.addr >> np.uint64(48))
                                      == np.uint64(0xF17E))
        hits = np.flatnonzero(magic)
        if not len(hits):
            return 0
        if cyc is None:
            cyc = _cycles(t0, t1, len(seg))
        for i in hits:
            i = int(i)
            addr = int(seg.addr[i])
            if not is_marker_addr(addr):  # pragma: no cover - mask is exact
                continue
            mid, value = decode_marker(addr)
            self.stream.write({
                "t": "marker", "tile": tile, "cycle": int(cyc[i]),
                "i": inst0 + i, "id": mid, "value": value,
                "pc": f"{int(seg.pc[i]):#x}",
            })
        return len(hits)

    def close_open_windows(self, reason: str = "eof") -> None:
        """Force-close windows still open (end of run / seal time)."""
        for ws in self.windows:
            if ws.open:
                ws.state = DONE
                ws.closed_reason = reason
                self.stream.write({
                    "t": "window", "event": "close",
                    "window": ws.trigger.name, "reason": reason,
                    "records": ws.emitted,
                })
