"""Thin synchronous client for a running ``repro serve`` instance.

One socket connection per request (connect, one JSON line out, one JSON
line back, close) — the deliberately stateless shape that lets the CLI
verbs (``repro submit/status/cancel/resume``) be one-shot processes and
keeps the server free of per-client session state.  Streaming never
crosses the socket: :meth:`ServeClient.tail` asks the server where the
job's spool stream lives and follows the file directly with
:func:`repro.instrument.tail_stream`.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Iterator

from ..farm.job import Job
from .protocol import ServeError, job_to_wire
from .queue import TERMINAL_STATES

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to a :class:`~repro.serve.server.FarmServer`.

    *endpoint* is the server's Unix-socket path (the default
    ``<spool>/serve.sock``).
    """

    def __init__(self, endpoint: str, timeout_s: float = 30.0,
                 connect_retries: int = 5,
                 retry_backoff_s: float = 0.05) -> None:
        self.endpoint = str(endpoint)
        self.timeout_s = float(timeout_s)
        self.connect_retries = max(0, int(connect_retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))

    # -- transport -----------------------------------------------------------

    def _request(self, doc: dict[str, Any]) -> dict[str, Any]:
        """One request/response exchange, with a short bounded retry.

        Two transient cases are retried with exponential backoff before
        giving up: the socket not accepting/existing yet (``repro
        submit`` racing ``repro serve`` startup — ECONNREFUSED/ENOENT)
        and a connection the server closed without a response — seen as
        an empty read or ECONNRESET/EPIPE (it never read the request,
        so re-sending cannot double-submit).
        """
        last_error = "request failed"
        for attempt in range(self.connect_retries + 1):
            if attempt:
                time.sleep(min(self.retry_backoff_s * 2 ** (attempt - 1),
                               2.0))
            try:
                raw = self._exchange(doc)
            except (ConnectionRefusedError, ConnectionResetError,
                    BrokenPipeError, FileNotFoundError) as exc:
                last_error = f"cannot reach server at {self.endpoint}: {exc}"
                continue
            except OSError as exc:
                raise ServeError(
                    f"cannot reach server at {self.endpoint}: {exc}"
                ) from None
            if not raw:
                last_error = f"empty response from {self.endpoint}"
                continue
            resp = json.loads(raw.decode("utf-8"))
            if not resp.get("ok"):
                raise ServeError(resp.get("error", "request failed"))
            return resp
        raise ServeError(last_error)

    def _exchange(self, doc: dict[str, Any]) -> bytes:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout_s)
        try:
            sock.connect(self.endpoint)
            sock.sendall(json.dumps(doc).encode("utf-8") + b"\n")
            chunks: list[bytes] = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        finally:
            sock.close()
        return b"".join(chunks)

    # -- ops -----------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self._request({"op": "ping"})

    def submit(self, job: Job | dict[str, Any], tenant: str = "default",
               priority: int = 0,
               instrument: dict[str, Any] | None = None) -> dict[str, Any]:
        """Queue one job; returns its status doc (``id``, ``state``...).

        *job* is a :class:`Job` or its wire dict.  A shared-store hit
        completes immediately (``state == "ok"``, ``from_cache`` set).
        """
        wire = job_to_wire(job) if isinstance(job, Job) else dict(job)
        req: dict[str, Any] = {"op": "submit", "job": wire,
                               "tenant": tenant, "priority": int(priority)}
        if instrument is not None:
            req["instrument"] = (instrument.to_dict()
                                 if hasattr(instrument, "to_dict")
                                 else instrument)
        return self._request(req)

    def status(self, job_id: str | None = None,
               payload: bool = False) -> dict[str, Any]:
        """One job's status, or the whole-server view when *job_id* is
        None (queues, deploy backend, store counters, every job)."""
        req: dict[str, Any] = {"op": "status"}
        if job_id is not None:
            req["id"] = job_id
            if payload:
                req["payload"] = True
        return self._request(req)

    def cancel(self, job_id: str, preempt: bool = False) -> dict[str, Any]:
        """Cancel a job — or, with ``preempt=True``, checkpoint-stop a
        running one so it can :meth:`resume` later."""
        return self._request({"op": "cancel", "id": job_id,
                              "preempt": bool(preempt)})

    def resume(self, job_id: str) -> dict[str, Any]:
        """Re-queue a preempted job; it restarts from its checkpoint."""
        return self._request({"op": "resume", "id": job_id})

    def shutdown(self, drain: bool = True) -> dict[str, Any]:
        """Stop the server: ``drain=True`` finishes queued + running
        jobs first; ``drain=False`` preempts running jobs and exits."""
        return self._request({"op": "shutdown", "drain": bool(drain)})

    # -- conveniences --------------------------------------------------------

    def wait(self, job_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.05,
             until: frozenset[str] = TERMINAL_STATES) -> dict[str, Any]:
        """Poll until the job reaches a state in *until*; returns the
        final status doc (with payload when the job succeeded)."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.status(job_id, payload=True)
            if doc["state"] in until:
                return doc
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {doc['state']} after {timeout_s:g}s")
            time.sleep(poll_s)

    def tail(self, job_id: str, follow: bool = True,
             timeout_s: float = 30.0) -> Iterator[dict[str, Any]]:
        """Yield the job's progress-stream records (live when *follow*).

        Records come straight off the spool file in the PR 6 stream
        format; iteration ends at the ``seal`` record a terminal state
        writes.
        """
        from ..instrument import tail_stream
        doc = self.status(job_id)
        stream = doc.get("stream")
        if not stream:
            raise ServeError(f"job {job_id} has no stream")
        return tail_stream(stream, follow=follow, timeout_s=timeout_s)
