"""Wire format shared by the serve server and its thin client.

Transport is a single request/response exchange of newline-delimited
JSON objects over a Unix-domain socket (or TCP with a ``tcp:host:port``
endpoint spec).  Requests carry an ``op`` field; responses carry
``ok: true`` plus op-specific payload, or ``ok: false`` with an
``error`` string.  Long-lived streaming (job progress, instrument
events) deliberately does *not* flow over the socket: jobs stream to
append-only JSONL files in the server spool (the PR 6 tailable format),
and clients follow them with ``repro tail`` /
:func:`repro.instrument.tail_stream` — so a slow or vanished client can
never stall the scheduler.

Job specs cross the wire as plain dicts (:func:`job_from_wire` /
:func:`job_to_wire`): the config travels by *name* and is rebuilt
server-side, which keeps requests small and the server the single
authority on model versions.
"""

from __future__ import annotations

from typing import Any

from ..farm.job import Job

__all__ = ["PROTOCOL_VERSION", "ServeError", "job_from_wire", "job_to_wire"]

#: bump on incompatible request/response changes
PROTOCOL_VERSION = 1


class ServeError(RuntimeError):
    """A request the server (or transport) rejected."""


def job_to_wire(job: Job) -> dict[str, Any]:
    """Flatten a :class:`Job` into its submit-request dict."""
    wire: dict[str, Any] = {
        "kind": job.kind,
        "config": job.config.name,
        "workload": job.workload,
        "seed": job.seed,
        "ranks": job.ranks,
        "params": dict(job.params),
    }
    if job.timeout_s is not None:
        wire["timeout_s"] = job.timeout_s
    return wire


def job_from_wire(wire: dict[str, Any]) -> Job:
    """Rebuild a :class:`Job` from its wire dict (server side).

    Raises :class:`ServeError` on malformed specs so the server can
    reject a bad submit without touching the scheduler.
    """
    from ..soc import get_config

    if not isinstance(wire, dict):
        raise ServeError(f"job spec must be an object, got "
                         f"{type(wire).__name__}")
    kind = wire.get("kind", "kernel")
    workload = wire.get("workload")
    if not workload:
        raise ServeError("job spec needs a 'workload'")
    params = dict(wire.get("params") or {})
    timeout_s = wire.get("timeout_s")
    try:
        config = get_config(str(wire.get("config", "Rocket1")))
    except KeyError as exc:
        raise ServeError(str(exc)) from None
    try:
        if kind == "kernel":
            return Job.kernel(
                config, str(workload),
                scale=float(params.get("scale", wire.get("scale", 1.0))),
                seed=int(wire.get("seed", 0)),
                warmup=bool(params.get("warmup", True)),
                timeout_s=timeout_s,
                quantum=(int(params["quantum"])
                         if params.get("quantum") is not None
                         else (int(wire["quantum"])
                               if wire.get("quantum") is not None else None)),
                chunk=(int(params["chunk"])
                       if params.get("chunk") is not None else None))
        if kind == "npb":
            return Job.npb(config, str(workload),
                           ranks=int(wire.get("ranks", 1)),
                           npb_class=str(params.get("cls", "A")),
                           timeout_s=timeout_s)
        if kind == "checkprog":
            return Job.checkprog(config, str(workload),
                                 source=str(params.get("source", "")),
                                 base=int(params.get("base", 0x1_0000)),
                                 fuel=int(params.get("fuel", 200_000)),
                                 timeout_s=timeout_s)
        if kind == "selftest":
            extra = {k: v for k, v in params.items()}
            return Job.selftest(mode=str(workload), config=config,
                                timeout_s=timeout_s, **extra)
    except (TypeError, ValueError) as exc:
        raise ServeError(f"bad job spec: {exc}") from None
    raise ServeError(f"unknown job kind {kind!r}")
