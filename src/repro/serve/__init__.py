"""Farm-as-a-service: a long-lived scheduler in front of the run farm.

Batch mode (``repro farm``) answers "run this sweep"; this package
answers "keep a fleet busy for many users" — the shared-manager
deployment FireSim teams actually operate.  The pieces:

* :class:`FarmServer` — asyncio daemon owning tenant queues, the
  pluggable :class:`~repro.farm.deploy.DeployManager` slot inventory,
  and one forked worker per running job (``repro serve``).
* :class:`ServeClient` — thin one-request-per-connection client backing
  ``repro submit/status/cancel/resume``.
* :class:`FairScheduler` / :class:`JobRecord` — multi-tenant queues
  with integer priorities, per-tenant quotas, and deterministic
  fairness.
* Preemption/resume rides on :mod:`repro.reliability` checkpoints and
  results ride on the shared :class:`~repro.farm.store.SharedResultStore`,
  so a served job is bit-identical to the same job run serially —
  including after a mid-run preempt.

See ``docs/serving.md`` for a worked tour.
"""

from .client import ServeClient
from .journal import JOURNAL_SCHEMA, ServeJournal, replay_journal
from .protocol import PROTOCOL_VERSION, ServeError, job_from_wire, job_to_wire
from .queue import TERMINAL_STATES, FairScheduler, JobRecord
from .server import FarmServer, ServerHandle

__all__ = [
    "FairScheduler",
    "FarmServer",
    "JOURNAL_SCHEMA",
    "JobRecord",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeError",
    "ServeJournal",
    "ServerHandle",
    "TERMINAL_STATES",
    "job_from_wire",
    "job_to_wire",
    "replay_journal",
]
