"""Crash-safe server journal: a write-ahead log of job lifecycle.

The :class:`~repro.serve.server.FarmServer` appends one JSON line to
``<spool>/journal.jsonl`` for every admission (``"t": "submit"``, the
full wire-form job spec) and every state transition (``"t": "state"``).
Records are flushed per append, so a server killed mid-batch (SIGKILL,
OOM, power) leaves a journal whose fold reconstructs every job it ever
accepted and the last state each one durably reached.

``repro serve --recover`` replays the journal on restart:

* terminal jobs (``ok``/``failed``/``cancelled``) are restored as-is —
  an ``ok`` job's payload is reloaded from ``results/<id>.json`` (or
  the shared store) so completed work is never re-run;
* non-terminal jobs (``queued``/``running``/``preempted``) are
  re-enqueued; a job that was ``running`` at the crash is additionally
  marked *orphaned* (its worker pid is recorded on the job stream, but
  never signalled — after a host crash the pid may belong to anyone);
* a relaunched lockstep job resumes from its PR 3 checkpoint when one
  exists in ``<spool>/ckpt`` (the checkpoint is keyed by job identity,
  so this needs no extra journal state), and restarts within the retry
  budget otherwise.

The format is append-only and torn-tolerant: a line cut mid-write by
the crash is skipped during replay, exactly like the PR 6 instrument
streams.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Iterator

__all__ = ["JOURNAL_SCHEMA", "ServeJournal", "replay_journal"]

#: bump on incompatible journal record changes
JOURNAL_SCHEMA = 1

#: states a replayed job never leaves (mirrors queue.TERMINAL_STATES;
#: re-declared here so the journal stays importable on its own)
_TERMINAL = frozenset({"ok", "failed", "cancelled"})


class ServeJournal:
    """Append-only JSONL writer for one server spool."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            self.append({"t": "meta", "schema": JOURNAL_SCHEMA})

    def append(self, doc: dict[str, Any]) -> None:
        """Write one record and flush it to the OS (write-ahead: call
        before acting on the transition, so a crash between the two
        replays the action rather than forgetting it)."""
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()

    def submit(self, rec, wire: dict[str, Any],
               instrument: dict[str, Any] | None = None) -> None:
        self.append({"t": "submit", "id": rec.id, "seq": rec.seq,
                     "tenant": rec.tenant, "priority": rec.priority,
                     "job": wire, "instrument": instrument})

    def state(self, rec, **extra: Any) -> None:
        self.append({"t": "state", "id": rec.id, "state": rec.state,
                     "attempts": rec.attempts, "host": rec.host,
                     "error": rec.error, "resumed": rec.resumed,
                     "from_cache": rec.from_cache, **extra})

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass


def _read_records(path: pathlib.Path) -> Iterator[dict[str, Any]]:
    """Yield parseable journal records; a torn tail line is skipped."""
    try:
        raw = path.read_bytes()
    except OSError:
        return
    for line in raw.split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue  # torn write at the crash point
        if isinstance(doc, dict):
            yield doc


def replay_journal(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Fold a journal into one summary dict per job, admission order.

    Each summary carries the submit-time fields (``id``, ``seq``,
    ``tenant``, ``priority``, ``job`` wire spec, ``instrument``) plus
    the last durably recorded ``state``/``attempts``/``host``/``error``
    /``pid``, and ``terminal`` (bool) / ``orphaned`` (bool: was running
    when the journal stopped).
    """
    jobs: dict[str, dict[str, Any]] = {}
    for doc in _read_records(pathlib.Path(path)):
        kind = doc.get("t")
        if kind == "submit" and doc.get("id"):
            jobs[doc["id"]] = {
                "id": doc["id"], "seq": int(doc.get("seq", 0)),
                "tenant": doc.get("tenant", "default"),
                "priority": int(doc.get("priority", 0)),
                "job": doc.get("job"), "instrument": doc.get("instrument"),
                "state": "queued", "attempts": 0, "host": None,
                "error": None, "pid": None,
                "resumed": False, "from_cache": False,
            }
        elif kind == "state":
            summary = jobs.get(doc.get("id"))
            if summary is None:
                continue  # a state line whose submit was torn away
            for key in ("state", "attempts", "host", "error", "resumed",
                        "from_cache", "pid"):
                if key in doc:
                    summary[key] = doc[key]
    out = sorted(jobs.values(), key=lambda j: j["seq"])
    for summary in out:
        summary["terminal"] = summary["state"] in _TERMINAL
        summary["orphaned"] = summary["state"] == "running"
    return out
