"""Multi-tenant job queues: priorities, quotas, and fair scheduling.

The serve layer admits jobs into *named tenant queues* (FireSim's
many-users-one-manager deployment picture).  Scheduling policy, in
order:

1. **Quotas.**  A tenant never holds more run-farm slots than its quota
   (default quota applies to tenants without an explicit one; ``None``
   means unlimited).  Quota only gates *dispatch* — submission is always
   accepted.
2. **Fairness across tenants.**  Among tenants with queued work and
   free quota, the scheduler picks the tenant with the fewest running
   jobs; ties go to the least-recently-served tenant, then name order.
   A flood from one tenant therefore cannot starve another: the other
   tenant's first job dispatches no later than the flood's second.
3. **Priority within a tenant.**  Higher integer priority dispatches
   first; equal priorities dispatch in submission order (FIFO).

Everything is deterministic for a fixed sequence of submit/pick/release
calls, which is what the scheduling tests pin.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field
from typing import Any

from ..farm.job import Job

__all__ = ["FairScheduler", "JobRecord", "TERMINAL_STATES"]

#: states a job never leaves
TERMINAL_STATES = frozenset({"ok", "failed", "cancelled"})


@dataclass
class JobRecord:
    """One submitted job as the server tracks it, cradle to grave."""

    id: str
    tenant: str
    priority: int
    job: Job
    seq: int                        #: global admission order
    state: str = "queued"           #: queued|running|preempted|ok|failed|cancelled
    attempts: int = 0
    host: str | None = None
    error: str | None = None
    resumed: bool = False           #: last attempt resumed from a checkpoint
    from_cache: bool = False
    preempt_requested: bool = False
    cancel_requested: bool = False
    migrate_requested: bool = False  #: host quarantined under this job
    migrations: int = 0             #: times moved off a quarantined host
    recovered: bool = False         #: re-admitted from a journal replay
    orphan_pid: int | None = None   #: worker pid left behind by a crash
    pid: int | None = None          #: current worker pid, while running
    crash_hosts: list[str] = field(default_factory=list)
    host_credits: int = 0           #: host-attributed failures (don't
                                    #: count against the retry budget)
    elapsed_s: float = 0.0
    submitted_at: float = field(default_factory=time.time)
    stream: str | None = None       #: progress/instrument stream path
    result_path: str | None = None  #: persisted payload JSON, once terminal
    payload: dict[str, Any] | None = None

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self, with_payload: bool = False) -> dict[str, Any]:
        """Wire-able status summary (payload only on request)."""
        doc: dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "label": self.job.label,
            "kind": self.job.kind,
            "config": self.job.config.name,
            "workload": self.job.workload,
            "state": self.state,
            "attempts": self.attempts,
            "host": self.host,
            "error": self.error,
            "resumed": self.resumed,
            "from_cache": self.from_cache,
            "migrations": self.migrations,
            "recovered": self.recovered,
            "elapsed_s": round(self.elapsed_s, 6),
            "stream": self.stream,
            "result_path": self.result_path,
            "cycles": (self.payload or {}).get("cycles"),
        }
        if with_payload:
            doc["payload"] = self.payload
        return doc


class _Tenant:
    """Per-tenant queue state: sorted backlog + running accounting."""

    __slots__ = ("name", "backlog", "running", "last_served")

    def __init__(self, name: str) -> None:
        self.name = name
        #: queued records, kept sorted by (-priority, seq)
        self.backlog: list[tuple[tuple[int, int], JobRecord]] = []
        self.running = 0
        self.last_served = -1


class FairScheduler:
    """Pick the next job to dispatch across tenant queues.

    The scheduler owns only queue/dispatch bookkeeping; record state
    transitions belong to the server.  ``pick()`` pops the chosen record
    from its backlog and counts it running until :meth:`job_finished`.
    """

    def __init__(self, quotas: dict[str, int] | None = None,
                 default_quota: int | None = None) -> None:
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self._tenants: dict[str, _Tenant] = {}
        self._serve_seq = 0

    # -- admission -----------------------------------------------------------

    def _tenant(self, name: str) -> _Tenant:
        t = self._tenants.get(name)
        if t is None:
            t = self._tenants[name] = _Tenant(name)
        return t

    def submit(self, rec: JobRecord) -> None:
        """Queue *rec* (also how a retried/resumed job re-enters)."""
        t = self._tenant(rec.tenant)
        key = (-rec.priority, rec.seq)
        bisect.insort(t.backlog, (key, rec))

    def withdraw(self, rec: JobRecord) -> bool:
        """Drop a queued record (cancel); False when not queued here."""
        t = self._tenants.get(rec.tenant)
        if t is None:
            return False
        for i, (_, queued) in enumerate(t.backlog):
            if queued is rec:
                del t.backlog[i]
                return True
        return False

    # -- dispatch ------------------------------------------------------------

    def quota(self, tenant: str) -> int | None:
        return self.quotas.get(tenant, self.default_quota)

    def _dispatchable(self, t: _Tenant) -> bool:
        if not t.backlog:
            return False
        q = self.quota(t.name)
        return q is None or t.running < q

    def pick(self) -> JobRecord | None:
        """Pop and return the next record to launch, or None.

        Caller must pair every pick with a later :meth:`job_finished`.
        """
        candidates = [t for t in self._tenants.values()
                      if self._dispatchable(t)]
        if not candidates:
            return None
        t = min(candidates, key=lambda t: (t.running, t.last_served, t.name))
        self._serve_seq += 1
        t.last_served = self._serve_seq
        _, rec = t.backlog.pop(0)
        t.running += 1
        return rec

    def job_finished(self, tenant: str) -> None:
        """Release the quota slot a picked job held (any outcome)."""
        t = self._tenants.get(tenant)
        if t is None or t.running <= 0:
            raise ValueError(f"job_finished without a running job for "
                             f"tenant {tenant!r}")
        t.running -= 1

    # -- introspection -------------------------------------------------------

    @property
    def queued(self) -> int:
        return sum(len(t.backlog) for t in self._tenants.values())

    @property
    def running(self) -> int:
        return sum(t.running for t in self._tenants.values())

    def describe(self) -> dict[str, Any]:
        return {
            "default_quota": self.default_quota,
            "tenants": {
                t.name: {"queued": len(t.backlog), "running": t.running,
                         "quota": self.quota(t.name)}
                for t in sorted(self._tenants.values(), key=lambda t: t.name)
            },
        }
