"""Long-lived asyncio farm server: queues in front of the run farm.

``repro serve`` turns the batch-mode run farm into a service, the way a
shared FireSim manager host fronts one FPGA fleet for many users.  One
asyncio event loop owns four things:

* a listening socket speaking the :mod:`repro.serve.protocol` wire
  format (one JSON request line in, one JSON response line out);
* the :class:`~repro.serve.queue.FairScheduler` holding tenant queues,
  priorities, and quotas;
* the :class:`~repro.farm.deploy.DeployManager` host-slot inventory —
  the same pluggable backends batch sweeps use, so a served job lands
  exactly where a ``repro farm`` job would;
* one forked worker process per running job, watched through its result
  pipe with ``loop.add_reader`` (a crashed worker closes the pipe, so
  completion and death arrive through the same readiness event).

Every job gets an append-only progress stream in the spool
(``streams/<id>.jsonl``, the PR 6 tailable JSONL format): lifecycle
records with ``"t": "serve"`` while the job moves through the queue,
the worker's instrument records in a sibling file when instrumentation
was requested, and a final ``seal`` record at any terminal state — so
``repro tail --follow`` on a live job ends exactly when the job does.

Preemption reuses :mod:`repro.reliability` checkpoints: lockstep kernel
jobs (``quantum=`` set) checkpoint every ``checkpoint_every`` quanta
into the spool, a preempt is just ``Process.terminate``, and a resume
re-queues the record — the next attempt restores from the checkpoint
and produces a payload bit-identical to an uninterrupted run.

Payload determinism is inherited, not re-implemented: workers run
:func:`repro.farm.job.execute_job_meta`, the single execution path
shared with serial and batch-farm runs.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import pathlib
import tempfile
import threading
import time
from typing import Any

from ..farm.cache import cache_key
from ..farm.deploy import DeployManager, resolve_deploy
from ..farm.job import ExecContext, Job
from ..farm.retry import RetryPolicy
from ..farm.runfarm import _worker_main
from ..farm.store import SharedResultStore
from ..instrument.stream import STREAM_SCHEMA, InstrumentStream
from .journal import ServeJournal, replay_journal
from .protocol import PROTOCOL_VERSION, ServeError, job_from_wire
from .queue import FairScheduler, JobRecord

__all__ = ["FarmServer", "ServerHandle"]

#: max request line the server will read (a submit with sources fits)
_MAX_LINE = 10 * 1024 * 1024


class _Active:
    """Server-side record of one running worker process."""

    __slots__ = ("rec", "proc", "conn", "fd", "started", "timed_out")

    def __init__(self, rec: JobRecord, proc, conn) -> None:
        self.rec = rec
        self.proc = proc
        self.conn = conn
        self.fd = conn.fileno()
        self.started = time.monotonic()
        self.timed_out = False


class FarmServer:
    """The ``repro serve`` daemon (see module docstring).

    Parameters
    ----------
    spool:
        Server working directory: socket, per-job streams, checkpoints,
        persisted results, manifest, and (by default) the shared store.
    deploy:
        Run-farm backend — a :class:`DeployManager`, a spec string
        (``"local:4"``, ``"hosts:a=2,b=4"``), or ``None`` for the
        environment default.  Same semantics as batch ``repro farm``.
    store:
        Shared cross-run :class:`SharedResultStore` (or its root path).
        ``None`` opens ``<spool>/store``; pass ``store=False`` to serve
        without one.  A store hit at submit time completes the job
        without touching the scheduler.
    quotas / default_quota:
        Per-tenant concurrent-job quotas (see :class:`FairScheduler`).
    max_retries:
        Automatic re-queues after a crashed/raising/timed-out attempt.
        Host-attributed failures (the worker crashed or timed out on a
        host the breaker then blamed) earn *host credits* and do not
        consume this budget — a flaky host can't exhaust an innocent
        job's retries.
    backoff_s / retry_policy:
        Relaunch-delay schedule, shared with the batch farm:
        ``backoff_s`` is shorthand for ``RetryPolicy(base_s=backoff_s)``
        (exponential, capped at 2 s); an explicit
        :class:`~repro.farm.retry.RetryPolicy` wins.
    timeout_s:
        Default per-job wall-clock limit (jobs may override).
    checkpoint_every:
        Quanta between mid-run checkpoints for lockstep kernel jobs —
        the knob that makes preemption cheap to resume.
    recover:
        Replay ``<spool>/journal.jsonl`` on construction: terminal jobs
        are restored (completed payloads are never re-run), non-terminal
        jobs are re-enqueued — resuming from their spool checkpoint
        where one exists — and workers orphaned by the crash are marked
        on the job streams (see :mod:`repro.serve.journal`).
    fault_plan:
        Optional :class:`repro.reliability.FaultPlan` for chaos runs:
        worker faults key on the job's 0-based admission order,
        ``host-stall`` faults on deploy host names, and ``socket-drop``
        faults close client connections *before* dispatch.
    suspect_after / quarantine_after / probe_interval:
        When set, override the deploy manager's host-health circuit
        breaker thresholds (see :mod:`repro.farm.deploy`).
    """

    def __init__(self, spool: str | os.PathLike,
                 deploy: DeployManager | str | None = None,
                 store: SharedResultStore | str | os.PathLike | None | bool = None,
                 quotas: dict[str, int] | None = None,
                 default_quota: int | None = None,
                 max_retries: int = 2,
                 backoff_s: float = 0.1,
                 timeout_s: float | None = None,
                 checkpoint_every: int = 2,
                 socket_path: str | os.PathLike | None = None,
                 store_max_entries: int | None = None,
                 store_max_bytes: int | None = None,
                 recover: bool = False,
                 fault_plan=None,
                 retry_policy: RetryPolicy | None = None,
                 suspect_after: int | None = None,
                 quarantine_after: int | None = None,
                 probe_interval: int | None = None) -> None:
        self.spool = pathlib.Path(spool)
        self.deploy = resolve_deploy(deploy, None)
        if suspect_after is not None:
            self.deploy.suspect_after = max(1, int(suspect_after))
        if quarantine_after is not None:
            self.deploy.quarantine_after = max(
                self.deploy.suspect_after, int(quarantine_after))
        if probe_interval is not None:
            self.deploy.probe_interval = max(1, int(probe_interval))
        if store is False:
            self.store = None
        elif isinstance(store, SharedResultStore):
            self.store = store
        else:
            root = self.spool / "store" if store in (None, True) else store
            self.store = SharedResultStore(root,
                                           max_entries=store_max_entries,
                                           max_bytes=store_max_bytes)
        self.scheduler = FairScheduler(quotas=quotas,
                                       default_quota=default_quota)
        self.max_retries = max(0, int(max_retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy(base_s=self.backoff_s))
        self.timeout_s = timeout_s
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.fault_plan = fault_plan
        self.socket_path = pathlib.Path(socket_path
                                        if socket_path is not None
                                        else self._default_socket())
        self.jobs: dict[str, JobRecord] = {}
        #: per-job instrument recipes (a submit-time option, not job identity)
        self._instrument_specs: dict[str, dict] = {}
        self._streams: dict[str, InstrumentStream] = {}
        self._active: dict[str, _Active] = {}
        self._seq = 0
        self._closing = False
        self._crashed = False
        self._drain = True
        self._req_count = 0
        self._host_launches: dict[str, int] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._done: asyncio.Event | None = None
        self._server: asyncio.AbstractServer | None = None
        self.journal = ServeJournal(self.spool / "journal.jsonl")
        if recover:
            self._recover()

    # -- paths ---------------------------------------------------------------

    def _default_socket(self) -> pathlib.Path:
        path = self.spool / "serve.sock"
        # AF_UNIX paths are capped (~108 bytes); deep tmpdirs overflow it
        if len(str(path)) > 96:
            return pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-")) / "s"
        return path

    def stream_path(self, job_id: str) -> pathlib.Path:
        return self.spool / "streams" / f"{job_id}.jsonl"

    def instrument_dir(self, job_id: str) -> pathlib.Path:
        return self.spool / "streams" / job_id

    @property
    def checkpoint_dir(self) -> pathlib.Path:
        return self.spool / "ckpt"

    # -- progress streams ----------------------------------------------------

    def _stream(self, rec: JobRecord) -> InstrumentStream:
        stream = self._streams.get(rec.id)
        if stream is None:
            path = self.stream_path(rec.id)
            # a recovered job appends to the stream the crashed server
            # left behind — only a genuinely new file gets a meta record
            fresh = not path.exists()
            stream = InstrumentStream(path)
            if fresh:
                stream.write({"t": "meta", "schema": STREAM_SCHEMA,
                              "source": "serve", "job": rec.id,
                              "label": rec.job.label, "tenant": rec.tenant,
                              "config": rec.job.config.name})
            self._streams[rec.id] = stream
        return stream

    def _event(self, rec: JobRecord, event: str, **extra: Any) -> None:
        """Append one lifecycle record to the job's progress stream."""
        self._stream(rec).write({"t": "serve", "event": event,
                                 "job": rec.id, "state": rec.state, **extra})

    def _seal(self, rec: JobRecord) -> None:
        stream = self._streams.pop(rec.id, None)
        if stream is not None:
            stream.seal(reason=rec.state)

    # -- crash recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal left by a crashed server (see module
        docstring of :mod:`repro.serve.journal`)."""
        restored = requeued = 0
        for s in replay_journal(self.journal.path):
            try:
                job = job_from_wire(s["job"])
            except ServeError:
                continue  # submit line torn beyond use
            self._seq = max(self._seq, s["seq"])
            rec = JobRecord(id=s["id"], tenant=s["tenant"],
                            priority=s["priority"], job=job, seq=s["seq"],
                            state=s["state"], attempts=int(s["attempts"]),
                            host=s["host"], error=s["error"],
                            resumed=bool(s["resumed"]),
                            from_cache=bool(s["from_cache"]))
            rec.stream = str(self.stream_path(rec.id))
            if s["instrument"] is not None:
                self._instrument_specs[rec.id] = s["instrument"]
            self.jobs[rec.id] = rec
            if s["terminal"]:
                if rec.state == "ok" and not self._reload_payload(rec):
                    # ok in the journal but the payload never landed:
                    # the only terminal state recovery must redo
                    self._requeue_recovered(rec, was="ok")
                    requeued += 1
                    continue
                restored += 1
                continue
            if s["orphaned"] and s["pid"] is not None:
                rec.orphan_pid = int(s["pid"])
                self._event(rec, "orphaned", pid=rec.orphan_pid,
                            attempt=rec.attempts)
            self._requeue_recovered(rec, was=s["state"])
            requeued += 1
        self.journal.append({"t": "recover", "restored": restored,
                             "requeued": requeued})

    def _reload_payload(self, rec: JobRecord) -> bool:
        """Re-attach a completed job's persisted payload; False when the
        results file is gone/unreadable (job must re-run)."""
        path = self.spool / "results" / f"{rec.id}.json"
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            rec.payload = doc["payload"]
        except (OSError, ValueError, KeyError):
            if (self.store is not None and rec.job.cacheable
                    and rec.id not in self._instrument_specs):
                rec.payload = self.store.get(cache_key(rec.job))
                if rec.payload is not None:
                    rec.from_cache = True
                    self._persist_result(rec)
                    return True
            return False
        rec.result_path = str(path)
        return True

    def _requeue_recovered(self, rec: JobRecord, was: str) -> None:
        """Re-admit one non-terminal journal job into the scheduler."""
        rec.recovered = True
        ckpt = self.checkpoint_dir / f"{cache_key(rec.job)}.ckpt"
        # completed-elsewhere fast path: a store hit means the work is
        # already done (possibly by a twin submission) — don't redo it
        if (self.store is not None and rec.job.cacheable
                and rec.id not in self._instrument_specs):
            payload = self.store.get(cache_key(rec.job))
            if payload is not None:
                rec.payload = payload
                rec.from_cache = True
                rec.state = "ok"
                self.journal.state(rec)
                self._persist_result(rec)
                self._event(rec, "recovered", was=was)
                self._event(rec, "store-hit")
                self._seal(rec)
                return
        rec.state = "queued"
        rec.host = None
        self.journal.state(rec)
        self._event(rec, "recovered", was=was, checkpoint=ckpt.exists())
        self.scheduler.submit(rec)

    # -- request handling ----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            self._req_count += 1
            if (self.fault_plan is not None
                    and self.fault_plan.socket_drop(self._req_count)):
                # chaos: drop the connection before reading the request,
                # so nothing was dispatched and a client retry is safe
                return
            line = await reader.readline()
            if not line:
                return
            try:
                req = json.loads(line.decode("utf-8"))
                if not isinstance(req, dict):
                    raise ValueError("request must be a JSON object")
                resp = self._dispatch(req)
            except ServeError as exc:
                resp = {"ok": False, "error": str(exc)}
            except (ValueError, KeyError, TypeError) as exc:
                resp = {"ok": False, "error": f"bad request: {exc}"}
            writer.write(json.dumps(resp, sort_keys=True).encode("utf-8")
                         + b"\n")
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, req: dict[str, Any]) -> dict[str, Any]:
        op = req.get("op")
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL_VERSION,
                    "deploy": self.deploy.describe(),
                    "scheduler": self.scheduler.describe(),
                    "jobs": len(self.jobs), "running": len(self._active)}
        if op == "submit":
            return self._op_submit(req)
        if op == "status":
            return self._op_status(req)
        if op == "cancel":
            return self._op_cancel(req)
        if op == "resume":
            return self._op_resume(req)
        if op == "shutdown":
            return self._op_shutdown(req)
        raise ServeError(f"unknown op {op!r}")

    def _record(self, req: dict[str, Any]) -> JobRecord:
        rec = self.jobs.get(str(req.get("id")))
        if rec is None:
            raise ServeError(f"unknown job id {req.get('id')!r}")
        return rec

    def _op_submit(self, req: dict[str, Any]) -> dict[str, Any]:
        if self._closing:
            raise ServeError("server is shutting down; submit rejected")
        job = job_from_wire(req.get("job"))
        tenant = str(req.get("tenant", "default"))
        priority = int(req.get("priority", 0))
        instrument = req.get("instrument")
        if instrument is not None and not isinstance(instrument, dict):
            raise ServeError("'instrument' must be an InstrumentSpec dict")
        self._seq += 1
        rec = JobRecord(id=f"j{self._seq:04d}", tenant=tenant,
                        priority=priority, job=job, seq=self._seq)
        rec.stream = str(self.stream_path(rec.id))
        self.jobs[rec.id] = rec
        # write-ahead: the admission hits the journal before any state
        # the crash could lose is built up
        self.journal.submit(rec, wire=dict(req.get("job") or {}),
                            instrument=instrument)
        self._event(rec, "queued", tenant=tenant, priority=priority)

        # store fast path: a previously computed payload completes the
        # job without ever touching the scheduler (instrumented submits
        # skip it — a hit would yield no stream to tail)
        if (self.store is not None and job.cacheable and instrument is None):
            payload = self.store.get(cache_key(job))
            if payload is not None:
                rec.payload = payload
                rec.from_cache = True
                rec.state = "ok"
                self.journal.state(rec)
                self._persist_result(rec)
                self._event(rec, "store-hit")
                self._seal(rec)
                self._write_manifest()
                return {"ok": True, **rec.describe()}

        if instrument is not None:
            self._instrument_specs[rec.id] = instrument
        self.scheduler.submit(rec)
        self._pump()
        return {"ok": True, **rec.describe()}

    def _op_status(self, req: dict[str, Any]) -> dict[str, Any]:
        if req.get("id") is not None:
            rec = self._record(req)
            doc = rec.describe(with_payload=bool(req.get("payload")))
            idir = self.instrument_dir(rec.id)
            if idir.is_dir():
                streams = sorted(str(p) for p in idir.glob("*.jsonl"))
                if streams:
                    doc["instrument_streams"] = streams
            return {"ok": True, **doc}
        doc = {
            "ok": True,
            "scheduler": self.scheduler.describe(),
            "deploy": self.deploy.describe(),
            "jobs": [self.jobs[k].describe() for k in sorted(self.jobs)],
        }
        if self.store is not None:
            doc["store"] = self.store.stats_snapshot().data["store"]
        return doc

    def _op_cancel(self, req: dict[str, Any]) -> dict[str, Any]:
        rec = self._record(req)
        preempt = bool(req.get("preempt"))
        if rec.done:
            raise ServeError(f"job {rec.id} already {rec.state}")
        if rec.state == "queued":
            # never ran: preempting a queued job is just a cancel
            self.scheduler.withdraw(rec)
            rec.state = "cancelled"
            self.journal.state(rec)
            self._event(rec, "cancelled", was="queued")
            self._seal(rec)
            self._write_manifest()
        elif rec.state == "running":
            if preempt:
                rec.preempt_requested = True
            else:
                rec.cancel_requested = True
            run = self._active.get(rec.id)
            if run is not None and run.proc.is_alive():
                run.proc.terminate()
            # state transition happens when the worker pipe closes
        elif rec.state == "preempted":
            if preempt:
                raise ServeError(f"job {rec.id} is already preempted")
            rec.state = "cancelled"
            self.journal.state(rec)
            self._event(rec, "cancelled", was="preempted")
            self._seal(rec)
            self._write_manifest()
        return {"ok": True, **rec.describe()}

    def _op_resume(self, req: dict[str, Any]) -> dict[str, Any]:
        if self._closing:
            raise ServeError("server is shutting down; resume rejected")
        rec = self._record(req)
        if rec.state != "preempted":
            raise ServeError(
                f"job {rec.id} is {rec.state}; only preempted jobs resume")
        rec.state = "queued"
        self.journal.state(rec)
        self._event(rec, "resume-queued")
        self.scheduler.submit(rec)
        self._pump()
        return {"ok": True, **rec.describe()}

    def _op_shutdown(self, req: dict[str, Any]) -> dict[str, Any]:
        drain = bool(req.get("drain", True))
        self._closing = True
        self._drain = drain
        if not drain:
            for run in list(self._active.values()):
                run.rec.preempt_requested = True
                if run.proc.is_alive():
                    run.proc.terminate()
        self._maybe_finish()
        return {"ok": True, "drain": drain,
                "running": len(self._active),
                "queued": self.scheduler.queued}

    # -- dispatch loop -------------------------------------------------------

    def _pump(self) -> None:
        """Launch queued jobs while slots and quotas allow."""
        if self._closing and not self._drain:
            return
        while True:
            host = self.deploy.acquire()
            if host is None:
                return
            rec = self.scheduler.pick()
            if rec is None:
                self.deploy.release(host)
                return
            self._launch(rec, host)

    def _mp_context(self):
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _exec_ctx(self, rec: JobRecord, host: str) -> ExecContext:
        spec = self._instrument_specs.get(rec.id)
        idir = None
        if spec is not None:
            idir = self.instrument_dir(rec.id)
            idir.mkdir(parents=True, exist_ok=True)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        return ExecContext(fault=self._pick_fault(rec, host),
                           checkpoint_dir=self.checkpoint_dir,
                           checkpoint_every=self.checkpoint_every,
                           in_process=False,
                           instrument_spec=spec,
                           instrument_dir=idir)

    def _pick_fault(self, rec: JobRecord, host: str):
        """The chaos fault (if any) this attempt must deliver: worker
        faults key on admission order, host-stalls on launch-per-host."""
        if self.fault_plan is None:
            return None
        fault = self.fault_plan.worker_fault(rec.seq - 1, rec.attempts)
        if fault is None:
            fault = self.fault_plan.host_stall(
                host, self._host_launches.get(host, 0))
        return fault

    def _launch(self, rec: JobRecord, host: str) -> None:
        ctx = self._mp_context()
        recv, send = ctx.Pipe(duplex=False)
        rec.attempts += 1
        rec.state = "running"
        rec.host = host
        exec_ctx = self._exec_ctx(rec, host)
        self._host_launches[host] = self._host_launches.get(host, 0) + 1
        proc = ctx.Process(target=_worker_main,
                           args=(send, rec.job, rec.attempts, exec_ctx),
                           daemon=True)
        proc.start()
        send.close()
        rec.pid = proc.pid
        self.journal.state(rec, pid=proc.pid)
        run = _Active(rec, proc, recv)
        self._active[rec.id] = run
        self._event(rec, "start", attempt=rec.attempts, host=host)
        assert self._loop is not None
        self._loop.add_reader(run.fd, self._on_worker_done, rec.id)

    def _on_worker_done(self, job_id: str) -> None:
        """Worker pipe became readable: a result, an error, or EOF from
        a dead/terminated process — all outcomes land here."""
        run = self._active.pop(job_id, None)
        if run is None:
            return
        assert self._loop is not None
        self._loop.remove_reader(run.fd)
        rec = run.rec
        meta: dict[str, Any] = {}
        try:
            msg = run.conn.recv()
            status, data = msg[0], msg[1]
            if len(msg) > 2 and msg[2]:
                meta = msg[2]
        except (EOFError, OSError):
            status, data = "crash", "worker exited without reporting"
        try:
            run.conn.close()
        except OSError:
            pass
        if run.proc.is_alive():
            run.proc.terminate()
        run.proc.join(timeout=5.0)
        rec.elapsed_s = time.monotonic() - run.started
        self.deploy.release(run.host if rec.host is None else rec.host)
        self.scheduler.job_finished(rec.tenant)
        self._transition(rec, run, status, data, meta)
        self._pump()
        self._maybe_finish()

    def _transition(self, rec: JobRecord, run: _Active, status: str,
                    data: Any, meta: dict[str, Any]) -> None:
        rec.pid = None
        if rec.cancel_requested:
            rec.state = "cancelled"
            self.journal.state(rec)
            self._event(rec, "cancelled", was="running")
            self._seal(rec)
        elif rec.migrate_requested and status != "ok":
            # the host was quarantined under this job: preempt-and-requeue
            # via the checkpoint path, at no cost to the retry budget
            rec.migrate_requested = False
            rec.migrations += 1
            if rec.migrations <= len(self.deploy.hosts):
                rec.host_credits += 1
            from_host = rec.host
            rec.state = "queued"
            ckpt = self.checkpoint_dir / f"{cache_key(rec.job)}.ckpt"
            self.journal.state(rec)
            self._event(rec, "migrate", attempt=rec.attempts,
                        from_host=from_host, checkpoint=ckpt.exists())
            self.scheduler.submit(rec)
            # _pump follows in _on_worker_done; the job lands on a
            # healthy host because acquire() skips quarantined ones
        elif rec.preempt_requested and status != "ok":
            rec.preempt_requested = False
            rec.state = "preempted"
            ckpt = self.checkpoint_dir / f"{cache_key(rec.job)}.ckpt"
            self.journal.state(rec)
            self._event(rec, "preempted", attempt=rec.attempts,
                        checkpoint=ckpt.exists())
            # stream stays unsealed: a resume continues the same file
        elif status == "ok":
            rec.migrate_requested = False
            rec.payload = data
            rec.resumed = bool(meta.get("resumed"))
            rec.state = "ok"
            if rec.host is not None:
                self.deploy.report_success(rec.host)
            if (self.store is not None and rec.job.cacheable
                    and rec.id not in self._instrument_specs):
                self.store.put(cache_key(rec.job), rec.job, data)
            self.journal.state(rec)
            self._persist_result(rec)
            if rec.migrations:
                self._event(rec, "recover", host=rec.host,
                            resumed=rec.resumed, migrations=rec.migrations)
            self._event(rec, "ok", attempt=rec.attempts,
                        resumed=rec.resumed, cycles=data.get("cycles"))
            self._seal(rec)
        else:
            error = (f"timed out after "
                     f"{self._job_timeout(rec.job):g}s" if run.timed_out
                     else str(data))
            rec.error = error
            self._attribute_failure(rec, run, status)
            charged = rec.attempts - rec.host_credits
            if charged <= self.max_retries and not self._closing:
                rec.state = "queued"
                self.journal.state(rec)
                self._event(rec, "retry", attempt=rec.attempts, error=error)
                delay = self.retry_policy.delay(rec.attempts)
                assert self._loop is not None
                self._loop.call_later(delay, self._requeue, rec)
            else:
                rec.state = "failed"
                self.journal.state(rec)
                self._event(rec, "failed", attempt=rec.attempts, error=error)
                self._seal(rec)
        if rec.done:
            self._write_manifest()

    def _attribute_failure(self, rec: JobRecord, run: _Active,
                           status: str) -> None:
        """Blame a failed attempt on the host or the job, and trip the
        breaker/migration when the host crosses its quarantine line.

        A crash/timeout is host-correlated the first time it happens on
        a given host; the same job dying on a second distinct host looks
        job-intrinsic (the job travels, the fault travels with it).  A
        workload exception is always job-intrinsic.
        """
        host = rec.host
        if host is None:
            return
        host_fault = bool(run.timed_out or status == "crash")
        intrinsic = (not host_fault or host in rec.crash_hosts
                     or len(rec.crash_hosts) >= 2)
        if host_fault and host not in rec.crash_hosts:
            rec.crash_hosts.append(host)
        was = self.deploy.health(host).state
        self.deploy.report_failure(host, job_intrinsic=intrinsic)
        if not intrinsic:
            rec.host_credits += 1
        if (self.deploy.health(host).state == "quarantined"
                and was != "quarantined"):
            self._event(rec, "quarantine", host=host, error=rec.error)
            self._migrate_host(host)

    def _migrate_host(self, host: str) -> None:
        """Preempt every other job still running on a newly quarantined
        host; each lands back in the queue via its checkpoint."""
        for other in list(self._active.values()):
            rec = other.rec
            if rec.host == host and not rec.done:
                rec.migrate_requested = True
                if other.proc.is_alive():
                    other.proc.terminate()

    def _requeue(self, rec: JobRecord) -> None:
        if rec.state != "queued" or self._closing and not self._drain:
            return
        self.scheduler.submit(rec)
        self._pump()

    def _job_timeout(self, job: Job) -> float | None:
        return job.timeout_s if job.timeout_s is not None else self.timeout_s

    async def _watchdog(self) -> None:
        """Kill running jobs that blew their wall-clock limit."""
        while True:
            await asyncio.sleep(0.05)
            now = time.monotonic()
            for run in list(self._active.values()):
                limit = self._job_timeout(run.rec.job)
                if (limit is not None and not run.timed_out
                        and now - run.started > limit):
                    run.timed_out = True
                    if run.proc.is_alive():
                        run.proc.terminate()

    # -- persistence ---------------------------------------------------------

    def _persist_result(self, rec: JobRecord) -> None:
        path = self.spool / "results" / f"{rec.id}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"id": rec.id, "tenant": rec.tenant, "label": rec.job.label,
               "from_cache": rec.from_cache, "resumed": rec.resumed,
               "attempts": rec.attempts, "payload": rec.payload}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(doc, f, sort_keys=True)
        os.replace(tmp, path)
        rec.result_path = str(path)

    def _write_manifest(self) -> None:
        path = self.spool / "manifest.json"
        doc = {
            "protocol": PROTOCOL_VERSION,
            "deploy": self.deploy.describe(),
            "scheduler": self.scheduler.describe(),
            "jobs": [self.jobs[k].describe() for k in sorted(self.jobs)],
        }
        self.spool.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.spool, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
        os.replace(tmp, path)

    # -- lifecycle -----------------------------------------------------------

    def _maybe_finish(self) -> None:
        if not self._closing or self._active:
            return
        if self._drain and self.scheduler.queued:
            return
        if self._done is not None:
            self._done.set()

    def crash(self) -> None:
        """Chaos/test hook: die the way a SIGKILL'd server does.

        Workers are killed (the "machine" went down with the server),
        streams are left unsealed, no manifest is written, and the
        journal stops exactly where it stands — the state a
        ``recover=True`` restart has to cope with.  Must run on the
        server's event loop (``ServerHandle.crash`` marshals it).
        """
        self._crashed = True
        for run in list(self._active.values()):
            if run.proc.is_alive():
                run.proc.kill()
        if self._done is not None:
            self._done.set()

    async def start(self) -> None:
        """Bind the socket and start background tasks."""
        self.spool.mkdir(parents=True, exist_ok=True)
        (self.spool / "streams").mkdir(exist_ok=True)
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path), limit=_MAX_LINE)
        self._watchdog_task = asyncio.ensure_future(self._watchdog())
        # jobs re-enqueued by a journal replay are waiting for the loop
        if self.scheduler.queued:
            self._pump()

    async def serve_forever(self, on_started=None) -> None:
        """Run until a ``shutdown`` request finishes draining."""
        await self.start()
        if on_started is not None:
            on_started()
        assert self._done is not None
        try:
            await self._done.wait()
        finally:
            self._watchdog_task.cancel()
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            if not self._crashed:
                for job_id, stream in list(self._streams.items()):
                    stream.seal(reason="server-shutdown")
                    self._streams.pop(job_id, None)
                self._write_manifest()
                try:
                    self.socket_path.unlink()
                except OSError:
                    pass
            self.journal.close()

    @classmethod
    def start_background(cls, spool: str | os.PathLike,
                         **kwargs: Any) -> "ServerHandle":
        """Run a server on a daemon thread; returns a ready handle.

        The in-process path that tests, doc examples, and the smoke
        script use: the caller keeps the main thread (and its client)
        and the server loop runs beside it.
        """
        server = cls(spool, **kwargs)
        started = threading.Event()

        def _run() -> None:
            asyncio.run(server.serve_forever(on_started=started.set))

        thread = threading.Thread(target=_run, daemon=True,
                                  name="repro-serve")
        thread.start()
        if not started.wait(timeout=10.0):
            raise ServeError("server failed to start within 10s")
        return ServerHandle(server, thread)


class ServerHandle:
    """A background :class:`FarmServer` plus the thread running it."""

    def __init__(self, server: FarmServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def endpoint(self) -> str:
        return str(self.server.socket_path)

    def client(self):
        from .client import ServeClient
        return ServeClient(self.endpoint)

    def stop(self, drain: bool = True, timeout_s: float = 60.0) -> None:
        """Request shutdown and join the server thread."""
        if self.thread.is_alive():
            try:
                self.client().shutdown(drain=drain)
            except (ServeError, OSError):
                pass  # already shutting down / socket gone
        self.thread.join(timeout=timeout_s)

    def crash(self, timeout_s: float = 10.0) -> None:
        """Hard-crash the server (chaos tests): no drain, no manifest,
        no stream seals — see :meth:`FarmServer.crash`."""
        loop = self.server._loop
        if loop is not None and self.thread.is_alive():
            loop.call_soon_threadsafe(self.server.crash)
        self.thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
