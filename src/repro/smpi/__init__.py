"""Simulated MPI: rank programs as generators over simulated tiles, with
real payloads, real collective algorithms, and a Hockney network model."""

from .comm import Comm, Compute, Recv, Send, SendRecv, nbytes_of
from .network import NetworkModel, ethernet_network, shared_memory_network
from .multinode import MultiNodeRuntime, run_multinode
from .runtime import DeadlockError, RankResult, SMPIRuntime, run_mpi

__all__ = [
    "Comm",
    "Compute",
    "Send",
    "Recv",
    "SendRecv",
    "nbytes_of",
    "NetworkModel",
    "shared_memory_network",
    "ethernet_network",
    "SMPIRuntime",
    "MultiNodeRuntime",
    "run_multinode",
    "RankResult",
    "DeadlockError",
    "run_mpi",
]
