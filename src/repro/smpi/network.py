"""Network cost models for the simulated MPI runtime.

All experiments in the paper run MPI ranks within one node (one cluster of
four cores), so the default model is shared-memory MPI: a Hockney
latency–bandwidth model whose parameters come from typical on-node MPI
performance, expressed in *core cycles* so they scale with the modeled
clock the same way real software overhead does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "shared_memory_network", "ethernet_network"]


@dataclass(frozen=True)
class NetworkModel:
    """Hockney (alpha-beta) point-to-point cost model.

    ``alpha_cycles``
        per-message software + transport latency in core cycles.
    ``bytes_per_cycle``
        sustained point-to-point bandwidth.
    ``eager_limit``
        messages up to this size complete at the sender immediately
        (buffered eager protocol); larger ones rendezvous.
    """

    alpha_cycles: int = 1500
    bytes_per_cycle: float = 8.0
    eager_limit: int = 8192

    def __post_init__(self) -> None:
        if self.alpha_cycles < 0:
            raise ValueError("alpha_cycles must be non-negative")
        if self.bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")

    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles to move one message of *nbytes* after both sides are ready."""
        return self.alpha_cycles + int(nbytes / self.bytes_per_cycle)


def shared_memory_network(core_ghz: float) -> NetworkModel:
    """On-node MPI through shared memory.

    ~0.7 microseconds latency and ~6 GB/s sustained per pair — typical for
    open-source MPI stacks on small in-order/OoO cores; both converted to
    cycles at the platform clock.
    """
    return NetworkModel(
        alpha_cycles=int(0.7e-6 * core_ghz * 1e9),
        bytes_per_cycle=6.0e9 / (core_ghz * 1e9),
        eager_limit=8192,
    )


def ethernet_network(core_ghz: float, gbps: float = 10.0,
                     latency_us: float = 20.0) -> NetworkModel:
    """Cross-node network (for the future-work multi-node experiments)."""
    return NetworkModel(
        alpha_cycles=int(latency_us * 1e-6 * core_ghz * 1e9),
        bytes_per_cycle=(gbps / 8) * 1e9 / (core_ghz * 1e9),
        eager_limit=4096,
    )
