"""Simulated-MPI runtime: cooperative rank scheduling over a multi-tile system.

Each MPI rank is a generator (see :mod:`repro.smpi.comm`) bound to one tile
of a :class:`repro.soc.System`.  The runtime is a discrete-event scheduler:

* the ready rank with the smallest local clock always runs next, so tiles
  interleave on the shared uncore in near time order (the same property the
  FireSim token scheme guarantees);
* ``Compute`` ops run the rank's trace on its tile in bounded chunks;
* point-to-point matching implements eager (buffered) and rendezvous
  protocols over the :class:`repro.smpi.network.NetworkModel`;
* payloads are real objects, so applications produce genuine results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..reliability.watchdog import SimulationHang
from ..soc.system import System
from .comm import Comm, Compute, Recv, Send, SendRecv
from .network import NetworkModel, shared_memory_network

__all__ = ["RankResult", "SMPIRuntime", "DeadlockError", "run_mpi"]


class DeadlockError(SimulationHang):
    """All unfinished ranks are blocked with no possible match.

    A :class:`~repro.reliability.SimulationHang` whose ``diagnostics``
    carry per-rank state — clock, status, and every unmatched
    send/recv/sendrecv key — so a collective rank mismatch is attributed,
    not just announced.
    """


@dataclass
class RankResult:
    """Per-rank outcome of an MPI run."""

    rank: int
    cycles: int = 0             #: final local clock (target cycles)
    instructions: int = 0
    compute_cycles: int = 0     #: cycles spent inside Compute ops
    comm_cycles: int = 0        #: cycles spent blocked/transferring
    messages_sent: int = 0
    bytes_sent: int = 0
    value: Any = None           #: the program's return value

    def seconds(self, ghz: float) -> float:
        return self.cycles / (ghz * 1e9)


_READY, _BLOCKED, _DONE = 0, 1, 2


@dataclass
class _Msg:
    payload: Any
    nbytes: int
    ready: int
    sender: int | None  #: rank index blocked in rendezvous, else None


@dataclass
class _RankState:
    idx: int
    gen: Any
    clock: int = 0
    status: int = _READY
    resume: Any = None
    pending_trace: Any = None   #: remainder of an in-progress Compute
    trace_off: int = 0
    result: RankResult = field(default_factory=lambda: RankResult(rank=-1))


class SMPIRuntime:
    """Schedule ``nranks`` rank programs over the tiles of *system*."""

    def __init__(self, system: System, nranks: int | None = None,
                 network: NetworkModel | None = None, chunk: int = 4096,
                 registry=None) -> None:
        self.system = system
        #: optional repro.telemetry.StatsRegistry; when set, run() stores
        #: the measure-window counter delta in self.telemetry
        self.registry = registry
        self.telemetry = None
        self.nranks = nranks if nranks is not None else system.cfg.ncores
        if self.nranks > len(system.tiles):
            raise ValueError(
                f"{self.nranks} ranks need {self.nranks} tiles; system has "
                f"{len(system.tiles)}"
            )
        if self.nranks < 1:
            raise ValueError("need at least one rank")
        self.network = network or shared_memory_network(system.cfg.core_ghz)
        self.chunk = chunk
        # (src, dst, tag) -> queued messages / waiting receivers
        self._sends: dict[tuple[int, int, int], deque[_Msg]] = {}
        self._recvs: dict[tuple[int, int, int], deque[int]] = {}
        # (rank, partner, tag) -> posted SendRecv
        self._xchg: dict[tuple[int, int, int], tuple[int, Any, int, int]] = {}

    # -- public API -------------------------------------------------------

    def run(self, program: Callable[[Comm], Any]) -> list[RankResult]:
        """Instantiate *program* on every rank and run to completion."""
        states = []
        for r in range(self.nranks):
            st = _RankState(idx=r, gen=program(Comm(r, self.nranks)))
            st.result = RankResult(rank=r)
            states.append(st)
        self._states = states
        baseline = self.registry.snapshot() if self.registry is not None else None

        while True:
            ready = [s for s in states if s.status == _READY]
            if not ready:
                if all(s.status == _DONE for s in states):
                    break
                blocked = [s.idx for s in states if s.status == _BLOCKED]
                raise DeadlockError(f"ranks {blocked} are deadlocked",
                                    diagnostics=self._diagnose(states))
            st = min(ready, key=lambda s: (s.clock, s.idx))
            self._step(st)

        for st in states:
            st.result.cycles = st.clock
        if baseline is not None:
            self.telemetry = self.registry.delta(baseline)
        return [s.result for s in states]

    def _diagnose(self, states: list[_RankState]) -> dict:
        """Structured deadlock evidence: who waits on whom, and for what."""
        names = {_READY: "ready", _BLOCKED: "blocked", _DONE: "done"}
        ranks = []
        for st in states:
            ranks.append({
                "rank": st.idx,
                "clock": st.clock,
                "status": names.get(st.status, st.status),
                # (src, dst, tag) keys this rank is a party to
                "unmatched_sends": sorted(
                    k for k, q in self._sends.items() if q and k[0] == st.idx),
                "unmatched_recvs": sorted(
                    k for k, q in self._recvs.items()
                    if st.idx in q),
                "posted_sendrecv": sorted(
                    k for k in self._xchg if k[0] == st.idx),
            })
        return {
            "nranks": self.nranks,
            "ranks": ranks,
            "hint": "a (src, dst, tag) listed under exactly one rank is a "
                    "collective/sendrecv rank mismatch",
        }

    # -- scheduling internals -----------------------------------------------

    def _step(self, st: _RankState) -> None:
        # continue an in-progress compute first
        if st.pending_trace is not None:
            self._run_compute_chunk(st)
            return
        try:
            op = st.gen.send(st.resume)
        except StopIteration as stop:
            st.status = _DONE
            st.result.value = stop.value
            return
        st.resume = None
        if isinstance(op, Compute):
            st.pending_trace = op.trace
            st.trace_off = 0
            self._run_compute_chunk(st)
        elif isinstance(op, Send):
            self._do_send(st, op)
        elif isinstance(op, Recv):
            self._do_recv(st, op)
        elif isinstance(op, SendRecv):
            self._do_sendrecv(st, op)
        else:
            raise TypeError(f"rank {st.idx} yielded unknown op {op!r}")

    def _tile_for(self, rank: int):
        """Tile executing *rank* (overridden by the multi-node runtime)."""
        return self.system.tiles[rank]

    def _net_for(self, src: int, dst: int) -> NetworkModel:
        """Network model for a rank pair (overridden for multi-node)."""
        return self.network

    def _run_compute_chunk(self, st: _RankState) -> None:
        trace = st.pending_trace
        seg = trace[st.trace_off:st.trace_off + self.chunk]
        tile = self._tile_for(st.idx)
        r = tile.core.run(seg, start_time=st.clock)
        st.clock = tile.core.local_time
        st.result.instructions += r.instructions
        st.result.compute_cycles += r.cycles
        st.trace_off += len(seg)
        if st.trace_off >= len(trace):
            st.pending_trace = None

    # -- point-to-point ------------------------------------------------------

    def _do_send(self, st: _RankState, op: Send) -> None:
        net = self._net_for(st.idx, op.dst)
        key = (st.idx, op.dst, op.tag)
        st.result.messages_sent += 1
        st.result.bytes_sent += op.nbytes or 0
        eager = (op.nbytes or 0) <= net.eager_limit
        msg = _Msg(op.payload, op.nbytes or 0, st.clock,
                   sender=None if eager else st.idx)
        self._sends.setdefault(key, deque()).append(msg)
        if eager:
            st.clock += max(1, net.alpha_cycles // 2)  # local copy-out cost
        else:
            st.status = _BLOCKED
        self._try_match(key)

    def _do_recv(self, st: _RankState, op: Recv) -> None:
        st.status = _BLOCKED
        key = (op.src, st.idx, op.tag)
        self._recvs.setdefault(key, deque()).append(st.idx)
        self._try_match(key)

    def _try_match(self, key: tuple[int, int, int]) -> None:
        sends = self._sends.get(key)
        recvs = self._recvs.get(key)
        while sends and recvs:
            msg = sends.popleft()
            ridx = recvs.popleft()
            rst = self._states[ridx]
            start = max(msg.ready, rst.clock)
            done = start + self._net_for(key[0], key[1]).transfer_cycles(msg.nbytes)
            rst.result.comm_cycles += done - rst.clock
            rst.clock = done
            rst.status = _READY
            rst.resume = msg.payload
            if msg.sender is not None:  # rendezvous sender unblocks too
                sst = self._states[msg.sender]
                sst.result.comm_cycles += done - sst.clock
                sst.clock = done
                sst.status = _READY

    def _do_sendrecv(self, st: _RankState, op: SendRecv) -> None:
        st.result.messages_sent += 1
        st.result.bytes_sent += op.nbytes or 0
        mine = (st.idx, op.partner, op.tag)
        theirs = (op.partner, st.idx, op.tag)
        other = self._xchg.pop(theirs, None)
        if other is None:
            st.status = _BLOCKED
            self._xchg[mine] = (st.idx, op.payload, op.nbytes or 0, st.clock)
            return
        oidx, opayload, onbytes, oclock = other
        ost = self._states[oidx]
        nbytes = max(op.nbytes or 0, onbytes)
        net = self._net_for(st.idx, op.partner)
        done = max(st.clock, oclock) + net.transfer_cycles(nbytes)
        for s, payload in ((st, opayload), (ost, op.payload)):
            s.result.comm_cycles += done - s.clock
            s.clock = done
            s.status = _READY
            s.resume = payload


def run_mpi(system: System, nranks: int,
            program: Callable[[Comm], Any],
            network: NetworkModel | None = None,
            chunk: int = 4096) -> list[RankResult]:
    """Convenience wrapper: build a runtime and run *program* on *nranks*.

    For telemetry over the run, construct an :class:`SMPIRuntime` with a
    ``registry`` and read ``runtime.telemetry`` after ``run()``.
    """
    return SMPIRuntime(system, nranks, network, chunk).run(program)
