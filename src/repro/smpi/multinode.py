"""Multi-node simulation: the paper's §7 future work.

FireSim's headline capability is scale-out simulation — multiple simulated
nodes linked through a simulated network ("In future studies, simulations
up to eight nodes can be performed in the available BxE environment").
:class:`MultiNodeRuntime` provides that here: each node is its own
:class:`repro.soc.System` (private uncore, caches, DRAM), ranks are placed
node-major, intra-node pairs use the shared-memory model, and cross-node
pairs pay the simulated Ethernet's latency/bandwidth.
"""

from __future__ import annotations

from typing import Callable

from ..soc.config import SoCConfig
from ..soc.system import System
from .comm import Comm
from .network import NetworkModel, ethernet_network, shared_memory_network
from .runtime import RankResult, SMPIRuntime

__all__ = ["MultiNodeRuntime", "run_multinode"]


class MultiNodeRuntime(SMPIRuntime):
    """MPI over several simulated nodes.

    Ranks are placed node-major: rank r runs on tile ``r % tiles_per_node``
    of node ``r // tiles_per_node``.
    """

    def __init__(self, systems: list[System], ranks_per_node: int | None = None,
                 intra: NetworkModel | None = None,
                 inter: NetworkModel | None = None, chunk: int = 4096) -> None:
        if not systems:
            raise ValueError("need at least one node")
        ghz = {s.cfg.core_ghz for s in systems}
        if len(ghz) != 1:
            raise ValueError("all nodes must share a core clock (one time base)")
        self.systems = systems
        self.ranks_per_node = ranks_per_node or systems[0].cfg.ncores
        if self.ranks_per_node > len(systems[0].tiles):
            raise ValueError(
                f"{self.ranks_per_node} ranks per node exceed "
                f"{len(systems[0].tiles)} tiles"
            )
        nranks = self.ranks_per_node * len(systems)
        core_ghz = systems[0].cfg.core_ghz
        super().__init__(systems[0], nranks=min(nranks, len(systems[0].tiles)),
                         network=intra or shared_memory_network(core_ghz),
                         chunk=chunk)
        # superclass validated against node 0; restore the true rank count
        self.nranks = nranks
        self.inter = inter or ethernet_network(core_ghz)

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def _tile_for(self, rank: int):
        node = self.node_of(rank)
        return self.systems[node].tiles[rank % self.ranks_per_node]

    def _net_for(self, src: int, dst: int) -> NetworkModel:
        if self.node_of(src) == self.node_of(dst):
            return self.network
        return self.inter


def run_multinode(config: SoCConfig, nnodes: int,
                  program: Callable[[Comm], object],
                  ranks_per_node: int | None = None,
                  inter: NetworkModel | None = None) -> list[RankResult]:
    """Build *nnodes* identical systems and run *program* across them."""
    systems = [System(config) for _ in range(nnodes)]
    rt = MultiNodeRuntime(systems, ranks_per_node=ranks_per_node, inter=inter)
    return rt.run(program)
