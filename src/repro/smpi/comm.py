"""Rank-side MPI interface: primitive ops plus collective algorithms.

A rank program is a Python generator that *yields* primitive operations —
:class:`Compute`, :class:`Send`, :class:`Recv`, :class:`SendRecv` — to the
runtime, which resumes it with the operation's result (received payload for
``Recv``/``SendRecv``).  The :class:`Comm` facade wraps the primitives and
implements the collective algorithms MPI libraries actually use:

* broadcast — binomial tree,
* reduce / allreduce — recursive doubling (power-of-two ranks) with real
  payload combination,
* barrier — dissemination,
* allgather — ring,
* alltoall — pairwise exchange.

Payloads are real (NumPy arrays or picklable objects), so application
kernels running on the simulated MPI produce genuine numerical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from ..isa.trace import Trace

__all__ = ["Compute", "Send", "Recv", "SendRecv", "Comm", "nbytes_of"]


def nbytes_of(payload: Any) -> int:
    """Wire size of a payload (ndarray nbytes; small fixed cost otherwise)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, bool, np.integer, np.floating)):
        return 8
    return 64  # envelope estimate for small python objects


@dataclass
class Compute:
    """Run an instruction trace on this rank's tile."""

    trace: Trace


@dataclass
class Send:
    """Point-to-point send; eager below the network's eager limit."""

    dst: int
    payload: Any = None
    tag: int = 0
    nbytes: int | None = None

    def __post_init__(self) -> None:
        if self.nbytes is None:
            self.nbytes = nbytes_of(self.payload)


@dataclass
class Recv:
    """Blocking receive; resumes the rank with the payload."""

    src: int
    tag: int = 0


@dataclass
class SendRecv:
    """Simultaneous exchange with a partner (matches the partner's SendRecv)."""

    partner: int
    payload: Any = None
    tag: int = 0
    nbytes: int | None = None

    def __post_init__(self) -> None:
        if self.nbytes is None:
            self.nbytes = nbytes_of(self.payload)


Op = Compute | Send | Recv | SendRecv
Program = Generator[Op, Any, Any]


class Comm:
    """Communicator handle passed to each rank program."""

    def __init__(self, rank: int, size: int) -> None:
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size

    # -- primitives (thin generator wrappers) --------------------------------

    def compute(self, trace: Trace) -> Program:
        yield Compute(trace)

    def send(self, dst: int, payload: Any = None, tag: int = 0,
             nbytes: int | None = None) -> Program:
        yield Send(dst, payload, tag, nbytes)

    def recv(self, src: int, tag: int = 0) -> Program:
        return (yield Recv(src, tag))

    def sendrecv(self, partner: int, payload: Any = None, tag: int = 0,
                 nbytes: int | None = None) -> Program:
        return (yield SendRecv(partner, payload, tag, nbytes))

    # -- collectives ----------------------------------------------------------

    def barrier(self, tag: int = 7000) -> Program:
        """Dissemination barrier: ceil(log2 p) rounds of pairwise exchange."""
        p, r = self.size, self.rank
        step = 1
        round_ = 0
        while step < p:
            dst = (r + step) % p
            src = (r - step) % p
            yield Send(dst, None, tag + round_, nbytes=0)
            yield Recv(src, tag + round_)
            step <<= 1
            round_ += 1

    def bcast(self, payload: Any, root: int = 0, tag: int = 7100) -> Program:
        """Binomial-tree broadcast; every rank returns the payload."""
        p = self.size
        vrank = (self.rank - root) % p
        mask = 1
        # receive phase: find the bit where we get the data
        while mask < p:
            if vrank & mask:
                payload = yield Recv(((vrank - mask) + root) % p, tag)
                break
            mask <<= 1
        # send phase: forward to children
        mask >>= 1
        while mask:
            if vrank + mask < p:
                yield Send(((vrank + mask) + root) % p, payload, tag)
            mask >>= 1
        return payload

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None,
                  tag: int = 7200) -> Program:
        """Recursive-doubling allreduce (with a fold-in step for non-powers
        of two); returns the combined value on every rank."""
        if op is None:
            op = _add
        p, r = self.size, self.rank
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        # fold the excess ranks into the power-of-two set
        if r < 2 * rem:
            if r % 2:  # odd ranks send their value and wait for the result
                yield Send(r - 1, value, tag)
                value = yield Recv(r - 1, tag + 99)
                return value
            other = yield Recv(r + 1, tag)
            value = op(value, other)
            newr = r // 2
        elif rem:
            newr = r - rem
        else:
            newr = r
        mask = 1
        while mask < pof2:
            partner_new = newr ^ mask
            partner = partner_new * 2 if partner_new < rem else partner_new + rem
            other = yield SendRecv(partner, value, tag + mask)
            value = op(value, other)
            mask <<= 1
        if r < 2 * rem:
            yield Send(r + 1, value, tag + 99)
        return value

    def reduce(self, value: Any, root: int = 0,
               op: Callable[[Any, Any], Any] | None = None,
               tag: int = 7300) -> Program:
        """Binomial-tree reduction to *root* (returns None elsewhere)."""
        if op is None:
            op = _add
        p = self.size
        vrank = (self.rank - root) % p
        mask = 1
        while mask < p:
            if vrank & mask:
                yield Send(((vrank - mask) + root) % p, value, tag)
                return None
            if vrank + mask < p:
                other = yield Recv(((vrank + mask) + root) % p, tag)
                value = op(value, other)
            mask <<= 1
        return value

    def allgather(self, value: Any, tag: int = 7400) -> Program:
        """Ring allgather; returns the list of all ranks' values.

        Parity-ordered: odd ranks receive before sending, so the ring has
        no cyclic wait even when large payloads use the rendezvous
        protocol (any ring with a rank 1 breaks the cycle).
        """
        p, r = self.size, self.rank
        out: list[Any] = [None] * p
        out[r] = value
        current = value
        for step in range(p - 1):
            dst = (r + 1) % p
            src = (r - 1) % p
            if r % 2 == 0:
                yield Send(dst, current, tag + step)
                current = yield Recv(src, tag + step)
            else:
                incoming = yield Recv(src, tag + step)
                yield Send(dst, current, tag + step)
                current = incoming
            out[(r - step - 1) % p] = current
        return out

    def alltoall(self, values: list, tag: int = 7500) -> Program:
        """Pairwise-exchange alltoall; ``values[i]`` goes to rank *i*.

        Rounds follow a 1-factorization of the complete graph: in round
        ``k`` rank ``r`` pairs with ``(k - r) mod p``, which is symmetric
        (each pair agrees on the round), so every exchange is a matched
        :class:`SendRecv` and the schedule is deadlock-free for any ``p``.
        """
        p, r = self.size, self.rank
        if len(values) != p:
            raise ValueError(f"alltoall needs {p} values, got {len(values)}")
        out: list[Any] = [None] * p
        out[r] = values[r]
        for k in range(p):
            partner = (k - r) % p
            if partner == r:
                continue
            out[partner] = yield SendRecv(partner, values[partner], tag + k)
        return out


def _add(a: Any, b: Any) -> Any:
    return a + b
