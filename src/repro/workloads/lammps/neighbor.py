"""Neighbor-list construction: linked cells + half Verlet lists.

The same binning/stenciling scheme LAMMPS uses: atoms are binned into
cells no smaller than ``cutoff + skin``; candidate pairs come from each
cell and its half stencil of neighbouring cells (so each pair appears
once); the half list is then distance-filtered.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_cells", "half_neighbor_list", "NeighborList"]


class NeighborList:
    """Half neighbor list: pairs (i, j) with i < j within cutoff + skin."""

    def __init__(self, pairs_i: np.ndarray, pairs_j: np.ndarray,
                 cutoff: float, skin: float) -> None:
        self.i = pairs_i
        self.j = pairs_j
        self.cutoff = cutoff
        self.skin = skin

    def __len__(self) -> int:
        return len(self.i)

    def filter_within(self, pos: np.ndarray, box: float,
                      rc: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pairs currently within *rc* plus their minimum-image vectors."""
        d = pos[self.i] - pos[self.j]
        d -= box * np.round(d / box)
        r2 = np.sum(d * d, axis=1)
        m = r2 < rc * rc
        return self.i[m], self.j[m], d[m]


def build_cells(pos: np.ndarray, box: float, cell_size: float):
    """Bin atoms into cells; returns (ncell_per_dim, cell index per atom)."""
    nc = max(1, int(box / cell_size))
    cell_len = box / nc
    ijk = np.floor(pos / cell_len).astype(np.int64) % nc
    idx = (ijk[:, 0] * nc + ijk[:, 1]) * nc + ijk[:, 2]
    return nc, idx


#: half stencil: a cell pairs with itself and 13 of its 26 neighbours
_HALF_STENCIL = [
    (0, 0, 0),
    (1, 0, 0), (1, 1, 0), (0, 1, 0), (-1, 1, 0),
    (1, 0, 1), (1, 1, 1), (0, 1, 1), (-1, 1, 1),
    (0, 0, 1), (-1, 0, 1), (1, -1, 1), (0, -1, 1), (-1, -1, 1),
]


def half_neighbor_list(pos: np.ndarray, box: float, cutoff: float,
                       skin: float = 0.3) -> NeighborList:
    """Build a half neighbor list with linked cells (periodic box)."""
    n = len(pos)
    reach = cutoff + skin
    nc, cell_of = build_cells(pos, box, reach)
    # bucket atoms by cell
    order = np.argsort(cell_of, kind="stable")
    sorted_cells = cell_of[order]
    starts = np.searchsorted(sorted_cells, np.arange(nc**3 + 1))

    def atoms_in(cx, cy, cz):
        c = ((cx % nc) * nc + (cy % nc)) * nc + (cz % nc)
        return order[starts[c]:starts[c + 1]]

    pi_parts: list[np.ndarray] = []
    pj_parts: list[np.ndarray] = []
    for cx in range(nc):
        for cy in range(nc):
            for cz in range(nc):
                home = atoms_in(cx, cy, cz)
                if home.size == 0:
                    continue
                home_key = ((cx % nc) * nc + (cy % nc)) * nc + (cz % nc)
                seen = {home_key}
                if home.size > 1:
                    a, b = np.triu_indices(home.size, k=1)
                    pi_parts.append(home[a])
                    pj_parts.append(home[b])
                for dx, dy, dz in _HALF_STENCIL[1:]:
                    # small boxes: offsets can wrap onto already-visited
                    # cells (including home); visit each effective cell once
                    key = (((cx + dx) % nc) * nc + ((cy + dy) % nc)) * nc \
                        + ((cz + dz) % nc)
                    if key in seen:
                        continue
                    seen.add(key)
                    other = atoms_in(cx + dx, cy + dy, cz + dz)
                    if other.size == 0:
                        continue
                    a = np.repeat(home, other.size)
                    b = np.tile(other, home.size)
                    pi_parts.append(a)
                    pj_parts.append(b)
    if pi_parts:
        pi = np.concatenate(pi_parts)
        pj = np.concatenate(pj_parts)
        # distance filter at cutoff + skin
        d = pos[pi] - pos[pj]
        d -= box * np.round(d / box)
        r2 = np.sum(d * d, axis=1)
        m = r2 < reach * reach
        pi, pj = pi[m], pj[m]
        # dedupe (tiny boxes can alias cells through periodic wrap)
        key = np.minimum(pi, pj) * np.int64(n) + np.maximum(pi, pj)
        _, uniq = np.unique(key, return_index=True)
        pi, pj = pi[uniq], pj[uniq]
    else:
        pi = pj = np.empty(0, dtype=np.int64)
    return NeighborList(pi, pj, cutoff, skin)
