"""LAMMPS-mini: molecular dynamics with LJ and FENE-chain benchmarks."""

from .forces import fene_forces, kinetic_energy, lj_forces, temperature
from .integrate import MDSystem, WCA_CUTOFF
from .neighbor import NeighborList, half_neighbor_list
from .setup import chain_system, lj_lattice
from .workload import BENCHMARKS, LAMMPSResult, lammps_program, run_lammps

__all__ = [
    "lj_forces",
    "fene_forces",
    "kinetic_energy",
    "temperature",
    "MDSystem",
    "WCA_CUTOFF",
    "NeighborList",
    "half_neighbor_list",
    "lj_lattice",
    "chain_system",
    "BENCHMARKS",
    "LAMMPSResult",
    "run_lammps",
    "lammps_program",
]
