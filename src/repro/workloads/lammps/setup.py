"""Initial configurations for the two paper benchmarks: LJ melt and
FENE polymer chains (both 32 000 atoms / 100 steps in the paper; sizes are
parameters here)."""

from __future__ import annotations

import numpy as np

__all__ = ["lj_lattice", "chain_system"]


def lj_lattice(natoms: int, density: float = 0.8442,
               t0: float = 1.44, seed: int = 41
               ) -> tuple[np.ndarray, np.ndarray, float]:
    """LAMMPS ``melt``-style setup: fcc lattice at the given reduced
    density with Gaussian velocities at temperature *t0* (zeroed drift).

    Returns (positions, velocities, box edge).  ``natoms`` is rounded up
    to the nearest full fcc lattice (4 atoms per cell).
    """
    ncell = max(1, int(np.ceil((natoms / 4) ** (1 / 3))))
    n = 4 * ncell**3
    box = (n / density) ** (1 / 3)
    a = box / ncell
    base = np.array([[0, 0, 0], [0.5, 0.5, 0], [0.5, 0, 0.5], [0, 0.5, 0.5]])
    cells = np.array(np.meshgrid(range(ncell), range(ncell), range(ncell),
                                 indexing="ij")).reshape(3, -1).T
    pos = (cells[:, None, :] + base[None, :, :]).reshape(-1, 3) * a
    rng = np.random.default_rng(seed)
    vel = rng.normal(0.0, np.sqrt(t0), size=pos.shape)
    vel -= vel.mean(axis=0)  # zero total momentum
    return pos, vel, box


def chain_system(nchains: int, beads_per_chain: int = 32,
                 density: float = 0.5, bond_len: float = 0.97,
                 t0: float = 1.0, seed: int = 43
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Bead-spring polymer melt: straight chains laid on a lattice with a
    small jitter (LAMMPS ``chain`` benchmark style: FENE bonds + WCA pairs).

    Returns (positions, velocities, bonds, box edge).
    """
    n = nchains * beads_per_chain
    box = (n / density) ** (1 / 3)
    rng = np.random.default_rng(seed)

    # Each chain serpentines along x inside its own (y, z) slot; the fold
    # steps sideways by exactly bond_len, so every consecutive pair is
    # bond_len apart.  Slots are sized so distinct chains stay > 1.2 sigma
    # apart (outside the WCA core); the box grows if the target density
    # cannot accommodate that, making `density` an upper bound.
    clearance = 1.25
    while True:
        row_len = max(2, int(0.9 * box / bond_len))
        rows = -(-beads_per_chain // row_len)
        y_extent = (rows - 1) * bond_len
        grid_y = max(1, int(box / (y_extent + clearance)))
        grid_z = -(-nchains // grid_y)
        if box / grid_z >= clearance or nchains == 1:
            break
        box *= 1.1
    pitch_y = box / grid_y
    pitch_z = box / grid_z

    pos = np.empty((n, 3))
    bonds = []
    for c in range(nchains):
        gz, gy = divmod(c, grid_y)
        y = (gy + 0.1) * pitch_y
        z = (gz + 0.5) * pitch_z
        x = 0.05 * box
        dirx = 1.0
        for b in range(beads_per_chain):
            idx = c * beads_per_chain + b
            pos[idx] = (x, y, z)
            if b > 0:
                bonds.append((idx - 1, idx))
            nx = x + dirx * bond_len
            if nx > 0.95 * box or nx < 0.05 * box:
                y += bond_len  # fold: step sideways, keep bond length
                dirx = -dirx
            else:
                x = nx
    pos += rng.uniform(-0.02, 0.02, size=pos.shape)
    vel = rng.normal(0.0, np.sqrt(t0), size=pos.shape)
    vel -= vel.mean(axis=0)
    return pos, vel, np.array(bonds, dtype=np.int64), box
