"""Velocity-Verlet NVE integration with periodic boundaries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .forces import fene_forces, kinetic_energy, lj_forces
from .neighbor import NeighborList, half_neighbor_list

__all__ = ["MDSystem", "WCA_CUTOFF"]

#: WCA (purely repulsive LJ) cutoff: 2^(1/6) sigma
WCA_CUTOFF = 2.0 ** (1.0 / 6.0)


@dataclass
class MDSystem:
    """Replicated MD state plus the integration loop.

    ``style`` is "lj" (LJ cut 2.5) or "chain" (WCA + FENE bonds).
    """

    pos: np.ndarray
    vel: np.ndarray
    box: float
    style: str = "lj"
    bonds: np.ndarray = field(default_factory=lambda: np.empty((0, 2), np.int64))
    dt: float = 0.005
    skin: float = 0.3
    rebuild_every: int = 5
    nlist: NeighborList | None = None
    forces: np.ndarray | None = None
    pe: float = 0.0
    step_count: int = 0

    def __post_init__(self) -> None:
        if self.style not in ("lj", "chain"):
            raise ValueError(f"unknown style {self.style!r}")
        self.rc = 2.5 if self.style == "lj" else WCA_CUTOFF
        self.rebuild_neighbors()
        self.compute_forces()

    @property
    def natoms(self) -> int:
        return len(self.pos)

    def rebuild_neighbors(self) -> None:
        self.nlist = half_neighbor_list(self.pos, self.box, self.rc, self.skin)

    def compute_forces(self) -> None:
        f, pe = lj_forces(self.pos, self.nlist, self.box, rc=self.rc,
                          shift=True)
        if self.style == "chain" and len(self.bonds):
            fb, peb = fene_forces(self.pos, self.bonds, self.box)
            f += fb
            pe += peb
        self.forces = f
        self.pe = pe

    def step(self) -> None:
        """One velocity-Verlet step (mass = 1)."""
        dt = self.dt
        self.vel += 0.5 * dt * self.forces
        self.pos += dt * self.vel
        self.pos %= self.box
        self.step_count += 1
        if self.step_count % self.rebuild_every == 0:
            self.rebuild_neighbors()
        self.compute_forces()
        self.vel += 0.5 * dt * self.forces

    def total_energy(self) -> float:
        return self.pe + kinetic_energy(self.vel)

    def momentum(self) -> np.ndarray:
        return self.vel.sum(axis=0)
