"""LAMMPS benchmarks as MPI workloads: *Lennard-Jones* and *Chain*.

Mirrors §5.4 of the paper: the LJ melt and FENE polymer-chain benchmarks
(32 000 atoms, 100 steps there; sizes are parameters here) run on 1/2/4
MPI ranks with spatial (x-slab) decomposition.  State is replicated for
bit-exact verification while *costs* follow the decomposition: each rank
is charged the force/integration work of its own slab and exchanges real
boundary-atom positions with its slab neighbours every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...isa.opcodes import OpClass
from ...smpi.comm import Comm
from ...smpi.runtime import RankResult, run_mpi
from ...soc.config import SoCConfig
from ...soc.system import System
from ..base import PhaseEmitter
from ..npb.common import AddressSpace
from .integrate import MDSystem
from .setup import chain_system, lj_lattice

__all__ = ["LAMMPSResult", "lammps_program", "run_lammps", "BENCHMARKS"]

BENCHMARKS = ("lj", "chain")


@dataclass
class LAMMPSResult:
    """Outcome of one LAMMPS benchmark run."""

    benchmark: str
    config: str
    nranks: int
    natoms: int
    steps: int
    verified: bool
    cycles: int
    core_ghz: float
    energy_drift: float
    ranks: list[RankResult] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.cycles / (self.core_ghz * 1e9)

    def __repr__(self) -> str:
        flag = "OK" if self.verified else "FAILED-VERIFY"
        return (
            f"LAMMPSResult({self.benchmark} on {self.config} x{self.nranks}: "
            f"{self.natoms} atoms, {self.steps} steps, "
            f"{self.seconds * 1e3:.2f} ms target, drift={self.energy_drift:.2e}, {flag})"
        )


def _build_system(benchmark: str, natoms: int) -> MDSystem:
    if benchmark == "lj":
        pos, vel, box = lj_lattice(natoms)
        return MDSystem(pos, vel, box, style="lj")
    if benchmark == "chain":
        beads = 16
        nchains = max(1, natoms // beads)
        pos, vel, bonds, box = chain_system(nchains, beads_per_chain=beads,
                                            density=0.3)
        return MDSystem(pos, vel, box, style="chain", dt=0.004)
    raise ValueError(f"unknown benchmark {benchmark!r}; use one of {BENCHMARKS}")


def lammps_program(comm: Comm, benchmark: str, natoms: int, steps: int):
    """Per-rank MD program: slab ownership, ghost exchange, timed phases."""
    p, r = comm.size, comm.rank
    md = _build_system(benchmark, natoms)
    n = md.natoms
    e0 = md.total_energy()

    # x-slab ownership, fixed for the (short) run
    slab = md.box / p
    owner = np.minimum((md.pos[:, 0] // slab).astype(np.int64), p - 1)
    mine = np.nonzero(owner == r)[0]

    asp = AddressSpace(r)
    pos_base = asp.alloc(n * 24)
    frc_base = asp.alloc(n * 24)
    nl_base = asp.alloc(16 << 20)
    em = PhaseEmitter()

    def force_trace():
        """Pairs charged to the owner of atom i: per pair, a neighbor-list
        index load and both position loads, the LJ kernel flops, and the
        force accumulations."""
        i, j, _ = md.nlist.filter_within(md.pos, md.box, md.rc)
        m = owner[i] == r
        i, j = i[m], j[m]
        npairs = len(i)
        if npairs == 0:
            return em.emit(int_per_elem=2.0, elems=8)
        nl_loads = (nl_base + np.arange(npairs, dtype=np.int64) * 8).astype(np.uint64)
        pi_loads = asp.addrs(pos_base, i, itemsize=24)
        pj_loads = asp.addrs(pos_base, j, itemsize=24)
        loads = np.empty(3 * npairs, dtype=np.uint64)
        loads[0::3] = nl_loads
        loads[1::3] = pi_loads
        loads[2::3] = pj_loads
        return em.emit(loads=loads,
                       stores=asp.addrs(frc_base, i, itemsize=24),
                       fp_per_elem=11.0, int_per_elem=2.0,
                       fp_op=OpClass.FP_FMA, elems=npairs)

    def bond_trace():
        if md.style != "chain" or not len(md.bonds):
            return None
        bm = owner[md.bonds[:, 0]] == r
        nb = int(bm.sum())
        if nb == 0:
            return None
        return em.emit(
            loads=asp.addrs(pos_base, md.bonds[bm, 0], itemsize=24),
            stores=asp.addrs(frc_base, md.bonds[bm, 0], itemsize=24),
            fp_per_elem=9.0, int_per_elem=2.0, elems=nb,
        )

    def integrate_trace():
        nm = len(mine)
        return em.emit(
            loads=np.concatenate([asp.addrs(pos_base, mine, itemsize=24),
                                  asp.addrs(frc_base, mine, itemsize=24)]),
            stores=asp.addrs(pos_base, mine, itemsize=24),
            fp_per_elem=6.0, int_per_elem=1.0, elems=max(1, nm),
        )

    def rebuild_trace():
        nm = len(mine)
        # binning (int-heavy) plus candidate-pair distance filtering
        return em.emit(
            loads=asp.addrs(pos_base, mine, itemsize=24),
            int_per_elem=12.0, fp_per_elem=3.0, elems=max(1, nm),
        )

    def ghost_exchange():
        """Send boundary-slab atom positions to the x-neighbours.

        Parity-ordered pairing: even ranks exchange with their right
        neighbour first, odd ranks with their left — every round consists
        of matched SendRecv pairs, so the (periodic) ring never deadlocks.
        """
        if p == 1:
            return
        cut = md.rc + md.skin
        x = md.pos[mine, 0]
        right = (r + 1) % p
        left = (r - 1) % p
        hi_edge = (r + 1) * slab
        lo_edge = r * slab
        ghosts_hi = md.pos[mine[x > hi_edge - cut]]
        ghosts_lo = md.pos[mine[x < lo_edge + cut]]
        if r % 2 == 0:
            got_hi = yield from comm.sendrecv(right, ghosts_hi, tag=61)
            got_lo = yield from comm.sendrecv(left, ghosts_lo, tag=62)
        else:
            got_lo = yield from comm.sendrecv(left, ghosts_lo, tag=61)
            got_hi = yield from comm.sendrecv(right, ghosts_hi, tag=62)
        # replicated state: received coordinates lie in the neighbour's
        # slab (decomposition consistency)
        for got in (got_hi, got_lo):
            assert got.ndim == 2 and got.shape[1] == 3

    energies = [e0]
    for _ in range(steps):
        yield from ghost_exchange()
        md.step()
        yield from comm.compute(force_trace())
        bt = bond_trace()
        if bt is not None:
            yield from comm.compute(bt)
        yield from comm.compute(integrate_trace())
        if md.step_count % md.rebuild_every == 0:
            yield from comm.compute(rebuild_trace())
        energies.append(md.total_energy())

    mom = md.momentum()
    return {
        "e0": e0,
        "energies": energies,
        "momentum": mom,
    }


def run_lammps(config: SoCConfig, nranks: int = 1, benchmark: str = "lj",
               natoms: int = 1024, steps: int = 6) -> LAMMPSResult:
    """Run one LAMMPS benchmark; verify NVE energy and momentum conservation."""
    if benchmark not in BENCHMARKS:
        raise ValueError(f"unknown benchmark {benchmark!r}; use one of {BENCHMARKS}")
    system = System(config)
    results = run_mpi(system, nranks,
                      lambda comm: lammps_program(comm, benchmark, natoms, steps))
    cycles = max(r.cycles for r in results)

    v0 = results[0].value
    energies = np.array(v0["energies"])
    scale = max(abs(v0["e0"]), 1.0)
    drift = float(np.max(np.abs(energies - v0["e0"]))) / scale
    ok = drift < 0.02 and np.all(np.abs(v0["momentum"]) < 1e-8 * len(energies) * scale)
    # replicated state must agree across ranks bit-for-bit
    for other in results[1:]:
        ok = ok and np.allclose(other.value["energies"], energies)

    return LAMMPSResult(
        benchmark=benchmark,
        config=config.name,
        nranks=nranks,
        natoms=_build_system(benchmark, natoms).natoms,
        steps=steps,
        verified=bool(ok),
        cycles=cycles,
        core_ghz=config.core_ghz,
        energy_drift=drift,
        ranks=results,
    )
