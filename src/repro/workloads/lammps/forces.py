"""Interatomic potentials: Lennard-Jones (cut) and FENE bonds.

Reduced LJ units throughout (sigma = epsilon = mass = 1), matching the
LAMMPS ``melt``/``micelle`` benchmark conventions.
"""

from __future__ import annotations

import numpy as np

from .neighbor import NeighborList

__all__ = ["lj_forces", "fene_forces", "kinetic_energy", "temperature"]


def lj_forces(pos: np.ndarray, nlist: NeighborList, box: float,
              rc: float = 2.5, shift: bool = True
              ) -> tuple[np.ndarray, float]:
    """12-6 Lennard-Jones with cutoff *rc*; returns (forces, potential).

    ``shift`` subtracts the cutoff energy so the potential is continuous
    (LAMMPS ``pair_modify shift yes``), which tightens energy conservation.
    """
    n = len(pos)
    f = np.zeros_like(pos)
    i, j, d = nlist.filter_within(pos, box, rc)
    if len(i) == 0:
        return f, 0.0
    r2 = np.sum(d * d, axis=1)
    inv_r2 = 1.0 / r2
    inv_r6 = inv_r2**3
    # F = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 * dr
    fmag = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0)
    fv = fmag[:, None] * d
    np.add.at(f, i, fv)
    np.add.at(f, j, -fv)
    pe = float(np.sum(4.0 * inv_r6 * (inv_r6 - 1.0)))
    if shift:
        rc6 = rc**-6
        pe -= len(i) * 4.0 * rc6 * (rc6 - 1.0)
    return f, pe


def fene_forces(pos: np.ndarray, bonds: np.ndarray, box: float,
                k: float = 30.0, r0: float = 1.5) -> tuple[np.ndarray, float]:
    """FENE bond forces: U = -0.5 k r0^2 ln(1 - (r/r0)^2).

    ``bonds`` is an (nbonds, 2) array of atom indices.  Raises if any bond
    stretches beyond r0 (the same condition LAMMPS aborts on).
    """
    f = np.zeros_like(pos)
    if len(bonds) == 0:
        return f, 0.0
    d = pos[bonds[:, 0]] - pos[bonds[:, 1]]
    d -= box * np.round(d / box)
    r2 = np.sum(d * d, axis=1)
    ratio = r2 / (r0 * r0)
    if np.any(ratio >= 1.0):
        raise FloatingPointError("FENE bond stretched beyond r0 (bad dynamics)")
    fmag = -k / (1.0 - ratio)
    fv = fmag[:, None] * d
    np.add.at(f, bonds[:, 0], fv)
    np.add.at(f, bonds[:, 1], -fv)
    pe = float(np.sum(-0.5 * k * r0 * r0 * np.log(1.0 - ratio)))
    return f, pe


def kinetic_energy(vel: np.ndarray) -> float:
    return float(0.5 * np.sum(vel * vel))


def temperature(vel: np.ndarray) -> float:
    n = len(vel)
    dof = max(1, 3 * n - 3)
    return 2.0 * kinetic_energy(vel) / dof
