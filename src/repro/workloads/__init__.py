"""Workloads: MicroBench suite, NPB, UME proxy app, LAMMPS-mini."""

from . import lammps, microbench, npb, ume
from .base import KernelSpec, LoopEmitter, MicroKernel, PhaseEmitter
from .compiler import GCC_9_4, GCC_13_2, GccModel, apply_compiler

__all__ = [
    "microbench",
    "npb",
    "ume",
    "lammps",
    "KernelSpec",
    "MicroKernel",
    "LoopEmitter",
    "PhaseEmitter",
    "GccModel",
    "GCC_9_4",
    "GCC_13_2",
    "apply_compiler",
]
