"""Compiler-version effects (paper Table 3).

The study could not hold the toolchain constant: FireSim's Ubuntu 20.04
images ship GCC 9.4.0 while both boards ran GCC 13.2 ("Upgrading GCC on
FireSim to version 13.2 requires building it from source code which is
time-consuming", §3.2.5).  Older GCC generates measurably less efficient
RISC-V code — weaker instruction scheduling, more redundant moves, more
register spills — so the simulated side carries a small extra dynamic
instruction count.

:class:`GccModel` makes that effect explicit and controllable: it rewrites
a micro-op trace, inserting redundant ALU ops and spill load/store pairs
at version-dependent rates.  The default experiments run *without* it (so
the architectural comparison stays clean); the ablation bench quantifies
how much of the paper's gap the toolchain mismatch alone explains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..isa.opcodes import OpClass
from ..isa.trace import Trace

__all__ = ["GccModel", "GCC_9_4", "GCC_13_2", "apply_compiler"]


@dataclass(frozen=True)
class GccModel:
    """Dynamic-instruction overhead of a compiler version, relative to the
    best toolchain in the study."""

    name: str
    #: redundant integer ops inserted per original op
    redundant_rate: float = 0.0
    #: spill (store+reload) pairs inserted per original op
    spill_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.redundant_rate < 1 or not 0 <= self.spill_rate < 1:
            raise ValueError("rates must be in [0, 1)")

    @property
    def overhead(self) -> float:
        """Expected dynamic-instruction inflation factor."""
        return 1.0 + self.redundant_rate + 2 * self.spill_rate

    def transform(self, trace: Trace, seed: int = 0,
                  stack_base: int = 0x7F00_0000) -> Trace:
        """Insert the version's overhead ops into *trace* (deterministic)."""
        if self.redundant_rate == 0 and self.spill_rate == 0:
            return trace
        rng = np.random.default_rng(seed + 0x9C)
        n = len(trace)
        extra_alu = rng.random(n) < self.redundant_rate
        extra_spill = rng.random(n) < self.spill_rate
        counts = 1 + extra_alu.astype(np.int64) + 2 * extra_spill.astype(np.int64)
        total = int(counts.sum())

        out_idx = np.repeat(np.arange(n), counts)
        op = trace.op[out_idx].copy()
        dst = trace.dst[out_idx].copy()
        src1 = trace.src1[out_idx].copy()
        src2 = trace.src2[out_idx].copy()
        addr = trace.addr[out_idx].copy()
        size = trace.size[out_idx].copy()
        taken = trace.taken[out_idx].copy()
        pc = trace.pc[out_idx].copy()
        target = trace.target[out_idx].copy()

        # positions of the inserted ops: every slot whose predecessor maps
        # to the same original op is an insertion
        ins_mask = np.zeros(total, dtype=bool)
        ins_mask[1:] = out_idx[1:] == out_idx[:-1]
        ins_pos = np.nonzero(ins_mask)[0]

        # alternate redundant moves and spill traffic deterministically
        slot = rng.integers(0, 64, size=len(ins_pos))
        for k, p in enumerate(ins_pos):
            if k % 3 == 0:
                op[p] = int(OpClass.INT_ALU)   # redundant move/addi
                dst[p] = 28
                src1[p] = 28
                src2[p] = -1
                addr[p] = 0
                taken[p] = False
            elif k % 3 == 1:
                op[p] = int(OpClass.STORE)     # spill
                dst[p] = -1
                src1[p] = 2
                src2[p] = 28
                addr[p] = stack_base + int(slot[k]) * 8
                size[p] = 8
                taken[p] = False
            else:
                op[p] = int(OpClass.LOAD)      # reload
                dst[p] = 28
                src1[p] = 2
                src2[p] = -1
                addr[p] = stack_base + int(slot[k]) * 8
                size[p] = 8
                taken[p] = False
        return Trace(op, dst, src1, src2, addr, size, taken, pc, target)


#: FireSim's toolchain (Ubuntu 20.04): modest codegen penalty vs GCC 13.
GCC_9_4 = GccModel(name="gcc-9.4.0", redundant_rate=0.04, spill_rate=0.01)

#: The boards' toolchain — the baseline.
GCC_13_2 = GccModel(name="gcc-13.2", redundant_rate=0.0, spill_rate=0.0)


def apply_compiler(trace: Trace, model: GccModel, seed: int = 0) -> Trace:
    """Convenience wrapper: ``model.transform(trace, seed)``."""
    return model.transform(trace, seed=seed)
