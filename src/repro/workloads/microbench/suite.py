"""MicroBench suite registry and runner.

40 kernels across 5 categories (paper Table 1).  ``CRm`` is registered but
marked broken — it segfaulted on every platform in the study — so
:func:`runnable_kernels` returns the 39 the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...accel import memo
from ...accel.fastpath import span_diagnostics
from ...core.base import CoreResult
from ...soc.config import SoCConfig
from ...soc.system import System
from ..base import MicroKernel
from . import cachebench, controlflow, dataparallel, execution

__all__ = [
    "KERNEL_CLASSES",
    "all_kernels",
    "runnable_kernels",
    "get_kernel",
    "categories",
    "KernelRun",
    "run_kernel",
    "run_suite",
]

KERNEL_CLASSES: list[type[MicroKernel]] = [
    # Control flow (12)
    controlflow.Cca, controlflow.Cce, controlflow.CCh, controlflow.CChSt,
    controlflow.CCl, controlflow.CCm, controlflow.CF1, controlflow.CRd,
    controlflow.CRf, controlflow.CRm, controlflow.CS1, controlflow.CS3,
    # Data parallel (5)
    dataparallel.DP1d, dataparallel.DP1f, dataparallel.DPT,
    dataparallel.DPTd, dataparallel.DPcvt,
    # Execution (5)
    execution.ED1, execution.EF, execution.EI, execution.EM1, execution.EM5,
    # Cache (16)
    cachebench.MC, cachebench.MCS, cachebench.MD, cachebench.MI,
    cachebench.MIM, cachebench.MIM2, cachebench.MIP, cachebench.ML2,
    cachebench.ML2_BW_ld, cachebench.ML2_BW_ldst, cachebench.ML2_BW_st,
    cachebench.ML2_st, cachebench.STL2, cachebench.STL2b, cachebench.STc,
    cachebench.M_Dyn,
    # Memory (2)
    cachebench.MM, cachebench.MM_st,
]

_BY_NAME: dict[str, type[MicroKernel]] = {
    cls.spec.name: cls for cls in KERNEL_CLASSES
}


def all_kernels() -> list[MicroKernel]:
    """All 40 kernels, including the broken CRm."""
    return [cls() for cls in KERNEL_CLASSES]


def runnable_kernels() -> list[MicroKernel]:
    """The 39 kernels the paper evaluates (CRm excluded)."""
    return [cls() for cls in KERNEL_CLASSES if not cls.spec.broken]


def get_kernel(name: str) -> MicroKernel:
    try:
        return _BY_NAME[name]()
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


def categories() -> dict[str, list[str]]:
    """Kernel names grouped by Table 1 category."""
    out: dict[str, list[str]] = {}
    for cls in KERNEL_CLASSES:
        out.setdefault(cls.spec.category, []).append(cls.spec.name)
    return out


@dataclass
class KernelRun:
    """Measured execution of one kernel on one configuration."""

    kernel: str
    config: str
    result: CoreResult
    core_ghz: float
    #: span-solver engagement for the measured pass, or None when the
    #: run came from the memo (no engine ran) or accel was off:
    #: ``{"engine": per-core counter deltas, "static": span_diagnostics}``
    accel: dict | None = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def seconds(self) -> float:
        return self.result.cycles / (self.core_ghz * 1e9)

    @property
    def ops_per_second(self) -> float:
        return self.result.instructions / self.seconds if self.seconds else 0.0


def run_kernel(config: SoCConfig, kernel: MicroKernel | str,
               scale: float = 1.0, seed: int = 0,
               warmup: bool = True) -> KernelRun:
    """Run one kernel on a fresh system built from *config*.

    A warmup pass trains caches and predictors (microbenchmark harnesses
    time the steady state); the second pass is measured.

    With ``config.accel == "on"`` the decoded trace is shared process-wide
    (sweeps stop rebuilding it per configuration point) and the whole
    fresh-system run is memoized on ``(trace, config)`` content identity —
    a repeated point returns the identical :class:`~repro.core.base.CoreResult`
    without simulating.  Both caches are bypassed with ``accel="off"`` or
    ``REPRO_ACCEL_MEMO=0``.
    """
    if isinstance(kernel, str):
        kernel = get_kernel(kernel)
    if kernel.spec.broken:
        raise RuntimeError(f"kernel {kernel.spec.name} is marked broken")
    scale = max(scale, kernel.min_harness_scale)
    name = kernel.spec.name
    accel = getattr(config, "accel", "off") == "on"
    if accel:
        k = kernel
        trace = memo.shared_trace(
            name, scale, seed, lambda: k.build(scale=scale, seed=seed))
    else:
        trace = kernel.build(scale=scale, seed=seed)
    system = System(config)
    do_warmup = warmup and kernel.needs_warmup
    key = None
    if accel and memo.memo_enabled():
        key = memo.memo_key(trace, config, system.uncore,
                            extra=("run_kernel", do_warmup))
        hit = memo.memo_get(key)
        if hit is not None:
            return KernelRun(name, config.name, hit, config.core_ghz)
    if do_warmup:
        system.run(trace)
    before = _accel_engine_totals(system) if accel else None
    result = system.run(trace)
    if key is not None:
        memo.memo_put(key, result)
    accel_info = None
    if accel:
        after = _accel_engine_totals(system)
        accel_info = {
            "engine": {k: after[k] - before.get(k, 0) for k in after},
            "static": span_diagnostics(trace.op),
        }
    return KernelRun(name, config.name, result, config.core_ghz, accel_info)


def _accel_engine_totals(system: System) -> dict[str, int]:
    """Sum the integer AccelStats counters across a system's cores."""
    totals: dict[str, int] = {}
    for tile in system.tiles:
        astats = getattr(tile.core, "accel_stats", None)
        if astats is None or not getattr(tile.core, "_accel_on", False):
            continue
        for k, v in vars(astats).items():
            if isinstance(v, int):
                totals[k] = totals.get(k, 0) + v
    return totals


def run_suite(config: SoCConfig, scale: float = 1.0, seed: int = 0,
              kernels: list[str] | None = None,
              warmup: bool = True) -> dict[str, KernelRun]:
    """Run the (runnable) suite on one configuration."""
    todo = (
        [get_kernel(n) for n in kernels]
        if kernels is not None
        else runnable_kernels()
    )
    return {
        k.spec.name: run_kernel(config, k, scale=scale, seed=seed, warmup=warmup)
        for k in todo
    }
