"""RVV vector kernels (extension study, not part of Table 1).

The K1 implements 256-bit RVV 1.0 but the paper ran scalar code because
the FireSim targets have no vector unit (§3.1.2/§3.2).  These kernels are
the vectorised twins of the scalar data-parallel kernels, used by the RVV
ablation to quantify what disabling the vector unit cost the hardware.
"""

from __future__ import annotations

from ...isa.opcodes import OpClass
from ...isa.trace import Trace, TraceBuilder
from ..base import KernelSpec, LoopEmitter, MicroKernel
from .dataparallel import _A, _B, _C

__all__ = ["DP1dRVV", "DPcvtRVV", "vector_twin"]


class DP1dRVV(MicroKernel):
    """Vectorised DP1d: c[i] = fma(a[i], b[i]) with 256-bit vector ops."""

    spec = KernelSpec("DP1d_rvv", "Vector",
                      "Data parallel loop - Double arithmetic (RVV 256-bit)")
    default_ops = 32_000
    vl_bytes = 32          #: one 256-bit register of doubles
    array_elems = 16384    #: same footprint as scalar DP1d

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        elems_per_iter = self.vl_bytes // 8
        # cover the same element count as scalar DP1d at this scale
        scalar_iters = max(4, int(self.default_ops / 6 * scale))
        n = max(4, scalar_iters // elems_per_iter)
        wrap = self.array_elems // elems_per_iter
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            k = (i % wrap) * self.vl_bytes
            b.vload(40, _A + k, self.vl_bytes, base=10)
            b.vload(41, _B + k, self.vl_bytes, base=11)
            b.vfma(42, 40, 41, nbytes=self.vl_bytes)
            b.vstore(42, _C + k, self.vl_bytes, base=12)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


class DPcvtRVV(MicroKernel):
    """Vectorised DPcvt: widen a float stream to double, RVV style."""

    spec = KernelSpec("DPcvt_rvv", "Vector",
                      "Data parallel loop - Float to Double (RVV 256-bit)")
    default_ops = 32_000
    vl_bytes = 32

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        elems_per_iter = self.vl_bytes // 4  # 8 floats in, 8 doubles out
        scalar_iters = max(4, int(self.default_ops / 6 * scale))
        n = max(4, scalar_iters // elems_per_iter)
        wrap = 16384 // elems_per_iter
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            k = i % wrap
            b.vload(40, _A + k * self.vl_bytes, self.vl_bytes, base=10)
            b.valu(41, 40, nbytes=self.vl_bytes)  # widening convert, 2 regs out
            b.valu(42, 40, nbytes=self.vl_bytes)
            b.vstore(41, _C + k * 2 * self.vl_bytes, self.vl_bytes, base=12)
            b.vstore(42, _C + k * 2 * self.vl_bytes + self.vl_bytes,
                     self.vl_bytes, base=12)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


#: scalar kernel name -> its vector twin
VECTOR_TWINS = {"DP1d": DP1dRVV, "DPcvt": DPcvtRVV}


def vector_twin(scalar_name: str) -> MicroKernel:
    """The RVV twin of a scalar data-parallel kernel."""
    try:
        return VECTOR_TWINS[scalar_name]()
    except KeyError:
        raise KeyError(
            f"no vector twin for {scalar_name!r}; available: "
            f"{sorted(VECTOR_TWINS)}"
        ) from None
