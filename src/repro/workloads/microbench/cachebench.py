"""Cache and memory microbenchmarks (paper Table 1: 16 cache + 2 memory).

Footprints are chosen against the studied hierarchies (32-64 KiB L1,
512 KiB - 1 MiB L2, 0/64 MiB LLC):

* L1-resident kernels use <= 8 KiB,
* L2 kernels use 256 KiB (beyond any L1, inside every L2),
* the MM/MM_st linked lists walk a 128 MiB footprint — beyond even the
  MILK-V's 64 MiB LLC, so they always exercise DRAM.
"""

from __future__ import annotations

import numpy as np

from ...isa.trace import Trace, TraceBuilder
from ..base import CODE_BASE, DATA_BASE, KernelSpec, LoopEmitter, MicroKernel

__all__ = [
    "MC", "MCS", "MD", "MI", "MIM", "MIM2", "MIP",
    "ML2", "ML2_BW_ld", "ML2_BW_ldst", "ML2_BW_st", "ML2_st",
    "STL2", "STL2b", "STc", "M_Dyn", "MM", "MM_st",
]

_D = DATA_BASE + 0x400_0000
_LINE = 64


def _chase_addresses(footprint: int, count: int, seed: int,
                     base: int) -> np.ndarray:
    """Addresses of a pointer chase over *footprint* bytes.

    The visit order is a fixed random tour of the footprint's lines,
    wrapped modulo the line count: resident footprints are revisited in
    the same order every lap (steady-state cache hits), while footprints
    with more lines than *count* never repeat (every access is cold —
    the "non-cache-resident" regime of MM/MM_st).
    """
    nlines = max(2, footprint // _LINE)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(nlines)
    idx = perm[np.arange(count) % nlines]
    return (base + idx.astype(np.int64) * _LINE).astype(np.uint64)


class _ConflictKernel(MicroKernel):
    """Round-robin over lines that collide in a 64-set L1 (4 KiB stride)."""

    with_stores = False
    distinct = 12     #: lines in rotation: > 8 ways on a 64-set L1
    stride = 4096     #: one full 64-set x 64 B way
    default_ops = 30_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // (3 if self.with_stores else 2), scale)
        em = LoopEmitter()
        d = self.distinct

        def body(b: TraceBuilder, i: int) -> None:
            addr = _D + (i % d) * self.stride
            b.load(5 + i % 4, addr, base=10)
            if self.with_stores:
                b.store(5 + i % 4, addr + 8, base=10)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


class MC(_ConflictKernel):
    spec = KernelSpec("MC", "Cache", "Conflict misses")
    with_stores = False


class MCS(_ConflictKernel):
    spec = KernelSpec("MCS", "Cache", "Conflict misses with stores")
    with_stores = True


class _ChaseKernel(MicroKernel):
    """Dependent pointer chase(s) over a fixed footprint.

    ``streams`` > 1 interleaves that many *independent* chases (each a
    serial dependency chain through its own pointer register).  The
    MM/MM_st kernels use several streams — the paper describes them as
    stressing DRAM *bandwidth* — which makes L1 MSHR counts and DRAM
    channel/bank parallelism visible, exactly the "unknown memory
    subsystem parameters" axis the study probes.
    """

    footprint = 8 << 10
    with_stores = False
    default_ops = 24_000
    extra_alu = 2
    streams = 1

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        per = (1 + (1 if self.with_stores else 0)) * self.streams + self.extra_alu
        n = self.iters(self.default_ops // per, scale)
        stream_addrs = [
            _chase_addresses(self.footprint // self.streams, n, seed + 17 * k,
                             _D + 0x800_0000 + k * (self.footprint // self.streams))
            for k in range(self.streams)
        ]
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            for k in range(self.streams):
                reg = 5 + k
                b.load(reg, int(stream_addrs[k][i]), base=reg)
                if self.with_stores:
                    b.store(14, int(stream_addrs[k][i]) + 8, base=reg)
            for _ in range(self.extra_alu):
                b.alu(13, 13, 11)

        em.loop(n, body)
        return em.build()


class MD(_ChaseKernel):
    spec = KernelSpec("MD", "Cache", "Cache resident linked list traversal")
    footprint = 8 << 10


class ML2(_ChaseKernel):
    spec = KernelSpec("ML2", "Cache", "L2 linked-list")
    footprint = 256 << 10


class ML2_st(_ChaseKernel):
    spec = KernelSpec("ML2_st", "Cache", "L2 linked-list (sts)")
    footprint = 256 << 10
    with_stores = True


class MM(_ChaseKernel):
    spec = KernelSpec("MM", "Memory", "Non-cache resident linked-list")
    footprint = 128 << 20
    default_ops = 20_000
    extra_alu = 2
    streams = 4
    needs_warmup = False  # every line is visited once: always cold


class MM_st(_ChaseKernel):
    spec = KernelSpec("MM_st", "Memory", "Non-cache resident linked-list (sts)")
    footprint = 128 << 20
    default_ops = 20_000
    with_stores = True
    streams = 4
    needs_warmup = False


class MI(MicroKernel):
    spec = KernelSpec("MI", "Cache", "Independent access, cache resident")
    default_ops = 30_000
    footprint = 8 << 10

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 3, scale)
        rng = np.random.default_rng(seed)
        lines = self.footprint // _LINE
        offs = rng.integers(0, lines, size=n)
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            b.load(5 + i % 8, _D + 0xC00_0000 + int(offs[i]) * _LINE, base=10)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


class MIM(MicroKernel):
    spec = KernelSpec("MIM", "Cache", "Independent access, no conflicts")
    default_ops = 30_000
    footprint = 16 << 10

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 3, scale)
        lines = self.footprint // _LINE
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            b.load(5 + i % 8, _D + 0xD00_0000 + (i % lines) * _LINE, base=10)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


class MIM2(MicroKernel):
    spec = KernelSpec("MIM2", "Cache", "Independent access - 2 coalescing ops")
    default_ops = 30_000
    footprint = 16 << 10

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 4, scale)
        lines = self.footprint // _LINE
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            addr = _D + 0xE00_0000 + (i % lines) * _LINE
            b.load(5, addr, base=10)
            b.load(6, addr + 8, base=10)  # same line: coalesces in the MSHR
            b.alu(9, 5, 6)

        em.loop(n, body)
        return em.build()


class MIP(MicroKernel):
    spec = KernelSpec("MIP", "Cache", "Instruction cache misses")
    default_ops = 24_000
    #: beyond every L1I *and* L2, inside the MILK-V LLC: this is the
    #: footprint where FireSim's idealised SRAM-like LLC makes the MIP
    #: kernel "substantially outperform the hardware" (paper Fig 2)
    code_bytes = 2 << 20
    #: the footprint must stay beyond the 1 MiB L2 for the LLC regime
    min_harness_scale = 0.7

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        # scale shrinks the *code footprint*, keeping exactly one full lap
        # per pass: the warmup lap installs the tour below L2, and the
        # measured lap (cyclic access thrashes an LRU L2 completely)
        # streams from whatever sits underneath — FireSim's idealised LLC
        # or the hardware's realistic-latency one
        nlines = max(256, int(self.code_bytes * min(1.0, scale)) // _LINE)
        rng = np.random.default_rng(seed)
        tour = rng.permutation(nlines)
        b = TraceBuilder(pc0=CODE_BASE)
        code0 = CODE_BASE + 0x10_0000
        for i in range(nlines):
            pc = code0 + int(tour[i]) * _LINE
            b.pc = pc
            b.alu(5, 5, 11)
            b.alu(6, 5, 12)
            b.jump(code0 + int(tour[(i + 1) % nlines]) * _LINE)
        return b.build()


class _StreamL2(MicroKernel):
    """Streaming over a 256 KiB buffer: loads, stores, or both."""

    do_load = True
    do_store = False
    default_ops = 30_000
    footprint = 256 << 10

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        per = 1 + int(self.do_load) + int(self.do_store)
        n = self.iters(self.default_ops // per, scale)
        lines = self.footprint // _LINE
        em = LoopEmitter()
        base = _D + 0xF00_0000

        def body(b: TraceBuilder, i: int) -> None:
            addr = base + (i % lines) * _LINE
            if self.do_load:
                b.load(5 + i % 4, addr, base=10)
            if self.do_store:
                b.store(5 + i % 4, addr + 8, base=10)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


class ML2_BW_ld(_StreamL2):
    spec = KernelSpec("ML2_BW_ld", "Cache", "L2 linked-list - B/W limited (lds)")
    do_load, do_store = True, False


class ML2_BW_ldst(_StreamL2):
    spec = KernelSpec("ML2_BW_ldst", "Cache",
                      "L2 linked-list - B/W limited (ld/sts)")
    do_load, do_store = True, True


class ML2_BW_st(_StreamL2):
    spec = KernelSpec("ML2_BW_st", "Cache", "L2 linked-list - B/W limited (sts)")
    do_load, do_store = False, True


class STL2(MicroKernel):
    spec = KernelSpec("STL2", "Cache", "Repeatedly store, L2 resident")
    default_ops = 30_000
    footprint = 256 << 10

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 2, scale)
        lines = self.footprint // _LINE
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            b.store(5, _D + 0x1100_0000 + (i % lines) * _LINE, base=10)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


class STL2b(MicroKernel):
    spec = KernelSpec("STL2b", "Cache", "Occasional stores, L2 resident")
    default_ops = 30_000
    footprint = 256 << 10

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 9, scale)
        lines = self.footprint // _LINE
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            for k in range(7):
                b.alu(5 + k % 4, 10, 11)
            b.store(5, _D + 0x1200_0000 + (i % lines) * _LINE, base=10)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


class STc(MicroKernel):
    spec = KernelSpec("STc", "Cache", "Repeated consecutive L1 store")
    default_ops = 30_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 3, scale)
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            b.store(5, _D + 0x1300_0000 + (i % 8) * 8, base=10)
            b.store(6, _D + 0x1300_0000 + (i % 8) * 8 + 8, base=10)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()


class M_Dyn(MicroKernel):
    spec = KernelSpec("M_Dyn", "Cache", "Load store w/ dynamic dependencies")
    default_ops = 30_000
    footprint = 4 << 10

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 4, scale)
        rng = np.random.default_rng(seed)
        slots = self.footprint // 8
        offs = rng.integers(0, slots, size=n)
        em = LoopEmitter()
        base = _D + 0x1400_0000

        def body(b: TraceBuilder, i: int) -> None:
            addr = base + int(offs[i]) * 8
            b.store(5, addr, base=10)
            b.load(6, addr, base=10)   # store-to-load through memory
            b.alu(5, 6, 11)            # next store value depends on the load
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()
