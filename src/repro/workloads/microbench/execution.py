"""Execution-unit microbenchmarks (paper Table 1, 5 kernels).

These separate dependency-chain latency (ED1, EM1, EM5) from raw issue
bandwidth (EF, EI): the chains expose result-forwarding latency, the
independent streams expose decode/issue width and FU port counts.
"""

from __future__ import annotations

from ...isa.opcodes import OpClass
from ...isa.trace import Trace, TraceBuilder
from ..base import KernelSpec, LoopEmitter, MicroKernel

__all__ = ["ED1", "EM1", "EM5", "EF", "EI"]


class ED1(MicroKernel):
    spec = KernelSpec("ED1", "Execution", "Int - Length 1 dependency chain")
    default_ops = 30_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 10, scale)
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            for _ in range(8):
                b.alu(5, 5, 11)  # serial chain through r5

        em.loop(n, body)
        return em.build()


class EM1(MicroKernel):
    spec = KernelSpec("EM1", "Execution", "Int - Length 1 dependency chain")
    default_ops = 24_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 10, scale)
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            for _ in range(8):
                b.mul(5, 5, 11)  # serial multiply chain

        em.loop(n, body)
        return em.build()


class EM5(MicroKernel):
    spec = KernelSpec("EM5", "Execution", "Int - Length 5 dependency chain")
    default_ops = 24_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 12, scale)
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            # 5 chains of multiplies advanced round-robin: enough ILP to
            # cover a pipelined multiplier, still latency-bound if not
            for k in range(10):
                reg = 5 + k % 5
                b.mul(reg, reg, 11)

        em.loop(n, body)
        return em.build()


class EF(MicroKernel):
    spec = KernelSpec("EF", "Execution", "FP - 8 Independent instructions")
    default_ops = 30_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 10, scale)
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            for k in range(8):
                b.fp(OpClass.FP_FMA, 40 + k, 50, 51)  # 8 independent FMAs

        em.loop(n, body)
        return em.build()


class EI(MicroKernel):
    spec = KernelSpec("EI", "Execution", "Int - 8 Independent computations")
    default_ops = 30_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 10, scale)
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            for k in range(8):
                b.alu(5 + k, 20, 21)  # 8 independent ALU ops

        em.loop(n, body)
        return em.build()
