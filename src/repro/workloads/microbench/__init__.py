"""MicroBench: the 40-kernel microarchitecture benchmark suite (Table 1)."""

from .suite import (
    KERNEL_CLASSES,
    KernelRun,
    all_kernels,
    categories,
    get_kernel,
    run_kernel,
    run_suite,
    runnable_kernels,
)

__all__ = [
    "KERNEL_CLASSES",
    "KernelRun",
    "all_kernels",
    "categories",
    "get_kernel",
    "run_kernel",
    "run_suite",
    "runnable_kernels",
]
