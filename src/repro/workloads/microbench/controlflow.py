"""Control-flow microbenchmarks (paper Table 1, 12 kernels).

Each kernel isolates one front-end behaviour: branch bias, alternation,
unpredictability, basic-block amortisation, call/return stacks, deep and
tree-shaped recursion, and indirect-jump (switch) target locality.
"""

from __future__ import annotations

import numpy as np

from ...isa.trace import Trace, TraceBuilder
from ..base import CODE_BASE, DATA_BASE, KernelSpec, LoopEmitter, MicroKernel

__all__ = [
    "Cca", "Cce", "CCh", "CChSt", "CCl", "CCm",
    "CF1", "CRd", "CRf", "CRm", "CS1", "CS3",
]


class _BranchPattern(MicroKernel):
    """Shared machinery: a loop whose inner branch follows a pattern."""

    default_ops = 30_000
    body_alu = 3

    def taken(self, i: int, rng: np.random.Generator) -> bool:
        raise NotImplementedError

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        rng = np.random.default_rng(seed)
        n = self.iters(self.default_ops // (self.body_alu + 3), scale)
        outcomes = [self.taken(i, rng) for i in range(n)]
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            for k in range(self.body_alu):
                b.alu(5 + k % 4, 10, 11)
            # the studied branch: skips one ALU op when taken
            b.branch(outcomes[i], src1=5, target=b.pc + 8)
            b.alu(9, 9, 10)

        em.loop(n, body)
        return em.build()


class Cca(_BranchPattern):
    spec = KernelSpec("Cca", "Control Flow", "Completely biased branch")

    def taken(self, i, rng):
        return True


class Cce(_BranchPattern):
    spec = KernelSpec("Cce", "Control Flow", "Alternating branches")

    def taken(self, i, rng):
        return bool(i % 2)


class CCh(_BranchPattern):
    spec = KernelSpec("CCh", "Control Flow", "Random control flow")

    def taken(self, i, rng):
        return bool(rng.integers(0, 2))


class CCm(_BranchPattern):
    spec = KernelSpec("CCm", "Control Flow", "Heavily biased branches")

    def taken(self, i, rng):
        return bool(rng.random() < 0.95)


class CChSt(MicroKernel):
    spec = KernelSpec("CCh_st", "Control Flow",
                      "Impossible to predict control + stores")
    default_ops = 30_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        rng = np.random.default_rng(seed)
        n = self.iters(self.default_ops // 7, scale)
        outcomes = rng.integers(0, 2, size=n).astype(bool)
        base = DATA_BASE
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            b.alu(5, 10, 11)
            b.alu(6, 5, 11)
            # unpredictable branch selecting one of two store targets
            b.branch(bool(outcomes[i]), src1=5, target=b.pc + 12)
            b.store(6, base + (i % 64) * 8)
            b.jump(b.pc + 8)
            b.store(6, base + 4096 + (i % 64) * 8)

        em.loop(n, body)
        return em.build()


class CCl(MicroKernel):
    spec = KernelSpec("CCl", "Control Flow",
                      "Impossible control w/ large Basic Blocks")
    default_ops = 36_000
    block = 24  #: ALU ops per basic block — amortises each mispredict

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        rng = np.random.default_rng(seed)
        n = self.iters(self.default_ops // (self.block + 2), scale)
        outcomes = rng.integers(0, 2, size=n).astype(bool)
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            for k in range(self.block):
                b.alu(5 + k % 8, 14, 15)
            b.branch(bool(outcomes[i]), src1=5, target=b.pc + 8)
            b.alu(9, 9, 10)

        em.loop(n, body)
        return em.build()


class CF1(MicroKernel):
    spec = KernelSpec("CF1", "Control Flow",
                      "Inlining test for functions w/ loops")
    default_ops = 30_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 24, scale)
        b = TraceBuilder(pc0=CODE_BASE)
        func = CODE_BASE + 0x400
        loop_top = CODE_BASE
        for i in range(n):
            b.pc = loop_top
            b.alu(5, 10, 11)
            call_pc = b.pc
            b.call(func)
            # inside the function: a 4-iteration counted inner loop
            inner_top = b.pc
            for j in range(4):
                b.pc = inner_top
                b.alu(6, 6, 11)
                b.alu(7, 6, 12)
                b.branch(j != 3, src1=6, target=inner_top)
            b.ret(call_pc + 4)
            b.alu(8, 8, 10)
            b.branch(i != n - 1, src1=30, target=loop_top)
        return b.build()


class CRd(MicroKernel):
    spec = KernelSpec("CRd", "Control Flow",
                      "Recursive control flow - 1000 Deep")
    default_ops = 30_000
    depth = 1000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        depth = max(8, int(self.depth * min(1.0, scale)))
        rounds = max(1, int(self.default_ops * scale) // (depth * 10))
        b = TraceBuilder(pc0=CODE_BASE)
        func = CODE_BASE + 0x1000
        sp_base = DATA_BASE + 0x10_0000
        for _ in range(rounds):
            # descend: call, push ra, decrement, test
            for d in range(depth):
                call_pc = CODE_BASE + 0x100 if d == 0 else func + 24
                b.pc = call_pc
                b.call(func)
                b.store(1, sp_base - d * 16, base=2)  # push ra
                b.alu(10, 10, 11)                      # depth counter
                b.branch(d == depth - 1, src1=10, target=func + 40)
            # unwind: pop ra, return
            for d in reversed(range(depth)):
                b.pc = func + 40
                b.load(1, sp_base - d * 16, base=2)
                ret_to = (CODE_BASE + 0x100 if d == 0 else func + 24) + 4
                b.ret(ret_to)
        return b.build()


class CRf(MicroKernel):
    spec = KernelSpec("CRf", "Control Flow",
                      "Recursive control flow - Fibonacci")
    default_ops = 30_000
    fib_n = 14

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        # emit the actual fib(n) call tree; shrink n with scale
        fib_n = self.fib_n
        if scale < 1.0:
            fib_n = max(4, int(self.fib_n + np.log2(max(scale, 1e-3))))
        b = TraceBuilder(pc0=CODE_BASE)
        func = CODE_BASE + 0x200
        sp = [DATA_BASE + 0x20_0000]

        def fib(n: int, call_site: int) -> None:
            b.pc = call_site
            b.call(func)
            b.store(1, sp[0], base=2)   # push ra
            sp[0] -= 16
            b.alu(10, 10, 11)           # n compare
            if n < 2:
                b.branch(True, src1=10, target=func + 64)  # base case
                b.pc = func + 64
                b.alu(10, 0, 0)         # result = n
            else:
                b.branch(False, src1=10, target=func + 64)
                fib(n - 1, func + 24)
                b.alu(12, 10, 0)        # save result
                fib(n - 2, func + 36)
                b.alu(10, 10, 12)       # add results
            sp[0] += 16
            b.load(1, sp[0], base=2)    # pop ra
            b.ret(call_site + 4)

        fib(fib_n, CODE_BASE + 0x40)
        return b.build()


class CRm(MicroKernel):
    """Merge sort — segfaulted on every platform in the paper, so the suite
    registers it as broken and all harnesses exclude it (39 of 40 run)."""

    spec = KernelSpec("CRm", "Control Flow", "Merge sort", broken=True)

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        raise RuntimeError(
            "CRm is marked broken: it segfaulted on all simulated and real "
            "hardware in the study (paper §3.2.1)"
        )


class _Switch(MicroKernel):
    """Indirect-jump (switch) kernels: jump through a table of 16 cases."""

    cases = 16
    period = 1  #: target changes every `period` iterations

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        rng = np.random.default_rng(seed)
        n = self.iters(self.default_ops // 10, scale)
        em = LoopEmitter()
        case_base = CODE_BASE + 0x800
        # pre-draw the case sequence
        raw = rng.integers(0, self.cases, size=(n + self.period - 1) // self.period)
        seq = np.repeat(raw, self.period)[:n]

        def body(b: TraceBuilder, i: int) -> None:
            b.alu(5, 10, 11)
            b.load(6, DATA_BASE + int(seq[i]) * 8)   # table load
            b.jump(case_base + int(seq[i]) * 64)     # indirect jump
            # case body (same static pc for modelling simplicity)
            b.alu(7, 6, 11)
            b.alu(8, 7, 12)
            b.jump(b.pc + 8)                         # jump back to loop

        em.loop(n, body)
        return em.build()


class CS1(_Switch):
    spec = KernelSpec("CS1", "Control Flow", "Switch - Different each time")
    period = 1


class CS3(_Switch):
    spec = KernelSpec("CS3", "Control Flow",
                      "Switch - Different every third time")
    period = 3
