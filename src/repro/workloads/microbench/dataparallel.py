"""Data-parallel microbenchmarks (paper Table 1, 5 kernels).

Streaming array loops: load operands, do FP work, store results.  DPT/DPTd
model `sin()` as the libm call it compiles to — a call, a polynomial-kernel
dependency chain of FP ops, and a return — so they are FP-latency-bound
rather than bandwidth-bound.
"""

from __future__ import annotations

from ...isa.opcodes import OpClass
from ...isa.trace import Trace, TraceBuilder
from ..base import CODE_BASE, DATA_BASE, KernelSpec, LoopEmitter, MicroKernel

__all__ = ["DP1d", "DP1f", "DPT", "DPTd", "DPcvt"]

_A = DATA_BASE + 0x100_0000
_B = DATA_BASE + 0x140_0000
_C = DATA_BASE + 0x180_0000


class _StreamLoop(MicroKernel):
    """c[i] = f(a[i], b[i]) over arrays sized to stream through the caches."""

    elem_bytes = 8
    fp_ops = 1
    fp_kind = OpClass.FP_FMA
    default_ops = 32_000
    array_elems = 16384  #: 128 KiB double arrays: beyond L1, inside L2

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        per_iter = 4 + self.fp_ops
        n = self.iters(self.default_ops // per_iter, scale)
        eb = self.elem_bytes
        wrap = self.array_elems
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            k = i % wrap
            b.load(40, _A + k * eb, base=10, size=eb)
            b.load(41, _B + k * eb, base=11, size=eb)
            prev = 42 + (i % 4)
            b.fp(self.fp_kind, prev, 40, 41)
            for extra in range(self.fp_ops - 1):
                b.fp(self.fp_kind, prev, prev, 41)
            b.store(prev, _C + k * eb, base=12, size=eb)
            b.alu(9, 9, 13)  # index arithmetic

        em.loop(n, body)
        return em.build()


class DP1d(_StreamLoop):
    spec = KernelSpec("DP1d", "Data", "Data parallel loop - Double arithmetic")
    elem_bytes = 8


class DP1f(_StreamLoop):
    spec = KernelSpec("DP1f", "Data", "Data parallel loop - Float arithmetic")
    elem_bytes = 4
    array_elems = 32768  #: same byte footprint as DP1d


class _SinLoop(MicroKernel):
    """Data-parallel sin(): per element, a libm call whose body is a
    dependent polynomial evaluation (Horner chain of FMAs)."""

    chain = 12
    elem_bytes = 4
    default_ops = 32_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        per_iter = self.chain + 8
        n = self.iters(self.default_ops // per_iter, scale)
        eb = self.elem_bytes
        wrap = 8192
        func = CODE_BASE + 0x2000
        b = TraceBuilder(pc0=CODE_BASE)
        top = b.pc
        for i in range(n):
            b.pc = top
            k = i % wrap
            b.load(40, _A + k * eb, base=10, size=eb)
            call_pc = b.pc
            b.call(func)
            # range reduction (int + fp) then Horner chain
            b.alu(5, 5, 11)
            b.fp(OpClass.FP_MUL, 41, 40, 50)
            for _ in range(self.chain):
                b.fp(OpClass.FP_FMA, 41, 41, 51)
            b.ret(call_pc + 4)
            b.store(41, _C + k * eb, base=12, size=eb)
            b.alu(9, 9, 13)
            b.branch(i != n - 1, src1=30, target=top)
        return b.build()


class DPT(_SinLoop):
    spec = KernelSpec("DPT", "Data", "Data parallel loop - Sin()")
    chain = 12
    elem_bytes = 4


class DPTd(_SinLoop):
    spec = KernelSpec("DPTd", "Data", "Data parallel loop - Double sin()")
    chain = 18
    elem_bytes = 8


class DPcvt(MicroKernel):
    spec = KernelSpec("DPcvt", "Data", "Data parallel loop - Float to Double")
    default_ops = 32_000

    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        n = self.iters(self.default_ops // 6, scale)
        wrap = 16384
        em = LoopEmitter()

        def body(b: TraceBuilder, i: int) -> None:
            k = i % wrap
            b.load(40, _A + k * 4, base=10, size=4)
            b.fp(OpClass.FP_CVT, 41, 40)
            b.fp(OpClass.FP_CVT, 42, 41)  # widen then renormalise
            b.store(42, _C + k * 8, base=12, size=8)
            b.alu(9, 9, 13)

        em.loop(n, body)
        return em.build()
