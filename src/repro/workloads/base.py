"""Workload abstractions shared by MicroBench, NPB, UME, and LAMMPS.

Two workload shapes exist:

* :class:`MicroKernel` — a single-core kernel that *builds an instruction
  trace* (the cycle-level drive mode).  The harness runs the trace once to
  warm caches/predictors and once for measurement, the way microbenchmark
  harnesses run a warmup pass before timing.
* MPI applications (NPB/UME/LAMMPS) are generator programs for
  :mod:`repro.smpi`; they use :class:`PhaseEmitter` to lower their NumPy
  compute phases into representative traces.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..isa.opcodes import OpClass
from ..isa.trace import Trace, TraceBuilder

__all__ = ["KernelSpec", "MicroKernel", "LoopEmitter", "PhaseEmitter", "CODE_BASE"]

#: Base address for synthetic kernel code.
CODE_BASE = 0x1_0000
#: Base address for kernel data regions (kernels offset from here).
DATA_BASE = 0x1000_0000


@dataclass(frozen=True)
class KernelSpec:
    """Identity of one microbenchmark (paper Table 1 row)."""

    name: str
    category: str       #: "Control Flow" | "Data" | "Execution" | "Cache" | "Memory"
    description: str
    broken: bool = False  #: CRm segfaults on all platforms (paper §3.2.1)


class MicroKernel(abc.ABC):
    """A trace-building microbenchmark kernel."""

    spec: KernelSpec

    #: measured dynamic ops at scale=1 (approximate)
    default_ops: int = 30_000

    #: whether the harness should run an (identical) warmup pass first;
    #: kernels that must see cold lines every pass (MM, MM_st) disable it
    needs_warmup: bool = True

    #: harness scales below this are clamped: kernels whose behaviour
    #: depends on a footprint threshold (e.g. MIP's code size vs the L2
    #: capacity) declare the smallest scale that preserves the regime
    min_harness_scale: float = 0.0

    @abc.abstractmethod
    def build(self, scale: float = 1.0, seed: int = 0) -> Trace:
        """Build the measured trace.  ``scale`` shrinks/grows iteration
        counts (tests use small scales); the *footprints* stay fixed so the
        kernel keeps stressing the same level of the hierarchy."""

    def iters(self, base: int, scale: float) -> int:
        """Scaled iteration count, at least 4."""
        return max(4, int(base * scale))

    def __repr__(self) -> str:
        return f"<MicroKernel {self.spec.name} ({self.spec.category})>"


class LoopEmitter:
    """Emit a loop body repeatedly at stable static PCs.

    Re-running a body with the same code addresses is what lets branch
    predictors and the I-cache behave as they would on a real loop; the
    builder's PC is rewound to the loop head each iteration, and a backedge
    branch is emitted automatically.
    """

    def __init__(self, builder: TraceBuilder | None = None,
                 pc0: int = CODE_BASE) -> None:
        self.b = builder or TraceBuilder(pc0=pc0)
        self._top = self.b.pc

    def loop(self, n: int, body, counter_reg: int = 30) -> TraceBuilder:
        """Run ``body(b, i)`` *n* times with a backedge branch after each.

        The backedge is taken for every iteration but the last — the
        completely-biased pattern real counted loops produce.
        """
        b = self.b
        for i in range(n):
            b.pc = self._top
            body(b, i)
            b.alu(counter_reg, counter_reg)          # decrement counter
            b.branch(i != n - 1, src1=counter_reg, target=self._top)
        return b

    def build(self) -> Trace:
        return self.b.build()


class PhaseEmitter:
    """Lower an application compute phase into a representative trace.

    Applications know their op mix (loads/stores/flops/int ops per element)
    and their memory-access structure (streaming arrays, indexed gathers).
    ``emit`` produces a trace with that mix and *real* address streams, so
    the cache hierarchy sees the application's locality, while the loop
    body keeps stable PCs for the front end.
    """

    def __init__(self, pc0: int = CODE_BASE) -> None:
        self.pc0 = pc0

    def emit(
        self,
        loads: np.ndarray | None = None,
        stores: np.ndarray | None = None,
        fp_per_elem: float = 0.0,
        int_per_elem: float = 2.0,
        fp_op: OpClass = OpClass.FP_FMA,
        fp_chain: bool = False,
        elems: int | None = None,
    ) -> Trace:
        """Build a loop trace: per element, the given loads/stores plus the
        fp/int op mix.  ``loads``/``stores`` are address arrays consumed one
        per element (the longer one sets the element count unless ``elems``
        is given); ``fp_chain`` makes the FP ops a dependency chain
        (reductions) instead of independent (streaming)."""
        la = np.asarray(loads, dtype=np.uint64) if loads is not None else None
        sa = np.asarray(stores, dtype=np.uint64) if stores is not None else None
        n_l = len(la) if la is not None else 0
        n_s = len(sa) if sa is not None else 0
        n = elems if elems is not None else max(n_l, n_s, 1)
        lpe = n_l / n if n else 0
        spe = n_s / n if n else 0

        em = LoopEmitter(pc0=self.pc0)
        li = si = 0
        fp_acc = 0.0
        int_acc = 0.0
        l_acc = 0.0
        s_acc = 0.0

        def body(b: TraceBuilder, i: int) -> None:
            nonlocal li, si, fp_acc, int_acc, l_acc, s_acc
            l_acc += lpe
            while l_acc >= 1.0 and li < n_l:
                b.load(40 + (li % 4), int(la[li]), base=10)
                li += 1
                l_acc -= 1.0
            int_acc += int_per_elem
            while int_acc >= 1.0:
                b.alu(10 + (i % 4), 10 + (i % 4), 11)
                int_acc -= 1.0
            fp_acc += fp_per_elem
            while fp_acc >= 1.0:
                if fp_chain:
                    b.fp(fp_op, 44, 44, 40 + (i % 4))
                else:
                    b.fp(fp_op, 45 + (i % 8), 40 + (i % 4), 41)
                fp_acc -= 1.0
            s_acc += spe
            while s_acc >= 1.0 and si < n_s:
                b.store(45 + (i % 8), int(sa[si]), base=12)
                si += 1
                s_acc -= 1.0

        em.loop(n, body)
        return em.build()
