"""UME-style unstructured mesh with explicit connectivity hierarchy.

UME (Unstructured Mesh Explorations, LANL) studies the memory-access
patterns of multiphysics codes: even when the mesh is logically a box of
hexahedral zones, the *representation* stores every connectivity map
explicitly — zones->points, zones->faces, faces->points, corners
(zone x point incidences), edges — so every kernel walks multi-level
indirection with high integer-op counts and low FP intensity (paper §3.2.3:
~8 corners, ~12 edges, ~8 points, ~6 faces per zone).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UnstructuredMesh", "build_box_mesh"]


@dataclass
class UnstructuredMesh:
    """Explicit-connectivity hexahedral mesh.

    All maps are index arrays; ``corner_zone[c]`` / ``corner_point[c]``
    enumerate the zone x point incidence pairs (8 per zone), the unit of
    work for subzonal physics.
    """

    n: int                          #: zones per edge (n^3 zones)
    points: np.ndarray              #: (npoints, 3) coordinates
    zone_points: np.ndarray         #: (nzones, 8) -> point ids
    zone_faces: np.ndarray          #: (nzones, 6) -> face ids
    face_points: np.ndarray         #: (nfaces, 4) -> point ids
    edge_points: np.ndarray         #: (nedges, 2) -> point ids
    corner_zone: np.ndarray         #: (ncorners,) -> zone id
    corner_point: np.ndarray        #: (ncorners,) -> point id
    point_corner_start: np.ndarray  #: CSR offsets: point -> corners
    point_corner_list: np.ndarray   #: CSR data: corner ids sorted by point

    @property
    def nzones(self) -> int:
        return self.zone_points.shape[0]

    @property
    def npoints(self) -> int:
        return self.points.shape[0]

    @property
    def nfaces(self) -> int:
        return self.face_points.shape[0]

    @property
    def nedges(self) -> int:
        return self.edge_points.shape[0]

    @property
    def ncorners(self) -> int:
        return self.corner_zone.shape[0]

    def entity_counts(self) -> dict[str, int]:
        return {
            "zones": self.nzones,
            "points": self.npoints,
            "faces": self.nfaces,
            "edges": self.nedges,
            "corners": self.ncorners,
        }

    def zone_adjacency(self):
        """Zone-adjacency graph (zones connected through shared faces).

        Returned as a :mod:`networkx` graph: UME partitioning studies ask
        how decomposition cuts this graph, and
        :func:`partition_edge_cut` prices a given rank partition with it.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.nzones))
        # two zones sharing a face are adjacent
        face_owner: dict[int, int] = {}
        for z in range(self.nzones):
            for f in self.zone_faces[z]:
                other = face_owner.setdefault(int(f), z)
                if other != z:
                    g.add_edge(other, z)
        return g

    def partition_edge_cut(self, owner) -> int:
        """Number of adjacent zone pairs split across ranks by *owner*
        (an array mapping zone id -> rank) — the halo-traffic proxy."""
        g = self.zone_adjacency()
        return sum(1 for a, b in g.edges if owner[a] != owner[b])


def build_box_mesh(n: int, jitter: float = 0.0, seed: int = 0) -> UnstructuredMesh:
    """Build an n^3-zone hex box with fully explicit connectivity.

    ``jitter`` perturbs interior point coordinates (making face areas
    non-trivial while keeping connectivity intact), as UME's inputs do.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    np_1 = n + 1

    # points on the (n+1)^3 lattice
    ii, jj, kk = np.meshgrid(np.arange(np_1), np.arange(np_1),
                             np.arange(np_1), indexing="ij")
    pts = np.stack([ii.ravel(), jj.ravel(), kk.ravel()], axis=1).astype(float)
    if jitter > 0:
        rng = np.random.default_rng(seed)
        interior = np.all((pts > 0) & (pts < n), axis=1)
        pts[interior] += rng.uniform(-jitter, jitter, size=(int(interior.sum()), 3))

    def pid(i, j, k):
        return (i * np_1 + j) * np_1 + k

    zi, zj, zk = np.meshgrid(np.arange(n), np.arange(n), np.arange(n),
                             indexing="ij")
    zi, zj, zk = zi.ravel(), zj.ravel(), zk.ravel()
    zone_points = np.stack(
        [
            pid(zi, zj, zk), pid(zi + 1, zj, zk),
            pid(zi + 1, zj + 1, zk), pid(zi, zj + 1, zk),
            pid(zi, zj, zk + 1), pid(zi + 1, zj, zk + 1),
            pid(zi + 1, zj + 1, zk + 1), pid(zi, zj + 1, zk + 1),
        ],
        axis=1,
    ).astype(np.int64)

    # unique faces: x-faces, y-faces, z-faces on lattice planes
    def xface(i, j, k):  # face normal to x at plane i, cell (j, k)
        return np.stack([pid(i, j, k), pid(i, j + 1, k),
                         pid(i, j + 1, k + 1), pid(i, j, k + 1)], axis=-1)

    def yface(i, j, k):
        return np.stack([pid(i, j, k), pid(i + 1, j, k),
                         pid(i + 1, j, k + 1), pid(i, j, k + 1)], axis=-1)

    def zface(i, j, k):
        return np.stack([pid(i, j, k), pid(i + 1, j, k),
                         pid(i + 1, j + 1, k), pid(i, j + 1, k)], axis=-1)

    fx_i, fx_j, fx_k = np.meshgrid(np.arange(np_1), np.arange(n),
                                   np.arange(n), indexing="ij")
    fy_i, fy_j, fy_k = np.meshgrid(np.arange(n), np.arange(np_1),
                                   np.arange(n), indexing="ij")
    fz_i, fz_j, fz_k = np.meshgrid(np.arange(n), np.arange(n),
                                   np.arange(np_1), indexing="ij")
    face_points = np.concatenate([
        xface(fx_i.ravel(), fx_j.ravel(), fx_k.ravel()),
        yface(fy_i.ravel(), fy_j.ravel(), fy_k.ravel()),
        zface(fz_i.ravel(), fz_j.ravel(), fz_k.ravel()),
    ]).astype(np.int64)

    nfx = np_1 * n * n

    def xfid(i, j, k):
        return (i * n + j) * n + k

    def yfid(i, j, k):
        return nfx + (i * np_1 + j) * n + k

    def zfid(i, j, k):
        return 2 * nfx + (i * n + j) * np_1 + k

    zone_faces = np.stack(
        [
            xfid(zi, zj, zk), xfid(zi + 1, zj, zk),
            yfid(zi, zj, zk), yfid(zi, zj + 1, zk),
            zfid(zi, zj, zk), zfid(zi, zj, zk + 1),
        ],
        axis=1,
    ).astype(np.int64)

    # unique edges: along x, y, z
    ex_i, ex_j, ex_k = np.meshgrid(np.arange(n), np.arange(np_1),
                                   np.arange(np_1), indexing="ij")
    ey_i, ey_j, ey_k = np.meshgrid(np.arange(np_1), np.arange(n),
                                   np.arange(np_1), indexing="ij")
    ez_i, ez_j, ez_k = np.meshgrid(np.arange(np_1), np.arange(np_1),
                                   np.arange(n), indexing="ij")
    edge_points = np.concatenate([
        np.stack([pid(ex_i.ravel(), ex_j.ravel(), ex_k.ravel()),
                  pid(ex_i.ravel() + 1, ex_j.ravel(), ex_k.ravel())], axis=1),
        np.stack([pid(ey_i.ravel(), ey_j.ravel(), ey_k.ravel()),
                  pid(ey_i.ravel(), ey_j.ravel() + 1, ey_k.ravel())], axis=1),
        np.stack([pid(ez_i.ravel(), ez_j.ravel(), ez_k.ravel()),
                  pid(ez_i.ravel(), ez_j.ravel(), ez_k.ravel() + 1)], axis=1),
    ]).astype(np.int64)

    # corners: every (zone, point) incidence
    nz = zone_points.shape[0]
    corner_zone = np.repeat(np.arange(nz, dtype=np.int64), 8)
    corner_point = zone_points.ravel()

    # inverse map point -> corners as CSR
    order = np.argsort(corner_point, kind="stable")
    sorted_pts = corner_point[order]
    npoints = pts.shape[0]
    start = np.searchsorted(sorted_pts, np.arange(npoints + 1))
    return UnstructuredMesh(
        n=n,
        points=pts,
        zone_points=zone_points,
        zone_faces=zone_faces,
        face_points=face_points,
        edge_points=edge_points,
        corner_zone=corner_zone,
        corner_point=corner_point,
        point_corner_start=start.astype(np.int64),
        point_corner_list=order.astype(np.int64),
    )
