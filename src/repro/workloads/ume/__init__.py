"""UME: the LANL Unstructured Mesh Explorations proxy application."""

from .kernels import KERNEL_NAMES, face_areas, point_from_zone_gather, zone_to_point_scatter
from .mesh import UnstructuredMesh, build_box_mesh
from .workload import DEFAULT_MESH_N, UMEResult, run_ume, ume_program

__all__ = [
    "UnstructuredMesh",
    "build_box_mesh",
    "KERNEL_NAMES",
    "zone_to_point_scatter",
    "point_from_zone_gather",
    "face_areas",
    "UMEResult",
    "run_ume",
    "ume_program",
    "DEFAULT_MESH_N",
]
