"""UME as an MPI workload: three timed kernels over a partitioned mesh.

Mirrors the paper's §5.3 experiment: run the original (scatter), inverted
(gather), and face-area kernels on 1/2/4 MPI ranks, sum the three kernel
times, and compare platforms.  Entities are block-partitioned (zones for
the scatter, points for the gather, faces for the areas); partial point
accumulations combine with an allreduce, and the scatter-vs-gather
equality is the verification UME itself uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...isa.opcodes import OpClass
from ...smpi.comm import Comm
from ...smpi.runtime import RankResult, run_mpi
from ...soc.config import SoCConfig
from ...soc.system import System
from ..base import PhaseEmitter
from ..npb.common import AddressSpace
from .kernels import KERNEL_NAMES, face_areas, point_from_zone_gather, zone_to_point_scatter
from .mesh import UnstructuredMesh, build_box_mesh

__all__ = ["UMEResult", "ume_program", "run_ume", "DEFAULT_MESH_N"]

#: paper input is 32^3 zones; the default here keeps full-suite benches
#: tractable while preserving the >L1 footprints (override per run)
DEFAULT_MESH_N = 20


@dataclass
class UMEResult:
    """Outcome of a UME run: per-kernel and total target times."""

    config: str
    nranks: int
    mesh_n: int
    verified: bool
    kernel_cycles: dict[str, int]
    core_ghz: float
    ranks: list[RankResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(self.kernel_cycles.values())

    @property
    def seconds(self) -> float:
        """Total runtime: the sum of the three kernels (paper §5.3)."""
        return self.total_cycles / (self.core_ghz * 1e9)

    def kernel_seconds(self, name: str) -> float:
        return self.kernel_cycles[name] / (self.core_ghz * 1e9)


def _zone_field(mesh: UnstructuredMesh) -> np.ndarray:
    rng = np.random.default_rng(99)
    return rng.random(mesh.nzones)


def ume_program(comm: Comm, mesh: UnstructuredMesh):
    """Per-rank UME program; returns the combined kernel results."""
    p, r = comm.size, comm.rank
    zfield = _zone_field(mesh)
    asp = AddressSpace(r)
    em = PhaseEmitter()

    # synthetic bases for the mesh arrays this rank touches
    zp_base = asp.alloc(mesh.zone_points.nbytes)
    zf_base = asp.alloc(mesh.nzones * 8)
    pt_acc_base = asp.alloc(mesh.npoints * 8)
    clist_base = asp.alloc(mesh.point_corner_list.nbytes)
    cz_base = asp.alloc(mesh.corner_zone.nbytes)
    fp_base = asp.alloc(mesh.face_points.nbytes)
    coord_base = asp.alloc(mesh.points.nbytes)
    area_base = asp.alloc(mesh.nfaces * 8)

    # ---- kernel 1: original (zone loop, scatter to points) ----
    zlo, zhi = r * mesh.nzones // p, (r + 1) * mesh.nzones // p
    my_scatter = zone_to_point_scatter(mesh, zfield, zlo, zhi)
    corners = mesh.zone_points[zlo:zhi].ravel()
    idx_loads = asp.addrs(zp_base, np.arange(zlo * 8, zhi * 8))
    val_loads = asp.addrs(zf_base, np.repeat(np.arange(zlo, zhi), 8))
    pt_addrs = asp.addrs(pt_acc_base, corners)
    loads = np.empty(3 * len(corners), dtype=np.uint64)
    loads[0::3] = idx_loads
    loads[1::3] = val_loads
    loads[2::3] = pt_addrs          # read-modify-write of the accumulator
    # UME's signature is very high integer-op counts from the multi-level
    # connectivity indirection (paper §3.2.3): ~7 address/index ops per
    # corner around each accumulate
    t_original = em.emit(loads=loads, stores=pt_addrs,
                         fp_per_elem=1.0, int_per_elem=7.0,
                         fp_op=OpClass.FP_ADD, elems=len(corners))
    yield from comm.barrier(tag=8100)  # align kernel start
    yield from comm.compute(t_original)
    scatter_total = yield from comm.allreduce(my_scatter, tag=8200)

    # ---- kernel 2: inverted (point loop, gather from zones) ----
    plo, phi = r * mesh.npoints // p, (r + 1) * mesh.npoints // p
    my_gather = point_from_zone_gather(mesh, zfield, plo, phi)
    cs = mesh.point_corner_start
    ncorner_local = int(cs[phi] - cs[plo])
    cl_loads = asp.addrs(clist_base, np.arange(cs[plo], cs[phi]))
    corner_ids = mesh.point_corner_list[cs[plo]:cs[phi]]
    cz_loads = asp.addrs(cz_base, corner_ids)
    zv_loads = asp.addrs(zf_base, mesh.corner_zone[corner_ids])
    loads = np.empty(3 * ncorner_local, dtype=np.uint64)
    loads[0::3] = cl_loads
    loads[1::3] = cz_loads
    loads[2::3] = zv_loads
    t_inverted = em.emit(loads=loads,
                         stores=asp.addrs(pt_acc_base,
                                          np.repeat(np.arange(plo, phi),
                                                    np.diff(cs[plo:phi + 1]))[
                                              :ncorner_local]),
                         fp_per_elem=1.0, int_per_elem=7.0,
                         fp_op=OpClass.FP_ADD, fp_chain=True,
                         elems=ncorner_local)
    yield from comm.compute(t_inverted)
    gather_total = yield from comm.allreduce(my_gather, tag=8300)

    # ---- kernel 3: face areas ----
    flo, fhi = r * mesh.nfaces // p, (r + 1) * mesh.nfaces // p
    my_areas = face_areas(mesh, flo, fhi)
    nfl = fhi - flo
    fi_loads = asp.addrs(fp_base, np.arange(flo * 4, fhi * 4))
    coord_loads = asp.addrs(coord_base, mesh.face_points[flo:fhi].ravel(),
                            itemsize=24)
    loads = np.empty(2 * 4 * nfl, dtype=np.uint64)
    loads[0::2] = fi_loads
    loads[1::2] = coord_loads
    t_faces = em.emit(loads=loads,
                      stores=asp.addrs(area_base, np.arange(flo, fhi)),
                      fp_per_elem=3.0, int_per_elem=3.0,
                      fp_op=OpClass.FP_FMA, elems=4 * nfl)
    yield from comm.compute(t_faces)
    area_sum = yield from comm.allreduce(float(my_areas.sum()), tag=8400)

    return {
        "scatter": scatter_total,
        "gather": gather_total,
        "area_sum": area_sum,
    }


def run_ume(config: SoCConfig, nranks: int = 1,
            mesh_n: int = DEFAULT_MESH_N, warmup: bool = True) -> UMEResult:
    """Run the three UME kernels and verify scatter == gather == analytic.

    A warmup iteration runs first (UME's reported timings are steady-state:
    the kernels execute repeatedly over resident mesh data); the measured
    pass starts from warm caches.
    """
    mesh = build_box_mesh(mesh_n, jitter=0.2, seed=1)
    system = System(config)

    zfield = _zone_field(mesh)
    ref_scatter = zone_to_point_scatter(mesh, zfield)
    ref_area = float(face_areas(mesh).sum())

    base = 0
    if warmup:
        run_mpi(system, nranks, lambda comm: ume_program(comm, mesh))
        base = max(t.core.local_time for t in system.tiles[:nranks])
    results = run_mpi(system, nranks, lambda comm: ume_program(comm, mesh))
    cycles_total = max(r.cycles for r in results) - base

    v0 = results[0].value
    ok = (
        np.allclose(v0["scatter"], ref_scatter)
        and np.allclose(v0["gather"], ref_scatter)
        and np.isclose(v0["area_sum"], ref_area, rtol=1e-9)
    )

    # per-kernel attribution: the three phases are serialised by their
    # closing allreduces, so total cycles split proportionally to each
    # kernel's instruction volume
    shares = _kernel_shares(mesh, nranks)
    kernel_cycles = {
        k: int(cycles_total * s) for k, s in zip(KERNEL_NAMES, shares)
    }
    return UMEResult(
        config=config.name,
        nranks=nranks,
        mesh_n=mesh_n,
        verified=bool(ok),
        kernel_cycles=kernel_cycles,
        core_ghz=config.core_ghz,
        ranks=results,
    )


def _kernel_shares(mesh: UnstructuredMesh, nranks: int) -> list[float]:
    w_original = mesh.ncorners * 12
    w_inverted = mesh.ncorners * 12
    w_faces = mesh.nfaces * 4 * 8
    total = w_original + w_inverted + w_faces
    return [w_original / total, w_inverted / total, w_faces / total]
