"""UME kernels: zone-at-point gather/scatter (original and inverted) and
face-area calculation.

The paper times three kernels and sums them (§5.3): the *original* kernel
(zone-centered loop scattering to points through corners), the *inverted*
kernel (point-centered loop gathering from zones through the inverse
corner map), and the face-area kernel (geometry through faces->points).
All three are multi-level indirection: index loads feeding value loads,
few flops — UME's signature.
"""

from __future__ import annotations

import numpy as np

from .mesh import UnstructuredMesh

__all__ = [
    "zone_to_point_scatter",
    "point_from_zone_gather",
    "face_areas",
    "KERNEL_NAMES",
]

KERNEL_NAMES = ("original", "inverted", "face_area")


def zone_to_point_scatter(mesh: UnstructuredMesh, zone_field: np.ndarray,
                          lo: int = 0, hi: int | None = None) -> np.ndarray:
    """Original kernel: loop over zones (rows [lo, hi)), scatter each zone's
    value into its 8 corner points.  Returns the point accumulation."""
    hi = mesh.nzones if hi is None else hi
    out = np.zeros(mesh.npoints)
    zp = mesh.zone_points[lo:hi]
    np.add.at(out, zp.ravel(), np.repeat(zone_field[lo:hi], 8))
    return out


def point_from_zone_gather(mesh: UnstructuredMesh, zone_field: np.ndarray,
                           plo: int = 0, phi: int | None = None) -> np.ndarray:
    """Inverted kernel: loop over points (ids [plo, phi)), gather from the
    incident zones via the inverse corner map.  Produces the same point
    sums as the scatter form — which is the cross-check UME exploits."""
    phi = mesh.npoints if phi is None else phi
    out = np.zeros(mesh.npoints)
    start = mesh.point_corner_start
    clist = mesh.point_corner_list
    for p in range(plo, phi):
        cs = clist[start[p]:start[p + 1]]
        out[p] = zone_field[mesh.corner_zone[cs]].sum()
    return out


def face_areas(mesh: UnstructuredMesh, flo: int = 0,
               fhi: int | None = None) -> np.ndarray:
    """Face-area kernel: quad area as half the cross product of diagonals."""
    fhi = mesh.nfaces if fhi is None else fhi
    fp = mesh.face_points[flo:fhi]
    p = mesh.points
    d1 = p[fp[:, 2]] - p[fp[:, 0]]
    d2 = p[fp[:, 3]] - p[fp[:, 1]]
    cross = np.cross(d1, d2)
    return 0.5 * np.linalg.norm(cross, axis=1)
