"""NPB MG — Multi-Grid (memory-bandwidth bound).

A real geometric multigrid V-cycle for the 3D Poisson equation: weighted-
Jacobi smoothing with a 7-point stencil, full-weighting-style restriction,
trilinear-ish prolongation.  The domain is decomposed in z-slabs; each
smoothing sweep exchanges boundary planes with the z-neighbours.  The
streaming plane sweeps are what make MG bandwidth-bound, which is why the
paper sees MG track DRAM model differences so closely.
"""

from __future__ import annotations

import numpy as np

from ...isa.opcodes import OpClass
from ...smpi.comm import Comm
from ..base import PhaseEmitter
from .common import AddressSpace, NPBResult, check_class, run_npb_program

__all__ = ["MG_CLASSES", "mg_reference", "mg_program", "run_mg"]

#: (grid edge n, V-cycle iterations, smoothing sweeps per level)
MG_CLASSES = {
    "S": (8, 1, 1),
    "W": (16, 2, 1),
    "A": (32, 2, 1),
}

_OMEGA = 0.8  #: weighted-Jacobi damping


def _rhs(n: int) -> np.ndarray:
    """NPB-flavoured right-hand side: a few +1/-1 point charges."""
    rng = np.random.default_rng(2025)
    f = np.zeros((n, n, n))
    pts = rng.integers(1, n - 1, size=(10, 3))
    for k, (i, j, l) in enumerate(pts):
        f[i, j, l] = 1.0 if k % 2 == 0 else -1.0
    return f


def _smooth(u: np.ndarray, f: np.ndarray, sweeps: int) -> np.ndarray:
    """Weighted-Jacobi smoothing of -lap(u) = f with zero boundaries."""
    h2 = 1.0 / (u.shape[0] - 1) ** 2
    for _ in range(sweeps):
        nb = np.zeros_like(u)
        nb[1:-1, 1:-1, 1:-1] = (
            u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
            + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
            + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
        )
        new = (nb + h2 * f) / 6.0
        u = (1 - _OMEGA) * u + _OMEGA * new
        u[0, :, :] = u[-1, :, :] = 0.0
        u[:, 0, :] = u[:, -1, :] = 0.0
        u[:, :, 0] = u[:, :, -1] = 0.0
    return u


def _residual(u: np.ndarray, f: np.ndarray) -> np.ndarray:
    h2 = (u.shape[0] - 1) ** 2
    r = np.zeros_like(u)
    r[1:-1, 1:-1, 1:-1] = f[1:-1, 1:-1, 1:-1] + h2 * (
        u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
        - 6.0 * u[1:-1, 1:-1, 1:-1]
    )
    return r


def _restrict(r: np.ndarray) -> np.ndarray:
    return r[::2, ::2, ::2].copy()


def _prolong(e: np.ndarray, n: int) -> np.ndarray:
    out = np.zeros((n, n, n))
    out[::2, ::2, ::2] = e
    # linear interpolation along each axis in turn
    out[1:-1:2, :, :] = 0.5 * (out[:-2:2, :, :] + out[2::2, :, :])
    out[:, 1:-1:2, :] = 0.5 * (out[:, :-2:2, :] + out[:, 2::2, :])
    out[:, :, 1:-1:2] = 0.5 * (out[:, :, :-2:2] + out[:, :, 2::2])
    return out


def _vcycle(u: np.ndarray, f: np.ndarray, sweeps: int) -> np.ndarray:
    n = u.shape[0]
    u = _smooth(u, f, sweeps)
    if n > 8:
        r = _residual(u, f)
        e = _vcycle(np.zeros((n // 2 + (n % 2),) * 3 if n % 2 else (n // 2,) * 3),
                    _restrict(r) * 4.0, sweeps)
        u = u + _prolong(e, n)
        u = _smooth(u, f, sweeps)
    return u


def mg_reference(cls: str) -> float:
    """Serial reference: final residual L2 norm."""
    n, iters, sweeps = MG_CLASSES[cls]
    f = _rhs(n)
    u = np.zeros((n, n, n))
    for _ in range(iters):
        u = _vcycle(u, f, sweeps)
    return float(np.sqrt(np.mean(_residual(u, f) ** 2)))


def mg_program(comm: Comm, cls: str):
    """Parallel MG: z-slab decomposition with halo planes.

    Every rank holds full-x/y slabs ``[zlo, zhi)`` plus one halo plane on
    each interior face; halos refresh via SendRecv before each stencil
    phase.  The numerics reproduce the serial V-cycle exactly (Jacobi is
    order-independent), which is verified against :func:`mg_reference`.
    """
    n, iters, sweeps = MG_CLASSES[cls]
    p, r_ = comm.size, comm.rank
    f_full = _rhs(n)

    asp = AddressSpace(comm.rank)
    em = PhaseEmitter()

    def slab_trace(nz_local: int, grid_n: int, passes: float = 1.0):
        """Streaming stencil sweep over a local slab: per point ~2 plane
        loads (row reuse covers the rest), 1 store, 5 flops, 2 int."""
        pts = max(1, int(nz_local * grid_n * grid_n * passes))
        pts = min(pts, 60_000)  # cap per-phase trace size
        u_base = asp.alloc(pts * 8)
        plane = grid_n * grid_n * 8
        idx = np.arange(pts, dtype=np.int64)
        loads = np.empty(2 * pts, dtype=np.uint64)
        loads[0::2] = (u_base + idx * 8).astype(np.uint64)
        loads[1::2] = (u_base + plane + idx * 8).astype(np.uint64)
        return em.emit(loads=loads,
                       stores=(u_base + idx * 8).astype(np.uint64),
                       fp_per_elem=5.0, int_per_elem=2.0,
                       fp_op=OpClass.FP_ADD, elems=pts)

    def halo_exchange(u: np.ndarray, zlo: int, zhi: int):
        """Exchange slab boundary planes with the z-neighbours.

        Each rank owns planes ``[zlo, zhi)``.  The exchanged payloads are
        the real planes; because the grid is replicated for verification
        (see below) the received plane always equals the local copy, which
        the exchange asserts — a consistency check on the decomposition.
        """
        up, down = r_ + 1, r_ - 1
        if up < p:
            got = yield from comm.sendrecv(up, u[zhi - 1].copy(), tag=31)
            assert np.array_equal(got, u[zhi]), "halo plane mismatch (up)"
        if down >= 0:
            got = yield from comm.sendrecv(down, u[zlo].copy(), tag=31)
            assert np.array_equal(got, u[zlo - 1]), "halo plane mismatch (down)"

    # The grid is replicated on every rank so Jacobi sweeps reproduce the
    # serial numerics bit-for-bit; the *costs* follow a true slab
    # decomposition — each rank is charged only its slab's stencil sweep
    # and the boundary-plane halo exchanges carry real plane payloads.
    def par_smooth(u, f, sweeps_, zlo, zhi):
        h2 = 1.0 / (u.shape[0] - 1) ** 2
        for _ in range(sweeps_):
            if p > 1:
                yield from halo_exchange(u, zlo, zhi)
            nb = np.zeros_like(u)
            nb[1:-1, 1:-1, 1:-1] = (
                u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
                + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
                + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
            )
            new = (nb + h2 * f) / 6.0
            u = (1 - _OMEGA) * u + _OMEGA * new
            u[0, :, :] = u[-1, :, :] = 0.0
            u[:, 0, :] = u[:, -1, :] = 0.0
            u[:, :, 0] = u[:, :, -1] = 0.0
            yield from comm.compute(slab_trace(zhi - zlo, u.shape[0]))
        return u

    def par_vcycle(u, f, level_n):
        zlo = r_ * level_n // p
        zhi = (r_ + 1) * level_n // p
        u = yield from par_smooth(u, f, sweeps, zlo, zhi)
        if level_n > 8:
            r = _residual(u, f)
            yield from comm.compute(slab_trace(zhi - zlo, level_n, passes=1.0))
            coarse_n = level_n // 2
            e = yield from par_vcycle(np.zeros((coarse_n,) * 3),
                                      _restrict(r) * 4.0, coarse_n)
            u = u + _prolong(e, level_n)
            yield from comm.compute(slab_trace(zhi - zlo, level_n, passes=0.5))
            u = yield from par_smooth(u, f, sweeps, zlo, zhi)
        return u

    u = np.zeros((n, n, n))
    for _ in range(iters):
        u = yield from par_vcycle(u, f_full, n)
    rnorm = float(np.sqrt(np.mean(_residual(u, f_full) ** 2)))
    return rnorm


def run_mg(config, nranks: int = 1, cls: str = "A") -> NPBResult:
    check_class(cls)
    ref = mg_reference(cls)

    def verify(values: list) -> bool:
        return all(np.isclose(v, ref, rtol=1e-8) for v in values)

    return run_npb_program(config, nranks, "MG", cls,
                           lambda comm: mg_program(comm, cls), verify)
