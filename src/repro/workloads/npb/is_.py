"""NPB IS — Integer Sort (memory latency + bandwidth, all-to-all comm).

Bucket sort of uniformly distributed integer keys: local histogramming
(random-index read-modify-writes), an alltoall of bucket counts, an
alltoall of the keys themselves (the big messages that stress the
interconnect in real NPB runs), and a local counting sort.
"""

from __future__ import annotations

import numpy as np

from ...smpi.comm import Comm
from ..base import PhaseEmitter
from .common import AddressSpace, NPBResult, check_class, run_npb_program

__all__ = ["IS_CLASSES", "is_reference_checksum", "is_program", "run_is"]

#: (total keys, max key value).  NPB class A is 2^23 keys / 2^19 max;
#: rescaled keeping the keys-per-bucket ratio.
IS_CLASSES = {
    "S": (1 << 10, 1 << 7),
    "W": (1 << 13, 1 << 10),
    "A": (1 << 15, 1 << 12),
}


def _keys_for(cls: str, rank: int, size: int) -> np.ndarray:
    total, maxkey = IS_CLASSES[cls]
    per = total // size
    lo = rank * per
    hi = total if rank == size - 1 else lo + per
    rng = np.random.default_rng(777)
    all_keys = rng.integers(0, maxkey, size=total, dtype=np.int64)
    return all_keys[lo:hi]


def is_reference_checksum(cls: str) -> int:
    """Checksum of the globally sorted key array."""
    total, maxkey = IS_CLASSES[cls]
    rng = np.random.default_rng(777)
    keys = np.sort(rng.integers(0, maxkey, size=total, dtype=np.int64))
    w = np.arange(1, total + 1, dtype=np.int64)
    return int(np.sum(keys * w) % (1 << 61))


def is_program(comm: Comm, cls: str):
    """Per-rank IS: histogram -> alltoall(counts) -> alltoall(keys) -> sort."""
    total, maxkey = IS_CLASSES[cls]
    p = comm.size
    keys = _keys_for(cls, comm.rank, p)
    n_local = len(keys)

    asp = AddressSpace(comm.rank)
    key_base = asp.alloc(n_local * 8)
    hist_base = asp.alloc(maxkey * 8)
    em = PhaseEmitter()

    # --- local histogram: stream keys, random-index increment ---
    hist = np.bincount(keys, minlength=maxkey)
    key_addrs = asp.addrs(key_base, np.arange(n_local))
    bucket_addrs = asp.addrs(hist_base, keys)  # the random accesses
    loads = np.empty(2 * n_local, dtype=np.uint64)
    loads[0::2] = key_addrs
    loads[1::2] = bucket_addrs
    trace = em.emit(loads=loads, stores=bucket_addrs,
                    int_per_elem=3.0, elems=n_local)
    yield from comm.compute(trace)

    # --- exchange: which rank owns which key range ---
    bounds = (np.arange(1, p + 1) * maxkey) // p
    owner_of_key = np.searchsorted(bounds, keys, side="right")
    send_blocks = [keys[owner_of_key == dst] for dst in range(p)]
    recv_blocks = yield from comm.alltoall(send_blocks)

    # --- local sort of owned keys ---
    mine = np.sort(np.concatenate(recv_blocks)) if p > 1 else np.sort(keys)
    # counting sort costs: one pass building counts + one writing output
    out_base = asp.alloc(len(mine) * 8 + 64)
    sort_loads = asp.addrs(key_base, np.arange(len(mine)))
    sort_stores = asp.addrs(out_base, np.arange(len(mine)))
    trace = em.emit(loads=sort_loads, stores=sort_stores,
                    int_per_elem=4.0, elems=max(1, len(mine)))
    yield from comm.compute(trace)

    # --- global verification checksum ---
    counts = yield from comm.allgather(len(mine))
    offset = int(np.sum(counts[: comm.rank]))
    w = np.arange(offset + 1, offset + len(mine) + 1, dtype=np.int64)
    partial = int(np.sum(mine * w) % (1 << 61))
    checksum = yield from comm.allreduce(partial, op=lambda a, b: (a + b) % (1 << 61))
    return checksum


def run_is(config, nranks: int = 1, cls: str = "A") -> NPBResult:
    check_class(cls)
    ref = is_reference_checksum(cls)

    def verify(values: list) -> bool:
        return all(v == ref for v in values)

    return run_npb_program(config, nranks, "IS", cls,
                           lambda comm: is_program(comm, cls), verify)
