"""NPB EP — Embarrassingly Parallel (compute-bound).

Generates pairs of uniform deviates with the NPB linear congruential
generator, applies the Marsaglia polar acceptance test, and accumulates
Gaussian-pair counts per annulus.  Communication is a single allreduce at
the end, which is why EP isolates raw compute capability (and why it is
the benchmark where the paper sees near performance parity between the
Large BOOM model and the MILK-V).
"""

from __future__ import annotations

import numpy as np

from ...isa.opcodes import OpClass
from ...smpi.comm import Comm
from ..base import PhaseEmitter
from .common import AddressSpace, NPBResult, check_class, run_npb_program

__all__ = ["EP_CLASSES", "ep_reference", "ep_program", "run_ep"]

#: pairs per class (NPB uses 2^24..2^28; rescaled for tractable traces)
EP_CLASSES = {"S": 1 << 10, "W": 1 << 12, "A": 1 << 14}

_LCG_A = 1220703125.0
_R23 = 2.0**-23
_R46 = _R23 * _R23
_T23 = 2.0**23
_T46 = _T23 * _T23


def _lcg_stream(seed: float, n: int) -> np.ndarray:
    """NPB's vranlc: n uniform deviates from the 46-bit LCG (vectorised in
    blocks for speed while preserving the exact NPB sequence)."""
    out = np.empty(n)
    x = seed
    a1 = np.floor(_R23 * _LCG_A)
    a2 = _LCG_A - _T23 * a1
    for i in range(n):
        x1 = np.floor(_R23 * x)
        x2 = x - _T23 * x1
        t1 = a1 * x2 + a2 * x1
        t2 = np.floor(_R23 * t1)
        z = t1 - _T23 * t2
        t3 = _T23 * z + a2 * x2
        t4 = np.floor(_R46 * t3)
        x = t3 - _T46 * t4
        out[i] = _R46 * x
    return out


def _lcg_skip(seed: float, k: int) -> float:
    """Advance the LCG by k steps (power-of-two exponentiation)."""
    a = _LCG_A
    x = seed
    while k:
        if k & 1:
            x = _mul46(a, x)
        a = _mul46(a, a)
        k >>= 1
    return x


def _mul46(a: float, b: float) -> float:
    a1 = np.floor(_R23 * a)
    a2 = a - _T23 * a1
    b1 = np.floor(_R23 * b)
    b2 = b - _T23 * b1
    t1 = a1 * b2 + a2 * b1
    t2 = np.floor(_R23 * t1)
    z = t1 - _T23 * t2
    t3 = _T23 * z + a2 * b2
    t4 = np.floor(_R46 * t3)
    return t3 - _T46 * t4


def _ep_kernel(seed: float, pairs: int) -> tuple[float, float, np.ndarray]:
    """Generate *pairs* (x, y) pairs and apply the polar test."""
    u = _lcg_stream(seed, 2 * pairs)
    x = 2.0 * u[0::2] - 1.0
    y = 2.0 * u[1::2] - 1.0
    t = x * x + y * y
    accept = t <= 1.0
    xa, ya, ta = x[accept], y[accept], t[accept]
    f = np.sqrt(-2.0 * np.log(ta) / ta)
    gx, gy = f * xa, f * ya
    sx = float(np.sum(gx))
    sy = float(np.sum(gy))
    m = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
    counts = np.bincount(np.clip(m, 0, 9), minlength=10).astype(np.float64)
    return sx, sy, counts


def ep_reference(cls: str) -> tuple[float, float, np.ndarray]:
    """Single-threaded reference result for verification."""
    return _ep_kernel(271828183.0, EP_CLASSES[cls])


def ep_program(comm: Comm, cls: str):
    """Per-rank EP program: local generation + one allreduce."""
    pairs_total = EP_CLASSES[cls]
    per = pairs_total // comm.size
    lo = comm.rank * per
    hi = pairs_total if comm.rank == comm.size - 1 else lo + per
    n = hi - lo
    seed = _lcg_skip(271828183.0, 2 * lo)

    sx, sy, counts = _ep_kernel(seed, n)

    # timing: per pair, ~10 FP ops (LCG + polar test + sqrt/log kernel),
    # ~4 int ops, and negligible memory traffic (register-resident batches)
    asp = AddressSpace(comm.rank)
    scratch = asp.alloc(4096)
    em = PhaseEmitter()
    trace = em.emit(
        loads=(scratch + (np.arange(n) % 64) * 8).astype(np.uint64),
        fp_per_elem=10.0,
        int_per_elem=4.0,
        fp_op=OpClass.FP_FMA,
        elems=n,
    )
    yield from comm.compute(trace)

    packed = np.concatenate([[sx, sy], counts])
    total = yield from comm.allreduce(packed)
    return total


def run_ep(config, nranks: int = 1, cls: str = "A") -> NPBResult:
    """Run EP and verify the combined sums against the serial reference."""
    check_class(cls)
    ref_sx, ref_sy, ref_counts = ep_reference(cls)

    def verify(values: list) -> bool:
        v = values[0]
        for other in values[1:]:
            if not np.allclose(v, other):
                return False
        return (
            np.isclose(v[0], ref_sx, rtol=1e-8)
            and np.isclose(v[1], ref_sy, rtol=1e-8)
            and np.allclose(v[2:], ref_counts)
        )

    return run_npb_program(config, nranks, "EP", cls,
                           lambda comm: ep_program(comm, cls), verify)
