"""NAS Parallel Benchmarks: CG, EP, IS, MG (paper Table 2, all class A)."""

from .cg import CG_CLASSES, cg_program, cg_reference, run_cg
from .common import CLASS_NAMES, NPBResult
from .ep import EP_CLASSES, ep_program, ep_reference, run_ep
from .is_ import IS_CLASSES, is_program, is_reference_checksum, run_is
from .mg import MG_CLASSES, mg_program, mg_reference, run_mg

__all__ = [
    "NPBResult",
    "CLASS_NAMES",
    "CG_CLASSES",
    "EP_CLASSES",
    "IS_CLASSES",
    "MG_CLASSES",
    "run_cg",
    "run_ep",
    "run_is",
    "run_mg",
    "cg_program",
    "ep_program",
    "is_program",
    "mg_program",
    "cg_reference",
    "ep_reference",
    "is_reference_checksum",
    "mg_reference",
    "NPB_RUNNERS",
    "run_npb",
]

#: benchmark name -> runner, in Table 2 order
NPB_RUNNERS = {"CG": run_cg, "EP": run_ep, "IS": run_is, "MG": run_mg}


def run_npb(benchmark: str, config, nranks: int = 1, cls: str = "A") -> NPBResult:
    """Run one NPB benchmark by name."""
    try:
        runner = NPB_RUNNERS[benchmark.upper()]
    except KeyError:
        raise KeyError(
            f"unknown NPB benchmark {benchmark!r}; available: {sorted(NPB_RUNNERS)}"
        ) from None
    return runner(config, nranks=nranks, cls=cls)
