"""NPB CG — Conjugate Gradient (memory-latency bound).

Estimates the largest eigenvalue of a sparse symmetric positive-definite
matrix with inverse power iteration, each step solving ``A z = x`` by
conjugate gradients.  The SpMV's indirect column accesses are what make CG
a memory-*latency* benchmark; rows are block-partitioned across ranks and
the iterate is refreshed with an allgather, dot products with allreduces —
the same communication structure as NPB's CG.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ...isa.opcodes import OpClass
from ...smpi.comm import Comm
from ..base import PhaseEmitter
from .common import AddressSpace, NPBResult, check_class, run_npb_program

__all__ = ["CG_CLASSES", "build_matrix", "cg_reference", "cg_program", "run_cg"]

#: (n, nonzeros per row, CG iterations, outer iterations).  Class A is
#: sized so the iterate just exceeds a 32 KiB L1 (the latency regime NPB
#: CG targets) while traces stay tractable.
CG_CLASSES = {
    "S": (256, 4, 2, 1),
    "W": (1024, 6, 3, 1),
    "A": (4096, 6, 4, 1),
}


def build_matrix(cls: str, seed: int = 12) -> sparse.csr_matrix:
    """Random sparse SPD matrix in the spirit of NPB's makea."""
    n, nzr, _, _ = CG_CLASSES[cls]
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nzr)
    cols = rng.integers(0, n, size=n * nzr)
    vals = rng.random(n * nzr) * 2 - 1
    m = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    m = m + m.T  # symmetrise
    # diagonal dominance makes it SPD
    m = m + sparse.diags(np.abs(m).sum(axis=1).A1 + 1.0)
    return m.tocsr()


def cg_reference(cls: str) -> float:
    """Serial reference: the final residual-based zeta estimate."""
    a = build_matrix(cls)
    n, _, cg_iters, outer = CG_CLASSES[cls]
    x = np.ones(n)
    zeta = 0.0
    for _ in range(outer):
        z, _ = _serial_cg(a, x, cg_iters)
        zeta = 20.0 + 1.0 / float(x @ z)
        x = z / np.linalg.norm(z)
    return zeta


def _serial_cg(a, b, iters):
    z = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(iters):
        q = a @ p
        alpha = rho / float(p @ q)
        z = z + alpha * p
        r = r - alpha * q
        rho_new = float(r @ r)
        beta = rho_new / rho
        rho = rho_new
        p = r + beta * p
    return z, float(np.linalg.norm(b - a @ z))


def cg_program(comm: Comm, cls: str):
    """Per-rank CG: block rows of A, allgather for x, allreduce for dots."""
    n, nzr, cg_iters, outer = CG_CLASSES[cls]
    a = build_matrix(cls)
    p_ = comm.size
    lo = comm.rank * n // p_
    hi = (comm.rank + 1) * n // p_
    a_local = a[lo:hi]  # csr block of my rows

    asp = AddressSpace(comm.rank)
    x_base = asp.alloc(n * 8)          # full iterate (gathered)
    col_addrs_all = asp.addrs(x_base, a_local.indices)  # gather targets
    vals_base = asp.alloc(a_local.nnz * 8)
    z_base = asp.alloc((hi - lo) * 8)
    r_base = asp.alloc((hi - lo) * 8)
    p_base = asp.alloc((hi - lo) * 8)
    em = PhaseEmitter()
    rows_local = hi - lo

    def spmv_trace():
        """Gather loads through the column indices + the row value stream."""
        val_addrs = (vals_base + np.arange(a_local.nnz, dtype=np.int64) * 8
                     ).astype(np.uint64)
        loads = np.empty(2 * a_local.nnz, dtype=np.uint64)
        loads[0::2] = val_addrs
        loads[1::2] = col_addrs_all      # the indirect accesses
        # rows are independent accumulation chains, so element-level FMAs
        # expose the gather-load latency instead of hiding it behind one
        # serial chain (matching real SpMV criticality)
        return em.emit(loads=loads, fp_per_elem=1.0, int_per_elem=1.0,
                       fp_op=OpClass.FP_FMA, fp_chain=False,
                       elems=a_local.nnz)

    def axpy_trace(k=1.0):
        idx = np.arange(rows_local, dtype=np.int64)
        return em.emit(
            loads=np.concatenate([
                asp.addrs(r_base, idx), asp.addrs(p_base, idx)
            ]),
            stores=asp.addrs(z_base, idx),
            fp_per_elem=2.0 * k, int_per_elem=1.0,
            elems=rows_local,
        )

    x = np.ones(n)
    zeta = 0.0
    for _ in range(outer):
        # --- CG solve A z = x ---
        z = np.zeros(rows_local)
        r = x[lo:hi].copy()
        p = r.copy()
        rho_local = float(r @ r)
        rho = yield from comm.allreduce(rho_local)
        for _ in range(cg_iters):
            # q = A p  (needs the full p vector)
            p_parts = yield from comm.allgather(p)
            p_full = np.concatenate(p_parts)
            yield from comm.compute(spmv_trace())
            q = a_local @ p_full
            pq = yield from comm.allreduce(float(p @ q))
            alpha = rho / pq
            yield from comm.compute(axpy_trace(1.5))
            z = z + alpha * p
            r = r - alpha * q
            rho_new = yield from comm.allreduce(float(r @ r))
            beta = rho_new / rho
            rho = rho_new
            p = r + beta * p
        # --- zeta update ---
        xz_local = float(x[lo:hi] @ z)
        xz = yield from comm.allreduce(xz_local)
        zeta = 20.0 + 1.0 / xz
        znorm2 = yield from comm.allreduce(float(z @ z))
        z_parts = yield from comm.allgather(z / np.sqrt(znorm2))
        x = np.concatenate(z_parts)
    return zeta


def run_cg(config, nranks: int = 1, cls: str = "A") -> NPBResult:
    check_class(cls)
    ref = cg_reference(cls)

    def verify(values: list) -> bool:
        return all(np.isclose(v, ref, rtol=1e-9) for v in values)

    return run_npb_program(config, nranks, "CG", cls,
                           lambda comm: cg_program(comm, cls), verify)
