"""Shared plumbing for the NAS Parallel Benchmark implementations.

Each benchmark is a *real* parallel algorithm: the numerics run in NumPy
and the MPI data movement runs through :mod:`repro.smpi` with real
payloads, so results are verifiable.  Timing comes from lowering each
compute phase into a trace (op mix + genuine address streams) via
:class:`repro.workloads.base.PhaseEmitter`.

Problem classes follow NPB conventions (S < W < A) but are rescaled so a
full run is a few hundred thousand simulated instructions — the same
reasoning the paper applies when it picks Class A "because it can be run
on actual hardware in roughly ten seconds, while its simulation takes on
the order of few hours".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...smpi.runtime import RankResult, run_mpi
from ...soc.config import SoCConfig
from ...soc.system import System

__all__ = ["AddressSpace", "NPBResult", "CLASS_NAMES", "check_class",
           "run_npb_program"]

CLASS_NAMES = ("S", "W", "A")


def check_class(cls: str) -> str:
    """Validate an NPB problem-class name."""
    if cls not in CLASS_NAMES:
        raise ValueError(f"unknown NPB class {cls!r}; use one of {CLASS_NAMES}")
    return cls

#: 16 GiB of private address space per rank: ranks are separate processes,
#: so their data must not alias in the (physically shared) L2.
_RANK_STRIDE = 1 << 34
_HEAP_BASE = 1 << 32


class AddressSpace:
    """Per-rank bump allocator for synthetic virtual addresses."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._next = _HEAP_BASE + rank * _RANK_STRIDE

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve *nbytes* and return the base address."""
        base = (self._next + align - 1) // align * align
        self._next = base + nbytes
        return base

    def array(self, arr: np.ndarray) -> int:
        """Reserve space for an ndarray; returns its base address."""
        return self.alloc(arr.nbytes)

    def addrs(self, base: int, index: np.ndarray, itemsize: int = 8) -> np.ndarray:
        """Element addresses for integer indices into an array at *base*."""
        return (base + index.astype(np.int64) * itemsize).astype(np.uint64)


@dataclass
class NPBResult:
    """Outcome of one NPB run on one configuration."""

    benchmark: str
    cls: str
    config: str
    nranks: int
    verified: bool
    cycles: int                 #: slowest rank's clock (time to completion)
    core_ghz: float
    ranks: list[RankResult] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.cycles / (self.core_ghz * 1e9)

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.ranks)

    def __repr__(self) -> str:
        flag = "OK" if self.verified else "FAILED-VERIFY"
        return (
            f"NPBResult({self.benchmark}.{self.cls} on {self.config} x{self.nranks}: "
            f"{self.seconds * 1e3:.2f} ms target, {flag})"
        )


def run_npb_program(config: SoCConfig, nranks: int, benchmark: str, cls: str,
                    program_factory, verify) -> NPBResult:
    """Run a rank-program factory on a fresh system and verify the result.

    ``program_factory(comm)`` builds the per-rank generator; ``verify`` maps
    the list of rank return values to a bool.
    """
    if cls not in CLASS_NAMES:
        raise ValueError(f"unknown NPB class {cls!r}; use one of {CLASS_NAMES}")
    system = System(config)
    results = run_mpi(system, nranks, program_factory)
    cycles = max(r.cycles for r in results)
    ok = bool(verify([r.value for r in results]))
    return NPBResult(
        benchmark=benchmark,
        cls=cls,
        config=config.name,
        nranks=nranks,
        verified=ok,
        cycles=cycles,
        core_ghz=config.core_ghz,
        ranks=results,
    )
