"""repro.check: property-based differential checking of the whole stack.

The paper validates one implementation of RISC-V against another
(FireSim models vs SpacemiT/SOPHON silicon); this package does the same
thing internally and adversarially.  A seeded generator builds programs
around the ISA's sharp edges, and a differential oracle runs each one
through every independent execution path the repo ships — interpreter vs
golden bit-level semantics, ``accel=on`` vs ``accel=off`` timing,
checkpoint/restore vs straight-through, farm vs serial — plus an
invariant lint over the telemetry.  Failures are shrunk to minimal
repros and pinned in ``tests/check/corpus/``.

See ``docs/checking.md`` for the workflow, and ``repro check --seeds N``
for the CLI entry point.
"""

from .chaos import diff_chaos
from .golden import CANONICAL_NAN_BITS, GoldenMachine
from .oracle import (Divergence, diff_accel, diff_batch, diff_checkpoint,
                     diff_farm, diff_golden, lint_invariants, run_program)
from .progen import BLOCK_KINDS, CheckProgram, generate_program
from .runner import ALL_TIERS, CheckReport, run_check
from .shrink import (CORPUS_DIR, load_corpus, replay_entries, shrink_program,
                     write_corpus_entry)

__all__ = [
    "ALL_TIERS",
    "BLOCK_KINDS",
    "CANONICAL_NAN_BITS",
    "CORPUS_DIR",
    "CheckProgram",
    "CheckReport",
    "Divergence",
    "GoldenMachine",
    "diff_accel",
    "diff_batch",
    "diff_chaos",
    "diff_checkpoint",
    "diff_farm",
    "diff_golden",
    "generate_program",
    "lint_invariants",
    "load_corpus",
    "replay_entries",
    "run_check",
    "run_program",
    "shrink_program",
    "write_corpus_entry",
]
