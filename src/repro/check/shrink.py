"""Delta-debugging shrinker and the on-disk regression corpus.

When an oracle flags a generated program, :func:`shrink_program` reduces
it to a (locally) minimal assembly source that still fails the same
predicate: classic ddmin over source lines followed by a greedy
single-line pass, re-assembling every candidate (candidates that no
longer assemble — e.g. a removed label — simply don't reproduce).

Minimal repros are written to ``tests/check/corpus/`` by
:func:`write_corpus_entry` with a small comment header recording the
oracle tier, the generating seed, and the divergence it proved.  The
corpus replay test re-runs every entry's oracle forever after, so each
bug the fuzzer ever found stays a permanent regression test.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Callable, Iterable

from .progen import CheckProgram

__all__ = [
    "CORPUS_DIR",
    "load_corpus",
    "shrink_program",
    "write_corpus_entry",
]

#: default corpus location, relative to the repository root
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "check" / "corpus"

Predicate = Callable[[CheckProgram], bool]


def diff_category(line: str) -> str:
    """Coarse failure family of one divergence line.

    Shrinking with a bare "any divergence" predicate converges on
    whatever bug has the smallest repro, not the one being shrunk; the
    category pins the family (memory vs f-register vs crash ...) so the
    minimal program still demonstrates the original finding.
    """
    if line.startswith("crash:"):
        return line.split(" ", 1)[0]
    head = line.split(":", 1)[0]
    if head.startswith("mem["):
        return "mem"
    if head and head[0] == "f" and head[1:].isdigit():
        return "freg"
    if head and head[0] == "x" and head[1:].isdigit():
        return "xreg"
    return head


def category_predicate(diff_fn: Callable[[CheckProgram], list[str]],
                       category: str) -> Predicate:
    """Predicate: *diff_fn* still reports a divergence of *category*
    (a crash reproduces a ``crash:``-category failure)."""

    def fails(p: CheckProgram) -> bool:
        try:
            diffs = diff_fn(p)
        except Exception as exc:
            return category == f"crash:{type(exc).__name__}"
        return any(diff_category(d) == category for d in diffs)

    return fails


def _candidate(prog: CheckProgram, lines: list[str]) -> CheckProgram | None:
    source = "\n".join(lines) + "\n"
    cand = CheckProgram(seed=prog.seed, source=source, base=prog.base)
    try:
        if not cand.words:
            return None
    except Exception:
        return None  # doesn't assemble (dropped label, empty, ...)
    return cand


def _still_fails(prog: CheckProgram, lines: list[str],
                 predicate: Predicate) -> CheckProgram | None:
    cand = _candidate(prog, lines)
    if cand is None:
        return None
    try:
        return cand if predicate(cand) else None
    except Exception:
        # the predicate itself failed; wrap crashes you want to count as
        # reproducing with category_predicate("crash:...") instead
        return None


def shrink_program(prog: CheckProgram, predicate: Predicate,
                   max_checks: int = 400) -> CheckProgram:
    """Reduce *prog* to a smaller program for which *predicate* holds.

    *predicate* returns True while the failure reproduces (it may also
    raise, which counts as reproducing).  Returns the smallest program
    found; *prog* itself if nothing smaller reproduces.
    """
    lines = [ln for ln in prog.source.splitlines()
             if ln.strip() and not ln.strip().startswith("#")]
    best = _candidate(prog, lines) or prog
    checks = 0

    # ddmin: try dropping progressively smaller chunks
    n = 2
    while len(lines) >= 2 and checks < max_checks:
        chunk = max(1, len(lines) // n)
        reduced = False
        start = 0
        while start < len(lines) and checks < max_checks:
            cand_lines = lines[:start] + lines[start + chunk:]
            checks += 1
            cand = _still_fails(prog, cand_lines, predicate)
            if cand is not None:
                lines, best = cand_lines, cand
                reduced = True
                n = max(n - 1, 2)
            else:
                start += chunk
        if not reduced:
            if chunk <= 1:
                break
            n = min(n * 2, len(lines))

    # greedy single-line polish until a fixpoint
    changed = True
    while changed and checks < max_checks:
        changed = False
        for i in range(len(lines) - 1, -1, -1):
            cand_lines = lines[:i] + lines[i + 1:]
            checks += 1
            cand = _still_fails(prog, cand_lines, predicate)
            if cand is not None:
                lines, best = cand_lines, cand
                changed = True
            if checks >= max_checks:
                break
    return best


# -- corpus ------------------------------------------------------------------

_HEADER_RE = re.compile(r"^#\s*(oracle|seed|divergence):\s*(.*)$")


def write_corpus_entry(prog: CheckProgram, oracle: str, divergence: str,
                       name: str | None = None,
                       corpus_dir: Path | None = None) -> Path:
    """Persist a shrunk repro as ``<corpus>/<name>.s`` and return the path."""
    corpus = Path(corpus_dir) if corpus_dir is not None else CORPUS_DIR
    corpus.mkdir(parents=True, exist_ok=True)
    if name is None:
        name = f"{oracle}_seed{prog.seed}"
    path = corpus / f"{name}.s"
    first_line = divergence.splitlines()[0] if divergence else ""
    header = (
        f"# repro.check shrunk regression\n"
        f"# oracle: {oracle}\n"
        f"# seed: {prog.seed}\n"
        f"# divergence: {first_line}\n"
    )
    path.write_text(header + prog.source)
    return path


def load_corpus(corpus_dir: Path | None = None
                ) -> list[tuple[str, str, CheckProgram]]:
    """Load every corpus entry as ``(name, oracle, program)``."""
    corpus = Path(corpus_dir) if corpus_dir is not None else CORPUS_DIR
    entries: list[tuple[str, str, CheckProgram]] = []
    if not corpus.is_dir():
        return entries
    for path in sorted(corpus.glob("*.s")):
        oracle, seed = "golden", -1
        for line in path.read_text().splitlines():
            m = _HEADER_RE.match(line.strip())
            if m and m.group(1) == "oracle":
                oracle = m.group(2).strip()
            elif m and m.group(1) == "seed":
                try:
                    seed = int(m.group(2))
                except ValueError:
                    pass
        prog = CheckProgram(seed=seed, source=path.read_text())
        entries.append((path.stem, oracle, prog))
    return entries


def replay_entries(entries: Iterable[tuple[str, str, CheckProgram]]
                   ) -> list[str]:
    """Re-run each corpus entry's oracle; returns failure strings."""
    from .oracle import diff_accel, diff_golden, run_program

    failures: list[str] = []
    for name, oracle, prog in entries:
        try:
            if oracle == "accel":
                interp = run_program(prog)
                diffs = diff_accel(interp.trace_so_far,
                                   config_names=("Rocket1",))
            else:
                diffs = diff_golden(prog)
        except Exception as exc:  # a crash is a failure too
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
            continue
        failures += [f"{name}: {d}" for d in diffs]
    return failures
