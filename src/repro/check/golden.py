"""Independent golden-semantics model of RV64IMFD for differential checking.

:class:`GoldenMachine` executes the same instruction words as
:class:`repro.isa.interp.Interpreter` but shares nothing with it beyond
the decoder: architectural state is kept as raw bit patterns (64-bit
unsigned integers for both register files, a byte-addressed ``dict`` for
memory), and every operation is written directly from the ISA manual with
integer masks and ``struct`` conversions — no numpy, no Python-float
register file, no page tables.  Where the two implementations disagree,
one of them is wrong, and the differential oracle
(:mod:`repro.check.oracle`) flags it.

Deliberate, documented semantic choices shared with the interpreter:

* The FP register file holds **double bit patterns**; single-precision
  results are widened to double after rounding (no NaN boxing).
* NaN *computation* results are the RISC-V canonical quiet NaN
  (``0x7FF8_0000_0000_0000``).  Pure bit moves (``fsgnj*``, ``fmv.*``,
  ``fld``/``fsd``) preserve payloads; narrowing/widening conversions
  truncate/extend payloads the way hardware float casts do.
* ``fmadd.d`` and friends are evaluated as a rounded multiply followed by
  a rounded add (the interpreter's documented non-fused sequence), not as
  a single fused rounding.
"""

from __future__ import annotations

import math
import struct

from ..isa.encoding import Instr, decode

__all__ = ["GoldenMachine", "GoldenError", "CANONICAL_NAN_BITS"]

_M64 = (1 << 64) - 1
_M32 = 0xFFFFFFFF

#: RISC-V canonical quiet NaN (double / single)
CANONICAL_NAN_BITS = 0x7FF8_0000_0000_0000
_CANONICAL_NAN32 = 0x7FC0_0000

_SIGN64 = 1 << 63
_EXP64 = 0x7FF0_0000_0000_0000
_FRAC64 = (1 << 52) - 1
_SIGN32 = 1 << 31
_EXP32 = 0x7F80_0000
_FRAC32 = (1 << 23) - 1


class GoldenError(RuntimeError):
    """Raised when the golden model cannot continue (bad pc, fuel)."""


def _sx(v: int, bits: int) -> int:
    """Two's-complement value of the low *bits* of *v*."""
    v &= (1 << bits) - 1
    return v - (1 << bits) if v >> (bits - 1) else v


def _f64(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _M64))[0]


def _bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def _is_nan64(b: int) -> bool:
    return (b & _EXP64) == _EXP64 and (b & _FRAC64) != 0


def _is_nan32(b: int) -> bool:
    return (b & _EXP32) == _EXP32 and (b & _FRAC32) != 0


def _canon(b: int) -> int:
    """Canonicalize a NaN result; pass every other bit pattern through."""
    return CANONICAL_NAN_BITS if _is_nan64(b) else b


def _pack_result(x: float) -> int:
    """Double result of an arithmetic op -> register bits, canonical NaN."""
    return _canon(_bits(x))


def _widen_f32(b32: int) -> int:
    """f32 bits -> f64 bits, the way a hardware float cast does it."""
    b32 &= _M32
    sign = (b32 >> 31) & 1
    exp = (b32 >> 23) & 0xFF
    frac = b32 & _FRAC32
    if exp == 0xFF:
        if frac:  # NaN: quieted, payload shifted into the high mantissa
            return (sign << 63) | _EXP64 | (1 << 51) | ((frac & 0x3FFFFF) << 29)
        return (sign << 63) | _EXP64
    return _bits(struct.unpack("<f", struct.pack("<I", b32))[0])


def _narrow_f64(b64: int) -> int:
    """f64 bits -> f32 bits (round to nearest even; hardware NaN rule)."""
    b64 &= _M64
    sign = (b64 >> 63) & 1
    if _is_nan64(b64):
        return (sign << 31) | _EXP32 | (1 << 22) | ((b64 >> 29) & 0x3FFFFF)
    x = _f64(b64)
    try:
        return struct.unpack("<I", struct.pack("<f", x))[0]
    except OverflowError:  # magnitude rounds past f32 max -> infinity
        return (sign << 31) | _EXP32


def _round_f32(x: float) -> float:
    """Round a double to the nearest float32, returned as a double."""
    return _f64(_widen_f32(_narrow_f64(_bits(x))))


def _fdiv(a: float, c: float) -> float:
    """IEEE division (Python raises on zero divisors; hardware doesn't)."""
    if c == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.copysign(math.inf, 1.0 if (a > 0) == (math.copysign(1.0, c) > 0) else -1.0)
    return a / c


def _fsqrt(a: float) -> float:
    if math.isnan(a) or a < 0.0:
        return math.nan if a != 0.0 else a  # sqrt(-0.0) is -0.0
    return math.sqrt(a)


def _fminmax(ab: int, cb: int, want_max: bool) -> int:
    """RISC-V fmin.d/fmax.d on raw bits: NaN-aware, -0.0 < +0.0."""
    a_nan, c_nan = _is_nan64(ab), _is_nan64(cb)
    if a_nan and c_nan:
        return CANONICAL_NAN_BITS
    if a_nan:
        return cb
    if c_nan:
        return ab
    a, c = _f64(ab), _f64(cb)
    if a == c:  # equal values: only ±0.0 differ by sign; pick by sign bit
        neg = ab if ab >> 63 else cb
        pos = cb if ab >> 63 else ab
        return pos if want_max else neg
    if want_max:
        return ab if a > c else cb
    return ab if a < c else cb


class GoldenMachine:
    """Reference executor for differential checking.

    Parameters mirror :class:`repro.isa.interp.Interpreter`: *program* is
    a list of 32-bit instruction words laid out from *base*.
    """

    def __init__(self, program: list[int], base: int = 0x1_0000) -> None:
        self.program = list(program)
        self.base = base
        self.pc = base
        self.xregs = [0] * 32          # raw unsigned 64-bit
        self.fregs = [0] * 32          # raw IEEE-754 double bits
        self.mem: dict[int, int] = {}  # byte address -> byte value
        self.retired = 0
        self.halted = False
        self._decoded: list[Instr] = [decode(w) for w in program]

    # -- architectural helpers -------------------------------------------

    def _wx(self, rd: int, value: int) -> None:
        if rd != 0:
            self.xregs[rd] = value & _M64

    def _load(self, addr: int, size: int, signed: bool) -> int:
        val = 0
        for i in range(size):
            val |= self.mem.get((addr + i) & _M64, 0) << (8 * i)
        return _sx(val, 8 * size) & _M64 if signed else val

    def _store(self, addr: int, value: int, size: int) -> None:
        for i in range(size):
            self.mem[(addr + i) & _M64] = (value >> (8 * i)) & 0xFF

    # -- execution -------------------------------------------------------

    def run(self, max_instructions: int = 1_000_000) -> "GoldenMachine":
        fuel = max_instructions
        end = self.base + 4 * len(self.program)
        while not self.halted and self.base <= self.pc < end:
            if fuel <= 0:
                raise GoldenError(
                    f"exceeded {max_instructions} instructions at pc={self.pc:#x}")
            self.step()
            fuel -= 1
        return self

    def step(self) -> None:
        idx = (self.pc - self.base) >> 2
        if not 0 <= idx < len(self._decoded):
            raise GoldenError(f"pc {self.pc:#x} outside program")
        self._exec(self._decoded[idx])
        self.retired += 1

    def _exec(self, ins: Instr) -> None:
        m = ins.mnemonic
        x = self.xregs
        r1 = x[ins.rs1]
        r2 = x[ins.rs2]
        pc = self.pc
        nxt = pc + 4

        if m[0] == "f" and m != "fence":
            self._exec_fp(ins, r1)
            self.pc = nxt
            return

        imm = ins.imm
        if m == "add":
            self._wx(ins.rd, r1 + r2)
        elif m == "sub":
            self._wx(ins.rd, r1 - r2)
        elif m == "sll":
            self._wx(ins.rd, r1 << (r2 & 63))
        elif m == "slt":
            self._wx(ins.rd, 1 if _sx(r1, 64) < _sx(r2, 64) else 0)
        elif m == "sltu":
            self._wx(ins.rd, 1 if r1 < r2 else 0)
        elif m == "xor":
            self._wx(ins.rd, r1 ^ r2)
        elif m == "srl":
            self._wx(ins.rd, r1 >> (r2 & 63))
        elif m == "sra":
            self._wx(ins.rd, _sx(r1, 64) >> (r2 & 63))
        elif m == "or":
            self._wx(ins.rd, r1 | r2)
        elif m == "and":
            self._wx(ins.rd, r1 & r2)
        elif m == "addw":
            self._wx(ins.rd, _sx(r1 + r2, 32))
        elif m == "subw":
            self._wx(ins.rd, _sx(r1 - r2, 32))
        elif m == "sllw":
            self._wx(ins.rd, _sx(r1 << (r2 & 31), 32))
        elif m == "srlw":
            self._wx(ins.rd, _sx((r1 & _M32) >> (r2 & 31), 32))
        elif m == "sraw":
            self._wx(ins.rd, _sx(r1, 32) >> (r2 & 31))
        elif m == "mul":
            self._wx(ins.rd, r1 * r2)
        elif m == "mulh":
            self._wx(ins.rd, (_sx(r1, 64) * _sx(r2, 64)) >> 64)
        elif m == "mulhsu":
            self._wx(ins.rd, (_sx(r1, 64) * r2) >> 64)
        elif m == "mulhu":
            self._wx(ins.rd, (r1 * r2) >> 64)
        elif m == "mulw":
            self._wx(ins.rd, _sx(r1 * r2, 32))
        elif m in ("div", "rem"):
            s1, s2 = _sx(r1, 64), _sx(r2, 64)
            self._wx(ins.rd, self._divrem(s1, s2, 64, m == "div"))
        elif m in ("divw", "remw"):
            s1, s2 = _sx(r1, 32), _sx(r2, 32)
            self._wx(ins.rd, self._divrem(s1, s2, 32, m == "divw"))
        elif m == "divu":
            self._wx(ins.rd, r1 // r2 if r2 else _M64)
        elif m == "remu":
            self._wx(ins.rd, r1 % r2 if r2 else r1)
        elif m == "divuw":
            u1, u2 = r1 & _M32, r2 & _M32
            self._wx(ins.rd, _sx(u1 // u2 if u2 else _M32, 32))
        elif m == "remuw":
            u1, u2 = r1 & _M32, r2 & _M32
            self._wx(ins.rd, _sx(u1 % u2 if u2 else u1, 32))
        elif m == "addi":
            self._wx(ins.rd, r1 + imm)
        elif m == "slti":
            self._wx(ins.rd, 1 if _sx(r1, 64) < imm else 0)
        elif m == "sltiu":
            self._wx(ins.rd, 1 if r1 < (imm & _M64) else 0)
        elif m == "xori":
            self._wx(ins.rd, r1 ^ (imm & _M64))
        elif m == "ori":
            self._wx(ins.rd, r1 | (imm & _M64))
        elif m == "andi":
            self._wx(ins.rd, r1 & imm)
        elif m == "slli":
            self._wx(ins.rd, r1 << imm)
        elif m == "srli":
            self._wx(ins.rd, r1 >> imm)
        elif m == "srai":
            self._wx(ins.rd, _sx(r1, 64) >> imm)
        elif m == "addiw":
            self._wx(ins.rd, _sx(r1 + imm, 32))
        elif m == "slliw":
            self._wx(ins.rd, _sx(r1 << imm, 32))
        elif m == "srliw":
            self._wx(ins.rd, _sx((r1 & _M32) >> imm, 32))
        elif m == "sraiw":
            self._wx(ins.rd, _sx(r1, 32) >> imm)
        elif m == "lui":
            self._wx(ins.rd, _sx(imm << 12, 32))
        elif m == "auipc":
            self._wx(ins.rd, pc + _sx(imm << 12, 32))
        elif m in ("lb", "lh", "lw", "ld"):
            self._wx(ins.rd, self._load((r1 + imm) & _M64, ins.mem_size, True))
        elif m in ("lbu", "lhu", "lwu"):
            self._wx(ins.rd, self._load((r1 + imm) & _M64, ins.mem_size, False))
        elif m in ("sb", "sh", "sw", "sd"):
            self._store((r1 + imm) & _M64, r2, ins.mem_size)
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            s1, s2 = _sx(r1, 64), _sx(r2, 64)
            taken = {"beq": r1 == r2, "bne": r1 != r2, "blt": s1 < s2,
                     "bge": s1 >= s2, "bltu": r1 < r2, "bgeu": r1 >= r2}[m]
            if taken:
                nxt = pc + imm
        elif m == "jal":
            self._wx(ins.rd, nxt)
            nxt = pc + imm
        elif m == "jalr":
            target = (r1 + imm) & _M64 & ~1
            self._wx(ins.rd, pc + 4)
            nxt = target
        elif m in ("ecall", "ebreak"):
            self.halted = True
        elif m == "fence":
            pass
        else:  # pragma: no cover - decode() yields nothing else
            raise GoldenError(f"golden model: unimplemented {m}")
        self.pc = nxt

    @staticmethod
    def _divrem(s1: int, s2: int, bits: int, quotient: bool) -> int:
        """Signed division per the ISA: trunc toward zero, corner cases."""
        if s2 == 0:
            return -1 if quotient else s1
        if s1 == -(1 << (bits - 1)) and s2 == -1:  # signed overflow
            return s1 if quotient else 0
        q = abs(s1) // abs(s2)
        r = abs(s1) - q * abs(s2)
        if quotient:
            return -q if (s1 < 0) != (s2 < 0) else q
        return -r if s1 < 0 else r

    def _exec_fp(self, ins: Instr, r1: int) -> None:
        m = ins.mnemonic
        f = self.fregs
        ab = f[ins.rs1]
        cb = f[ins.rs2]

        if m == "fld":
            f[ins.rd] = self._load((r1 + ins.imm) & _M64, 8, False)
        elif m == "flw":
            f[ins.rd] = _widen_f32(self._load((r1 + ins.imm) & _M64, 4, False))
        elif m == "fsd":
            self._store((r1 + ins.imm) & _M64, cb, 8)
        elif m == "fsw":
            self._store((r1 + ins.imm) & _M64, _narrow_f64(cb), 4)
        elif m in ("fadd.d", "fsub.d", "fmul.d", "fdiv.d"):
            a, c = _f64(ab), _f64(cb)
            if m == "fadd.d":
                out = a + c
            elif m == "fsub.d":
                out = a - c
            elif m == "fmul.d":
                out = a * c
            else:
                out = _fdiv(a, c)
            f[ins.rd] = _pack_result(out)
        elif m in ("fadd.s", "fsub.s", "fmul.s", "fdiv.s"):
            a, c = _round_f32(_f64(ab)), _round_f32(_f64(cb))
            if m == "fadd.s":
                out = a + c
            elif m == "fsub.s":
                out = a - c
            elif m == "fmul.s":
                out = a * c
            else:
                out = _fdiv(a, c)
            f[ins.rd] = _pack_result(_round_f32(out))
        elif m == "fsqrt.d":
            f[ins.rd] = _pack_result(_fsqrt(_f64(ab)))
        elif m in ("fmadd.d", "fmsub.d", "fnmsub.d", "fnmadd.d"):
            a, c, d = _f64(ab), _f64(cb), _f64(f[ins.rs3])
            prod = a * c
            out = {"fmadd.d": prod + d, "fmsub.d": prod - d,
                   "fnmsub.d": -prod + d, "fnmadd.d": -prod - d}[m]
            f[ins.rd] = _pack_result(out)
        elif m == "fmin.d":
            f[ins.rd] = _fminmax(ab, cb, want_max=False)
        elif m == "fmax.d":
            f[ins.rd] = _fminmax(ab, cb, want_max=True)
        elif m == "fsgnj.d":
            f[ins.rd] = (ab & ~_SIGN64) | (cb & _SIGN64)
        elif m == "fsgnjn.d":
            f[ins.rd] = (ab & ~_SIGN64) | ((cb ^ _SIGN64) & _SIGN64)
        elif m == "fsgnjx.d":
            f[ins.rd] = ab ^ (cb & _SIGN64)
        elif m in ("feq.d", "flt.d", "fle.d"):
            if _is_nan64(ab) or _is_nan64(cb):
                res = 0
            else:
                a, c = _f64(ab), _f64(cb)
                res = int({"feq.d": a == c, "flt.d": a < c,
                           "fle.d": a <= c}[m])
            self._wx(ins.rd, res)
        elif m in ("fcvt.w.d", "fcvt.l.d"):
            bits = 32 if m == "fcvt.w.d" else 64
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            if _is_nan64(ab):
                res = hi
            else:
                a = _f64(ab)
                if math.isinf(a):
                    res = hi if a > 0 else lo
                else:
                    res = min(max(int(a), lo), hi)
            self._wx(ins.rd, res)
        elif m == "fcvt.d.w":
            f[ins.rd] = _bits(float(_sx(r1, 32)))
        elif m == "fcvt.d.l":
            f[ins.rd] = _bits(float(_sx(r1, 64)))
        elif m in ("fcvt.s.d", "fcvt.d.s"):
            f[ins.rd] = _canon(_widen_f32(_narrow_f64(ab)))
        elif m == "fmv.x.d":
            self._wx(ins.rd, ab)
        elif m == "fmv.d.x":
            f[ins.rd] = r1
        else:  # pragma: no cover
            raise GoldenError(f"golden model: unimplemented fp {m}")
