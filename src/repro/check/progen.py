"""Seeded property-based RISC-V program generator for differential checking.

Programs are emitted as assembly source (assembled with
:func:`repro.isa.assembler.assemble`) and are terminating by
construction: control flow is forward branches, bounded
counter-decrement loops, and calls to leaf routines placed after the
final ``ecall``.  Each program is a prologue that plants adversarial
constants (arithmetic edge values, page-straddling pointers, FP NaN and
rounding corners) followed by a seeded mix of stress blocks:

``alu_storm``      random R/I-type integer ops over the edge pool
``div_corners``    div/rem and the w-variants on overflow/zero pairs
``shift_mix``      shifts at boundary amounts via both imm and register
``mem_straddle``   loads/stores across 4 KiB page and address-space ends
``fp_corners``     NaN/±0/inf/denormal arithmetic, min/max, converts
``branch_maze``    dense forward-branch skips over short snippets
``loop_block``     a bounded loop with mixed work in the body
``call_block``     jal to a leaf routine that computes and returns

The generator only ever *writes* registers from its own pool (x0 is
included deliberately: writes must be ignored identically everywhere),
so the reserved counter/base/link registers stay stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..isa.assembler import assemble

__all__ = ["CheckProgram", "generate_program", "BLOCK_KINDS"]

_M64 = (1 << 64) - 1

#: interesting 64-bit integer constants (signed-overflow, masks, edges)
EDGE_INTS = (
    0, 1, 2, -1, -2, 0x7FF, -0x800,
    (1 << 31) - 1, 1 << 31, -(1 << 31), (1 << 32) - 1, 1 << 32,
    (1 << 63) - 1, -(1 << 63), -(1 << 62), 0x5555_5555_5555_5555,
    0xAAAA_AAAA_AAAA_AAAA, 0x8000_0000_0000_0001, 63, 64, 31, 32,
)

#: interesting double bit patterns (planted via fmv.d.x)
EDGE_FP_BITS = (
    0x0000_0000_0000_0000,  # +0.0
    0x8000_0000_0000_0000,  # -0.0
    0x3FF0_0000_0000_0000,  # 1.0
    0xBFF0_0000_0000_0000,  # -1.0
    0x7FF0_0000_0000_0000,  # +inf
    0xFFF0_0000_0000_0000,  # -inf
    0x7FF8_0000_0000_0000,  # canonical quiet NaN
    0x7FF8_DEAD_BEEF_0001,  # quiet NaN with a payload
    0x7FF0_0000_0000_0001,  # signalling NaN
    0x0000_0000_0000_0001,  # smallest subnormal
    0x000F_FFFF_FFFF_FFFF,  # largest subnormal
    0x7FEF_FFFF_FFFF_FFFF,  # largest finite
    0x3FF0_0000_0000_0001,  # 1.0 + ulp (rounding corners)
    0x4330_0000_0000_0000,  # 2^52
    0x41E0_0000_0000_0000,  # 2^31
    0xC3E0_0000_0000_0000,  # -2^63
    0x3810_0000_0000_0000,  # ~f32 subnormal territory
    0x47F0_0000_0000_0000,  # > f32 max (overflow on narrowing)
)

#: base address of the scratch data region (well clear of the text)
DATA_BASE = 0x20_0000
#: distance from DATA_BASE to its next 4 KiB page boundary
_PAGE = 4096

#: registers the generator may write (x0 on purpose; see module doc)
_WRITABLE = (0, 5, 6, 7, 10, 11, 12, 13, 14, 15, 16, 17, 28, 29)
#: registers holding planted constants / pointers (read-mostly)
_POOL = (5, 6, 7, 10, 11, 12, 13, 14, 15)
_BASES = (18, 19, 20)      # data pointers (s2..s4)
_COUNTER = 30              # loop counter (t5)
_LINK = 1                  # ra, reserved for call blocks
_FREGS = tuple(range(10))  # f0..f9 hold planted FP constants

_INT_R = ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or",
          "and", "addw", "subw", "sllw", "srlw", "sraw", "mul", "mulh",
          "mulhsu", "mulhu", "mulw")
_DIV_R = ("div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw")
_INT_I = ("addi", "slti", "sltiu", "xori", "ori", "andi", "addiw")
_SHIFT_I = ("slli", "srli", "srai", "slliw", "srliw", "sraiw")
_LOADS = ("lb", "lbu", "lh", "lhu", "lw", "lwu", "ld")
_STORES = ("sb", "sh", "sw", "sd")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_FP_ARITH = ("fadd.d", "fsub.d", "fmul.d", "fdiv.d",
             "fadd.s", "fsub.s", "fmul.s", "fdiv.s")
_FP_MINMAX = ("fmin.d", "fmax.d")
_FP_SIGN = ("fsgnj.d", "fsgnjn.d", "fsgnjx.d")
_FP_CMP = ("feq.d", "flt.d", "fle.d")
_FP_FMA = ("fmadd.d", "fmsub.d", "fnmsub.d", "fnmadd.d")
_FP_CVT = ("fcvt.w.d", "fcvt.l.d", "fcvt.s.d", "fcvt.d.s", "fsqrt.d")


@dataclass
class CheckProgram:
    """A generated (or corpus-loaded) checking program."""

    seed: int
    source: str
    base: int = 0x1_0000
    blocks: list[str] = field(default_factory=list)

    @property
    def words(self) -> list[int]:
        return assemble(self.source, base=self.base)


def _li64(rd: str, value: int) -> list[str]:
    """Load an arbitrary 64-bit constant: 9-bit seed + 5x(slli 11; ori)."""
    v = value & _M64
    out = [f"li {rd}, {v >> 55}"]
    for k in range(4, -1, -1):
        chunk = (v >> (11 * k)) & 0x7FF
        out.append(f"slli {rd}, {rd}, 11")
        if chunk:
            out.append(f"ori {rd}, {rd}, {chunk}")
    return out


class _Gen:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.lines: list[str] = []
        self.leaves: list[str] = []
        self.blocks: list[str] = []
        self._label = 0

    def label(self, stem: str) -> str:
        self._label += 1
        return f"{stem}_{self._label}"

    def xr(self) -> str:
        """A pool register to read."""
        return f"x{self.rng.choice(_POOL)}"

    def xw(self) -> str:
        """A register to write (may be x0)."""
        return f"x{self.rng.choice(_WRITABLE)}"

    def fr(self) -> str:
        return f"f{self.rng.choice(_FREGS)}"

    def fw(self) -> str:
        return f"f{self.rng.randrange(32)}"

    # -- prologue --------------------------------------------------------

    def prologue(self) -> None:
        rng = self.rng
        self.lines.append(f"# repro.check program, seed={self.seed}")
        for idx in _POOL:
            self.lines += _li64(f"x{idx}", rng.choice(EDGE_INTS))
        # data pointers: one page-aligned, one just short of a page
        # boundary, one at the very top of the address space
        offs = (0, _PAGE - rng.choice((1, 2, 3, 4, 7, 8)),
                -rng.choice((4, 8, 12, 16)))
        for reg, off in zip(_BASES, offs):
            addr = (DATA_BASE + off) & _M64 if off >= 0 else off & _M64
            self.lines += _li64(f"x{reg}", addr)
        for i in _FREGS:
            bits = rng.choice(EDGE_FP_BITS)
            self.lines += _li64("x31", bits)
            self.lines.append(f"fmv.d.x f{i}, x31")

    # -- blocks ----------------------------------------------------------

    def blk_alu_storm(self) -> None:
        rng = self.rng
        for _ in range(rng.randrange(6, 14)):
            if rng.random() < 0.5:
                self.lines.append(
                    f"{rng.choice(_INT_R)} {self.xw()}, {self.xr()}, {self.xr()}")
            else:
                imm = rng.choice((-2048, -1, 0, 1, 7, 2047, rng.randrange(-2048, 2048)))
                self.lines.append(
                    f"{rng.choice(_INT_I)} {self.xw()}, {self.xr()}, {imm}")

    def blk_div_corners(self) -> None:
        rng = self.rng
        for _ in range(rng.randrange(4, 9)):
            self.lines.append(
                f"{rng.choice(_DIV_R)} {self.xw()}, {self.xr()}, {self.xr()}")

    def blk_shift_mix(self) -> None:
        rng = self.rng
        for _ in range(rng.randrange(4, 10)):
            if rng.random() < 0.5:
                op = rng.choice(_SHIFT_I)
                hi = 31 if op.endswith("w") else 63
                amt = rng.choice((0, 1, hi - 1, hi, rng.randrange(hi + 1)))
                self.lines.append(f"{op} {self.xw()}, {self.xr()}, {amt}")
            else:
                op = rng.choice(("sll", "srl", "sra", "sllw", "srlw", "sraw"))
                self.lines.append(f"{op} {self.xw()}, {self.xr()}, {self.xr()}")

    def blk_mem_straddle(self) -> None:
        rng = self.rng
        for _ in range(rng.randrange(4, 10)):
            base = f"x{rng.choice(_BASES)}"
            off = rng.choice((-8, -4, -1, 0, 1, 2, 3, 4, 5, 7, 8, 12,
                              rng.randrange(-64, 64)))
            if rng.random() < 0.55:
                self.lines.append(f"{rng.choice(_STORES)} {self.xr()}, {off}({base})")
            else:
                self.lines.append(f"{rng.choice(_LOADS)} {self.xw()}, {off}({base})")
        if rng.random() < 0.5:  # FP spill/fill through the same pointers
            base = f"x{rng.choice(_BASES)}"
            off = rng.choice((-8, -4, 0, 4, 8))
            self.lines.append(f"fsd {self.fr()}, {off}({base})")
            self.lines.append(f"fld {self.fw()}, {off}({base})")
            self.lines.append(f"fsw {self.fr()}, {off}({base})")
            self.lines.append(f"flw {self.fw()}, {off}({base})")

    def blk_fp_corners(self) -> None:
        rng = self.rng
        for _ in range(rng.randrange(5, 12)):
            roll = rng.random()
            if roll < 0.35:
                self.lines.append(
                    f"{rng.choice(_FP_ARITH)} {self.fw()}, {self.fr()}, {self.fr()}")
            elif roll < 0.55:
                op = rng.choice(_FP_MINMAX + _FP_SIGN)
                self.lines.append(f"{op} {self.fw()}, {self.fr()}, {self.fr()}")
            elif roll < 0.7:
                self.lines.append(
                    f"{rng.choice(_FP_CMP)} {self.xw()}, {self.fr()}, {self.fr()}")
            elif roll < 0.85:
                op = rng.choice(_FP_CVT)
                if op in ("fcvt.w.d", "fcvt.l.d"):
                    self.lines.append(f"{op} {self.xw()}, {self.fr()}")
                else:
                    self.lines.append(f"{op} {self.fw()}, {self.fr()}")
            else:
                self.lines.append(
                    f"{rng.choice(_FP_FMA)} {self.fw()}, {self.fr()}, "
                    f"{self.fr()}, {self.fr()}")
        if rng.random() < 0.4:  # cross the register files
            self.lines.append(f"fmv.x.d {self.xw()}, {self.fr()}")
            self.lines.append(f"fcvt.d.l {self.fw()}, {self.xr()}")

    def blk_branch_maze(self) -> None:
        rng = self.rng
        for _ in range(rng.randrange(2, 5)):
            skip = self.label("skip")
            self.lines.append(
                f"{rng.choice(_BRANCHES)} {self.xr()}, {self.xr()}, {skip}")
            for _ in range(rng.randrange(1, 4)):
                self.lines.append(
                    f"{rng.choice(_INT_R)} {self.xw()}, {self.xr()}, {self.xr()}")
            self.lines.append(f"{skip}:")

    def blk_loop_block(self) -> None:
        rng = self.rng
        top = self.label("loop")
        count = rng.randrange(2, 7)
        self.lines.append(f"li x{_COUNTER}, {count}")
        self.lines.append(f"{top}:")
        for _ in range(rng.randrange(2, 6)):
            self.lines.append(
                f"{rng.choice(_INT_R)} {self.xw()}, {self.xr()}, {self.xr()}")
        if rng.random() < 0.4:
            base = f"x{rng.choice(_BASES)}"
            self.lines.append(f"sd x{_COUNTER}, 16({base})")
        self.lines.append(f"addi x{_COUNTER}, x{_COUNTER}, -1")
        self.lines.append(f"bnez x{_COUNTER}, {top}")

    def blk_call_block(self) -> None:
        rng = self.rng
        leaf = self.label("leaf")
        self.lines.append(f"call {leaf}")
        body = [f"{leaf}:"]
        for _ in range(rng.randrange(2, 6)):
            body.append(
                f"{rng.choice(_INT_R)} {self.xw()}, {self.xr()}, {self.xr()}")
        body.append("ret")
        self.leaves += body

    # -- assembly --------------------------------------------------------

    def build(self, n_blocks: int) -> CheckProgram:
        menu = (
            ("alu_storm", self.blk_alu_storm, 3),
            ("div_corners", self.blk_div_corners, 2),
            ("shift_mix", self.blk_shift_mix, 2),
            ("mem_straddle", self.blk_mem_straddle, 3),
            ("fp_corners", self.blk_fp_corners, 3),
            ("branch_maze", self.blk_branch_maze, 2),
            ("loop_block", self.blk_loop_block, 1),
            ("call_block", self.blk_call_block, 1),
        )
        names = [m[0] for m in menu]
        weights = [m[2] for m in menu]
        fns = {m[0]: m[1] for m in menu}
        self.prologue()
        for _ in range(n_blocks):
            pick = self.rng.choices(names, weights=weights)[0]
            self.blocks.append(pick)
            self.lines.append(f"# block: {pick}")
            fns[pick]()
        self.lines.append("ecall")
        self.lines += self.leaves
        source = "\n".join(self.lines) + "\n"
        return CheckProgram(seed=self.seed, source=source, blocks=self.blocks)


#: the block kinds a seed may draw from
BLOCK_KINDS = ("alu_storm", "div_corners", "shift_mix", "mem_straddle",
               "fp_corners", "branch_maze", "loop_block", "call_block")


def generate_program(seed: int, n_blocks: int | None = None) -> CheckProgram:
    """Deterministically generate one checking program from *seed*."""
    gen = _Gen(seed)
    if n_blocks is None:
        n_blocks = gen.rng.randrange(5, 11)
    prog = gen.build(n_blocks)
    prog.words  # assemble now: a generator bug should fail here, loudly
    return prog
