"""Top-level fuzz/check driver: generate, cross-check, shrink, report.

:func:`run_check` is what ``repro check --seeds N`` executes and what CI's
``check-smoke`` job calls: for each seed it generates a program and pushes
it through the oracle tiers of :mod:`repro.check.oracle`.  The cheap
architectural tiers (golden, lint) run on every seed; the timing tiers
are strided so a default run stays minutes, not hours, while every named
configuration and every tier still gets exercised:

* ``accel``: every seed on a rotating pair drawn from ALL_CONFIGS, so
  ``seeds >= len(ALL_CONFIGS)/2`` covers every configuration; pass
  ``accel_all=True`` (CLI ``--accel-all``) to run all configs per seed.
* ``batch``: strided on its own offset — the config-batched sweep
  engine against serial per-config jobs (including a killed-and-resumed
  batched leg), on a seed-rotated microbench kernel and config pair.
* ``checkpoint``: every ``checkpoint_every``-th seed.
* ``instrument``: same stride, offset by half, so the instrumented
  bit-identity proof exercises different seeds than ``checkpoint``.
* ``farm``: once per invocation, over a sample of the generated programs.
* ``chaos``: once per invocation, over the same sample — the serve
  layer under seeded fault schedules (worker kill, host stall, crash +
  ``recover=True`` restart, on-disk corruption), held to termination
  and bit-identity against a fault-free serial run.

On a divergence the failing program is shrunk (ddmin over source lines)
and written to the corpus, so the finding is reproducible before anyone
starts debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from .chaos import diff_chaos
from .oracle import (Divergence, diff_accel, diff_batch, diff_checkpoint,
                     diff_farm, diff_golden, diff_instrument,
                     lint_invariants, run_program)
from .progen import CheckProgram, generate_program
from .shrink import (category_predicate, diff_category, shrink_program,
                     write_corpus_entry)

__all__ = ["CheckReport", "run_check", "ALL_TIERS"]

ALL_TIERS = ("golden", "lint", "accel", "batch", "checkpoint", "instrument",
             "farm", "chaos")


@dataclass
class CheckReport:
    """Outcome of one checking run."""

    seeds: int
    divergences: list[Divergence] = field(default_factory=list)
    tier_programs: dict[str, int] = field(default_factory=dict)
    corpus_files: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [f"repro check: {self.seeds} seed(s)"]
        for tier in ALL_TIERS:
            if tier in self.tier_programs:
                n_div = sum(1 for d in self.divergences if d.oracle == tier)
                state = "ok" if n_div == 0 else f"{n_div} divergence(s)"
                lines.append(f"  {tier:<10} {self.tier_programs[tier]:>4} "
                             f"program(s)  {state}")
        for div in self.divergences[:20]:
            lines.append(f"  ! {div}")
        if len(self.divergences) > 20:
            lines.append(f"  ... and {len(self.divergences) - 20} more")
        for path in self.corpus_files:
            lines.append(f"  shrunk repro written: {path}")
        lines.append("PASS: zero divergences" if self.ok
                     else f"FAIL: {len(self.divergences)} divergence(s)")
        return "\n".join(lines)


def _safe(tier: str, seed: int, fn: Callable[[], list[str]]
          ) -> list[Divergence]:
    """Run one oracle; an exception is itself a divergence."""
    try:
        details = fn()
    except Exception as exc:
        return [Divergence(tier, seed,
                           f"crash:{type(exc).__name__} {exc}")]
    return [Divergence(tier, seed, d) for d in details]


def run_check(seeds: int = 25, start_seed: int = 0,
              tiers: Sequence[str] = ALL_TIERS,
              accel_configs: Sequence[str] | None = None,
              accel_all: bool = False,
              checkpoint_every: int = 5,
              farm_sample: int = 3,
              shrink: bool = True,
              corpus_dir: Path | None = None,
              progress: Callable[[str], None] | None = None) -> CheckReport:
    """Generate *seeds* programs and run the selected oracle *tiers*.

    Returns a :class:`CheckReport`; ``report.ok`` is the pass/fail bit.
    """
    from ..soc.presets import ALL_CONFIGS

    say = progress or (lambda msg: None)
    unknown = set(tiers) - set(ALL_TIERS)
    if unknown:
        raise ValueError(f"unknown tier(s) {sorted(unknown)}; "
                         f"available: {list(ALL_TIERS)}")
    report = CheckReport(seeds=seeds)
    tier_count = {t: 0 for t in tiers}
    all_names = sorted(ALL_CONFIGS)
    farm_progs: list[CheckProgram] = []

    for n, seed in enumerate(range(start_seed, start_seed + seeds)):
        prog = generate_program(seed)
        say(f"seed {seed}: {len(prog.words)} instructions "
            f"[{', '.join(prog.blocks)}]")
        interp = None

        if "golden" in tiers:
            tier_count["golden"] += 1
            found = _safe("golden", seed, lambda: diff_golden(prog))
            report.divergences += found
            if found and shrink:
                report.corpus_files.append(_shrink_golden(
                    prog, found[0], corpus_dir, say))
                continue  # architectural state is wrong: skip timing tiers

        try:
            interp = run_program(prog)
            trace = interp.trace_so_far
        except Exception as exc:
            report.divergences.append(Divergence(
                "golden", seed, f"interpreter crash: "
                f"{type(exc).__name__}: {exc}"))
            continue

        if "lint" in tiers:
            tier_count["lint"] += 1
            report.divergences += _safe(
                "lint", seed, lambda: lint_invariants(trace))

        if "accel" in tiers:
            if accel_configs is not None:
                names = list(accel_configs)
            elif accel_all:
                names = all_names
            else:  # rotate a pair per seed: full coverage every few seeds
                i = (2 * n) % len(all_names)
                names = [all_names[i],
                         all_names[(i + 1) % len(all_names)]]
            tier_count["accel"] += 1
            found = _safe("accel", seed,
                          lambda: diff_accel(trace, config_names=names))
            report.divergences += found
            if found and shrink:
                report.corpus_files.append(_shrink_accel(
                    prog, found[0], corpus_dir, say))

        # strided on its own offset; rotates kernel and config pair per
        # invocation so repeated CI runs walk the whole cross product.
        # The batch oracle runs on microbench kernels (the sweep engine's
        # domain), not on the generated program — the seed picks which.
        if ("batch" in tiers
                and n % checkpoint_every == checkpoint_every - 1):
            from ..workloads.microbench import runnable_kernels
            kernel_names = [k.spec.name for k in runnable_kernels()]
            kname = kernel_names[seed % len(kernel_names)]
            i = (2 * n) % len(all_names)
            pair = [all_names[i], all_names[(i + 1) % len(all_names)]]
            tier_count["batch"] += 1
            report.divergences += _safe(
                "batch", seed,
                lambda: diff_batch(kname, config_names=pair, seed=seed))

        if "checkpoint" in tiers and n % checkpoint_every == 0:
            tier_count["checkpoint"] += 1
            report.divergences += _safe(
                "checkpoint", seed, lambda: diff_checkpoint(trace, seed))

        # strided like checkpoint (it embeds a checkpoint/restore), but
        # offset so the two timing tiers hit different seeds
        if ("instrument" in tiers
                and n % checkpoint_every == checkpoint_every // 2):
            tier_count["instrument"] += 1
            report.divergences += _safe(
                "instrument", seed, lambda: diff_instrument(trace, seed))

        if (("farm" in tiers or "chaos" in tiers)
                and len(farm_progs) < farm_sample):
            farm_progs.append(prog)

    if "farm" in tiers and farm_progs:
        tier_count["farm"] = len(farm_progs)
        say(f"farm tier: {len(farm_progs)} program(s), 2 workers + replay")
        report.divergences += _safe("farm", farm_progs[0].seed,
                                    lambda: diff_farm(farm_progs))

    if "chaos" in tiers and farm_progs:
        tier_count["chaos"] = len(farm_progs)
        say(f"chaos tier: {len(farm_progs)} program(s), crash/recover "
            f"+ host stall")
        report.divergences += _safe("chaos", farm_progs[0].seed,
                                    lambda: diff_chaos(farm_progs))

    report.tier_programs = {t: c for t, c in tier_count.items() if c}
    return report


def _shrink_golden(prog: CheckProgram, first: Divergence,
                   corpus_dir: Path | None,
                   say: Callable[[str], None]) -> Path:
    say(f"shrinking golden divergence for seed {prog.seed} ...")
    category = diff_category(first.detail)
    fails = category_predicate(diff_golden, category)
    small = shrink_program(prog, fails)
    path = write_corpus_entry(small, "golden", first.detail,
                              corpus_dir=corpus_dir)
    say(f"wrote {path} ({len(small.words)} instructions)")
    return path


def _shrink_accel(prog: CheckProgram, first: Divergence,
                  corpus_dir: Path | None,
                  say: Callable[[str], None]) -> Path:
    say(f"shrinking accel divergence for seed {prog.seed} ...")
    config = first.detail.split(":", 1)[0].strip()

    def accel_diffs(p: CheckProgram) -> list[str]:
        interp = run_program(p)
        return diff_accel(interp.trace_so_far, config_names=(config,))

    fails = category_predicate(accel_diffs, diff_category(first.detail))
    small = shrink_program(prog, fails, max_checks=120)
    path = write_corpus_entry(small, "accel", first.detail,
                              corpus_dir=corpus_dir)
    say(f"wrote {path} ({len(small.words)} instructions)")
    return path
