"""Differential oracles: run one program through every independent path.

Each tier executes the same generated program (or its micro-op trace)
through two implementations that must agree, and returns a list of
human-readable divergence strings (empty = agreement):

``golden``      :class:`repro.isa.interp.Interpreter` vs the bit-level
                :class:`repro.check.golden.GoldenMachine` — full
                architectural state (both register files, memory, pc).
``accel``       ``accel="on"`` vs ``accel="off"`` timing runs across
                named configs — CoreResult and telemetry snapshots
                (accel-only counters excluded, they differ by design).
``checkpoint``  a run interrupted at a seeded quantum, checkpointed, and
                restored into a fresh system (reusing the original
                watchdog, as a crash-recovery supervisor would) vs the
                straight-through run.
``instrument``  a run with trace windows / counter sampling / marker
                decoding attached (and one checkpoint-interrupted and
                re-armed) vs the bare run — results must be
                bit-identical and the stream well-formed.
``farm``        programs executed as farm jobs, 2 workers + cache replay,
                vs in-process serial execution.
``lint``        internal invariants on a single instrumented run: CPI
                stacks sum exactly, counter deltas are monotone, stats
                snapshots survive the JSON and CSV round trips.
"""

from __future__ import annotations

import json
import random
import struct
import tempfile
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from ..isa.interp import Interpreter
from .golden import GoldenMachine
from .progen import CheckProgram

__all__ = [
    "Divergence",
    "diff_accel",
    "diff_batch",
    "diff_checkpoint",
    "diff_farm",
    "diff_golden",
    "diff_instrument",
    "lint_invariants",
    "run_program",
]

_M64 = (1 << 64) - 1
DEFAULT_FUEL = 200_000


@dataclass
class Divergence:
    """One disagreement between two paths that must match."""

    oracle: str     #: tier name: golden | accel | checkpoint | farm | lint
    seed: int       #: generating seed (-1 for corpus programs)
    detail: str     #: what differed, with both values

    def __str__(self) -> str:
        return f"[{self.oracle}] seed={self.seed}: {self.detail}"


def _fbits(v: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", v))[0]


def _interp_mem_bytes(mem) -> dict[int, int]:
    """Canonical {byte address: value} view of the interpreter memory."""
    out: dict[int, int] = {}
    for pno, mask in mem._present.items():
        page = mem._pages[pno]
        base = pno << 12
        off = 0
        while mask:
            if mask & 1:
                out[base + off] = page[off]
            mask >>= 1
            off += 1
    return out


def run_program(prog: CheckProgram, fuel: int = DEFAULT_FUEL) -> Interpreter:
    """Execute *prog* on the interpreter (trace retained for the timing
    tiers); returns the finished interpreter."""
    interp = Interpreter(prog.words, base=prog.base, trace=True)
    interp.run(fuel)
    return interp


# -- tier 1: interpreter vs golden semantics --------------------------------


def diff_golden(prog: CheckProgram, fuel: int = DEFAULT_FUEL,
                interp: Interpreter | None = None) -> list[str]:
    """Full architectural diff of the interpreter against the golden
    model; every line names one mismatching piece of state."""
    if interp is None:
        interp = run_program(prog, fuel)
    gold = GoldenMachine(prog.words, base=prog.base).run(fuel)

    diffs: list[str] = []
    if interp.retired != gold.retired:
        diffs.append(f"retired: interp={interp.retired} golden={gold.retired}")
    if interp.halted != gold.halted:
        diffs.append(f"halted: interp={interp.halted} golden={gold.halted}")
    if interp.pc != gold.pc:
        diffs.append(f"pc: interp={interp.pc:#x} golden={gold.pc:#x}")
    for i in range(32):
        a, b = interp.regs[i] & _M64, gold.xregs[i]
        if a != b:
            diffs.append(f"x{i}: interp={a:#018x} golden={b:#018x}")
    for i in range(32):
        a, b = _fbits(interp.fregs[i]), gold.fregs[i]
        if a != b:
            diffs.append(f"f{i}: interp={a:#018x} golden={b:#018x}")
    imem = _interp_mem_bytes(interp.mem)
    gmem = {a: v for a, v in gold.mem.items()}
    for addr in sorted(set(imem) | set(gmem)):
        a, b = imem.get(addr), gmem.get(addr)
        if a != b:
            diffs.append(f"mem[{addr:#x}]: interp={a} golden={b}")
            if len(diffs) > 40:  # a wild store sprays thousands of bytes
                diffs.append("... memory diff truncated")
                break
    return diffs


# -- tier 2: accel on vs off across configs ---------------------------------


def _canon(x):
    if isinstance(x, dict):
        return {k: _canon(v) for k, v in x.items()}
    if isinstance(x, (list, tuple)):
        return [_canon(v) for v in x]
    if hasattr(x, "tolist"):
        return x.tolist()
    return x


def _strip_accel(snapdata: dict) -> dict:
    """Snapshot tree minus the accel-only counters (differ by design)."""
    data = json.loads(json.dumps(_canon(snapdata)))
    data.pop("accel", None)
    for tile in data.get("tiles", []):
        tile.pop("accel", None)
    return data


def _dict_diff(a: dict, b: dict, prefix: str = "",
               labels: tuple[str, str] = ("on", "off")) -> list[str]:
    la, lb = labels
    out: list[str] = []
    for k in sorted(set(a) | set(b)):
        ka, kb = a.get(k), b.get(k)
        path = f"{prefix}.{k}" if prefix else str(k)
        if isinstance(ka, dict) and isinstance(kb, dict):
            out += _dict_diff(ka, kb, path, labels)
        elif ka != kb:
            out.append(f"{path}: {la}={ka!r} {lb}={kb!r}")
    return out


def diff_accel(trace, config_names: Sequence[str] | None = None,
               seed: int = 0) -> list[str]:
    """``accel="on"`` vs ``accel="off"`` on *trace* for every config."""
    from ..soc.presets import ALL_CONFIGS, get_config
    from ..soc.system import System
    from ..telemetry import StatsRegistry

    names = sorted(ALL_CONFIGS) if config_names is None else list(config_names)
    diffs: list[str] = []
    for name in names:
        per_mode = {}
        for mode in ("on", "off"):
            system = System(get_config(name).with_(accel=mode))
            reg = StatsRegistry(system)
            base = reg.snapshot()
            result = system.run(trace)
            per_mode[mode] = (asdict(result),
                              _strip_accel(reg.delta(base).data))
        r_on, t_on = per_mode["on"]
        r_off, t_off = per_mode["off"]
        for line in _dict_diff(_canon(r_on), _canon(r_off)):
            diffs.append(f"{name}: result.{line}")
        for line in _dict_diff(t_on, t_off):
            diffs.append(f"{name}: telemetry.{line}")
    return diffs


# -- tier 3: checkpoint/restore at a random quantum vs straight-through ----


def diff_checkpoint(trace, seed: int, config_name: str = "Rocket2",
                    quantum: int = 256, chunk: int = 128) -> list[str]:
    """Interrupt, checkpoint, crash, restore, finish — compare with the
    uninterrupted run.

    The donor run keeps executing *after* the checkpoint (the crash it
    models happens later), and the restore reuses the donor's watchdog —
    exactly what a retrying supervisor does.  A correct restore re-arms
    the watchdog; a stale one sees the resumed (earlier) lane clocks as
    "no progress" and hangs spuriously.
    """
    from ..reliability import SimulationHang
    from ..reliability.watchdog import LockstepWatchdog
    from ..soc.presets import get_config
    from ..soc.system import System

    cfg = get_config(config_name).with_(accel="off")
    ntiles = min(2, cfg.ncores)
    traces = [trace] * ntiles

    ref = System(cfg).run_parallel(traces, quantum=quantum, chunk=chunk)

    watchdog = LockstepWatchdog(k_quanta=4)
    donor_sys = System(cfg)
    donor = donor_sys.start_parallel(traces, quantum=quantum, chunk=chunk,
                                     watchdog=watchdog)
    rng = random.Random(seed ^ 0xC0FFEE)
    budget = rng.randrange(1, 8)
    for _ in range(budget):
        if not donor.step():
            break
    if donor.done:  # too short to interrupt: straight-through only
        got = donor.results()
        return [f"{config_name}: tile {i} short-run mismatch: {d}"
                for i, (a, b) in enumerate(zip(got, ref))
                for d in _dict_diff(_canon(asdict(a)), _canon(asdict(b)))]
    ckpt = donor.checkpoint()
    donor.run()  # the modelled crash happens after more progress

    resumed = System(cfg).restore(ckpt, traces, watchdog=watchdog)
    try:
        resumed.run()
    except SimulationHang as exc:
        return [f"{config_name}: spurious watchdog hang after restore "
                f"(quantum={quantum}, ckpt@{budget}): {exc}"]
    got = resumed.results()
    diffs: list[str] = []
    for i, (a, b) in enumerate(zip(got, ref)):
        for line in _dict_diff(_canon(asdict(a)), _canon(asdict(b))):
            diffs.append(f"{config_name}: tile {i} resumed vs straight: {line}")
    return diffs


# -- tier: instrumented vs bare ----------------------------------------------


def diff_instrument(trace, seed: int, config_name: str = "Rocket2",
                    quantum: int = 256, chunk: int = 128) -> list[str]:
    """Instrumentation must be pure observation: a run with trace
    windows, counter sampling, and marker decoding attached — including
    one interrupted by a checkpoint and restored with the instrument
    re-armed — must produce results bit-identical to the bare run, and
    its stream must be well-formed (meta first, seal last, every window
    open balanced by a close).
    """
    from ..instrument import (Instrument, InstrumentSpec, TraceTrigger,
                              read_stream)
    from ..soc.presets import get_config
    from ..soc.system import System

    cfg = get_config(config_name).with_(accel="off")
    ntiles = min(2, cfg.ncores)
    traces = [trace] * ntiles

    ref = System(cfg).run_parallel(traces, quantum=quantum, chunk=chunk)
    total_cycles = int(max((r.cycles for r in ref), default=0))

    rng = random.Random(seed ^ 0x1A7E)
    spec = InstrumentSpec(
        triggers=(
            TraceTrigger(start_cycle=rng.randrange(1, max(2, total_cycles)),
                         length=rng.randrange(0, 64), label="chk"),
            TraceTrigger(length=32, label="head"),   # overlapping window
        ),
        counter_interval=max(1, total_cycles // 3 or 1),
    )

    diffs: list[str] = []

    # straight-through instrumented run
    sys_i = System(cfg)
    inst = Instrument(spec)
    sys_i.attach_instrument(inst)
    got = sys_i.run_parallel(traces, quantum=quantum, chunk=chunk)
    inst.seal()
    for i, (a, b) in enumerate(zip(got, ref)):
        for line in _dict_diff(_canon(asdict(a)), _canon(asdict(b))):
            diffs.append(f"{config_name}: tile {i} instrumented vs bare: "
                         f"{line}")
    diffs += _lint_stream(read_stream(inst.stream), config_name)

    # interrupted + restored with the instrument re-armed mid-window
    donor_sys = System(cfg)
    donor_inst = Instrument(spec)
    donor_sys.attach_instrument(donor_inst)
    donor = donor_sys.start_parallel(traces, quantum=quantum, chunk=chunk)
    for _ in range(rng.randrange(1, 8)):
        if not donor.step():
            break
    if not donor.done:
        ckpt = donor.checkpoint()
        donor_inst.seal(reason="checkpoint")
        resume_sys = System(cfg)
        resume_inst = Instrument(spec)
        resume_sys.attach_instrument(resume_inst)
        resumed = resume_sys.restore(ckpt, traces)
        resumed.run()
        resume_inst.seal()
        for i, (a, b) in enumerate(zip(resumed.results(), ref)):
            for line in _dict_diff(_canon(asdict(a)), _canon(asdict(b))):
                diffs.append(f"{config_name}: tile {i} instrumented resume "
                             f"vs bare: {line}")
    return diffs


def _lint_stream(records: list[dict], config_name: str) -> list[str]:
    """Structural well-formedness of one parsed stream."""
    out = []
    if not records:
        return [f"{config_name}: instrument stream is empty"]
    if records[0].get("t") != "meta":
        out.append(f"{config_name}: stream does not start with meta: "
                   f"{records[0]}")
    if records[-1].get("t") != "seal":
        out.append(f"{config_name}: stream is not sealed: {records[-1]}")
    opens = sum(1 for r in records
                if r.get("t") == "window" and r.get("event") == "open")
    closes = sum(1 for r in records
                 if r.get("t") == "window" and r.get("event") == "close")
    if opens != closes:
        out.append(f"{config_name}: {opens} window opens vs {closes} closes")
    known = {"meta", "window", "trace", "counter", "marker", "seal"}
    for r in records:
        if r.get("t") not in known:
            out.append(f"{config_name}: unknown record kind {r.get('t')!r}")
            break
    return out


# -- tier 4: farm vs serial --------------------------------------------------


# -- batch tier: config-batched sweep vs serial per-config jobs -------------


def diff_batch(kernel: str, config_names: Sequence[str] | None = None,
               seed: int = 0, scale: float = 0.3,
               resume: bool = True) -> list[str]:
    """Config-batched sweep vs serial per-config jobs, bit-for-bit.

    Three legs over the same (kernel, scale, seed) and config set, with
    every in-process cache cleared between them so memoization can never
    mask a divergence:

    1. *serial*: one ``Job.kernel`` per config through
       :func:`~repro.farm.job.execute_job` — the farm's ordinary path.
    2. *batched*: one ``Job.sweep`` over all configs — the compiled
       trace is shared and the in-order configs solve each span in a
       single config-vectorized call.
    3. *resume* (on by default): the batched job again, but killed by an
       injected worker fault after half the configs and restarted from
       its mid-run checkpoint.

    Every per-config payload must agree across all legs.
    """
    import json as _json
    import tempfile

    from ..accel import memo
    from ..farm.job import ExecContext, Job, execute_job
    from ..reliability.faults import Fault, FaultInjected
    from ..soc.presets import ALL_CONFIGS, get_config

    names = sorted(ALL_CONFIGS) if config_names is None else list(config_names)
    configs = [get_config(n) for n in names]
    diffs: list[str] = []

    memo.clear_caches()
    serial = {}
    for cfg in configs:
        payload = execute_job(Job.kernel(cfg, kernel, scale=scale, seed=seed))
        serial[cfg.name] = _json.loads(_json.dumps(payload))

    sweep_job = Job.sweep(configs, kernel, scale=scale, seed=seed)
    memo.clear_caches()
    batched = execute_job(sweep_job)["points"]

    for name in names:
        for line in _dict_diff(batched[name], serial[name],
                               labels=("batched", "serial")):
            diffs.append(f"{name}: {line}")

    if resume and len(configs) > 1:
        kill_at = max(1, len(configs) // 2)
        fault = Fault("kill", (("after", kill_at),))
        with tempfile.TemporaryDirectory() as ckpt_dir:
            memo.clear_caches()
            ctx = ExecContext(fault=fault, checkpoint_dir=ckpt_dir,
                              checkpoint_every=1, in_process=True)
            try:
                execute_job(sweep_job, ctx=ctx)
                diffs.append("resume: injected kill fault did not fire")
            except FaultInjected:
                pass
            memo.clear_caches()
            ctx2 = ExecContext(checkpoint_dir=ckpt_dir, in_process=True)
            resumed = execute_job(sweep_job, ctx=ctx2)["points"]
            if not ctx2.meta.get("resumed"):
                diffs.append("resume: retry did not pick up the checkpoint")
            for name in names:
                for line in _dict_diff(resumed[name], batched[name],
                                       labels=("resumed", "batched")):
                    diffs.append(f"{name}: {line}")

    return diffs


def diff_farm(progs: Iterable[CheckProgram],
              config_name: str = "Rocket1", workers: int = 2) -> list[str]:
    """Execute programs as farm jobs (parallel + cache replay) and diff
    every payload against in-process serial execution."""
    from ..farm import Job, ResultCache, RunFarm
    from ..soc.presets import get_config

    cfg = get_config(config_name)
    jobs = [Job.checkprog(cfg, f"check-{p.seed}", p.source, base=p.base)
            for p in progs]
    if not jobs:
        return []

    serial = RunFarm(workers=1).run(jobs)
    diffs: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-check-farm-") as tmp:
        cache = ResultCache(tmp)
        parallel = RunFarm(workers=workers, cache=cache).run(jobs)
        replay = RunFarm(workers=workers, cache=cache).run(jobs)
    for s, p, r in zip(serial, parallel, replay):
        label = s.job.workload
        if not (s.ok and p.ok and r.ok):
            diffs.append(f"{label}: status serial={s.status} "
                         f"parallel={p.status} replay={r.status}")
            continue
        for line in _dict_diff(p.payload, s.payload):
            diffs.append(f"{label}: parallel vs serial: {line}")
        for line in _dict_diff(r.payload, s.payload):
            diffs.append(f"{label}: cache replay vs serial: {line}")
        if not r.from_cache:
            diffs.append(f"{label}: replay was not served from cache")
    return diffs


# -- tier 5: invariant lint --------------------------------------------------


def _parse_csv(text: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for line in text.strip().splitlines()[1:]:  # drop the header
        key, _, value = line.partition(",")
        out[key] = value
    return out


def lint_invariants(trace, config_name: str = "Rocket1") -> list[str]:
    """Telemetry invariants on one instrumented run of *trace*."""
    from ..soc.presets import get_config
    from ..soc.system import System
    from ..telemetry import BUCKETS, Snapshot, StatsRegistry, cpi_stack

    diffs: list[str] = []
    system = System(get_config(config_name).with_(accel="off"))
    reg = StatsRegistry(system)
    before = reg.snapshot()
    result = system.run(trace)
    after = reg.snapshot()
    delta = after - before

    # 1. counter deltas are monotone (counters only ever count up)
    for key, value in delta.flat().items():
        if isinstance(value, (int, float)) and value < 0:
            diffs.append(f"counter went backwards: {key} delta={value}")

    # 2. the CPI stack sums exactly and covers every bucket
    stack = cpi_stack(system, result, delta)
    total = sum(stack.buckets.values())
    if total != result.cycles:
        diffs.append(f"cpi stack sums to {total}, cycles={result.cycles}")
    if set(stack.buckets) != set(BUCKETS):
        diffs.append(f"cpi stack buckets {sorted(stack.buckets)} != "
                     f"{sorted(BUCKETS)}")

    # 3. snapshots round-trip through JSON and CSV
    for snap in (before, after):
        back = Snapshot.from_json(snap.to_json())
        if back != snap:
            diffs.append("snapshot JSON round-trip lost data")
        flat = {k: str(v) for k, v in snap.flat().items()}
        csv_flat = _parse_csv(snap.to_csv())
        if flat != csv_flat:
            missing = set(flat) ^ set(csv_flat)
            changed = {k for k in set(flat) & set(csv_flat)
                       if flat[k] != csv_flat[k]}
            diffs.append(f"snapshot CSV round-trip mismatch: "
                         f"keys={sorted(missing)[:5]} "
                         f"values={sorted(changed)[:5]}")
    return diffs
