"""Chaos oracle tier: the serve layer under seeded fault schedules.

:func:`diff_chaos` is the ``chaos`` tier of ``repro check``: it drives a
real :class:`~repro.serve.server.FarmServer` (background thread, forked
workers, unix socket) through the fault schedules of
:mod:`repro.reliability.faults` and holds it to the same oracle contract
as every other tier — **every submitted job terminates, and every
payload is bit-identical to a fault-free serial run**.

Two scenarios run per invocation:

* **crash/recover** — a worker-kill fault and a dropped client
  connection land mid-batch, then the server is hard-crashed (workers
  SIGKILLed, streams unsealed, journal torn wherever it stands) after
  the first job completes.  Results and store entries of every other
  job are corrupted on disk.  A ``recover=True`` restart must replay
  the journal, keep the completed job's payload without re-running it,
  and re-run everything else to bit-identical payloads.
* **stall/quarantine** — a ``host-stall`` fault hangs the first launch
  on one host of a two-host fleet.  The watchdog timeout must trip the
  health breaker (``quarantine_after=1``), the stalled job must be
  re-placed on the healthy host at no cost to its retry budget, and
  the payloads must still match serial.

Everything is keyed on deterministic ordinals (admission order, request
order, per-host launch order), so a failing schedule replays exactly.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Iterable

from .progen import CheckProgram

__all__ = ["diff_chaos"]

#: worker-kill on the first job's first attempt + drop the first client
#: connection (the client's bounded retry must absorb it)
CRASH_PLAN = "kill job=0 attempt=1; socket-drop request=1"

#: hang the first worker launch placed on host ``a``
STALL_PLAN = "host-stall host=a count=1"


def _jobs(progs: Iterable[CheckProgram], config_name: str):
    from ..farm import Job
    from ..soc.presets import get_config

    cfg = get_config(config_name)
    return [Job.checkprog(cfg, f"chaos-{p.seed}", p.source, base=p.base)
            for p in progs]


def _corrupt_file(path: Path) -> None:
    """Garble one on-disk artifact the way real disk damage would."""
    if path.exists():
        path.write_bytes(b"\x00chaos-garbage\x00")


def diff_chaos(progs: Iterable[CheckProgram],
               config_name: str = "Rocket1",
               stall: bool = True,
               timeout_s: float = 60.0) -> list[str]:
    """Run the chaos scenarios over *progs*; returns divergence strings."""
    from ..farm import execute_job

    jobs = _jobs(progs, config_name)
    if not jobs:
        return []
    serial = [execute_job(j) for j in jobs]
    diffs = _crash_recover(jobs, serial, timeout_s)
    if stall:
        diffs += _stall_quarantine(jobs[:2], serial[:2], timeout_s)
    return diffs


def _crash_recover(jobs, serial, timeout_s: float) -> list[str]:
    from ..farm.cache import ResultCache, cache_key
    from ..reliability import FaultPlan
    from ..serve import FarmServer

    diffs: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        spool = Path(tmp) / "spool"
        plan = FaultPlan.parse(CRASH_PLAN)
        handle = FarmServer.start_background(
            spool, deploy="local:1", backoff_s=0.01, max_retries=2,
            fault_plan=plan)
        client = handle.client()
        # ids are assigned in admission order: jobs[i] -> j000{i+1}
        ids = [client.submit(j, tenant="chaos")["id"] for j in jobs]
        first = client.wait(ids[0], timeout_s=timeout_s, poll_s=0.01)
        if first["state"] != "ok":
            diffs.append(f"{ids[0]}: pre-crash state {first['state']} "
                         f"(error={first['error']})")
        if first["attempts"] != 2:
            diffs.append(f"{ids[0]}: kill fault gave attempts="
                         f"{first['attempts']}, want 2 (1 kill + 1 retry)")
        handle.crash()

        # disk damage while the server is down: every job but the first
        # loses its persisted result and its store entry
        store = ResultCache(spool / "store")
        for job, jid in zip(jobs[1:], ids[1:]):
            _corrupt_file(spool / "results" / f"{jid}.json")
            _corrupt_file(store.path(cache_key(job)))

        handle = FarmServer.start_background(
            spool, deploy="local:1", backoff_s=0.01, max_retries=2,
            recover=True)
        client = handle.client()
        try:
            for job, jid, ref in zip(jobs, ids, serial):
                done = client.wait(jid, timeout_s=timeout_s, poll_s=0.01)
                if done["state"] != "ok":
                    diffs.append(f"{jid}: post-recover state "
                                 f"{done['state']} (error={done['error']})")
                    continue
                got = client.status(jid, payload=True)["payload"]
                if got != ref:
                    diffs.append(f"{jid}: recovered payload diverges "
                                 f"from serial")
            after = client.status(ids[0], payload=True)
            if after["attempts"] != first["attempts"]:
                diffs.append(
                    f"{ids[0]}: completed job re-ran across recovery "
                    f"(attempts {first['attempts']} -> {after['attempts']})")
            if after["payload"] != serial[0]:
                diffs.append(f"{ids[0]}: restored payload diverges "
                             f"from serial")
        finally:
            handle.stop()
        records = [json.loads(line) for line in
                   (spool / "journal.jsonl").read_text().splitlines()]
        recover = [r for r in records if r.get("t") == "recover"]
        if not recover or recover[-1]["restored"] < 1:
            diffs.append(f"journal replay restored nothing: {recover}")
    return diffs


def _stall_quarantine(jobs, serial, timeout_s: float) -> list[str]:
    from ..reliability import FaultPlan
    from ..serve import FarmServer

    diffs: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        handle = FarmServer.start_background(
            Path(tmp) / "spool", deploy="hosts:a=1,b=1", backoff_s=0.01,
            max_retries=1, timeout_s=1.0, fault_plan=FaultPlan.parse(
                STALL_PLAN),
            suspect_after=1, quarantine_after=1, probe_interval=1000)
        try:
            client = handle.client()
            # job 0 dispatches to host a immediately and stalls there
            ids = [client.submit(j, tenant="chaos")["id"] for j in jobs]
            for jid, ref in zip(ids, serial):
                done = client.wait(jid, timeout_s=timeout_s, poll_s=0.01)
                if done["state"] != "ok":
                    diffs.append(f"{jid}: stall scenario state "
                                 f"{done['state']} (error={done['error']})")
                    continue
                if client.status(jid, payload=True)["payload"] != ref:
                    diffs.append(f"{jid}: payload diverges from serial "
                                 f"after host stall")
            victim = client.status(ids[0])
            if victim["host"] != "b":
                diffs.append(f"{ids[0]}: stalled job finished on "
                             f"{victim['host']!r}, want healthy host 'b'")
            if victim["attempts"] != 2:
                diffs.append(f"{ids[0]}: stalled job attempts="
                             f"{victim['attempts']}, want 2")
            hosts = {h["name"]: h for h in
                     client.status()["deploy"]["hosts"]}
            if hosts["a"]["state"] != "quarantined":
                diffs.append(f"host a not quarantined after stall: "
                             f"{hosts['a']['state']}")
        finally:
            handle.stop()
    return diffs
