"""FireSim-style simulation management and FPGA host-rate modeling."""

from .host import BXE_U250, HostModel, host_model_for
from .manager import FireSimManager, SimulationReport

__all__ = [
    "HostModel",
    "BXE_U250",
    "host_model_for",
    "FireSimManager",
    "SimulationReport",
]
