"""FPGA host-rate model: how long FireSim takes on the wall clock.

FireSim simulates at MHz-class host rates (paper §3.2.2: ~60 MHz for the
Rocket designs and ~15 MHz for BOOM on the Alveo U250s of LBNL's BXE
cluster — roughly 25x and 135x slower than the 1.6/2.0 GHz targets).  The
token-based DRAM/LLC models further stall the host to preserve target
timing; we fold that into an efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HostModel", "BXE_U250", "host_model_for"]


@dataclass(frozen=True)
class HostModel:
    """One FPGA host running one target design."""

    name: str
    host_mhz: float             #: achieved simulation rate
    fpga: str = "Xilinx Alveo U250"
    #: fraction of host cycles doing useful target work (token stalls,
    #: DMA, and bridge overhead eat the rest)
    efficiency: float = 0.85
    build_hours: float = 6.0    #: bitstream build time (Vivado P&R)

    def __post_init__(self) -> None:
        if self.host_mhz <= 0:
            raise ValueError("host_mhz must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    def wall_seconds(self, target_cycles: int) -> float:
        """Host wall-clock to simulate *target_cycles*."""
        return target_cycles / (self.host_mhz * 1e6 * self.efficiency)

    def slowdown(self, target_ghz: float) -> float:
        """How much slower than the real target this simulation runs."""
        return target_ghz * 1e3 / self.host_mhz


@dataclass(frozen=True)
class BXE_U250:
    """The LBNL Berkeley eXtensible Environment cluster (paper §3.1.1)."""

    nodes: int = 22
    cpus_per_node: str = "AMD EPYC 7282 16-Core"
    fpgas_per_node: int = 1


def host_model_for(config) -> HostModel:
    """Host model for a FireSim SoC config (uses its ``host_mhz``)."""
    if config.host_mhz is None:
        raise ValueError(
            f"{config.name} is a silicon reference, not a FireSim design"
        )
    return HostModel(name=f"{config.name}@U250", host_mhz=config.host_mhz)
