"""FireSim-style simulation manager.

The manager is the user-facing entry point for "running something in
FireSim": it builds a :class:`repro.soc.System` from a FireSim design
(refusing silicon references), runs workloads, and reports both *target*
time (what the simulated machine would take) and estimated *host*
wall-clock (what the FPGA cluster spends), mirroring how the real
``firesim`` manager reports simulation progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.trace import Trace
from ..smpi.runtime import RankResult, run_mpi
from ..soc.config import SoCConfig
from ..soc.system import System
from .host import HostModel, host_model_for

__all__ = ["SimulationReport", "FireSimManager"]


@dataclass
class SimulationReport:
    """Outcome of one FireSim simulation."""

    design: str
    target_cycles: int
    target_seconds: float
    host_seconds: float
    slowdown: float
    instructions: int = 0
    ranks: list[RankResult] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"[{self.design}] target {self.target_seconds * 1e3:.3f} ms "
            f"({self.target_cycles} cycles), host ~{self.host_seconds:.1f} s "
            f"({self.slowdown:.0f}x slowdown)"
        )


class FireSimManager:
    """Drive simulations of one FireSim design."""

    def __init__(self, config: SoCConfig) -> None:
        if config.is_silicon:
            raise ValueError(
                f"{config.name} is physical-hardware reference; FireSim "
                "only simulates the Rocket/BOOM designs"
            )
        self.config = config
        self.host: HostModel = host_model_for(config)
        self.system = System(config)

    def reset(self) -> None:
        """Fresh target state (new System), as a new simulation run would."""
        self.system = System(self.config)

    # -- single-core trace workloads ------------------------------------------

    def run_trace(self, trace: Trace, tile: int = 0) -> SimulationReport:
        """Simulate a single instruction trace on one tile."""
        result = self.system.run(trace, tile=tile)
        return self._report(result.cycles, result.instructions)

    # -- MPI workloads -------------------------------------------------------

    def run_mpi(self, nranks: int, program) -> SimulationReport:
        """Simulate an MPI rank program across the design's tiles."""
        results = run_mpi(self.system, nranks, program)
        cycles = max(r.cycles for r in results)
        instrs = sum(r.instructions for r in results)
        rep = self._report(cycles, instrs)
        rep.ranks = results
        return rep

    def _report(self, cycles: int, instructions: int) -> SimulationReport:
        ghz = self.config.core_ghz
        return SimulationReport(
            design=self.config.name,
            target_cycles=cycles,
            target_seconds=cycles / (ghz * 1e9),
            host_seconds=self.host.wall_seconds(cycles),
            slowdown=self.host.slowdown(ghz),
            instructions=instructions,
        )
