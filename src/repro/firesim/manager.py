"""FireSim-style simulation manager.

The manager is the user-facing entry point for "running something in
FireSim": it builds a :class:`repro.soc.System` from a FireSim design
(refusing silicon references), runs workloads, and reports both *target*
time (what the simulated machine would take) and estimated *host*
wall-clock (what the FPGA cluster spends), mirroring how the real
``firesim`` manager reports simulation progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..isa.trace import Trace
from ..smpi.runtime import RankResult, SMPIRuntime
from ..soc.config import SoCConfig
from ..soc.system import System
from ..telemetry import CPIStack, Snapshot, StatsRegistry, cpi_stack, cpi_stacks
from .host import HostModel, host_model_for

__all__ = ["SimulationReport", "FireSimManager"]


@dataclass
class SimulationReport:
    """Outcome of one FireSim simulation."""

    design: str
    target_cycles: int
    target_seconds: float
    host_seconds: float
    slowdown: float
    instructions: int = 0
    ranks: list[RankResult] = field(default_factory=list)
    #: counter delta over the run (see repro.telemetry)
    telemetry: Snapshot | None = None
    #: per-tile/per-rank cycle attribution for the run
    cpi: list[CPIStack] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"[{self.design}] target {self.target_seconds * 1e3:.3f} ms "
            f"({self.target_cycles} cycles), host ~{self.host_seconds:.1f} s "
            f"({self.slowdown:.0f}x slowdown)"
        )


class FireSimManager:
    """Drive simulations of one FireSim design."""

    def __init__(self, config: SoCConfig) -> None:
        if config.is_silicon:
            raise ValueError(
                f"{config.name} is physical-hardware reference; FireSim "
                "only simulates the Rocket/BOOM designs"
            )
        self.config = config
        self.host: HostModel = host_model_for(config)
        self.system = System(config)
        self.registry = StatsRegistry(self.system)
        #: scheduler counters of the most recent :meth:`run_batch`
        self.farm_stats = None

    def reset(self) -> None:
        """Fresh target state (new System), as a new simulation run would."""
        self.system = System(self.config)
        self.registry = StatsRegistry(self.system)

    # -- single-core trace workloads ------------------------------------------

    def run_trace(self, trace: Trace, tile: int = 0) -> SimulationReport:
        """Simulate a single instruction trace on one tile."""
        base = self.registry.snapshot()
        result = self.system.run(trace, tile=tile)
        rep = self._report(result.cycles, result.instructions)
        rep.telemetry = self.registry.delta(base)
        rep.cpi = [cpi_stack(self.system, result, rep.telemetry, tile=tile)]
        return rep

    # -- MPI workloads -------------------------------------------------------

    def run_mpi(self, nranks: int, program) -> SimulationReport:
        """Simulate an MPI rank program across the design's tiles."""
        runtime = SMPIRuntime(self.system, nranks, registry=self.registry)
        results = runtime.run(program)
        cycles = max(r.cycles for r in results)
        instrs = sum(r.instructions for r in results)
        rep = self._report(cycles, instrs)
        rep.ranks = results
        rep.telemetry = runtime.telemetry
        rep.cpi = cpi_stacks(self.system, results, rep.telemetry,
                             comm_cycles=[r.comm_cycles for r in results])
        return rep

    # -- batch workloads (the run farm) --------------------------------------

    def run_batch(self, kernels: Sequence[str], scale: float = 1.0,
                  seed: int = 0, *, workers: int | None = None,
                  cache=None, timeout_s: float | None = None,
                  max_retries: int = 2,
                  on_event: Callable | None = None,
                  quantum: int | None = None,
                  fault_plan=None,
                  checkpoint_dir=None, checkpoint_every: int = 8,
                  manifest_path=None) -> list[SimulationReport]:
        """Farm a batch of MicroBench kernels for this design.

        The batch entry point mirrors ``firesim runworkload``: each
        kernel becomes an independent :class:`repro.farm.Job`, the list
        is sharded across ``workers`` processes (default
        ``$REPRO_WORKERS``), and results come back in kernel order as
        full :class:`SimulationReport` objects — telemetry snapshot and
        CPI stack included — bit-identical to running each kernel
        serially.  Farm counters land on :attr:`farm_stats`.  Any job
        that still fails after its retries raises.

        With *quantum* set, each kernel runs through the token-lockstep
        path in quanta of that many cycles; combined with
        *checkpoint_dir* that makes every job checkpointable, so a
        crashed/killed/timed-out worker's retry resumes mid-run instead
        of restarting (see :mod:`repro.reliability`).  *fault_plan*
        injects deterministic chaos for testing that machinery.
        """
        from ..farm import Job, RunFarm

        jobs = [Job.kernel(self.config, name, scale=scale, seed=seed,
                           quantum=quantum)
                for name in kernels]
        farm = RunFarm(workers=workers, cache=cache, timeout_s=timeout_s,
                       max_retries=max_retries, on_event=on_event,
                       fault_plan=fault_plan, checkpoint_dir=checkpoint_dir,
                       checkpoint_every=checkpoint_every,
                       manifest_path=manifest_path)
        results = farm.run(jobs)
        self.farm_stats = farm.stats
        failed = [r for r in results if not r.ok]
        if failed:
            lines = "; ".join(f"{r.job.label}: {r.error}" for r in failed)
            raise RuntimeError(
                f"{len(failed)}/{len(results)} batch job(s) failed: {lines}")
        return [self._report_from_payload(r.payload) for r in results]

    def _report_from_payload(self, payload: dict[str, Any]) -> SimulationReport:
        """Rehydrate a farmed job payload into a SimulationReport."""
        rep = self._report(payload["cycles"], payload["instructions"])
        if payload.get("telemetry") is not None:
            rep.telemetry = Snapshot(payload["telemetry"])
        rep.cpi = [CPIStack.from_dict(d) for d in payload.get("cpi", [])]
        return rep

    def _report(self, cycles: int, instructions: int) -> SimulationReport:
        ghz = self.config.core_ghz
        return SimulationReport(
            design=self.config.name,
            target_cycles=cycles,
            target_seconds=cycles / (ghz * 1e9),
            host_seconds=self.host.wall_seconds(cycles),
            slowdown=self.host.slowdown(ghz),
            instructions=instructions,
        )
