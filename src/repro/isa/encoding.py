"""RV64IMFD instruction encoding and decoding.

This is a real (if subset) RISC-V ISA layer: 32-bit instruction words for
RV64I plus the M extension and the F/D floating-point extensions, with
encode/decode round-tripping.  It exists
so that small kernels can be authored in assembly (see
:mod:`repro.isa.assembler`), executed functionally
(:mod:`repro.isa.interp`), and lowered to the micro-op traces the timing
models consume — demonstrating the full path from machine code to timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .opcodes import OpClass

__all__ = ["Instr", "encode", "decode", "DecodeError", "MNEMONICS"]


class DecodeError(ValueError):
    """Raised when an instruction word does not decode to a known format."""


# Major opcodes (bits [6:0])
_OP = 0b0110011
_OP_32 = 0b0111011
_OP_IMM = 0b0010011
_OP_IMM_32 = 0b0011011
_LOAD = 0b0000011
_STORE = 0b0100011
_BRANCH = 0b1100011
_JAL = 0b1101111
_JALR = 0b1100111
_LUI = 0b0110111
_AUIPC = 0b0010111
_SYSTEM = 0b1110011
_MISC_MEM = 0b0001111
_LOAD_FP = 0b0000111
_STORE_FP = 0b0100111
_OP_FP = 0b1010011
_FMADD = 0b1000011
_FMSUB = 0b1000111
_FNMSUB = 0b1001011
_FNMADD = 0b1001111

# mnemonic -> (format, opcode, funct3, funct7)
# FP formats: RF = OP-FP R-type (funct3 = rm or sub-op), R4 = fused
# multiply-add with rs3, IF/SF = fp load/store
_R = "R"; _I = "I"; _S = "S"; _B = "B"; _U = "U"; _J = "J"
_RF = "RF"; _R4 = "R4"; _IF = "IF"; _SF = "SF"
_SPEC: dict[str, tuple[str, int, int, int]] = {
    # RV64I R-type
    "add":  (_R, _OP, 0b000, 0b0000000),
    "sub":  (_R, _OP, 0b000, 0b0100000),
    "sll":  (_R, _OP, 0b001, 0b0000000),
    "slt":  (_R, _OP, 0b010, 0b0000000),
    "sltu": (_R, _OP, 0b011, 0b0000000),
    "xor":  (_R, _OP, 0b100, 0b0000000),
    "srl":  (_R, _OP, 0b101, 0b0000000),
    "sra":  (_R, _OP, 0b101, 0b0100000),
    "or":   (_R, _OP, 0b110, 0b0000000),
    "and":  (_R, _OP, 0b111, 0b0000000),
    "addw": (_R, _OP_32, 0b000, 0b0000000),
    "subw": (_R, _OP_32, 0b000, 0b0100000),
    "sllw": (_R, _OP_32, 0b001, 0b0000000),
    "srlw": (_R, _OP_32, 0b101, 0b0000000),
    "sraw": (_R, _OP_32, 0b101, 0b0100000),
    # M extension
    "mul":    (_R, _OP, 0b000, 0b0000001),
    "mulh":   (_R, _OP, 0b001, 0b0000001),
    "mulhsu": (_R, _OP, 0b010, 0b0000001),
    "mulhu":  (_R, _OP, 0b011, 0b0000001),
    "div":    (_R, _OP, 0b100, 0b0000001),
    "divu":   (_R, _OP, 0b101, 0b0000001),
    "rem":    (_R, _OP, 0b110, 0b0000001),
    "remu":   (_R, _OP, 0b111, 0b0000001),
    "mulw":   (_R, _OP_32, 0b000, 0b0000001),
    "divw":   (_R, _OP_32, 0b100, 0b0000001),
    "divuw":  (_R, _OP_32, 0b101, 0b0000001),
    "remw":   (_R, _OP_32, 0b110, 0b0000001),
    "remuw":  (_R, _OP_32, 0b111, 0b0000001),
    # I-type ALU
    "addi":  (_I, _OP_IMM, 0b000, 0),
    "slti":  (_I, _OP_IMM, 0b010, 0),
    "sltiu": (_I, _OP_IMM, 0b011, 0),
    "xori":  (_I, _OP_IMM, 0b100, 0),
    "ori":   (_I, _OP_IMM, 0b110, 0),
    "andi":  (_I, _OP_IMM, 0b111, 0),
    "slli":  (_I, _OP_IMM, 0b001, 0b000000),
    "srli":  (_I, _OP_IMM, 0b101, 0b000000),
    "srai":  (_I, _OP_IMM, 0b101, 0b010000),
    "addiw": (_I, _OP_IMM_32, 0b000, 0),
    "slliw": (_I, _OP_IMM_32, 0b001, 0b0000000),
    "srliw": (_I, _OP_IMM_32, 0b101, 0b0000000),
    "sraiw": (_I, _OP_IMM_32, 0b101, 0b0100000),
    # loads
    "lb":  (_I, _LOAD, 0b000, 0),
    "lh":  (_I, _LOAD, 0b001, 0),
    "lw":  (_I, _LOAD, 0b010, 0),
    "ld":  (_I, _LOAD, 0b011, 0),
    "lbu": (_I, _LOAD, 0b100, 0),
    "lhu": (_I, _LOAD, 0b101, 0),
    "lwu": (_I, _LOAD, 0b110, 0),
    # stores
    "sb": (_S, _STORE, 0b000, 0),
    "sh": (_S, _STORE, 0b001, 0),
    "sw": (_S, _STORE, 0b010, 0),
    "sd": (_S, _STORE, 0b011, 0),
    # branches
    "beq":  (_B, _BRANCH, 0b000, 0),
    "bne":  (_B, _BRANCH, 0b001, 0),
    "blt":  (_B, _BRANCH, 0b100, 0),
    "bge":  (_B, _BRANCH, 0b101, 0),
    "bltu": (_B, _BRANCH, 0b110, 0),
    "bgeu": (_B, _BRANCH, 0b111, 0),
    # jumps / upper-immediate
    "jal":   (_J, _JAL, 0, 0),
    "jalr":  (_I, _JALR, 0b000, 0),
    "lui":   (_U, _LUI, 0, 0),
    "auipc": (_U, _AUIPC, 0, 0),
    # system
    "ecall":  (_I, _SYSTEM, 0b000, 0),
    "ebreak": (_I, _SYSTEM, 0b000, 0),
    "fence":  (_I, _MISC_MEM, 0b000, 0),
    # F/D loads and stores
    "flw": (_IF, _LOAD_FP, 0b010, 0),
    "fld": (_IF, _LOAD_FP, 0b011, 0),
    "fsw": (_SF, _STORE_FP, 0b010, 0),
    "fsd": (_SF, _STORE_FP, 0b011, 0),
    # D arithmetic (funct3 = rounding mode, fixed RNE here)
    "fadd.d":  (_RF, _OP_FP, 0b000, 0b0000001),
    "fsub.d":  (_RF, _OP_FP, 0b000, 0b0000101),
    "fmul.d":  (_RF, _OP_FP, 0b000, 0b0001001),
    "fdiv.d":  (_RF, _OP_FP, 0b000, 0b0001101),
    "fsqrt.d": (_RF, _OP_FP, 0b000, 0b0101101),   # rs2 must be 0
    "fmin.d":  (_RF, _OP_FP, 0b000, 0b0010101),
    "fmax.d":  (_RF, _OP_FP, 0b001, 0b0010101),
    "fsgnj.d": (_RF, _OP_FP, 0b000, 0b0010001),
    "fsgnjn.d": (_RF, _OP_FP, 0b001, 0b0010001),
    "fsgnjx.d": (_RF, _OP_FP, 0b010, 0b0010001),
    # S arithmetic
    "fadd.s":  (_RF, _OP_FP, 0b000, 0b0000000),
    "fsub.s":  (_RF, _OP_FP, 0b000, 0b0000100),
    "fmul.s":  (_RF, _OP_FP, 0b000, 0b0001000),
    "fdiv.s":  (_RF, _OP_FP, 0b000, 0b0001100),
    # D comparisons (rd is an integer register)
    "feq.d": (_RF, _OP_FP, 0b010, 0b1010001),
    "flt.d": (_RF, _OP_FP, 0b001, 0b1010001),
    "fle.d": (_RF, _OP_FP, 0b000, 0b1010001),
    # conversions (the sub-op lives in the rs2 field)
    "fcvt.w.d":  (_RF, _OP_FP, 0b001, 0b1100001),  # rm=rtz encoded as f3
    "fcvt.l.d":  (_RF, _OP_FP, 0b001, 0b1100001),  # distinguished by rs2
    "fcvt.d.w":  (_RF, _OP_FP, 0b000, 0b1101001),
    "fcvt.d.l":  (_RF, _OP_FP, 0b000, 0b1101001),
    "fcvt.s.d":  (_RF, _OP_FP, 0b000, 0b0100000),
    "fcvt.d.s":  (_RF, _OP_FP, 0b000, 0b0100001),
    # moves between register files (raw bits)
    "fmv.x.d": (_RF, _OP_FP, 0b000, 0b1110001),
    "fmv.d.x": (_RF, _OP_FP, 0b000, 0b1111001),
    # fused multiply-add, double
    "fmadd.d":  (_R4, _FMADD, 0b000, 0b01),
    "fmsub.d":  (_R4, _FMSUB, 0b000, 0b01),
    "fnmsub.d": (_R4, _FNMSUB, 0b000, 0b01),
    "fnmadd.d": (_R4, _FNMADD, 0b000, 0b01),
}

#: the rs2 sub-op code for conversion instructions
_CVT_RS2 = {
    "fcvt.w.d": 0, "fcvt.l.d": 2,
    "fcvt.d.w": 0, "fcvt.d.l": 2,
    "fcvt.s.d": 1, "fcvt.d.s": 0,
}
#: sqrt/cvt/mv use rs2 as a sub-op or fix it to zero
_NO_RS2 = {"fsqrt.d", "fmv.x.d", "fmv.d.x"} | set(_CVT_RS2)

#: operand register files: which of rd/rs1/rs2/rs3 are FP registers
FP_RD = {m for m in ("flw", "fld", "fadd.d", "fsub.d", "fmul.d", "fdiv.d",
                     "fsqrt.d", "fmin.d", "fmax.d", "fsgnj.d", "fsgnjn.d",
                     "fsgnjx.d", "fadd.s", "fsub.s", "fmul.s", "fdiv.s",
                     "fcvt.d.w", "fcvt.d.l", "fcvt.s.d", "fcvt.d.s",
                     "fmv.d.x", "fmadd.d", "fmsub.d", "fnmsub.d", "fnmadd.d")}
FP_RS1 = {m for m in ("fadd.d", "fsub.d", "fmul.d", "fdiv.d", "fsqrt.d",
                      "fmin.d", "fmax.d", "fsgnj.d", "fsgnjn.d", "fsgnjx.d",
                      "fadd.s", "fsub.s", "fmul.s", "fdiv.s",
                      "feq.d", "flt.d", "fle.d", "fcvt.w.d", "fcvt.l.d",
                      "fcvt.s.d", "fcvt.d.s", "fmv.x.d",
                      "fmadd.d", "fmsub.d", "fnmsub.d", "fnmadd.d")}
FP_RS2 = {m for m in ("fadd.d", "fsub.d", "fmul.d", "fdiv.d", "fmin.d",
                      "fmax.d", "fsgnj.d", "fsgnjn.d", "fsgnjx.d",
                      "fadd.s", "fsub.s", "fmul.s", "fdiv.s",
                      "feq.d", "flt.d", "fle.d", "fsw", "fsd",
                      "fmadd.d", "fmsub.d", "fnmsub.d", "fnmadd.d")}

#: All supported mnemonics.
MNEMONICS = frozenset(_SPEC)

_LOAD_SIZES = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4,
               "ld": 8, "flw": 4, "fld": 8}
_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8, "fsw": 4, "fsd": 8}
_SHIFT_IMM = {"slli", "srli", "srai", "slliw", "srliw", "sraiw"}


@dataclass(frozen=True)
class Instr:
    """A decoded (or to-be-encoded) instruction."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    rs3: int = 0  #: fused multiply-add third source (R4 format only)

    def __post_init__(self) -> None:
        if self.mnemonic not in _SPEC:
            raise DecodeError(f"unknown mnemonic {self.mnemonic!r}")
        for r in (self.rd, self.rs1, self.rs2, self.rs3):
            if not 0 <= r < 32:
                raise DecodeError(f"register x{r} out of range in {self.mnemonic}")

    @property
    def fmt(self) -> str:
        return _SPEC[self.mnemonic][0]

    @property
    def mem_size(self) -> int:
        """Access width in bytes for loads/stores, else 0."""
        return _LOAD_SIZES.get(self.mnemonic) or _STORE_SIZES.get(self.mnemonic) or 0

    @property
    def op_class(self) -> OpClass:
        """Micro-op class this instruction lowers to."""
        m = self.mnemonic
        if m in _LOAD_SIZES:
            return OpClass.LOAD
        if m in _STORE_SIZES:
            return OpClass.STORE
        if m in ("mul", "mulh", "mulhsu", "mulhu", "mulw"):
            return OpClass.INT_MUL
        if m in ("div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"):
            return OpClass.INT_DIV
        if self.fmt == _B:
            return OpClass.BRANCH
        if m == "jal":
            return OpClass.CALL if self.rd != 0 else OpClass.JUMP
        if m == "jalr":
            # RISC-V calling convention: jalr x0, 0(ra) is a return.
            if self.rd == 0 and self.rs1 in (1, 5):
                return OpClass.RET
            return OpClass.CALL if self.rd != 0 else OpClass.JUMP
        if m in ("ecall", "ebreak"):
            return OpClass.CSR
        if m == "fence":
            return OpClass.FENCE
        if self.fmt == _R4:
            return OpClass.FP_FMA
        if m.startswith(("fadd", "fsub", "fmin", "fmax")) or m.startswith(
                ("feq", "flt", "fle")):
            return OpClass.FP_ADD
        if m.startswith("fmul"):
            return OpClass.FP_MUL
        if m.startswith("fdiv"):
            return OpClass.FP_DIV
        if m.startswith("fsqrt"):
            return OpClass.FP_SQRT
        if m.startswith("fcvt"):
            return OpClass.FP_CVT
        if m.startswith(("fsgnj", "fmv")):
            return OpClass.FP_MOV
        return OpClass.INT_ALU

    def __str__(self) -> str:
        m = self.mnemonic

        def reg(idx: int, fp: bool) -> str:
            return f"{'f' if fp else 'x'}{idx}"

        if self.fmt == _R4:
            return (f"{m} f{self.rd}, f{self.rs1}, f{self.rs2}, f{self.rs3}")
        if self.fmt == _RF:
            rd = reg(self.rd, m in FP_RD)
            rs1 = reg(self.rs1, m in FP_RS1)
            if m in _NO_RS2:
                return f"{m} {rd}, {rs1}"
            return f"{m} {rd}, {rs1}, {reg(self.rs2, m in FP_RS2)}"
        if self.fmt == _IF:
            return f"{m} f{self.rd}, {self.imm}(x{self.rs1})"
        if self.fmt == _SF:
            return f"{m} f{self.rs2}, {self.imm}(x{self.rs1})"
        if self.fmt == _R:
            return f"{m} x{self.rd}, x{self.rs1}, x{self.rs2}"
        if m in _LOAD_SIZES or m == "jalr":
            return f"{m} x{self.rd}, {self.imm}(x{self.rs1})"
        if m in _STORE_SIZES:
            return f"{m} x{self.rs2}, {self.imm}(x{self.rs1})"
        if self.fmt == _B:
            return f"{m} x{self.rs1}, x{self.rs2}, {self.imm}"
        if self.fmt == _U or m == "jal":
            return f"{m} x{self.rd}, {self.imm}"
        if m in ("ecall", "ebreak", "fence"):
            return m
        return f"{m} x{self.rd}, x{self.rs1}, {self.imm}"


def _check_range(value: int, bits: int, name: str, signed: bool = True) -> None:
    lo, hi = (-(1 << (bits - 1)), (1 << (bits - 1)) - 1) if signed else (0, (1 << bits) - 1)
    if not lo <= value <= hi:
        raise DecodeError(f"{name} immediate {value} out of {bits}-bit range")


def encode(ins: Instr) -> int:
    """Encode an :class:`Instr` into a 32-bit instruction word."""
    fmt, opcode, f3, f7 = _SPEC[ins.mnemonic]
    rd, rs1, rs2, imm = ins.rd, ins.rs1, ins.rs2, ins.imm
    if fmt == _R:
        return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
    if fmt == _RF:
        if ins.mnemonic in _CVT_RS2:
            rs2 = _CVT_RS2[ins.mnemonic]
        elif ins.mnemonic in _NO_RS2:
            rs2 = 0
        return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
    if fmt == _R4:
        # f7 holds the 2-bit fmt field for R4 encodings
        return ((ins.rs3 << 27) | (f7 << 25) | (rs2 << 20) | (rs1 << 15)
                | (f3 << 12) | (rd << 7) | opcode)
    if fmt == _IF:
        _check_range(imm, 12, ins.mnemonic)
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
    if fmt == _SF:
        _check_range(imm, 12, ins.mnemonic)
        i = imm & 0xFFF
        return ((i >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | ((i & 0x1F) << 7) | opcode
    if fmt == _I:
        if ins.mnemonic == "ebreak":
            imm = 1
        if ins.mnemonic in _SHIFT_IMM:
            maxsh = 31 if ins.mnemonic.endswith("w") else 63
            if not 0 <= imm <= maxsh:
                raise DecodeError(f"shift amount {imm} out of range")
            top = f7 << (26 if maxsh == 63 else 25)
            return top | (imm << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
        _check_range(imm, 12, ins.mnemonic)
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
    if fmt == _S:
        _check_range(imm, 12, ins.mnemonic)
        i = imm & 0xFFF
        return ((i >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | ((i & 0x1F) << 7) | opcode
    if fmt == _B:
        _check_range(imm, 13, ins.mnemonic)
        if imm & 1:
            raise DecodeError("branch offset must be 2-byte aligned")
        i = imm & 0x1FFF
        return (
            ((i >> 12) << 31) | (((i >> 5) & 0x3F) << 25) | (rs2 << 20)
            | (rs1 << 15) | (f3 << 12) | (((i >> 1) & 0xF) << 8)
            | (((i >> 11) & 1) << 7) | opcode
        )
    if fmt == _U:
        _check_range(imm, 20, ins.mnemonic, signed=False)
        return ((imm & 0xFFFFF) << 12) | (rd << 7) | opcode
    if fmt == _J:
        _check_range(imm, 21, ins.mnemonic)
        if imm & 1:
            raise DecodeError("jump offset must be 2-byte aligned")
        i = imm & 0x1FFFFF
        return (
            ((i >> 20) << 31) | (((i >> 1) & 0x3FF) << 21) | (((i >> 11) & 1) << 20)
            | (((i >> 12) & 0xFF) << 12) | (rd << 7) | opcode
        )
    raise DecodeError(f"unhandled format {fmt}")  # pragma: no cover


def _sext(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


_BY_KEY: dict[tuple[int, int, int], str] = {}
for _m, (_f, _opc, _f3, _f7) in _SPEC.items():
    if _f == _R:
        _BY_KEY[(_opc, _f3, _f7)] = _m
_I_BY_KEY: dict[tuple[int, int], str] = {
    (opc, f3): m
    for m, (f, opc, f3, _) in _SPEC.items()
    if f in (_I, _S, _B) and m not in ("srai", "sraiw", "ebreak")
}

_FP_LS_BY_F3 = {
    (opc, f3): m for m, (f, opc, f3, _) in _SPEC.items() if f in (_IF, _SF)
}
#: OP-FP decode: f7-only for arithmetic (funct3 is a rounding mode there),
#: (f7, f3) for the sub-op groups, (f7, rs2) for conversions
_FP_ARITH_BY_F7 = {
    f7: m for m, (f, opc, f3, f7) in _SPEC.items()
    if f == _RF and m.split(".")[0] in
    ("fadd", "fsub", "fmul", "fdiv", "fsqrt")
}
_FP_SUBOP_BY_F7_F3 = {
    (f7, f3): m for m, (f, opc, f3, f7) in _SPEC.items()
    if f == _RF and m.split(".")[0] in
    ("fmin", "fmax", "fsgnj", "fsgnjn", "fsgnjx", "feq", "flt", "fle")
}
_FP_CVT_BY_F7_RS2 = {
    (_SPEC[m][3], rs2): m for m, rs2 in _CVT_RS2.items()
}
_FP_MV_BY_F7 = {_SPEC["fmv.x.d"][3]: "fmv.x.d", _SPEC["fmv.d.x"][3]: "fmv.d.x"}
_R4_BY_OPCODE = {
    opc: m for m, (f, opc, f3, f7) in _SPEC.items() if f == _R4
}


def decode(word: int) -> Instr:
    """Decode a 32-bit instruction word back into an :class:`Instr`."""
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    f3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    f7 = (word >> 25) & 0x7F
    if opcode in (_OP, _OP_32):
        m = _BY_KEY.get((opcode, f3, f7))
        if m is None:
            raise DecodeError(f"unknown R-type word {word:#010x}")
        return Instr(m, rd=rd, rs1=rs1, rs2=rs2)
    if opcode in (_OP_IMM, _OP_IMM_32):
        if f3 == 0b001 or f3 == 0b101:  # shifts
            word32 = opcode == _OP_IMM_32
            sh_bits = 5 if word32 else 6
            shamt = (word >> 20) & ((1 << sh_bits) - 1)
            arith = bool((word >> (25 if word32 else 26)) & (0b0100000 >> (0 if word32 else 1)) or
                         ((word >> 30) & 1))
            if f3 == 0b001:
                m = "slliw" if word32 else "slli"
            else:
                if word32:
                    m = "sraiw" if arith else "srliw"
                else:
                    m = "srai" if arith else "srli"
            return Instr(m, rd=rd, rs1=rs1, imm=shamt)
        m = _I_BY_KEY.get((opcode, f3))
        if m is None:
            raise DecodeError(f"unknown OP-IMM word {word:#010x}")
        return Instr(m, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
    if opcode in (_LOAD, _JALR):
        m = _I_BY_KEY.get((opcode, f3))
        if m is None:
            raise DecodeError(f"unknown load/jalr word {word:#010x}")
        return Instr(m, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
    if opcode == _STORE:
        m = _I_BY_KEY.get((opcode, f3))
        if m is None:
            raise DecodeError(f"unknown store word {word:#010x}")
        imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
        return Instr(m, rs1=rs1, rs2=rs2, imm=imm)
    if opcode == _BRANCH:
        m = _I_BY_KEY.get((opcode, f3))
        if m is None:
            raise DecodeError(f"unknown branch word {word:#010x}")
        imm = (
            (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
        )
        return Instr(m, rs1=rs1, rs2=rs2, imm=_sext(imm, 13))
    if opcode == _LUI:
        return Instr("lui", rd=rd, imm=(word >> 12) & 0xFFFFF)
    if opcode == _AUIPC:
        return Instr("auipc", rd=rd, imm=(word >> 12) & 0xFFFFF)
    if opcode == _JAL:
        imm = (
            (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        )
        return Instr("jal", rd=rd, imm=_sext(imm, 21))
    if opcode == _SYSTEM:
        return Instr("ebreak" if (word >> 20) & 0xFFF == 1 else "ecall")
    if opcode == _MISC_MEM:
        return Instr("fence")
    if opcode in (_LOAD_FP, _STORE_FP):
        m = _FP_LS_BY_F3.get((opcode, f3))
        if m is None:
            raise DecodeError(f"unknown fp load/store word {word:#010x}")
        if opcode == _LOAD_FP:
            return Instr(m, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
        imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
        return Instr(m, rs1=rs1, rs2=rs2, imm=imm)
    if opcode == _OP_FP:
        if f7 in _FP_CVT_BY_F7_RS2 or (f7, rs2) in _FP_CVT_BY_F7_RS2:
            m = _FP_CVT_BY_F7_RS2.get((f7, rs2))
            if m is None:
                raise DecodeError(f"unknown fcvt word {word:#010x}")
            return Instr(m, rd=rd, rs1=rs1)
        if f7 in _FP_MV_BY_F7:
            return Instr(_FP_MV_BY_F7[f7], rd=rd, rs1=rs1)
        if (f7, f3) in _FP_SUBOP_BY_F7_F3:
            return Instr(_FP_SUBOP_BY_F7_F3[(f7, f3)], rd=rd, rs1=rs1, rs2=rs2)
        if f7 in _FP_ARITH_BY_F7:
            m = _FP_ARITH_BY_F7[f7]
            if m.startswith("fsqrt"):
                return Instr(m, rd=rd, rs1=rs1)
            return Instr(m, rd=rd, rs1=rs1, rs2=rs2)
        raise DecodeError(f"unknown OP-FP word {word:#010x}")
    if opcode in _R4_BY_OPCODE:
        fmt2 = (word >> 25) & 0b11
        if fmt2 != 0b01:
            raise DecodeError(
                f"unsupported R4 precision {fmt2:#04b} in {word:#010x}"
            )
        return Instr(_R4_BY_OPCODE[opcode], rd=rd, rs1=rs1, rs2=rs2,
                     rs3=(word >> 27) & 0x1F)
    raise DecodeError(f"unknown opcode {opcode:#04x} in word {word:#010x}")
