"""Numpy-backed micro-op trace containers.

A :class:`Trace` is a struct-of-arrays record of a dynamic instruction
stream: op class, register operands, memory address, and branch outcome per
micro-op.  Workload kernels build traces with :class:`TraceBuilder` (scalar
emission) or with the vectorised ``extend_*`` methods, and the core timing
models in :mod:`repro.core` consume them.

Register ids: integer registers ``x0..x31`` are ids ``0..31`` (writes to
``x0`` are discarded, as in hardware), floating-point registers ``f0..f31``
are ids ``32..63``, and ``-1`` means "no operand".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .opcodes import FP_OPS, INT_EXEC_OPS, OpClass

__all__ = ["Trace", "TraceBuilder", "TraceStats", "NUM_REGS", "FP_REG_BASE"]

NUM_REGS = 64
FP_REG_BASE = 32


def _vbytes(nbytes: int) -> int:
    """Validate a vector op's byte width (the trace stores it in uint8)."""
    if not 0 < nbytes <= 255:
        raise ValueError(f"vector op width {nbytes} bytes not in (0, 255]")
    return nbytes


@dataclass(frozen=True)
class TraceStats:
    """Aggregate instruction-mix statistics of a trace."""

    total: int
    loads: int
    stores: int
    branches: int
    taken_branches: int
    int_ops: int
    fp_ops: int
    other: int

    @property
    def mem_ops(self) -> int:
        return self.loads + self.stores

    def mix(self) -> dict[str, float]:
        """Fractional instruction mix (sums to 1.0 for non-empty traces)."""
        if self.total == 0:
            return {}
        return {
            "load": self.loads / self.total,
            "store": self.stores / self.total,
            "branch": self.branches / self.total,
            "int": self.int_ops / self.total,
            "fp": self.fp_ops / self.total,
            "other": self.other / self.total,
        }


class Trace:
    """Immutable struct-of-arrays micro-op stream.

    Parameters are parallel numpy arrays of equal length; see module
    docstring for register-id conventions.  ``addr`` is a byte address for
    LOAD/STORE/AMO ops and ignored elsewhere; ``taken`` is meaningful only
    for BRANCH ops; ``target`` is the (taken-)target PC for control ops.
    """

    __slots__ = ("op", "dst", "src1", "src2", "addr", "size", "taken", "pc", "target")

    def __init__(
        self,
        op: np.ndarray,
        dst: np.ndarray,
        src1: np.ndarray,
        src2: np.ndarray,
        addr: np.ndarray,
        size: np.ndarray,
        taken: np.ndarray,
        pc: np.ndarray,
        target: np.ndarray,
    ) -> None:
        n = len(op)
        for name, arr in (
            ("dst", dst),
            ("src1", src1),
            ("src2", src2),
            ("addr", addr),
            ("size", size),
            ("taken", taken),
            ("pc", pc),
            ("target", target),
        ):
            if len(arr) != n:
                raise ValueError(f"field {name!r} has length {len(arr)}, expected {n}")
        self.op = np.ascontiguousarray(op, dtype=np.uint8)
        self.dst = np.ascontiguousarray(dst, dtype=np.int16)
        self.src1 = np.ascontiguousarray(src1, dtype=np.int16)
        self.src2 = np.ascontiguousarray(src2, dtype=np.int16)
        self.addr = np.ascontiguousarray(addr, dtype=np.uint64)
        self.size = np.ascontiguousarray(size, dtype=np.uint8)
        self.taken = np.ascontiguousarray(taken, dtype=np.bool_)
        self.pc = np.ascontiguousarray(pc, dtype=np.uint64)
        self.target = np.ascontiguousarray(target, dtype=np.uint64)

    def __len__(self) -> int:
        return len(self.op)

    def __getitem__(self, sl: slice) -> "Trace":
        if not isinstance(sl, slice):
            raise TypeError("Trace only supports slice indexing")
        return Trace(
            self.op[sl], self.dst[sl], self.src1[sl], self.src2[sl],
            self.addr[sl], self.size[sl], self.taken[sl], self.pc[sl],
            self.target[sl],
        )

    def __repr__(self) -> str:
        return f"Trace(n={len(self)})"

    @staticmethod
    def empty() -> "Trace":
        z = np.zeros(0, dtype=np.uint64)
        return Trace(
            z.astype(np.uint8), z.astype(np.int16), z.astype(np.int16),
            z.astype(np.int16), z, z.astype(np.uint8), z.astype(np.bool_),
            z, z,
        )

    @staticmethod
    def concat(traces: Sequence["Trace"]) -> "Trace":
        """Concatenate traces in program order."""
        if not traces:
            return Trace.empty()
        return Trace(
            np.concatenate([t.op for t in traces]),
            np.concatenate([t.dst for t in traces]),
            np.concatenate([t.src1 for t in traces]),
            np.concatenate([t.src2 for t in traces]),
            np.concatenate([t.addr for t in traces]),
            np.concatenate([t.size for t in traces]),
            np.concatenate([t.taken for t in traces]),
            np.concatenate([t.pc for t in traces]),
            np.concatenate([t.target for t in traces]),
        )

    def repeat(self, n: int) -> "Trace":
        """Repeat the trace *n* times back-to-back (same addresses/PCs)."""
        if n < 0:
            raise ValueError("repeat count must be non-negative")
        return Trace(
            np.tile(self.op, n), np.tile(self.dst, n), np.tile(self.src1, n),
            np.tile(self.src2, n), np.tile(self.addr, n), np.tile(self.size, n),
            np.tile(self.taken, n), np.tile(self.pc, n), np.tile(self.target, n),
        )

    def stats(self) -> TraceStats:
        """Compute instruction-mix statistics."""
        op = self.op
        loads = int(np.count_nonzero(op == OpClass.LOAD))
        stores = int(np.count_nonzero(op == OpClass.STORE))
        is_branch = op == OpClass.BRANCH
        branches = int(np.count_nonzero(is_branch))
        taken = int(np.count_nonzero(self.taken & is_branch))
        int_mask = np.isin(op, [int(o) for o in INT_EXEC_OPS])
        fp_mask = np.isin(op, [int(o) for o in FP_OPS])
        int_ops = int(np.count_nonzero(int_mask))
        fp_ops = int(np.count_nonzero(fp_mask))
        other = len(op) - loads - stores - branches - int_ops - fp_ops
        return TraceStats(
            total=len(op),
            loads=loads,
            stores=stores,
            branches=branches,
            taken_branches=taken,
            int_ops=int_ops,
            fp_ops=fp_ops,
            other=other,
        )


class TraceBuilder:
    """Incrementally assemble a :class:`Trace`.

    Scalar emit methods (``alu``, ``load``, ``store``, ``branch``, …)
    auto-advance a synthetic PC by 4 bytes per op unless an explicit branch
    redirect is emitted.  Vectorised bulk emission is available through
    :meth:`extend`.
    """

    def __init__(self, pc0: int = 0x1_0000) -> None:
        self._op: list[int] = []
        self._dst: list[int] = []
        self._src1: list[int] = []
        self._src2: list[int] = []
        self._addr: list[int] = []
        self._size: list[int] = []
        self._taken: list[bool] = []
        self._pc: list[int] = []
        self._target: list[int] = []
        self._chunks: list[Trace] = []
        self.pc = int(pc0)

    def __len__(self) -> int:
        return len(self._op) + sum(len(c) for c in self._chunks)

    # -- scalar emission -------------------------------------------------

    def _emit(
        self,
        op: OpClass,
        dst: int = -1,
        src1: int = -1,
        src2: int = -1,
        addr: int = 0,
        size: int = 8,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        self._op.append(int(op))
        self._dst.append(dst)
        self._src1.append(src1)
        self._src2.append(src2)
        self._addr.append(addr)
        self._size.append(size)
        self._taken.append(taken)
        self._pc.append(self.pc)
        self._target.append(target)
        self.pc += 4

    def op(self, opclass: OpClass, dst: int = -1, src1: int = -1, src2: int = -1) -> None:
        """Emit a generic non-memory, non-control op."""
        self._emit(opclass, dst, src1, src2)

    def alu(self, dst: int, src1: int = -1, src2: int = -1) -> None:
        self._emit(OpClass.INT_ALU, dst, src1, src2)

    def mul(self, dst: int, src1: int, src2: int) -> None:
        self._emit(OpClass.INT_MUL, dst, src1, src2)

    def div(self, dst: int, src1: int, src2: int) -> None:
        self._emit(OpClass.INT_DIV, dst, src1, src2)

    def fp(self, opclass: OpClass, dst: int, src1: int = -1, src2: int = -1) -> None:
        if opclass not in FP_OPS:
            raise ValueError(f"{opclass} is not a floating-point op class")
        self._emit(opclass, dst, src1, src2)

    def load(self, dst: int, addr: int, base: int = -1, size: int = 8) -> None:
        self._emit(OpClass.LOAD, dst, base, -1, addr=int(addr), size=size)

    def store(self, src: int, addr: int, base: int = -1, size: int = 8) -> None:
        self._emit(OpClass.STORE, -1, base, src, addr=int(addr), size=size)

    def amo(self, dst: int, src: int, addr: int, size: int = 8) -> None:
        self._emit(OpClass.AMO, dst, src, -1, addr=int(addr), size=size)

    def branch(
        self, taken: bool, src1: int = -1, src2: int = -1, target: int | None = None
    ) -> None:
        """Emit a conditional branch; taken branches redirect the PC."""
        tgt = self.pc + 4 if target is None else int(target)
        self._emit(OpClass.BRANCH, -1, src1, src2, taken=taken, target=tgt)
        if taken:
            self.pc = tgt

    def jump(self, target: int | None = None) -> None:
        tgt = self.pc + 4 if target is None else int(target)
        self._emit(OpClass.JUMP, -1, taken=True, target=tgt)
        self.pc = tgt

    def call(self, target: int, link: int = 1) -> None:
        """Emit a call (jal ra, target)."""
        self._emit(OpClass.CALL, link, taken=True, target=int(target))
        self.pc = int(target)

    def ret(self, target: int, src: int = 1) -> None:
        """Emit a return (jalr x0, ra); *target* is the return address."""
        self._emit(OpClass.RET, -1, src, taken=True, target=int(target))
        self.pc = int(target)

    def nop(self) -> None:
        self._emit(OpClass.NOP)

    # -- instrumentation markers (see repro.instrument.markers) ------------

    def marker(self, marker_id: int, value: int = 0, src: int = -1) -> None:
        """Emit a magic-store marker (synth-print analogue).

        The marker is an ordinary 8-byte store whose address encodes
        ``(marker_id, value)`` under the magic tag, so it executes — and
        costs cycles — identically whether or not an instrument decodes
        it.
        """
        from ..instrument.markers import marker_addr
        self.store(src, marker_addr(marker_id, value))

    def region_begin(self, region_id: int) -> None:
        """Open a named region (flamegraph frame push)."""
        from ..instrument.markers import MARKER_REGION_BEGIN
        self.marker(MARKER_REGION_BEGIN, region_id)

    def region_end(self, region_id: int) -> None:
        """Close a named region (flamegraph frame pop)."""
        from ..instrument.markers import MARKER_REGION_END
        self.marker(MARKER_REGION_END, region_id)

    # -- RVV vector emission (see repro.core.vector) -----------------------

    def vsetvl(self, dst: int = 10) -> None:
        """Emit a vsetvli-style vector configuration op."""
        self._emit(OpClass.VSETVL, dst)

    def vload(self, dst: int, addr: int, nbytes: int, base: int = -1) -> None:
        """Vector load of *nbytes* starting at *addr* (<= 255 bytes/op)."""
        self._emit(OpClass.VLOAD, dst, base, -1, addr=int(addr), size=_vbytes(nbytes))

    def vstore(self, src: int, addr: int, nbytes: int, base: int = -1) -> None:
        self._emit(OpClass.VSTORE, -1, base, src, addr=int(addr), size=_vbytes(nbytes))

    def valu(self, dst: int, src1: int = -1, src2: int = -1,
             nbytes: int = 32) -> None:
        self._emit(OpClass.VALU, dst, src1, src2, size=_vbytes(nbytes))

    def vfma(self, dst: int, src1: int = -1, src2: int = -1,
             nbytes: int = 32) -> None:
        self._emit(OpClass.VFMA, dst, src1, src2, size=_vbytes(nbytes))

    # -- vectorised emission ----------------------------------------------

    def _flush_scalars(self) -> None:
        if self._op:
            self._chunks.append(
                Trace(
                    np.array(self._op, dtype=np.uint8),
                    np.array(self._dst, dtype=np.int16),
                    np.array(self._src1, dtype=np.int16),
                    np.array(self._src2, dtype=np.int16),
                    np.array(self._addr, dtype=np.uint64),
                    np.array(self._size, dtype=np.uint8),
                    np.array(self._taken, dtype=np.bool_),
                    np.array(self._pc, dtype=np.uint64),
                    np.array(self._target, dtype=np.uint64),
                )
            )
            self._op.clear(); self._dst.clear(); self._src1.clear()
            self._src2.clear(); self._addr.clear(); self._size.clear()
            self._taken.clear(); self._pc.clear(); self._target.clear()

    def extend(
        self,
        op: np.ndarray,
        dst: np.ndarray | None = None,
        src1: np.ndarray | None = None,
        src2: np.ndarray | None = None,
        addr: np.ndarray | None = None,
        size: np.ndarray | int = 8,
        taken: np.ndarray | None = None,
        pc: np.ndarray | None = None,
        target: np.ndarray | None = None,
    ) -> None:
        """Append a block of ops given as parallel arrays.

        Missing fields default to "no operand" / zero.  If *pc* is omitted a
        sequential PC stream is synthesised from the current builder PC
        (this is adequate for straight-line bulk blocks).
        """
        self._flush_scalars()
        n = len(op)
        none16 = lambda a: (np.full(n, -1, np.int16) if a is None else a)
        if pc is None:
            pc = self.pc + 4 * np.arange(n, dtype=np.uint64)
            self.pc += 4 * n
        else:
            self.pc = int(pc[-1]) + 4 if n else self.pc
        if isinstance(size, int):
            size = np.full(n, size, np.uint8)
        self._chunks.append(
            Trace(
                op,
                none16(dst),
                none16(src1),
                none16(src2),
                np.zeros(n, np.uint64) if addr is None else addr,
                size,
                np.zeros(n, np.bool_) if taken is None else taken,
                pc,
                np.zeros(n, np.uint64) if target is None else target,
            )
        )

    def extend_trace(self, trace: Trace) -> None:
        """Append an already-built trace verbatim."""
        self._flush_scalars()
        self._chunks.append(trace)

    def build(self) -> Trace:
        """Finalise and return the accumulated trace."""
        self._flush_scalars()
        if len(self._chunks) == 1:
            return self._chunks[0]
        return Trace.concat(self._chunks)


def interleave(traces: Iterable[Trace], chunk: int = 64) -> Trace:
    """Round-robin interleave several traces in *chunk*-op slices.

    Used by tests to build synthetic multi-stream workloads.
    """
    traces = [t for t in traces if len(t)]
    parts: list[Trace] = []
    offsets = [0] * len(traces)
    remaining = sum(len(t) for t in traces)
    while remaining:
        for i, t in enumerate(traces):
            if offsets[i] < len(t):
                end = min(offsets[i] + chunk, len(t))
                parts.append(t[offsets[i]:end])
                remaining -= end - offsets[i]
                offsets[i] = end
    return Trace.concat(parts)
