"""A small two-pass assembler for the RV64IMFD subset in
:mod:`repro.isa.encoding`.

Supports labels, decimal/hex immediates, integer and floating-point ABI
register names, ``#`` / ``;`` comments, and common pseudo-instructions
(``li``, ``mv``, ``nop``, ``j``, ``ret``, ``call``, ``bnez``, ``beqz``,
``fmv.d``, ``fneg.d``, ``fabs.d``).  Programs assembled here can be
executed with :class:`repro.isa.interp.Interpreter`, which emits micro-op
traces for the timing models.
"""

from __future__ import annotations

import re

from .encoding import FP_RD, FP_RS1, FP_RS2, Instr, MNEMONICS, encode

__all__ = ["assemble", "AssemblerError", "REG_NAMES", "FREG_NAMES"]


class AssemblerError(ValueError):
    """Raised on a malformed assembly program."""


#: ABI name -> register index.
REG_NAMES: dict[str, int] = {"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4, "fp": 8}
REG_NAMES.update({f"x{i}": i for i in range(32)})
REG_NAMES.update({f"t{i}": r for i, r in enumerate([5, 6, 7, 28, 29, 30, 31])})
REG_NAMES.update({f"s{i}": r for i, r in enumerate([8, 9] + list(range(18, 28)))})
REG_NAMES.update({f"a{i}": 10 + i for i in range(8)})

#: FP ABI name -> register index (separate register file).
FREG_NAMES: dict[str, int] = {f"f{i}": i for i in range(32)}
FREG_NAMES.update({f"ft{i}": r for i, r in
                   enumerate([0, 1, 2, 3, 4, 5, 6, 7, 28, 29, 30, 31])})
FREG_NAMES.update({f"fs{i}": r for i, r in
                   enumerate([8, 9] + list(range(18, 28)))})
FREG_NAMES.update({f"fa{i}": 10 + i for i in range(8)})

_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")
_LABEL_RE = re.compile(r"^[A-Za-z_.][\w.]*$")

_LOADS = {"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"}
_STORES = {"sb", "sh", "sw", "sd"}
_FP_LOADS = {"flw", "fld"}
_FP_STORES = {"fsw", "fsd"}
_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}


def _reg(tok: str) -> int:
    tok = tok.strip()
    if tok not in REG_NAMES:
        raise AssemblerError(f"unknown register {tok!r}")
    return REG_NAMES[tok]


def _freg(tok: str) -> int:
    tok = tok.strip()
    if tok not in FREG_NAMES:
        raise AssemblerError(f"unknown fp register {tok!r}")
    return FREG_NAMES[tok]


def _imm(tok: str, labels: dict[str, int], pc: int, pcrel: bool) -> int:
    tok = tok.strip()
    try:
        return int(tok, 0)
    except ValueError:
        pass
    if tok in labels:
        return labels[tok] - pc if pcrel else labels[tok]
    raise AssemblerError(f"bad immediate or unknown label {tok!r}")


def _split_lines(source: str) -> list[tuple[int, str]]:
    out = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if line:
            out.append((lineno, line))
    return out


def _expand_pseudo(mnem: str, args: list[str]) -> list[tuple[str, list[str]]]:
    """Lower pseudo-instructions to base instructions (may expand to 2)."""
    if mnem == "nop":
        return [("addi", ["x0", "x0", "0"])]
    if mnem == "mv":
        return [("addi", [args[0], args[1], "0"])]
    if mnem == "li":
        val = int(args[1], 0)
        if -2048 <= val <= 2047:
            return [("addi", [args[0], "x0", str(val)])]
        if not -(1 << 31) <= val < (1 << 31):
            raise AssemblerError(
                f"li immediate {val} out of the supported 32-bit range"
            )
        # standard lui+addi lowering: lower is the sign-extended low 12
        # bits, upper absorbs the borrow (lui sign-extends on RV64)
        lower = ((val & 0xFFF) ^ 0x800) - 0x800
        upper = ((val - lower) >> 12) & 0xFFFFF
        return [("lui", [args[0], str(upper)]),
                ("addi", [args[0], args[0], str(lower)])]
    if mnem == "j":
        return [("jal", ["x0", args[0]])]
    if mnem == "ret":
        return [("jalr", ["x0", "0(ra)"])]
    if mnem == "call":
        return [("jal", ["ra", args[0]])]
    if mnem == "beqz":
        return [("beq", [args[0], "x0", args[1]])]
    if mnem == "bnez":
        return [("bne", [args[0], "x0", args[1]])]
    if mnem == "neg":
        return [("sub", [args[0], "x0", args[1]])]
    if mnem == "not":
        return [("xori", [args[0], args[1], "-1"])]
    if mnem == "fmv.d":
        return [("fsgnj.d", [args[0], args[1], args[1]])]
    if mnem == "fneg.d":
        return [("fsgnjn.d", [args[0], args[1], args[1]])]
    if mnem == "fabs.d":
        return [("fsgnjx.d", [args[0], args[1], args[1]])]
    if mnem == "seqz":
        return [("sltiu", [args[0], args[1], "1"])]
    if mnem == "snez":
        return [("sltu", [args[0], "x0", args[1]])]
    return [(mnem, args)]


def assemble(source: str, base: int = 0x1_0000) -> list[int]:
    """Assemble *source* into a list of 32-bit instruction words.

    ``base`` is the address of the first instruction (used for label
    resolution of branches and jumps).
    """
    lines = _split_lines(source)

    # Pass 1: record label addresses, expand pseudos to count words.
    labels: dict[str, int] = {}
    prog: list[tuple[int, str, list[str]]] = []  # (lineno, mnemonic, args)
    pc = base
    for lineno, line in lines:
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblerError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = pc
            line = rest.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        args = [a.strip() for a in parts[1].split(",")] if len(parts) > 1 else []
        for m2, a2 in _expand_pseudo(mnem, args):
            if m2 not in MNEMONICS:
                raise AssemblerError(f"line {lineno}: unknown mnemonic {m2!r}")
            prog.append((lineno, m2, a2))
            pc += 4

    # Pass 2: encode.
    words: list[int] = []
    pc = base
    for lineno, mnem, args in prog:
        try:
            ins = _build(mnem, args, labels, pc)
            words.append(encode(ins))
        except (AssemblerError, ValueError) as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
        pc += 4
    return words


def _build(mnem: str, args: list[str], labels: dict[str, int], pc: int) -> Instr:
    from .encoding import _SPEC  # format table

    fmt = _SPEC[mnem][0]
    if mnem in _FP_LOADS:
        m = _MEM_RE.match(args[1].replace(" ", ""))
        if not m:
            raise AssemblerError(f"bad memory operand {args[1]!r}")
        return Instr(mnem, rd=_freg(args[0]), rs1=_reg(m.group(2)),
                     imm=_imm(m.group(1), labels, pc, pcrel=False))
    if mnem in _FP_STORES:
        m = _MEM_RE.match(args[1].replace(" ", ""))
        if not m:
            raise AssemblerError(f"bad memory operand {args[1]!r}")
        return Instr(mnem, rs2=_freg(args[0]), rs1=_reg(m.group(2)),
                     imm=_imm(m.group(1), labels, pc, pcrel=False))
    if fmt == "R4":
        return Instr(mnem, rd=_freg(args[0]), rs1=_freg(args[1]),
                     rs2=_freg(args[2]), rs3=_freg(args[3]))
    if fmt == "RF":
        pick_rd = _freg if mnem in FP_RD else _reg
        pick_rs1 = _freg if mnem in FP_RS1 else _reg
        if len(args) == 2:  # fsqrt/fcvt/fmv
            return Instr(mnem, rd=pick_rd(args[0]), rs1=pick_rs1(args[1]))
        pick_rs2 = _freg if mnem in FP_RS2 else _reg
        return Instr(mnem, rd=pick_rd(args[0]), rs1=pick_rs1(args[1]),
                     rs2=pick_rs2(args[2]))
    if mnem in _LOADS or mnem == "jalr":
        if len(args) != 2:
            raise AssemblerError(f"{mnem} expects rd, imm(rs1)")
        m = _MEM_RE.match(args[1].replace(" ", ""))
        if not m:
            raise AssemblerError(f"bad memory operand {args[1]!r}")
        return Instr(mnem, rd=_reg(args[0]), rs1=_reg(m.group(2)),
                     imm=_imm(m.group(1), labels, pc, pcrel=False))
    if mnem in _STORES:
        m = _MEM_RE.match(args[1].replace(" ", ""))
        if not m:
            raise AssemblerError(f"bad memory operand {args[1]!r}")
        return Instr(mnem, rs2=_reg(args[0]), rs1=_reg(m.group(2)),
                     imm=_imm(m.group(1), labels, pc, pcrel=False))
    if mnem in _BRANCHES:
        return Instr(mnem, rs1=_reg(args[0]), rs2=_reg(args[1]),
                     imm=_imm(args[2], labels, pc, pcrel=True))
    if mnem == "jal":
        if len(args) == 1:  # jal label  (rd = ra)
            args = ["ra", args[0]]
        return Instr(mnem, rd=_reg(args[0]), imm=_imm(args[1], labels, pc, pcrel=True))
    if mnem in ("lui", "auipc"):
        return Instr(mnem, rd=_reg(args[0]), imm=_imm(args[1], labels, pc, pcrel=False))
    if mnem in ("ecall", "ebreak", "fence"):
        return Instr(mnem)
    if fmt == "R":
        return Instr(mnem, rd=_reg(args[0]), rs1=_reg(args[1]), rs2=_reg(args[2]))
    # remaining I-type ALU
    return Instr(mnem, rd=_reg(args[0]), rs1=_reg(args[1]),
                 imm=_imm(args[2], labels, pc, pcrel=False))
