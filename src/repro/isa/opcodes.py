"""Micro-op classes and latency tables for the RISC-V timing models.

The timing models in :mod:`repro.core` do not interpret RV64 machine code
directly; they consume streams of *micro-ops*, each tagged with an
:class:`OpClass`.  This mirrors how trace-driven performance models (and
decoded-uop stages of real cores) see the instruction stream: what matters
for timing is the functional-unit class, the register dependencies, and —
for memory ops — the address.

The RV64 front end in :mod:`repro.isa.encoding` decodes real instruction
words down to these classes, and the workload generators in
:mod:`repro.workloads` emit them directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "OpClass",
    "ExecUnit",
    "LatencyTable",
    "DEFAULT_LATENCIES",
    "MEM_OPS",
    "CTRL_OPS",
    "FP_OPS",
    "INT_EXEC_OPS",
    "VECTOR_OPS",
]


class OpClass(enum.IntEnum):
    """Functional class of a micro-op.

    The integer values are stable and compact so traces can store them in
    ``uint8`` arrays.
    """

    NOP = 0
    INT_ALU = 1       #: add/sub/logic/shift/slt, 1-cycle integer ops
    INT_MUL = 2       #: integer multiply
    INT_DIV = 3       #: integer divide / remainder
    LOAD = 4          #: memory read
    STORE = 5         #: memory write
    BRANCH = 6        #: conditional branch
    JUMP = 7          #: unconditional jump (jal with rd=x0 etc.)
    CALL = 8          #: jal/jalr that pushes a return address
    RET = 9           #: jalr that pops a return address
    FP_ADD = 10       #: fp add/sub/compare/min/max
    FP_MUL = 11       #: fp multiply
    FP_FMA = 12       #: fused multiply-add
    FP_DIV = 13       #: fp divide
    FP_SQRT = 14      #: fp square root
    FP_CVT = 15       #: int<->fp and single<->double conversions
    FP_MOV = 16       #: fp sign-injection / moves between register files
    CSR = 17          #: csr access / system instruction
    FENCE = 18        #: memory fence
    AMO = 19          #: atomic memory operation
    VLOAD = 20        #: RVV unit-stride/gather vector load
    VSTORE = 21       #: RVV vector store
    VALU = 22         #: RVV integer/logic vector op
    VFMA = 23         #: RVV floating-point vector op (fma class)
    VSETVL = 24       #: vsetvli / vector configuration

    @property
    def is_mem(self) -> bool:
        return self in MEM_OPS

    @property
    def is_ctrl(self) -> bool:
        return self in CTRL_OPS

    @property
    def is_fp(self) -> bool:
        return self in FP_OPS


#: Ops that access the data memory hierarchy.
MEM_OPS = frozenset({OpClass.LOAD, OpClass.STORE, OpClass.AMO,
                     OpClass.VLOAD, OpClass.VSTORE})

#: RVV vector ops (executed by the optional vector unit).
VECTOR_OPS = frozenset({OpClass.VLOAD, OpClass.VSTORE, OpClass.VALU,
                        OpClass.VFMA, OpClass.VSETVL})

#: Ops that (may) redirect the front end.
CTRL_OPS = frozenset({OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET})

#: Floating-point ops (execute on the FP issue queue in BOOM-like cores).
FP_OPS = frozenset(
    {
        OpClass.FP_ADD,
        OpClass.FP_MUL,
        OpClass.FP_FMA,
        OpClass.FP_DIV,
        OpClass.FP_SQRT,
        OpClass.FP_CVT,
        OpClass.FP_MOV,
    }
)

#: Integer-pipe execution ops (not memory, not control).
INT_EXEC_OPS = frozenset(
    {OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV, OpClass.CSR}
)


class ExecUnit(enum.IntEnum):
    """Issue-port / functional-unit class used by the OoO scheduler."""

    ALU = 0
    MUL_DIV = 1
    MEM = 2
    FPU = 3
    BRANCH_UNIT = 4
    VPU = 5


#: Which execution unit each op class occupies.
EXEC_UNIT_OF: dict[OpClass, ExecUnit] = {
    OpClass.NOP: ExecUnit.ALU,
    OpClass.INT_ALU: ExecUnit.ALU,
    OpClass.INT_MUL: ExecUnit.MUL_DIV,
    OpClass.INT_DIV: ExecUnit.MUL_DIV,
    OpClass.LOAD: ExecUnit.MEM,
    OpClass.STORE: ExecUnit.MEM,
    OpClass.AMO: ExecUnit.MEM,
    OpClass.BRANCH: ExecUnit.BRANCH_UNIT,
    OpClass.JUMP: ExecUnit.BRANCH_UNIT,
    OpClass.CALL: ExecUnit.BRANCH_UNIT,
    OpClass.RET: ExecUnit.BRANCH_UNIT,
    OpClass.FP_ADD: ExecUnit.FPU,
    OpClass.FP_MUL: ExecUnit.FPU,
    OpClass.FP_FMA: ExecUnit.FPU,
    OpClass.FP_DIV: ExecUnit.FPU,
    OpClass.FP_SQRT: ExecUnit.FPU,
    OpClass.FP_CVT: ExecUnit.FPU,
    OpClass.FP_MOV: ExecUnit.FPU,
    OpClass.CSR: ExecUnit.ALU,
    OpClass.FENCE: ExecUnit.MEM,
    OpClass.VLOAD: ExecUnit.VPU,
    OpClass.VSTORE: ExecUnit.VPU,
    OpClass.VALU: ExecUnit.VPU,
    OpClass.VFMA: ExecUnit.VPU,
    OpClass.VSETVL: ExecUnit.ALU,
}


@dataclass(frozen=True)
class LatencyTable:
    """Execution latencies (cycles from issue to result-ready) per op class.

    A single table is shared by the in-order and out-of-order models; cores
    differ in *structural* resources, not raw FU latencies, which is also
    how Rocket and BOOM share the same FPU/MulDiv generators in Chipyard.
    """

    int_alu: int = 1
    int_mul: int = 3
    int_div: int = 16
    fp_add: int = 4
    fp_mul: int = 4
    fp_fma: int = 4
    fp_div: int = 13
    fp_sqrt: int = 25
    fp_cvt: int = 2
    fp_mov: int = 1
    csr: int = 3
    amo_extra: int = 4  #: added on top of the cache access for AMOs

    def latency_of(self, op: OpClass) -> int:
        """Fixed execution latency of *op*, excluding memory access time."""
        return _LAT_DISPATCH[op](self)


_LAT_DISPATCH = {
    OpClass.NOP: lambda t: 1,
    OpClass.INT_ALU: lambda t: t.int_alu,
    OpClass.INT_MUL: lambda t: t.int_mul,
    OpClass.INT_DIV: lambda t: t.int_div,
    OpClass.LOAD: lambda t: 0,
    OpClass.STORE: lambda t: 0,
    OpClass.AMO: lambda t: t.amo_extra,
    OpClass.BRANCH: lambda t: 1,
    OpClass.JUMP: lambda t: 1,
    OpClass.CALL: lambda t: 1,
    OpClass.RET: lambda t: 1,
    OpClass.FP_ADD: lambda t: t.fp_add,
    OpClass.FP_MUL: lambda t: t.fp_mul,
    OpClass.FP_FMA: lambda t: t.fp_fma,
    OpClass.FP_DIV: lambda t: t.fp_div,
    OpClass.FP_SQRT: lambda t: t.fp_sqrt,
    OpClass.FP_CVT: lambda t: t.fp_cvt,
    OpClass.FP_MOV: lambda t: t.fp_mov,
    OpClass.CSR: lambda t: t.csr,
    OpClass.FENCE: lambda t: 1,
    OpClass.VLOAD: lambda t: 0,
    OpClass.VSTORE: lambda t: 0,
    OpClass.VALU: lambda t: t.int_alu + 1,
    OpClass.VFMA: lambda t: t.fp_fma + 1,
    OpClass.VSETVL: lambda t: 1,
}

#: Default latency table, roughly matching Rocket/BOOM FU latencies.
DEFAULT_LATENCIES = LatencyTable()
