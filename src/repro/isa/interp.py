"""Functional RV64IMFD interpreter that emits micro-op traces.

:class:`Interpreter` executes assembled programs with full architectural
semantics (64-bit two's-complement arithmetic, sparse byte-addressed
memory) while recording every retired instruction into a
:class:`repro.isa.trace.TraceBuilder`.  This closes the loop from real
machine code to the timing models: the same trace format the synthetic
workload generators emit is produced here from genuine RISC-V execution.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

import numpy as np

from .encoding import FP_RD, Instr, decode
from .opcodes import OpClass
from .trace import Trace, TraceBuilder

__all__ = ["Interpreter", "ExecutionError", "Memory"]

_MASK64 = (1 << 64) - 1


class ExecutionError(RuntimeError):
    """Raised on traps: misaligned jumps, bad decode, fuel exhaustion."""


# Decoded-instruction cache: RISC-V decode is a pure function of the
# 32-bit word and Instr is frozen, so instances are shared process-wide.
# The bound is eviction-free — 64Ki distinct words cover any realistic
# program mix; beyond it new words just decode uncached.
_DECODE_CACHE: dict[int, "Instr"] = {}
_DECODE_CACHE_BOUND = 1 << 16


def _decode_cached(word: int) -> Instr:
    from ..accel.stats import global_stats

    ins = _DECODE_CACHE.get(word)
    g = global_stats()
    if ins is not None:
        g.decode_hits += 1
        return ins
    g.decode_misses += 1
    ins = decode(word)
    if len(_DECODE_CACHE) < _DECODE_CACHE_BOUND:
        _DECODE_CACHE[word] = ins
    return ins


def _s64(v: int) -> int:
    v &= _MASK64
    return v - (1 << 64) if v >> 63 else v


def _s32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v >> 31 else v


_PAGE_SHIFT = 12
_PAGE_SIZE = 1 << _PAGE_SHIFT
_PAGE_MASK = _PAGE_SIZE - 1


class Memory:
    """Sparse byte-addressable memory backed by 4 KiB ``bytearray`` pages.

    Accesses that stay inside one page — the overwhelmingly common case —
    move whole words with ``int.from_bytes``/``int.to_bytes`` instead of
    per-byte dict probes.  Never-written bytes still read as zero, and
    ``len(mem)`` still counts distinct bytes ever stored (tracked in a
    per-page occupancy bitmask), so the sparse-dict semantics are
    preserved exactly.
    """

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._present: dict[int, int] = {}

    def load(self, addr: int, size: int, signed: bool) -> int:
        off = addr & _PAGE_MASK
        if off + size <= _PAGE_SIZE:
            page = self._pages.get(addr >> _PAGE_SHIFT)
            val = (0 if page is None
                   else int.from_bytes(page[off:off + size], "little"))
        else:  # straddles a page boundary: assemble byte by byte
            val = 0
            for i in range(size):
                a = (addr + i) & _MASK64  # wrap at the top of the space
                page = self._pages.get(a >> _PAGE_SHIFT)
                if page is not None:
                    val |= page[a & _PAGE_MASK] << (8 * i)
        if signed and val >> (8 * size - 1):
            val -= 1 << (8 * size)
        return val

    def store(self, addr: int, value: int, size: int) -> None:
        value &= (1 << (8 * size)) - 1
        off = addr & _PAGE_MASK
        if off + size <= _PAGE_SIZE:
            pno = addr >> _PAGE_SHIFT
            page = self._pages.get(pno)
            if page is None:
                page = self._pages[pno] = bytearray(_PAGE_SIZE)
            page[off:off + size] = value.to_bytes(size, "little")
            self._present[pno] = (self._present.get(pno, 0)
                                  | ((1 << size) - 1) << off)
        else:
            for i in range(size):
                a = (addr + i) & _MASK64  # wrap at the top of the space
                pno = a >> _PAGE_SHIFT
                page = self._pages.get(pno)
                if page is None:
                    page = self._pages[pno] = bytearray(_PAGE_SIZE)
                page[a & _PAGE_MASK] = (value >> (8 * i)) & 0xFF
                self._present[pno] = (self._present.get(pno, 0)
                                      | 1 << (a & _PAGE_MASK))

    def __len__(self) -> int:
        return sum(m.bit_count() for m in self._present.values())


@dataclass
class Interpreter:
    """Execute an RV64IMFD program and collect its dynamic micro-op trace.

    Parameters
    ----------
    program:
        Instruction words, laid out contiguously starting at ``base``.
    base:
        Address of ``program[0]``.
    trace:
        Whether to record a micro-op trace (disable for pure functional
        runs, e.g. differential testing).
    """

    program: list[int]
    base: int = 0x1_0000
    trace: bool = True
    regs: list[int] = field(default_factory=lambda: [0] * 32)
    fregs: list[float] = field(default_factory=lambda: [0.0] * 32)
    mem: Memory = field(default_factory=Memory)

    def __post_init__(self) -> None:
        self.pc = self.base
        self.retired = 0
        self.halted = False
        self._decoded: list[Instr] = [_decode_cached(w) for w in self.program]
        self._builder = TraceBuilder(pc0=self.base)
        self._builder.pc = self.base

    # -- public API -------------------------------------------------------

    def run(self, max_instructions: int = 1_000_000) -> Trace:
        """Run until ``ecall``/``ebreak`` or falling off the end.

        Raises :class:`ExecutionError` if *max_instructions* is exceeded
        (runaway-loop protection).
        """
        fuel = max_instructions
        end = self.base + 4 * len(self.program)
        while not self.halted and self.base <= self.pc < end:
            if fuel <= 0:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions at pc={self.pc:#x}"
                )
            self.step()
            fuel -= 1
        return self._builder.build()

    def step(self) -> None:
        """Execute one instruction."""
        idx = (self.pc - self.base) >> 2
        if not 0 <= idx < len(self._decoded):
            raise ExecutionError(f"pc {self.pc:#x} outside program")
        ins = self._decoded[idx]
        self._exec(ins)
        self.retired += 1

    @property
    def trace_so_far(self) -> Trace:
        return self._builder.build()

    def reg(self, name_or_idx: int | str) -> int:
        """Read a register by index or ABI name, as a signed 64-bit value."""
        if isinstance(name_or_idx, str):
            from .assembler import REG_NAMES

            name_or_idx = REG_NAMES[name_or_idx]
        return _s64(self.regs[name_or_idx])

    def freg(self, name_or_idx: int | str) -> float:
        """Read a floating-point register by index or ABI name."""
        if isinstance(name_or_idx, str):
            from .assembler import FREG_NAMES

            name_or_idx = FREG_NAMES[name_or_idx]
        return self.fregs[name_or_idx]

    # -- execution --------------------------------------------------------

    def _wr(self, rd: int, value: int) -> None:
        if rd != 0:
            self.regs[rd] = value & _MASK64

    def _exec(self, ins: Instr) -> None:
        m = ins.mnemonic
        rs1 = self.regs[ins.rs1]
        rs2 = self.regs[ins.rs2]
        s1, s2 = _s64(rs1), _s64(rs2)
        pc, imm = self.pc, ins.imm
        nxt = pc + 4
        b = self._builder if self.trace else None

        if m in _ALU_R:
            self._wr(ins.rd, _ALU_R[m](rs1, rs2, s1, s2))
            if b is not None:
                kind = ins.op_class
                if kind == OpClass.INT_MUL:
                    b.mul(ins.rd, ins.rs1, ins.rs2)
                elif kind == OpClass.INT_DIV:
                    b.div(ins.rd, ins.rs1, ins.rs2)
                else:
                    b.alu(ins.rd, ins.rs1, ins.rs2)
        elif m in _ALU_I:
            self._wr(ins.rd, _ALU_I[m](rs1, s1, imm))
            if b is not None:
                b.alu(ins.rd, ins.rs1)
        elif m == "lui":
            self._wr(ins.rd, _s64(_s32(imm << 12)) & _MASK64)
            if b is not None:
                b.alu(ins.rd)
        elif m == "auipc":
            self._wr(ins.rd, (pc + _s64(_s32(imm << 12))) & _MASK64)
            if b is not None:
                b.alu(ins.rd)
        elif ins.op_class == OpClass.LOAD and m[0] != "f":
            addr = (rs1 + imm) & _MASK64
            signed = m in ("lb", "lh", "lw", "ld")
            self._wr(ins.rd, self.mem.load(addr, ins.mem_size, signed) & _MASK64)
            if b is not None:
                b.load(ins.rd, addr, base=ins.rs1, size=ins.mem_size)
        elif ins.op_class == OpClass.STORE and m[0] != "f":
            addr = (rs1 + imm) & _MASK64
            self.mem.store(addr, rs2, ins.mem_size)
            if b is not None:
                b.store(ins.rs2, addr, base=ins.rs1, size=ins.mem_size)
        elif m in _BR:
            taken = _BR[m](rs1, rs2, s1, s2)
            target = pc + imm
            if b is not None:
                b.branch(taken, ins.rs1, ins.rs2, target=target)
            if taken:
                nxt = target
        elif m == "jal":
            target = pc + imm
            self._wr(ins.rd, nxt)
            if b is not None:
                if ins.rd == 0:
                    b.jump(target)
                else:
                    b.call(target, link=ins.rd)
            nxt = target
        elif m == "jalr":
            target = (rs1 + imm) & _MASK64 & ~1
            kind = ins.op_class
            self._wr(ins.rd, pc + 4)
            if b is not None:
                if kind == OpClass.RET:
                    b.ret(target, src=ins.rs1)
                elif kind == OpClass.CALL:
                    b.call(target, link=ins.rd)
                else:
                    b.jump(target)
            nxt = target
        elif m in ("ecall", "ebreak"):
            self.halted = True
            if b is not None:
                b.op(OpClass.CSR)
        elif m == "fence":
            if b is not None:
                b.op(OpClass.FENCE)
        elif m[0] == "f":
            _exec_fp(self, ins, b, rs1)
        else:  # pragma: no cover - decode() never yields others
            raise ExecutionError(f"unimplemented mnemonic {m}")
        self.pc = nxt
        if b is not None:
            b.pc = nxt


FP_BASE = 32  #: trace register-id offset of the FP register file


def _bits_of(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _float_of(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _MASK64))[0]


def _f32_bits_of(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", np.float32(value)))[0]


def _float_of_f32(bits: int) -> float:
    return float(struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0])


#: The RISC-V canonical quiet NaN (sign 0, quiet bit set, payload 0).
#: Arithmetic may not leak the host's default NaN (negative on x86) or
#: propagate input payloads; every computed NaN becomes this value.
_CANON_NAN = _float_of(0x7FF8_0000_0000_0000)


def _canon(v: float) -> float:
    return _CANON_NAN if math.isnan(v) else v


def _exec_fp(self, ins: Instr, b, rs1_val: int) -> None:
    """Floating-point execution semantics (called from Interpreter._exec)."""
    m = ins.mnemonic
    fregs = self.fregs
    kind = ins.op_class
    trace_rd = FP_BASE + ins.rd if m in FP_RD else ins.rd

    if m in ("fld", "flw"):
        addr = (rs1_val + ins.imm) & _MASK64
        raw = self.mem.load(addr, ins.mem_size, signed=False)
        fregs[ins.rd] = (_float_of(raw) if m == "fld"
                         else _float_of_f32(raw))
        if b is not None:
            b.load(FP_BASE + ins.rd, addr, base=ins.rs1, size=ins.mem_size)
        return
    if m in ("fsd", "fsw"):
        addr = (rs1_val + ins.imm) & _MASK64
        v = fregs[ins.rs2]
        raw = _bits_of(v) if m == "fsd" else _f32_bits_of(v)
        self.mem.store(addr, raw, ins.mem_size)
        if b is not None:
            b.store(FP_BASE + ins.rs2, addr, base=ins.rs1,
                    size=ins.mem_size)
        return

    a = fregs[ins.rs1]
    c = fregs[ins.rs2]
    emitted_srcs = (FP_BASE + ins.rs1, FP_BASE + ins.rs2)
    with np.errstate(all="ignore"):
        if ins.fmt == "R4":
            d3 = fregs[ins.rs3]
            prod = a * c
            if m == "fmadd.d":
                out = prod + d3
            elif m == "fmsub.d":
                out = prod - d3
            elif m == "fnmsub.d":
                out = -prod + d3
            else:  # fnmadd.d
                out = -prod - d3
            fregs[ins.rd] = _canon(float(out))
        elif m in ("fadd.d", "fsub.d", "fmul.d", "fdiv.d"):
            out = {"fadd.d": np.float64(a) + c,
                   "fsub.d": np.float64(a) - c,
                   "fmul.d": np.float64(a) * c,
                   "fdiv.d": np.float64(a) / c}[m]
            fregs[ins.rd] = _canon(float(out))
        elif m in ("fadd.s", "fsub.s", "fmul.s", "fdiv.s"):
            fa, fc = np.float32(a), np.float32(c)
            out = {"fadd.s": fa + fc, "fsub.s": fa - fc,
                   "fmul.s": fa * fc, "fdiv.s": fa / fc}[m]
            fregs[ins.rd] = _canon(float(np.float32(out)))
        elif m == "fsqrt.d":
            fregs[ins.rd] = _canon(float(np.sqrt(np.float64(a))))
        elif m in ("fmin.d", "fmax.d"):
            # RISC-V: a NaN input yields the other operand (canonical NaN
            # if both are NaN), and zeros compare by sign bit so
            # fmin(+0,-0) is -0 and fmax(-0,+0) is +0.
            if math.isnan(a) and math.isnan(c):
                fregs[ins.rd] = _CANON_NAN
            elif math.isnan(a):
                fregs[ins.rd] = c
            elif math.isnan(c):
                fregs[ins.rd] = a
            elif a == c:  # equal magnitudes: break the +-0 tie by sign
                a_neg = math.copysign(1.0, a) < 0
                fregs[ins.rd] = (a if a_neg == (m == "fmin.d") else c)
            else:
                fregs[ins.rd] = min(a, c) if m == "fmin.d" else max(a, c)
        elif m.startswith("fsgnj"):
            mag = abs(a)
            if m == "fsgnj.d":
                sign = math.copysign(1.0, c)
            elif m == "fsgnjn.d":
                sign = -math.copysign(1.0, c)
            else:  # fsgnjx.d
                sign = math.copysign(1.0, a) * math.copysign(1.0, c)
            fregs[ins.rd] = math.copysign(mag, sign)
        elif m in ("feq.d", "flt.d", "fle.d"):
            if math.isnan(a) or math.isnan(c):
                res = 0
            else:
                res = int({"feq.d": a == c, "flt.d": a < c,
                           "fle.d": a <= c}[m])
            self._wr(ins.rd, res)
        elif m in ("fcvt.w.d", "fcvt.l.d"):
            bits = 32 if m == "fcvt.w.d" else 64
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            if math.isnan(a):
                res = hi
            elif math.isinf(a):  # int(inf) raises; clamp like hardware
                res = hi if a > 0 else lo
            else:
                res = min(max(int(a), lo), hi)  # trunc toward zero
            self._wr(ins.rd, res & _MASK64)
        elif m in ("fcvt.d.w", "fcvt.d.l"):
            src = _s32(rs1_val) if m == "fcvt.d.w" else _s64(rs1_val)
            fregs[ins.rd] = float(src)
        elif m == "fcvt.s.d":
            fregs[ins.rd] = _canon(float(np.float32(a)))
        elif m == "fcvt.d.s":
            fregs[ins.rd] = _canon(float(np.float32(a)))
        elif m == "fmv.x.d":
            self._wr(ins.rd, _bits_of(a))
        elif m == "fmv.d.x":
            fregs[ins.rd] = _float_of(rs1_val)
        else:  # pragma: no cover
            raise ExecutionError(f"unimplemented fp mnemonic {m}")

    if b is not None:
        src1 = (FP_BASE + ins.rs1 if ins.mnemonic not in
                ("fcvt.d.w", "fcvt.d.l", "fmv.d.x") else ins.rs1)
        b.fp(kind, trace_rd, src1,
             FP_BASE + ins.rs2 if ins.fmt in ("RF", "R4") else -1)


def _div(s1: int, s2: int) -> int:
    if s2 == 0:
        return _MASK64  # RISC-V: division by zero yields all-ones
    if s1 == -(1 << 63) and s2 == -1:
        return s1 & _MASK64
    q = abs(s1) // abs(s2)
    return (-q if (s1 < 0) != (s2 < 0) else q) & _MASK64


def _rem(s1: int, s2: int) -> int:
    if s2 == 0:
        return s1 & _MASK64
    if s1 == -(1 << 63) and s2 == -1:
        return 0
    r = abs(s1) % abs(s2)
    return (-r if s1 < 0 else r) & _MASK64


_ALU_R = {
    "add": lambda r1, r2, s1, s2: (r1 + r2) & _MASK64,
    "sub": lambda r1, r2, s1, s2: (r1 - r2) & _MASK64,
    "sll": lambda r1, r2, s1, s2: (r1 << (r2 & 63)) & _MASK64,
    "slt": lambda r1, r2, s1, s2: int(s1 < s2),
    "sltu": lambda r1, r2, s1, s2: int(r1 < r2),
    "xor": lambda r1, r2, s1, s2: r1 ^ r2,
    "srl": lambda r1, r2, s1, s2: r1 >> (r2 & 63),
    "sra": lambda r1, r2, s1, s2: (s1 >> (r2 & 63)) & _MASK64,
    "or": lambda r1, r2, s1, s2: r1 | r2,
    "and": lambda r1, r2, s1, s2: r1 & r2,
    "addw": lambda r1, r2, s1, s2: _s32(r1 + r2) & _MASK64,
    "subw": lambda r1, r2, s1, s2: _s32(r1 - r2) & _MASK64,
    "sllw": lambda r1, r2, s1, s2: _s32(r1 << (r2 & 31)) & _MASK64,
    "srlw": lambda r1, r2, s1, s2: _s32((r1 & 0xFFFFFFFF) >> (r2 & 31)) & _MASK64,
    "sraw": lambda r1, r2, s1, s2: _s32(_s32(r1) >> (r2 & 31)) & _MASK64,
    "mul": lambda r1, r2, s1, s2: (r1 * r2) & _MASK64,
    "mulh": lambda r1, r2, s1, s2: ((s1 * s2) >> 64) & _MASK64,
    "mulhsu": lambda r1, r2, s1, s2: ((s1 * r2) >> 64) & _MASK64,
    "mulhu": lambda r1, r2, s1, s2: ((r1 * r2) >> 64) & _MASK64,
    "mulw": lambda r1, r2, s1, s2: _s32(r1 * r2) & _MASK64,
    "div": lambda r1, r2, s1, s2: _div(s1, s2),
    "divu": lambda r1, r2, s1, s2: (_MASK64 if r2 == 0 else r1 // r2),
    "rem": lambda r1, r2, s1, s2: _rem(s1, s2),
    "remu": lambda r1, r2, s1, s2: (r1 if r2 == 0 else r1 % r2),
    "divw": lambda r1, r2, s1, s2: _s32(
        0xFFFFFFFF if _s32(r2) == 0 else _wdiv(_s32(r1), _s32(r2))
    ) & _MASK64,
    "divuw": lambda r1, r2, s1, s2: _s32(
        0xFFFFFFFF if r2 & 0xFFFFFFFF == 0 else (r1 & 0xFFFFFFFF) // (r2 & 0xFFFFFFFF)
    ) & _MASK64,
    "remw": lambda r1, r2, s1, s2: _s32(
        _s32(r1) if _s32(r2) == 0 else _wrem(_s32(r1), _s32(r2))
    ) & _MASK64,
    "remuw": lambda r1, r2, s1, s2: _s32(
        (r1 & 0xFFFFFFFF) if r2 & 0xFFFFFFFF == 0
        else (r1 & 0xFFFFFFFF) % (r2 & 0xFFFFFFFF)
    ) & _MASK64,
}


def _wdiv(a: int, b: int) -> int:
    if a == -(1 << 31) and b == -1:
        return a
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _wrem(a: int, b: int) -> int:
    if a == -(1 << 31) and b == -1:
        return 0
    r = abs(a) % abs(b)
    return -r if a < 0 else r


_ALU_I = {
    "addi": lambda r1, s1, imm: (r1 + imm) & _MASK64,
    "slti": lambda r1, s1, imm: int(s1 < imm),
    "sltiu": lambda r1, s1, imm: int(r1 < (imm & _MASK64)),
    "xori": lambda r1, s1, imm: (r1 ^ (imm & _MASK64)) & _MASK64,
    "ori": lambda r1, s1, imm: (r1 | (imm & _MASK64)) & _MASK64,
    "andi": lambda r1, s1, imm: r1 & (imm & _MASK64),
    "slli": lambda r1, s1, imm: (r1 << imm) & _MASK64,
    "srli": lambda r1, s1, imm: r1 >> imm,
    "srai": lambda r1, s1, imm: (s1 >> imm) & _MASK64,
    "addiw": lambda r1, s1, imm: _s32(r1 + imm) & _MASK64,
    "slliw": lambda r1, s1, imm: _s32(r1 << imm) & _MASK64,
    "srliw": lambda r1, s1, imm: _s32((r1 & 0xFFFFFFFF) >> imm) & _MASK64,
    "sraiw": lambda r1, s1, imm: _s32(_s32(r1) >> imm) & _MASK64,
}

_BR = {
    "beq": lambda r1, r2, s1, s2: r1 == r2,
    "bne": lambda r1, r2, s1, s2: r1 != r2,
    "blt": lambda r1, r2, s1, s2: s1 < s2,
    "bge": lambda r1, r2, s1, s2: s1 >= s2,
    "bltu": lambda r1, r2, s1, s2: r1 < r2,
    "bgeu": lambda r1, r2, s1, s2: r1 >= r2,
}
