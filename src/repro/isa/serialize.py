"""Trace serialization: save/load micro-op traces as ``.npz`` archives.

Traces are the interchange format between workload generation and timing
(like the instruction traces FireSim users capture with TracerV); saving
them makes runs reproducible and lets expensive generators (the MPI apps,
the interpreter) run once.
"""

from __future__ import annotations

import pathlib

import numpy as np

from .trace import Trace

__all__ = ["save_trace", "load_trace", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1

_FIELDS = ("op", "dst", "src1", "src2", "addr", "size", "taken", "pc", "target")


def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write *trace* to *path* (compressed npz)."""
    arrays = {name: getattr(trace, name) for name in _FIELDS}
    np.savez_compressed(
        path,
        __version__=np.int64(TRACE_FORMAT_VERSION),
        **arrays,
    )


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        version = int(data["__version__"])
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"trace format v{version} unsupported "
                f"(expected v{TRACE_FORMAT_VERSION})"
            )
        missing = [f for f in _FIELDS if f not in data]
        if missing:
            raise ValueError(f"trace file missing fields: {missing}")
        return Trace(*(data[name] for name in _FIELDS))
