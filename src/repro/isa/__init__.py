"""RISC-V ISA layer: micro-op classes, traces, RV64IMFD encoding, assembler,
a trace-emitting functional interpreter, and trace serialization."""

from .opcodes import DEFAULT_LATENCIES, ExecUnit, LatencyTable, OpClass
from .trace import FP_REG_BASE, NUM_REGS, Trace, TraceBuilder, TraceStats
from .encoding import DecodeError, Instr, decode, encode
from .assembler import AssemblerError, assemble
from .interp import ExecutionError, Interpreter, Memory
from .serialize import load_trace, save_trace

__all__ = [
    "OpClass",
    "ExecUnit",
    "LatencyTable",
    "DEFAULT_LATENCIES",
    "Trace",
    "TraceBuilder",
    "TraceStats",
    "NUM_REGS",
    "FP_REG_BASE",
    "Instr",
    "encode",
    "decode",
    "DecodeError",
    "assemble",
    "AssemblerError",
    "Interpreter",
    "Memory",
    "ExecutionError",
    "save_trace",
    "load_trace",
]
