"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list configs|kernels|experiments``
    Inventories of the named SoC models, MicroBench kernels, and
    table/figure experiments.
``kernel NAME --config CFG [--scale S]``
    Run one microbenchmark on one configuration.
``compare NAME [--scale S]``
    Run one kernel on a hardware model and its FireSim counterpart and
    print the relative speedup.
``npb BENCH --config CFG [--ranks N] [--cls C]``
    Run an NPB benchmark (verified against the serial reference).
``perf NAME --config CFG [--scale S] [--cold] [--json]``
    perf-stat style counters for one kernel on one configuration.
``stats --config CFG --kernel NAME [--scale S] [--json|--csv] [--cold]``
    Full telemetry snapshot + per-tile CPI stack for one kernel run
    (see ``docs/observability.md``); with ``--store DIR`` print a shared
    result store's hit/miss/eviction counters and usage instead.
``experiment ID [--out FILE]``
    Regenerate a paper table/figure (fig1..fig7, table1/2/4/5, hostrate).
``farm [--configs A,B] [--kernels X,Y] [--workers N] [--cache-dir DIR]``
    Farm an ad-hoc kernel sweep across worker processes with result
    caching and live per-job progress (see ``docs/farm.md``).  With
    ``--quantum``/``--checkpoint-dir`` jobs run checkpointable; with
    ``--fault-plan`` deterministic chaos is injected (``docs/reliability.md``);
    with ``--instrument-dir`` (and optionally ``--counters-interval``)
    each job writes a live-tailable instrumentation stream.
``trace KERNEL [--start-pc PC|--start-cycle N] [--length N] [--out FILE]``
    Capture a trigger-armed instruction-trace window of one kernel run
    (TracerV analogue, see ``docs/instrumentation.md``).
``counters KERNEL --interval N [--flamegraph] [--out FILE]``
    Sample counter deltas every N target cycles (AutoCounter analogue)
    and print the interval CPI table, or fold region markers into
    flamegraph input.
``tail FILE [--follow]``
    Print an instrumentation stream, optionally following a live writer
    (e.g. a farm job's stream) until its seal record.
``checkpoint --config CFG --kernel NAME [--at N] --out FILE``
    Run a kernel through the token-lockstep path, save a mid-run (or
    final) checkpoint; ``--info FILE`` inspects one instead.
``replay FILE [--verify]``
    Resume a saved checkpoint to completion; ``--verify`` re-runs
    uninterrupted from scratch and asserts bit-identical results.
``bench [--config CFG] [--scale S] [--batched] [--out FILE]``
    Time the microbench sweep with ``accel`` off then on plus the
    functional interpreter, verify bit-identity, and write the tracked
    ``BENCH_<n>.json`` record (see ``docs/performance.md``).
    ``--batched`` adds the (kernel x ALL_CONFIGS) sweep timed
    serial-per-config versus config-batched, with its own bit-identity
    flag.
``serve [--spool DIR] [--deploy SPEC] [--quota N] [--tenant-quota T=N]``
    Run the long-lived farm service: multi-tenant named queues with
    integer priorities, per-tenant quotas and fair scheduling in front
    of a pluggable deploy backend (``local:N`` pool or an
    externally-provisioned ``hosts:a=2,b=4`` fleet), with a shared
    cross-run result store (see ``docs/serving.md``).  Every lifecycle
    transition is journaled; ``--recover`` replays the journal after a
    crash (restore finished jobs, re-enqueue the rest).  Host-health
    thresholds (``--suspect-after``/``--quarantine-after``/
    ``--probe-interval``) tune the circuit breaker that quarantines
    flaky hosts and migrates their jobs; ``--fault-plan`` injects a
    seeded chaos schedule (``docs/reliability.md``).
``submit KERNEL --endpoint SOCK [--tenant T] [--priority P] [--wait|--tail]``
    Queue one kernel job on a running server; ``--wait`` blocks for the
    result, ``--tail`` follows the job's live progress stream.
``status [ID] --endpoint SOCK [--json] [--hosts]``
    One job's state, or (without ID) the whole-server view: tenant
    queues, deploy slots, and store hit/miss/eviction counters;
    ``--hosts`` adds per-host health (breaker state, failure and
    quarantine counters).
``cancel ID --endpoint SOCK [--preempt]``
    Cancel a queued/running job; ``--preempt`` checkpoint-stops a
    running job so ``resume`` can continue it later.
``resume ID --endpoint SOCK``
    Re-queue a preempted job; it resumes from its last checkpoint and
    finishes bit-identical to an uninterrupted run.
``check [--seeds N] [--tiers T,U] [--accel-all] [--no-shrink]``
    Property-based differential checking: fuzz generated RISC-V programs
    through the interpreter-vs-golden, accel on/off, batched-vs-serial
    config sweeps, checkpoint/restore, instrumented-vs-bare,
    farm-vs-serial, and chaos (serve layer under seeded faults, crash +
    recovery) oracles plus the telemetry invariant lint; shrink any
    divergence into ``tests/check/corpus/`` (see ``docs/checking.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .analysis import (
    EXPERIMENTS,
    relative_speedup,
    render_series,
    render_table,
)
from .analysis.speedup import SeriesResult
from .soc import ALL_CONFIGS, BANANA_PI_HW, BANANA_PI_SIM, MILKV_HW, MILKV_SIM, get_config
from .workloads.microbench import get_kernel, run_kernel, runnable_kernels
from .workloads.npb import NPB_RUNNERS

__all__ = ["main", "build_parser"]

#: hardware model -> its tuned FireSim counterpart (for `compare`)
_PAIRS = {
    "BananaPi-K1": (BANANA_PI_HW, BANANA_PI_SIM),
    "MILKV-SG2042": (MILKV_HW, MILKV_SIM),
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Bridging Simulation and Silicon - reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", help="inventories")
    lst.add_argument("what", choices=["configs", "kernels", "experiments"])

    k = sub.add_parser("kernel", help="run one microbenchmark")
    k.add_argument("name")
    k.add_argument("--config", default="Rocket1")
    k.add_argument("--scale", type=float, default=1.0)

    c = sub.add_parser("compare", help="kernel on hardware vs FireSim pair")
    c.add_argument("name")
    c.add_argument("--pair", choices=sorted(_PAIRS), default="BananaPi-K1")
    c.add_argument("--scale", type=float, default=1.0)

    n = sub.add_parser("npb", help="run an NPB benchmark")
    n.add_argument("bench", choices=sorted(NPB_RUNNERS))
    n.add_argument("--config", default="Rocket1")
    n.add_argument("--ranks", type=int, default=1)
    n.add_argument("--cls", default="A", choices=["S", "W", "A"])

    pf = sub.add_parser("perf", help="perf-stat counters for a kernel")
    pf.add_argument("name")
    pf.add_argument("--config", default="Rocket1")
    pf.add_argument("--scale", type=float, default=1.0)
    pf.add_argument("--cold", action="store_true", help="skip the warmup pass")
    pf.add_argument("--json", action="store_true",
                    help="emit the counters as JSON instead of text")

    st = sub.add_parser("stats", help="telemetry snapshot + CPI stack")
    st.add_argument("--config", default="Rocket1")
    st.add_argument("--kernel", default="MM")
    st.add_argument("--scale", type=float, default=1.0)
    st.add_argument("--cold", action="store_true", help="skip the warmup pass")
    fmt = st.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", help="JSON snapshot")
    fmt.add_argument("--csv", action="store_true", help="flat counter CSV")
    st.add_argument("--out", default=None, help="also write the output here")
    st.add_argument("--store", default=None, metavar="DIR",
                    help="print the shared result store's hit/miss/eviction "
                         "counters and usage instead of running a kernel")

    e = sub.add_parser("experiment", help="regenerate a paper artifact")
    e.add_argument("id", choices=sorted(EXPERIMENTS))
    e.add_argument("--out", default=None, help="also write the text here")

    fm = sub.add_parser("farm", help="farm a kernel sweep across workers")
    fm.add_argument("--configs", default="Rocket1",
                    help="comma-separated SoC config names")
    fm.add_argument("--kernels", default=None,
                    help="comma-separated kernel names "
                         "(default: the full runnable suite)")
    fm.add_argument("--scale", type=float, default=1.0)
    fm.add_argument("--seed", type=int, default=0)
    fm.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: $REPRO_WORKERS or 1)")
    fm.add_argument("--cache-dir", default=None,
                    help="result cache directory (default: $REPRO_CACHE_DIR)")
    fm.add_argument("--no-cache", action="store_true",
                    help="bypass the result cache entirely")
    fm.add_argument("--timeout", type=float, default=None,
                    help="per-job timeout in seconds (parallel mode)")
    fm.add_argument("--retries", type=int, default=2,
                    help="extra attempts for a failed/hung job")
    fm.add_argument("--json", action="store_true",
                    help="emit results + farm stats as JSON")
    fm.add_argument("--quiet", action="store_true",
                    help="suppress the live per-job progress lines")
    fm.add_argument("--quantum", type=int, default=None,
                    help="run kernels through the token-lockstep path in "
                         "quanta of this many cycles (checkpointable jobs)")
    fm.add_argument("--checkpoint-dir", default=None,
                    help="save mid-run job checkpoints here; retries of "
                         "crashed jobs resume from them")
    fm.add_argument("--checkpoint-every", type=int, default=8,
                    help="quanta between checkpoint saves")
    fm.add_argument("--manifest", default=None,
                    help="write a JSON run manifest here (also on Ctrl-C)")
    fm.add_argument("--fault-plan", default=None,
                    help="fault-injection DSL, inline or @file "
                         "(see docs/reliability.md)")
    fm.add_argument("--fault-seed", type=int, default=0,
                    help="seed for the fault plan's deterministic damage")
    fm.add_argument("--instrument-dir", default=None,
                    help="write a per-job instrumentation stream "
                         "(<label>.jsonl) here, tail-able while the job "
                         "runs; bypasses the result cache")
    fm.add_argument("--counters-interval", type=int, default=None,
                    help="sample counter deltas every N target cycles "
                         "into each job's stream (implies instrumentation)")
    fm.add_argument("--deploy", default=None, metavar="SPEC",
                    help="run-farm backend: 'local:N' pool or "
                         "'hosts:a=2,b=4' externally-provisioned fleet "
                         "(default: $REPRO_DEPLOY, else local pool)")

    tr = sub.add_parser("trace",
                        help="trigger-armed instruction trace window")
    tr.add_argument("kernel")
    tr.add_argument("--config", default="Rocket1")
    tr.add_argument("--scale", type=float, default=1.0)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--start-pc", type=lambda s: int(s, 0), default=None,
                    help="open the window at the first match of this PC")
    tr.add_argument("--start-cycle", type=int, default=None,
                    help="open the window at this target cycle")
    tr.add_argument("--stop-pc", type=lambda s: int(s, 0), default=None,
                    help="close the window at the first match of this PC")
    tr.add_argument("--stop-cycle", type=int, default=None,
                    help="close the window at this target cycle")
    tr.add_argument("--length", type=int, default=100,
                    help="instructions to capture (0: tripwire only)")
    tr.add_argument("--max-records", type=int, default=65536,
                    help="hard cap on captured records")
    tr.add_argument("--interval", type=int, default=None,
                    help="also sample counters every N target cycles")
    tr.add_argument("--chunk", type=int, default=256,
                    help="instructions per observed chunk (the cycle-"
                         "stamp resolution dial)")
    tr.add_argument("--out", default=None, metavar="FILE",
                    help="write the JSONL stream here")
    tr.add_argument("--json", action="store_true",
                    help="print raw JSONL records instead of the table")

    co = sub.add_parser("counters",
                        help="periodic counter sampling (interval CPI)")
    co.add_argument("kernel")
    co.add_argument("--config", default="Rocket1")
    co.add_argument("--scale", type=float, default=1.0)
    co.add_argument("--seed", type=int, default=0)
    co.add_argument("--interval", type=int, default=10_000,
                    help="target cycles between counter samples")
    co.add_argument("--flamegraph", action="store_true",
                    help="fold region markers into flamegraph.pl input "
                         "instead of the interval CPI table")
    co.add_argument("--chunk", type=int, default=256,
                    help="instructions per observed chunk (the sample-"
                         "alignment resolution dial)")
    co.add_argument("--out", default=None, metavar="FILE",
                    help="write the JSONL stream here")
    co.add_argument("--json", action="store_true",
                    help="print the interval list as JSON")

    tl = sub.add_parser("tail", help="follow an instrumentation stream")
    tl.add_argument("file")
    tl.add_argument("-f", "--follow", action="store_true",
                    help="keep polling for new records until the seal")
    tl.add_argument("--timeout", type=float, default=30.0,
                    help="give up after this many idle seconds (--follow)")
    tl.add_argument("--kinds", default=None,
                    help="comma-separated record kinds to show "
                         "(default: all)")

    ck = sub.add_parser("checkpoint",
                        help="save (or inspect) a lockstep run checkpoint")
    ck.add_argument("--config", default="Rocket1")
    ck.add_argument("--kernel", default="MM")
    ck.add_argument("--scale", type=float, default=1.0)
    ck.add_argument("--seed", type=int, default=0)
    ck.add_argument("--quantum", type=int, default=4096)
    ck.add_argument("--chunk", type=int, default=None,
                    help="trace chunk per lane step (default: quantum/2)")
    ck.add_argument("--at", type=int, default=8,
                    help="save after this many quanta (0: run to the end)")
    ck.add_argument("--cold", action="store_true", help="skip the warmup pass")
    ck.add_argument("--out", default="repro.ckpt")
    ck.add_argument("--info", default=None, metavar="FILE",
                    help="verify + describe an existing checkpoint and exit")

    rp = sub.add_parser("replay", help="resume a checkpoint to completion")
    rp.add_argument("file")
    rp.add_argument("--verify", action="store_true",
                    help="also run uninterrupted from scratch and assert "
                         "the results are bit-identical")

    b = sub.add_parser("bench",
                       help="tracked hot-path benchmark (accel off vs on)")
    b.add_argument("--config", default="Rocket1")
    b.add_argument("--scale", type=float, default=0.5)
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--kernels", default=None,
                   help="comma-separated kernel names "
                        "(default: the full runnable suite)")
    b.add_argument("--batched", action="store_true",
                   help="also time the (kernel x ALL_CONFIGS) sweep "
                        "serial-per-config vs config-batched")
    b.add_argument("--out", default=None, metavar="FILE",
                   help="write the benchmark record here (e.g. BENCH_5.json)")
    b.add_argument("--json", action="store_true",
                   help="print the full record as JSON instead of a summary")

    sv = sub.add_parser("serve", help="run the farm-as-a-service daemon")
    sv.add_argument("--spool", default="serve-spool",
                    help="server working directory (socket, streams, "
                         "checkpoints, results, shared store)")
    sv.add_argument("--deploy", default=None, metavar="SPEC",
                    help="run-farm backend: 'local:N' or 'hosts:a=2,b=4' "
                         "(default: $REPRO_DEPLOY, else local pool)")
    sv.add_argument("--socket", default=None,
                    help="listen on this Unix socket path "
                         "(default: <spool>/serve.sock)")
    sv.add_argument("--quota", type=int, default=None,
                    help="default per-tenant concurrent-job quota "
                         "(default: unlimited)")
    sv.add_argument("--tenant-quota", action="append", default=[],
                    metavar="TENANT=N",
                    help="explicit quota for one tenant (repeatable)")
    sv.add_argument("--retries", type=int, default=2,
                    help="automatic re-queues for a failed/crashed job")
    sv.add_argument("--timeout", type=float, default=None,
                    help="default per-job timeout in seconds")
    sv.add_argument("--checkpoint-every", type=int, default=2,
                    help="quanta between preemption checkpoints")
    sv.add_argument("--no-store", action="store_true",
                    help="serve without the shared cross-run result store")
    sv.add_argument("--store-dir", default=None,
                    help="shared store location (default: <spool>/store)")
    sv.add_argument("--store-max-entries", type=int, default=None,
                    help="LRU-evict the store beyond this many entries")
    sv.add_argument("--store-max-bytes", type=int, default=None,
                    help="LRU-evict the store beyond this many bytes")
    sv.add_argument("--recover", action="store_true",
                    help="replay <spool>/journal.jsonl before serving: "
                         "restore terminal jobs, re-enqueue the rest "
                         "(resuming from checkpoints where they exist)")
    sv.add_argument("--fault-plan", default=None, metavar="DSL",
                    help="chaos fault schedule (repro.reliability DSL), "
                         "e.g. 'kill job=0; host-stall host=a count=1'")
    sv.add_argument("--fault-seed", type=int, default=0,
                    help="seed for the fault plan's randomised damage")
    sv.add_argument("--suspect-after", type=int, default=None,
                    help="consecutive host-correlated failures before a "
                         "host turns suspect (placed only as last resort)")
    sv.add_argument("--quarantine-after", type=int, default=None,
                    help="consecutive host-correlated failures before a "
                         "host is quarantined and its jobs migrated")
    sv.add_argument("--probe-interval", type=int, default=None,
                    help="acquire ticks before a quarantined host gets a "
                         "half-open probe job")

    sb = sub.add_parser("submit", help="queue a job on a running server")
    sb.add_argument("kernel", help="MicroBench kernel name")
    sb.add_argument("--endpoint", default=None,
                    help="server socket (default: $REPRO_SERVE)")
    sb.add_argument("--config", default="Rocket1")
    sb.add_argument("--scale", type=float, default=1.0)
    sb.add_argument("--seed", type=int, default=0)
    sb.add_argument("--quantum", type=int, default=None,
                    help="lockstep quantum (makes the job preemptible)")
    sb.add_argument("--timeout", type=float, default=None,
                    help="per-job timeout in seconds")
    sb.add_argument("--tenant", default="default")
    sb.add_argument("--priority", type=int, default=0,
                    help="higher dispatches first within the tenant")
    sb.add_argument("--counters-interval", type=int, default=None,
                    help="attach instrumentation sampling counters every "
                         "N target cycles (stream lands in the spool)")
    sb.add_argument("--wait", action="store_true",
                    help="block until the job reaches a terminal state")
    sb.add_argument("--tail", action="store_true",
                    help="follow the job's progress stream until its seal")
    sb.add_argument("--json", action="store_true",
                    help="print the raw status document")

    ss = sub.add_parser("status", help="job or whole-server status")
    ss.add_argument("id", nargs="?", default=None,
                    help="job id (omit for the whole-server view)")
    ss.add_argument("--endpoint", default=None,
                    help="server socket (default: $REPRO_SERVE)")
    ss.add_argument("--hosts", action="store_true",
                    help="show per-host health in the whole-server view "
                         "(breaker state, failure/quarantine counters)")
    ss.add_argument("--json", action="store_true",
                    help="print the raw status document")

    cn = sub.add_parser("cancel", help="cancel (or preempt) a served job")
    cn.add_argument("id")
    cn.add_argument("--endpoint", default=None,
                    help="server socket (default: $REPRO_SERVE)")
    cn.add_argument("--preempt", action="store_true",
                    help="checkpoint-stop a running job instead of "
                         "cancelling it outright (resume later)")

    rs = sub.add_parser("resume", help="re-queue a preempted job")
    rs.add_argument("id")
    rs.add_argument("--endpoint", default=None,
                    help="server socket (default: $REPRO_SERVE)")

    chk = sub.add_parser("check",
                         help="differential fuzzing across every oracle")
    chk.add_argument("--seeds", type=int, default=25,
                     help="number of generated programs")
    chk.add_argument("--start-seed", type=int, default=0)
    chk.add_argument("--tiers", default=None,
                     help="comma-separated oracle tiers (default: "
                          "golden,lint,accel,checkpoint,instrument,farm)")
    chk.add_argument("--configs", default=None,
                     help="comma-separated SoC configs for the accel tier "
                          "(default: a rotating pair per seed)")
    chk.add_argument("--accel-all", action="store_true",
                     help="run every named config on every seed")
    chk.add_argument("--no-shrink", action="store_true",
                     help="report divergences without shrinking to corpus")
    chk.add_argument("--corpus-dir", default=None,
                     help="where shrunk repros go "
                          "(default: tests/check/corpus/)")
    chk.add_argument("--quiet", action="store_true",
                     help="suppress per-seed progress lines")
    return p


def _render(result) -> str:
    if isinstance(result, SeriesResult):
        return render_series(result)
    return render_table(result)


def _format_record(rec: dict) -> str:
    """One human-readable line per stream record (for trace/tail)."""
    kind = rec.get("t", "?")
    if kind == "trace":
        extra = ""
        if "addr" in rec:
            extra = f" addr={rec['addr']} size={rec['size']}"
        elif "target" in rec:
            extra = f" target={rec['target']} taken={rec['taken']}"
        return (f"{rec['cycle']:>12}  {rec['pc']:>12}  {rec['op']:<10}"
                f" [{rec['window']}]{extra}")
    if kind == "marker":
        return (f"{rec['cycle']:>12}  {rec['pc']:>12}  MARKER     "
                f"id={rec['id']} value={rec['value']}")
    if kind == "window":
        what = rec["event"]
        tail = (f" reason={rec['reason']} records={rec['records']}"
                if what == "close" else f" pc={rec.get('pc')}")
        return (f"{rec.get('cycle', ''):>12}  {'':>12}  WINDOW-{what.upper()}"
                f" [{rec['window']}]{tail}")
    if kind == "counter":
        hot = sorted(rec.get("counters", {}).items(),
                     key=lambda kv: -abs(kv[1]))[:3]
        summary = ", ".join(f"{k}={v}" for k, v in hot)
        return (f"{rec['cycle']:>12}  {'':>12}  COUNTER    "
                f"sample={rec['sample']} {summary}")
    if kind == "serve":
        extra = "".join(f" {k}={rec[k]}" for k in ("host", "error")
                        if rec.get(k) is not None)
        return (f"{'':>12}  {'':>12}  SERVE      event={rec['event']} "
                f"job={rec.get('job')} state={rec.get('state')}{extra}")
    if kind == "meta":
        # instrument streams carry config/resumed; serve streams carry
        # the job identity instead — show whichever fields are present
        fields = " ".join(f"{k}={rec[k]}" for k in
                          ("source", "config", "workload", "job", "resumed")
                          if k in rec)
        return f"{'':>12}  {'':>12}  META       {fields}"
    if kind == "seal":
        return (f"{'':>12}  {'':>12}  SEAL       reason={rec['reason']} "
                f"records={rec['records']}")
    return json.dumps(rec)


def _instrumented_kernel_run(args, spec):
    """Shared body of `repro trace` / `repro counters`: run one kernel
    with *spec* attached, return (kernel, system, result, records).

    Runs through the token-lockstep path so the instrument observes
    chunk-sized slices: ``--chunk`` is the resolution/overhead dial
    (smaller chunks, finer cycle stamps and sample alignment).
    """
    from .instrument import Instrument, read_stream
    from .soc.system import System

    kern = get_kernel(args.kernel)
    trace = kern.build(scale=max(args.scale, kern.min_harness_scale),
                       seed=args.seed)
    system = System(get_config(args.config))
    instrument = Instrument(spec, path=args.out)
    system.attach_instrument(instrument)
    chunk = max(1, args.chunk)
    result = system.run_parallel([trace], quantum=2 * chunk, chunk=chunk)[0]
    instrument.seal()
    return kern, system, result, read_stream(instrument.stream)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        if args.what == "configs":
            for name, cfg in ALL_CONFIGS.items():
                kind = "silicon" if cfg.is_silicon else "firesim"
                print(f"{name:18} {kind:8} {cfg.ncores}x {cfg.core_type} "
                      f"@ {cfg.core_ghz} GHz")
        elif args.what == "kernels":
            for kern in runnable_kernels():
                s = kern.spec
                print(f"{s.name:12} {s.category:14} {s.description}")
        else:
            for eid, fn in EXPERIMENTS.items():
                doc = (fn.__doc__ or "").strip().splitlines()[0]
                print(f"{eid:10} {doc}")
        return 0

    if args.command == "kernel":
        run = run_kernel(get_config(args.config), args.name, scale=args.scale)
        r = run.result
        print(f"{args.name} on {args.config}: {r.cycles} cycles, "
              f"CPI {r.cpi:.2f}, {run.seconds * 1e6:.1f} us, "
              f"{r.mispredicts} mispredicts, {r.l1d_misses} L1D misses")
        return 0

    if args.command == "compare":
        hw_cfg, sim_cfg = _PAIRS[args.pair]
        hw = run_kernel(hw_cfg, args.name, scale=args.scale)
        sim = run_kernel(sim_cfg, args.name, scale=args.scale)
        rel = relative_speedup(hw.seconds, sim.seconds)
        print(f"{args.name}: {hw_cfg.name} {hw.seconds * 1e6:.1f} us | "
              f"{sim_cfg.name} {sim.seconds * 1e6:.1f} us | "
              f"relative speedup {rel:.3f}")
        return 0

    if args.command == "perf":
        from .analysis.perf import perf_stat
        from .workloads.microbench import get_kernel as _gk

        kern = _gk(args.name)
        trace = kern.build(scale=max(args.scale, kern.min_harness_scale))
        rep = perf_stat(get_config(args.config), trace,
                        warmup=not args.cold and kern.needs_warmup)
        print(rep.to_json() if args.json else rep.render())
        return 0

    if args.command == "stats" and args.store:
        from .farm import SharedResultStore

        snap = SharedResultStore(args.store).stats_snapshot()
        if args.json:
            text = json.dumps(snap.data, indent=2, sort_keys=True)
        elif args.csv:
            text = snap.to_csv().rstrip("\n")
        else:
            text = f"shared store {args.store}\n" + "\n".join(
                f"  {k} = {v}" for k, v in sorted(snap.flat().items()))
        print(text)
        if args.out:
            with open(args.out, "w") as f:
                f.write(text + "\n")
        return 0

    if args.command == "stats":
        from .soc.system import System
        from .telemetry import StatsRegistry, cpi_stack

        kern = get_kernel(args.kernel)
        trace = kern.build(scale=max(args.scale, kern.min_harness_scale))
        cfg = get_config(args.config)
        system = System(cfg)
        registry = StatsRegistry(system)
        if not args.cold and kern.needs_warmup:
            system.warm(trace)
        base = registry.snapshot()
        result = system.run(trace)
        delta = registry.delta(base)
        stack = cpi_stack(system, result, delta)
        if args.csv:
            text = delta.to_csv().rstrip("\n")
        elif args.json:
            text = json.dumps({
                "schema": delta["schema"],
                "config": cfg.name,
                "kernel": kern.spec.name,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "cpi": round(result.cpi, 4),
                "tiles": [stack.to_dict()],
                "counters": delta.data,
            }, indent=2)
        else:
            text = (f"{kern.spec.name} on {cfg.name}\n{stack.render()}\n\n"
                    f"counter delta (warmed window):\n"
                    + "\n".join(f"  {k} = {v}"
                                for k, v in sorted(delta.flat().items())
                                if isinstance(v, (int, float)) and v))
        print(text)
        if args.out:
            with open(args.out, "w") as f:
                f.write(text + "\n")
        return 0

    if args.command == "farm":
        from .farm import Job, RunFarm, resolve_cache

        cfg_names = [c for c in args.configs.split(",") if c]
        kernel_names = ([k for k in args.kernels.split(",") if k]
                        if args.kernels
                        else [k.spec.name for k in runnable_kernels()])
        jobs = [Job.kernel(get_config(c), k, scale=args.scale, seed=args.seed,
                           quantum=args.quantum)
                for c in cfg_names for k in kernel_names]
        cache = (None if args.no_cache
                 else resolve_cache(args.cache_dir))
        plan = None
        if args.fault_plan:
            from .reliability import FaultPlan

            text = args.fault_plan
            if text.startswith("@"):
                with open(text[1:]) as f:
                    text = f.read()
            plan = FaultPlan.parse(text, seed=args.fault_seed)

        done = 0
        width = max(len(j.label) for j in jobs)

        def progress(ev) -> None:
            nonlocal done
            if ev.kind == "start":
                return
            if ev.kind == "retry":
                print(f"[{done:>{len(str(len(jobs)))}}/{len(jobs)}] "
                      f"{ev.job.label:<{width}}  retrying (attempt "
                      f"{ev.attempt} failed: {ev.error})", file=sys.stderr)
                return
            done += 1
            if ev.kind == "cache-hit":
                body = "cache hit"
            elif ev.kind == "failed":
                body = f"FAILED: {ev.error}"
            elif ev.kind == "interrupted":
                body = "interrupted"
            else:
                body = f"ok ({ev.elapsed_s:.2f}s, attempt {ev.attempt})"
            print(f"[{done:>{len(str(len(jobs)))}}/{len(jobs)}] "
                  f"{ev.job.label:<{width}}  {body}", file=sys.stderr)

        spec = None
        if args.instrument_dir or args.counters_interval:
            from .instrument import InstrumentSpec
            spec = InstrumentSpec(counter_interval=args.counters_interval)

        farm = RunFarm(workers=args.workers, cache=cache,
                       timeout_s=args.timeout, max_retries=args.retries,
                       on_event=None if args.quiet else progress,
                       fault_plan=plan, checkpoint_dir=args.checkpoint_dir,
                       checkpoint_every=args.checkpoint_every,
                       manifest_path=args.manifest,
                       instrument=spec, instrument_dir=args.instrument_dir,
                       deploy=args.deploy)
        results = farm.run(jobs)
        stats = farm.stats

        if args.json:
            print(json.dumps({
                "jobs": [
                    {
                        "label": r.job.label,
                        "config": r.job.config.name,
                        "kernel": r.job.workload,
                        "status": r.status,
                        "from_cache": r.from_cache,
                        "attempts": r.attempts,
                        "error": r.error,
                        "cycles": (r.payload or {}).get("cycles"),
                        "seconds": (r.payload or {}).get("seconds"),
                    }
                    for r in results
                ],
                "stats": stats.to_snapshot().data,
            }, indent=2))
        else:
            for r in results:
                if r.ok:
                    src = "cache" if r.from_cache else f"run x{r.attempts}"
                    print(f"{r.job.label:<{width}}  "
                          f"{r.payload['cycles']:>12,} cycles  "
                          f"{r.payload['seconds'] * 1e6:>10.1f} us  [{src}]")
                elif r.status == "interrupted":
                    print(f"{r.job.label:<{width}}  interrupted")
                else:
                    print(f"{r.job.label:<{width}}  FAILED: {r.error}")
            extra = ""
            for label, n in (("resumed", stats.resumed),
                             ("quarantined", stats.corrupt),
                             ("interrupted", stats.interrupted)):
                if n:
                    extra += f", {n} {label}"
            print(f"farm: {stats.ok}/{stats.jobs} ok, "
                  f"{stats.cache_hits} cache hit(s), "
                  f"{stats.simulated} simulated, {stats.retries} retried, "
                  f"{stats.failed} failed{extra} "
                  f"({farm.workers} worker(s))")
        return 0 if stats.failed == 0 and stats.interrupted == 0 else 1

    if args.command == "checkpoint":
        from .reliability import SimCheckpoint
        from .soc.system import System
        from .telemetry import StatsRegistry

        if args.info:
            ckpt = SimCheckpoint.load(args.info)  # verifies the digest
            state = "bare snapshot" if ckpt.lanes is None else (
                f"mid-run at quantum {ckpt.quanta}")
            print(f"{args.info}: schema {ckpt.schema}, "
                  f"config {ckpt.config_name} ({ckpt.config_fp[:12]}...), "
                  f"{state}, digest {ckpt.digest[:16]}... (verified)")
            for key in sorted(k for k in ckpt.extras if k != "baseline"):
                print(f"  extras.{key} = {ckpt.extras[key]!r}")
            return 0

        kern = get_kernel(args.kernel)
        scale = max(args.scale, kern.min_harness_scale)
        trace = kern.build(scale=scale, seed=args.seed)
        cfg = get_config(args.config)
        system = System(cfg)
        registry = StatsRegistry(system)
        warmup = not args.cold and kern.needs_warmup
        if warmup:
            system.run(trace)
        base = registry.snapshot()
        chunk = args.chunk or max(1, args.quantum // 2)
        run = system.start_parallel([trace], quantum=args.quantum, chunk=chunk)
        while not run.done and (args.at <= 0 or run.quanta < args.at):
            run.step()
        ckpt = run.checkpoint(extras={
            "kernel": kern.spec.name, "scale": scale, "seed": args.seed,
            "warmup": warmup, "baseline": base.data,
        })
        ckpt.save(args.out)
        print(f"saved {args.out}: {cfg.name}/{kern.spec.name} at quantum "
              f"{ckpt.quanta} ({'finished' if run.done else 'mid-run'}), "
              f"digest {ckpt.digest[:16]}...")
        return 0

    if args.command == "replay":
        from .reliability import SimCheckpoint
        from .soc.system import System

        ckpt = SimCheckpoint.load(args.file)
        meta = ckpt.extras
        kern = get_kernel(meta["kernel"])
        trace = kern.build(scale=meta["scale"], seed=meta["seed"])
        cfg = get_config(ckpt.config_name)
        system = System(cfg)
        run = system.restore(ckpt, [trace])
        if run is None:
            print(f"{args.file}: bare snapshot restored onto {cfg.name} "
                  "(no run to replay)")
            return 0
        start_q = run.quanta
        run.run()
        result = run.results()[0]
        print(f"{cfg.name}/{meta['kernel']}: resumed at quantum {start_q}, "
              f"finished at {run.quanta}: {result.cycles} cycles, "
              f"{result.instructions} instructions, CPI {result.cpi:.3f}")
        if args.verify:
            import dataclasses as _dc

            ref_sys = System(get_config(ckpt.config_name))
            ref_trace = kern.build(scale=meta["scale"], seed=meta["seed"])
            if meta.get("warmup"):
                ref_sys.run(ref_trace)
            ref = ref_sys.run_parallel(
                [ref_trace], quantum=ckpt.scheduler["quantum"],
                chunk=ckpt.lanes[0]["chunk"])[0]
            if _dc.asdict(ref) == _dc.asdict(result):
                print("verify: PASS (bit-identical to the uninterrupted run)")
            else:
                print("verify: FAIL (resumed run diverged!)")
                return 1
        return 0

    if args.command == "bench":
        from .accel.bench import run_bench, write_bench_json

        kernels = ([k for k in args.kernels.split(",") if k]
                   if args.kernels else None)
        record = run_bench(get_config(args.config), scale=args.scale,
                           seed=args.seed, kernels=kernels,
                           batched=args.batched)
        if args.json:
            print(json.dumps(record, indent=2))
        else:
            s, it = record["suite"], record["interp"]
            print(f"suite  {s['config']}: {s['kernels']} kernels x scale "
                  f"{s['scale']}: off {s['off_seconds']}s, on "
                  f"{s['on_seconds']}s, speedup x{s['speedup']}, "
                  f"coverage {s['fastpath_coverage']:.1%}, "
                  f"{'bit-identical' if s['identical'] else 'DIVERGED'}")
            sp = s.get("span_solver")
            if sp:
                elig = sp.get("eligible_frac", 0.0)
                print(f"spans  {sp['spans']} attempted, "
                      f"{sp['spans_completed']} completed, aborts: "
                      f"{sp['aborts_no_converge']} no-converge, "
                      f"{sp['aborts_fe_hazard']} fe-hazard; "
                      f"{elig:.1%} of uops span-eligible, "
                      f"{sp['runs_below_min_span']} runs below min span, "
                      f"hazard deciles {sp['hazard_density']}")
            bt = record.get("batched")
            if bt:
                print(f"batched {bt['kernels']} kernels x "
                      f"{len(bt['configs'])} configs: serial "
                      f"{bt['serial_seconds']}s, batched "
                      f"{bt['batched_seconds']}s, speedup x{bt['speedup']}, "
                      f"{'bit-identical' if bt['identical'] else 'DIVERGED'}")
            print(f"interp {it['instructions']:,} instructions in "
                  f"{it['seconds']}s "
                  f"({it['instructions_per_second']:,} inst/s, "
                  f"decode {it['decode_hits']}/{it['decode_hits'] + it['decode_misses']} cached)")
        if args.out:
            write_bench_json(record, args.out)
            print(f"wrote {args.out}")
        ok = record["suite"]["identical"]
        if "batched" in record:
            ok = ok and record["batched"]["identical"]
        return 0 if ok else 1

    if args.command == "serve":
        import asyncio

        from .serve import FarmServer

        quotas: dict[str, int] = {}
        for spec_ in args.tenant_quota:
            tenant, _, n = spec_.partition("=")
            if not tenant or not n.isdigit():
                print(f"bad --tenant-quota {spec_!r} (want TENANT=N)",
                      file=sys.stderr)
                return 2
            quotas[tenant] = int(n)
        fault_plan = None
        if args.fault_plan:
            from .reliability import FaultPlan

            fault_plan = FaultPlan.parse(args.fault_plan,
                                         seed=args.fault_seed)
        server = FarmServer(
            args.spool, deploy=args.deploy,
            store=(False if args.no_store else args.store_dir),
            quotas=quotas or None, default_quota=args.quota,
            max_retries=args.retries, timeout_s=args.timeout,
            checkpoint_every=args.checkpoint_every,
            socket_path=args.socket,
            store_max_entries=args.store_max_entries,
            store_max_bytes=args.store_max_bytes,
            recover=args.recover, fault_plan=fault_plan,
            suspect_after=args.suspect_after,
            quarantine_after=args.quarantine_after,
            probe_interval=args.probe_interval)
        if args.recover:
            requeued = sum(1 for r in server.jobs.values() if r.recovered)
            print(f"journal replayed: {len(server.jobs)} job(s), "
                  f"{requeued} re-enqueued", file=sys.stderr)

        def announce() -> None:
            dep = server.deploy.describe()
            print(f"serving on {server.socket_path} "
                  f"({dep['kind']}, {server.deploy.total_slots} slot(s)); "
                  f"clients: --endpoint {server.socket_path}",
                  file=sys.stderr)

        try:
            asyncio.run(server.serve_forever(on_started=announce))
        except KeyboardInterrupt:
            print("interrupted; spool state kept", file=sys.stderr)
        return 0

    if args.command in ("submit", "status", "cancel", "resume"):
        from .serve import ServeClient, ServeError

        endpoint = args.endpoint or os.environ.get("REPRO_SERVE")
        if not endpoint:
            print("no server endpoint: pass --endpoint or set $REPRO_SERVE",
                  file=sys.stderr)
            return 2
        client = ServeClient(endpoint)

        def _job_line(doc: dict) -> str:
            line = (f"{doc['id']} {doc['label']} "
                    f"[{doc['tenant']} p{doc['priority']}]: {doc['state']}")
            if doc.get("cycles") is not None:
                line += f", {doc['cycles']:,} cycles"
            if doc.get("from_cache"):
                line += " [store]"
            if doc.get("resumed"):
                line += " [resumed]"
            if doc.get("error"):
                line += f" ({doc['error']})"
            return line

        try:
            if args.command == "submit":
                from .farm import Job

                job = Job.kernel(get_config(args.config), args.kernel,
                                 scale=args.scale, seed=args.seed,
                                 quantum=args.quantum,
                                 timeout_s=args.timeout)
                instrument = None
                if args.counters_interval:
                    from .instrument import InstrumentSpec

                    instrument = InstrumentSpec(
                        counter_interval=args.counters_interval).to_dict()
                doc = client.submit(job, tenant=args.tenant,
                                    priority=args.priority,
                                    instrument=instrument)
                if args.tail and doc["state"] in ("queued", "running"):
                    for rec in client.tail(doc["id"], follow=True):
                        print(_format_record(rec), flush=True)
                    doc = client.status(doc["id"])
                elif args.wait:
                    doc = client.wait(doc["id"])
                print(json.dumps(doc, indent=2, sort_keys=True)
                      if args.json else _job_line(doc))
                if not args.json and doc.get("stream"):
                    print(f"  stream: {doc['stream']}")
                return 0 if doc["state"] != "failed" else 1

            if args.command == "status":
                if args.id:
                    doc = client.status(args.id)
                    if args.json:
                        print(json.dumps(doc, indent=2, sort_keys=True))
                    else:
                        print(_job_line(doc))
                        if doc.get("stream"):
                            print(f"  stream: {doc['stream']}")
                        for s in doc.get("instrument_streams", []):
                            print(f"  instrument: {s}")
                    return 0
                doc = client.status()
                if args.json:
                    print(json.dumps(doc, indent=2, sort_keys=True))
                    return 0
                dep = doc["deploy"]
                busy = sum(h["busy"] for h in dep["hosts"])
                print(f"deploy: {dep['kind']}, {busy}/{dep['total_slots']} "
                      f"slot(s) busy")
                if args.hosts:
                    for h in dep["hosts"]:
                        print(f"  host {h['name']}: {h['busy']}/{h['slots']} "
                              f"busy, {h['state']}, "
                              f"{h['consecutive_failures']} consecutive / "
                              f"{h['failures']} total failure(s), "
                              f"{h['successes']} ok, "
                              f"{h['quarantines']} quarantine(s)")
                for name, t in doc["scheduler"]["tenants"].items():
                    print(f"tenant {name}: {t['running']} running, "
                          f"{t['queued']} queued, quota {t['quota']}")
                for j in doc["jobs"]:
                    print(_job_line(j))
                if "store" in doc:
                    s = doc["store"]
                    print(f"store: {s['entries']} entries, {s['bytes']} "
                          f"bytes, hit rate {s['hit_rate']:.1%} "
                          f"({s['hits']} hit(s), {s['misses']} miss(es), "
                          f"{s['evictions']} evicted)")
                return 0

            if args.command == "cancel":
                doc = client.cancel(args.id, preempt=args.preempt)
                verb = "preempting" if args.preempt else "cancelling"
                print(f"{doc['id']}: {doc['state']}"
                      + (f" ({verb})" if doc["state"] == "running" else ""))
                return 0

            doc = client.resume(args.id)  # resume
            print(_job_line(doc))
            return 0
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "check":
        from pathlib import Path

        from .check import ALL_TIERS, run_check

        tiers = ([t for t in args.tiers.split(",") if t]
                 if args.tiers else ALL_TIERS)
        configs = ([c for c in args.configs.split(",") if c]
                   if args.configs else None)
        report = run_check(
            seeds=args.seeds, start_seed=args.start_seed, tiers=tiers,
            accel_configs=configs, accel_all=args.accel_all,
            shrink=not args.no_shrink,
            corpus_dir=Path(args.corpus_dir) if args.corpus_dir else None,
            progress=None if args.quiet
            else (lambda msg: print(msg, file=sys.stderr)))
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "trace":
        from .instrument import InstrumentSpec, TraceTrigger

        trigger = TraceTrigger(
            start_pc=args.start_pc, start_cycle=args.start_cycle,
            stop_pc=args.stop_pc, stop_cycle=args.stop_cycle,
            length=args.length, max_records=args.max_records, label="cli")
        spec = InstrumentSpec(triggers=(trigger,),
                              counter_interval=args.interval)
        kern, system, result, records = _instrumented_kernel_run(args, spec)
        shown = 0
        for rec in records:
            if rec["t"] in ("meta", "seal") and not args.json:
                continue
            print(json.dumps(rec) if args.json else _format_record(rec))
            shown += 1
        n_trace = sum(1 for r in records if r["t"] == "trace")
        print(f"# {kern.spec.name} on {args.config}: {result.cycles} cycles, "
              f"{n_trace} trace record(s), {len(records)} total",
              file=sys.stderr)
        if args.out:
            print(f"# stream written to {args.out}", file=sys.stderr)
        return 0

    if args.command == "counters":
        from .analysis.instrument import (flamegraph_folded, interval_cpi,
                                          render_intervals)
        from .instrument import InstrumentSpec

        spec = InstrumentSpec(counter_interval=args.interval)
        kern, system, result, records = _instrumented_kernel_run(args, spec)
        if args.flamegraph:
            print(flamegraph_folded(records), end="")
        else:
            intervals = interval_cpi(records)
            if args.json:
                print(json.dumps(intervals, indent=2))
            else:
                print(f"{kern.spec.name} on {args.config}: "
                      f"{len(intervals)} interval(s) of {args.interval} "
                      f"cycle(s), whole-run CPI {result.cpi:.3f}")
                print(render_intervals(intervals))
        if args.out:
            print(f"# stream written to {args.out}", file=sys.stderr)
        return 0

    if args.command == "tail":
        from .instrument import tail_stream

        kinds = (set(args.kinds.split(",")) if args.kinds else None)
        sealed = False
        for rec in tail_stream(args.file, follow=args.follow,
                               timeout_s=args.timeout):
            if kinds is None or rec.get("t") in kinds:
                print(_format_record(rec), flush=True)
            if rec.get("t") == "seal":
                sealed = True
        if args.follow and not sealed:
            print(f"# timed out after {args.timeout:g}s without a seal",
                  file=sys.stderr)
            return 1
        return 0

    if args.command == "npb":
        res = NPB_RUNNERS[args.bench](get_config(args.config),
                                      nranks=args.ranks, cls=args.cls)
        print(res)
        return 0 if res.verified else 1

    # experiment
    text = _render(EXPERIMENTS[args.id]())
    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
