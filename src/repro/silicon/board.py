"""Physical-board stand-ins: run workloads on the silicon reference models.

In the paper these measurements come from an actual Banana Pi BPI-F3 and a
MILK-V Pioneer at LSU; here they come from the independently parameterised
silicon models in :mod:`repro.soc.presets` (see DESIGN.md for the
substitution argument).  The :class:`Board` API intentionally looks like a
benchmarking harness — run, get seconds — not like a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.trace import Trace
from ..smpi.runtime import RankResult, run_mpi
from ..soc.config import SoCConfig
from ..soc.presets import BANANA_PI_HW, MILKV_HW
from ..soc.system import System

__all__ = ["Measurement", "Board", "banana_pi", "milkv_pioneer"]


@dataclass
class Measurement:
    """A timed run on (model of) real hardware."""

    platform: str
    seconds: float
    cycles: int
    instructions: int = 0
    ranks: list[RankResult] = field(default_factory=list)

    def __str__(self) -> str:
        return f"[{self.platform}] {self.seconds * 1e3:.3f} ms"


class Board:
    """A benchmark harness bound to one hardware platform model."""

    def __init__(self, config: SoCConfig) -> None:
        if not config.is_silicon:
            raise ValueError(
                f"{config.name} is a FireSim design; Board wraps the "
                "physical-hardware references"
            )
        self.config = config
        self.system = System(config)

    def reset(self) -> None:
        self.system = System(self.config)

    def time_trace(self, trace: Trace, warmup: bool = True) -> Measurement:
        """Time a single-core kernel (with a warmup pass, as `perf` runs do)."""
        if warmup:
            self.system.run(trace)
        result = self.system.run(trace)
        return Measurement(
            platform=self.config.name,
            seconds=result.cycles / (self.config.core_ghz * 1e9),
            cycles=result.cycles,
            instructions=result.instructions,
        )

    def time_mpi(self, nranks: int, program) -> Measurement:
        """Time an MPI program (mpiexec-style)."""
        results = run_mpi(self.system, nranks, program)
        cycles = max(r.cycles for r in results)
        m = Measurement(
            platform=self.config.name,
            seconds=cycles / (self.config.core_ghz * 1e9),
            cycles=cycles,
            instructions=sum(r.instructions for r in results),
        )
        m.ranks = results
        return m


def banana_pi() -> Board:
    """The Banana Pi BPI-F3 (SpacemiT K1) reference."""
    return Board(BANANA_PI_HW)


def milkv_pioneer() -> Board:
    """The MILK-V Pioneer (SOPHON SG2042) reference."""
    return Board(MILKV_HW)
