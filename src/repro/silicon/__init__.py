"""Reference "hardware" models standing in for the physical boards."""

from .board import Board, Measurement, banana_pi, milkv_pioneer

__all__ = ["Board", "Measurement", "banana_pi", "milkv_pioneer"]
