#!/usr/bin/env python3
"""Reliability smoke check (CI): a farm under a chaos plan, verified.

Runs a lockstep (checkpointable) microbench batch three ways and
asserts the reliability contracts:

1. **reference** — fault-free serial sweep;
2. **chaos** — the same batch under a deterministic fault plan (one
   worker killed mid-simulation, one cached result corrupted on disk,
   one truncated) with a checkpoint directory: the killed job must
   resume from its checkpoint, the damaged cache entries must be
   quarantined, and the merged payloads must be **byte-identical** to
   the fault-free run;
3. **manifest** — the chaos run's JSON manifest records every job as
   ``ok`` with its resume provenance, and no checkpoint files leak.

Exit code 0 on success; any assertion failure is a regression.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.farm import Job, ResultCache, RunFarm  # noqa: E402
from repro.reliability import FaultPlan  # noqa: E402
from repro.soc import ROCKET1, ROCKET2  # noqa: E402

KERNELS = ("EI", "MM", "Cca", "DP1f")
SCALE = 0.05
QUANTUM, CHUNK = 512, 256

PLAN = """
corrupt-cache entry=1            # evict the victim from the warm cache...
kill job=1 attempt=1 after=4     # ...so it re-runs, dies, and must resume
corrupt-cache entry=5
error job=5 attempt=1            # raises before the workload, clean retry
corrupt-cache entry=2            # garbage bytes over a cached payload
truncate-cache entry=3           # half a JSON document
"""


def canon(results) -> str:
    return json.dumps([r.payload for r in results], sort_keys=True)


def main() -> int:
    jobs = [Job.kernel(cfg, k, scale=SCALE, quantum=QUANTUM, chunk=CHUNK)
            for cfg in (ROCKET1, ROCKET2) for k in KERNELS]

    reference_farm = RunFarm(workers=1)
    reference = reference_farm.run(jobs)
    assert all(r.ok for r in reference), "fault-free serial pass failed"

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        root = pathlib.Path(tmp)
        cache = ResultCache(root / "cache")
        RunFarm(workers=1, cache=cache).run(jobs)   # warm the cache

        plan = FaultPlan.parse(PLAN, seed=2025)
        manifest = root / "manifest.json"
        chaos = RunFarm(workers=2, cache=cache, fault_plan=plan,
                        checkpoint_dir=root / "ckpt", checkpoint_every=2,
                        manifest_path=manifest, backoff_s=0.0)
        survived = chaos.run(jobs)
        s = chaos.stats

        assert all(r.ok for r in survived), \
            [(r.label, r.error) for r in survived if not r.ok]
        assert canon(survived) == canon(reference), \
            "chaos-run payloads differ from the fault-free serial run"
        assert s.corrupt == 4, s               # every damaged entry caught
        assert survived[1].attempts == 2 and survived[1].resumed, survived[1]
        assert s.resumed >= 1, s
        assert survived[5].attempts == 2, survived[5]
        assert not list((root / "ckpt").glob("*.ckpt")), \
            "checkpoints must be consumed on success"

        quarantined = list(cache.quarantine_dir.glob("*.json"))
        assert len(quarantined) == 4, quarantined
        assert all(q.with_suffix(".reason").read_text().strip()
                   for q in quarantined)

        doc = json.loads(manifest.read_text())
        assert doc["interrupted"] is False
        assert all(j["status"] == "ok" for j in doc["jobs"]), doc["jobs"]
        assert any(j["resumed"] for j in doc["jobs"]), doc["jobs"]

    print(f"chaos smoke ok: {len(jobs)} jobs under "
          f"{len(plan)} faults == fault-free serial "
          f"({s.resumed} resumed, {s.corrupt} quarantined, "
          f"{s.retries} retries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
