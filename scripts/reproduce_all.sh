#!/usr/bin/env bash
# Reproduce everything: tests, every paper artifact, EXPERIMENTS.md.
#
# The figure benchmarks route through the repro.farm scheduler, so the
# run parallelises across REPRO_WORKERS worker processes (default: all
# cores) and, when REPRO_CACHE_DIR is set, a re-run only simulates what
# changed.  REPRO_WORKERS=1 forces the old fully-serial behaviour.
set -euo pipefail
cd "$(dirname "$0")/.."

REPRO_WORKERS="${REPRO_WORKERS:-$(nproc 2>/dev/null || echo 1)}"
export REPRO_WORKERS

echo "== 1/3 test suite =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== 2/3 benchmark harness (all tables, figures, ablations; ${REPRO_WORKERS} farm worker(s)) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== 3/3 EXPERIMENTS.md =="
python scripts/generate_experiments_md.py

echo "done: see benchmarks/results/, EXPERIMENTS.md"
