#!/usr/bin/env bash
# Reproduce everything: tests, every paper artifact, EXPERIMENTS.md.
# Takes roughly 30-60 minutes on one core.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/3 test suite =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== 2/3 benchmark harness (all tables, figures, ablations) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== 3/3 EXPERIMENTS.md =="
python scripts/generate_experiments_md.py

echo "done: see benchmarks/results/, EXPERIMENTS.md"
