#!/usr/bin/env python3
"""Instrumentation smoke check (CI): bounded overhead, live streams.

Three guarantees the streaming layer makes, exercised end-to-end:

1. **Bit-identity** — an instrumented microbench run (windows + counter
   sampling + markers armed) produces exactly the same CoreResult as a
   bare run.
2. **Bounded overhead** — instrumented walltime stays within
   ``MAX_OVERHEAD`` of bare walltime.  Best-of-``REPEATS`` on each side
   damps scheduler noise; both sides run the identical lockstep path.
3. **Tail-ability** — the stream written during the run is complete,
   sealed, and yields a sane interval-CPI table when tailed back off
   disk, the way an operator would follow a farm job.

Exit code 0 on success; any failure is a regression.
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import interval_cpi, render_intervals  # noqa: E402
from repro.instrument import (  # noqa: E402
    Instrument,
    InstrumentSpec,
    TraceTrigger,
    tail_stream,
)
from repro.soc.presets import get_config  # noqa: E402
from repro.soc.system import System  # noqa: E402
from repro.workloads.microbench import get_kernel  # noqa: E402

CONFIG = "Rocket1"
KERNEL = "MM"
SCALE = 1.0
QUANTUM, CHUNK = 1024, 512
#: instrumented / bare walltime ratio ceiling (the issue's <10% budget)
MAX_OVERHEAD = 0.10
REPEATS = 3


def timed_run(trace, instrument=None) -> tuple[float, object]:
    system = System(get_config(CONFIG))
    if instrument is not None:
        system.attach_instrument(instrument)
    t0 = time.perf_counter()
    result = system.run_parallel([trace], quantum=QUANTUM, chunk=CHUNK)[0]
    elapsed = time.perf_counter() - t0
    if instrument is not None:
        instrument.seal()
    return elapsed, result


def main() -> int:
    trace = get_kernel(KERNEL).build(scale=SCALE, seed=0)
    spec = InstrumentSpec(
        triggers=(TraceTrigger(start_cycle=5_000, length=256, label="smoke"),),
        counter_interval=50_000)

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="instrument-smoke-"))
    stream_path = workdir / "smoke.jsonl"

    bare_times, inst_times = [], []
    bare_result = inst_result = None
    for i in range(REPEATS):
        t, bare_result = timed_run(trace)
        bare_times.append(t)
        path = stream_path if i == 0 else workdir / f"smoke-{i}.jsonl"
        t, inst_result = timed_run(trace, Instrument(spec, path=str(path)))
        inst_times.append(t)

    if dataclasses.asdict(inst_result) != dataclasses.asdict(bare_result):
        print("FAIL: instrumented run diverged from the bare run")
        return 1

    bare, inst = min(bare_times), min(inst_times)
    overhead = inst / bare - 1.0
    print(f"bare {bare:.3f}s, instrumented {inst:.3f}s "
          f"(overhead {overhead:+.1%}, budget {MAX_OVERHEAD:.0%})")
    if overhead > MAX_OVERHEAD:
        print(f"FAIL: instrumentation overhead {overhead:.1%} exceeds "
              f"{MAX_OVERHEAD:.0%}")
        return 1

    # tail the first run's stream back like an operator would
    records = list(tail_stream(stream_path))
    kinds = {r["t"] for r in records}
    if records[0]["t"] != "meta" or records[-1]["t"] != "seal":
        print(f"FAIL: stream not meta-framed/sealed: {sorted(kinds)}")
        return 1
    if "trace" not in kinds or "counter" not in kinds:
        print(f"FAIL: expected trace + counter records, got {sorted(kinds)}")
        return 1
    intervals = interval_cpi(records)
    if sum(iv["instructions"] for iv in intervals) != len(trace):
        print("FAIL: counter samples do not account for every instruction")
        return 1
    print(render_intervals(intervals))

    print(f"instrument smoke OK: bit-identical, {len(records)} records, "
          f"overhead {overhead:+.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
