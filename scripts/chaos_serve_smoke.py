#!/usr/bin/env python3
"""Chaos serve smoke check (CI): the self-healing surface, end to end.

A real :class:`repro.serve.FarmServer` is driven through the failure
modes the robustness docs promise, and held to the oracle contract:
every submitted job terminates, and every payload is bit-identical to
a fault-free serial ``execute_job`` run.

1. **Host stall → quarantine → checkpoint migration.**  A seeded
   ``host-stall`` fault hangs the first launch on host ``a`` of a
   two-host fleet.  The watchdog timeout must trip the circuit breaker
   (``quarantine_after=1``), the job running beside the stall must be
   preempted and resumed on the healthy host (``migrate``/``recover``
   events on its stream), and the stall victim must retry at no cost
   to its budget.  Dropped client connections (``socket-drop``) ride
   along and must be absorbed by the client's bounded retry.
2. **Hard crash → ``--recover``.**  The server is killed SIGKILL-style
   mid-batch (one job done, one running with checkpoints on disk, one
   queued).  A ``recover=True`` restart must replay the journal,
   restore the finished job without re-running it, resume the orphaned
   job from its checkpoint, and run the queued one — all bit-identical.
3. **Chaos oracle tier.**  ``repro.check.diff_chaos`` (the ``chaos``
   tier of ``repro check``) must report zero divergences over
   generated programs.

Exit code 0 on success; any assertion failure is a regression.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.farm import Job, execute_job  # noqa: E402
from repro.instrument.stream import read_stream  # noqa: E402
from repro.reliability import FaultPlan  # noqa: E402
from repro.serve import FarmServer  # noqa: E402
from repro.soc import ROCKET1  # noqa: E402


def serve_events(stream: str) -> list[str]:
    return [r["event"] for r in read_stream(stream) if r.get("t") == "serve"]


def check_stall_migration() -> None:
    plan = FaultPlan.parse(
        "host-stall host=a count=1; socket-drop request=2")
    victim = Job.kernel(ROCKET1, "EI", scale=0.05, seed=1, timeout_s=0.3)
    filler = Job.kernel(ROCKET1, "Cca", scale=0.05)
    mover = Job.kernel(ROCKET1, "MM", scale=0.5, quantum=256)
    ref = {j: execute_job(j) for j in (victim, filler, mover)}

    spool = pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-serve-"))
    with FarmServer.start_background(
            spool, deploy="hosts:a=2,b=1", backoff_s=0.01,
            fault_plan=plan, suspect_after=1, quarantine_after=1,
            probe_interval=1000, checkpoint_every=2,
            max_retries=1) as handle:
        client = handle.client()
        ids = {j: client.submit(j)["id"] for j in (victim, filler, mover)}
        for job, jid in ids.items():
            done = client.wait(jid, timeout_s=180)
            assert done["state"] == "ok", done
            full = client.status(jid, payload=True)
            assert full["payload"] == ref[job], \
                f"{jid} diverged from serial under chaos"
        moved = client.status(ids[mover])
        assert moved["host"] == "b" and moved["migrations"] == 1, moved
        events = serve_events(moved["stream"])
        assert "migrate" in events and "recover" in events, events
        assert "quarantine" in serve_events(
            client.status(ids[victim])["stream"])
        hosts = {h["name"]: h for h in client.status()["deploy"]["hosts"]}
        assert hosts["a"]["state"] == "quarantined", hosts
        assert hosts["b"]["state"] == "healthy", hosts
    print("chaos-serve-smoke: stall -> quarantine -> migration ok "
          f"(host a quarantined, {ids[mover]} migrated and matched serial)")


def check_crash_recover() -> None:
    fast = Job.kernel(ROCKET1, "EI", scale=0.05, seed=2)
    slow = Job.kernel(ROCKET1, "MM", scale=0.5, quantum=256, seed=2)
    queued = Job.kernel(ROCKET1, "DP1f", scale=0.05, seed=2)
    ref = {j: execute_job(j) for j in (fast, slow, queued)}

    spool = pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-serve-"))
    handle = FarmServer.start_background(spool, deploy="local:1",
                                         backoff_s=0.01, checkpoint_every=2)
    client = handle.client()
    fast_id = client.submit(fast)["id"]
    assert client.wait(fast_id, timeout_s=180)["state"] == "ok"
    slow_id = client.submit(slow)["id"]
    client.wait(slow_id, timeout_s=30, until=frozenset({"running"}))
    time.sleep(0.3)                    # let checkpoints land
    queued_id = client.submit(queued)["id"]
    handle.crash()                     # SIGKILL-style: nothing sealed

    handle = FarmServer.start_background(spool, deploy="local:1",
                                         backoff_s=0.01, checkpoint_every=2,
                                         recover=True)
    client = handle.client()
    try:
        restored = client.status(fast_id, payload=True)
        assert restored["state"] == "ok" and restored["attempts"] == 1, \
            "completed job was re-run across recovery"
        assert restored["payload"] == ref[fast]
        for job, jid in ((slow, slow_id), (queued, queued_id)):
            done = client.wait(jid, timeout_s=180)
            assert done["state"] == "ok", done
            assert client.status(jid, payload=True)["payload"] == ref[job], \
                f"{jid} diverged from serial across crash recovery"
        events = serve_events(client.status(slow_id)["stream"])
        assert "orphaned" in events and "recovered" in events, events
    finally:
        handle.stop()
    print("chaos-serve-smoke: crash -> recover ok (restored 1, "
          "resumed orphan + queued job matched serial)")


def check_chaos_tier() -> None:
    from repro.check import diff_chaos, generate_program

    progs = [generate_program(seed) for seed in range(3)]
    diffs = diff_chaos(progs)
    assert diffs == [], f"chaos tier divergences: {diffs}"
    print(f"chaos-serve-smoke: diff_chaos over {len(progs)} program(s) ok")


def main() -> int:
    check_stall_migration()
    check_crash_recover()
    check_chaos_tier()
    print("chaos-serve-smoke: all self-healing contracts held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
