#!/usr/bin/env python3
"""Farm smoke check (CI): a tiny 2-worker microbench sweep, twice.

Asserts the three contracts the run farm guarantees:

1. a parallel (2-worker) sweep is byte-identical to the serial run;
2. the second pass over a warm cache performs **zero** simulations and
   is served entirely from cache (checked via the farm's telemetry
   counters);
3. cached payloads are byte-identical to freshly simulated ones.

Exit code 0 on success; any assertion failure is a regression.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.farm import Job, ResultCache, RunFarm  # noqa: E402
from repro.soc import ROCKET1, ROCKET2  # noqa: E402

KERNELS = ("EI", "MM", "Cca", "DP1f")
SCALE = 0.05


def canon(results) -> str:
    return json.dumps([r.payload for r in results], sort_keys=True)


def main() -> int:
    jobs = [Job.kernel(cfg, k, scale=SCALE)
            for cfg in (ROCKET1, ROCKET2) for k in KERNELS]

    serial_farm = RunFarm(workers=1)
    serial = serial_farm.run(jobs)
    assert all(r.ok for r in serial), "serial pass failed"

    with tempfile.TemporaryDirectory(prefix="repro-farm-smoke-") as tmp:
        cache = ResultCache(tmp)

        cold_farm = RunFarm(workers=2, cache=cache)
        cold = cold_farm.run(jobs)
        s = cold_farm.stats
        assert all(r.ok for r in cold), "cold parallel pass failed"
        assert s.simulated == len(jobs) and s.cache_hits == 0, s
        assert canon(cold) == canon(serial), \
            "parallel results differ from serial"

        warm_farm = RunFarm(workers=2, cache=cache)
        warm = warm_farm.run(jobs)
        s = warm_farm.stats
        flat = s.to_snapshot().flat()
        assert flat["farm.cache_hits"] == len(jobs), flat
        assert flat["farm.simulated"] == 0, flat
        assert all(r.from_cache for r in warm), "warm pass missed the cache"
        assert canon(warm) == canon(serial), \
            "cached results differ from simulated"

    print(f"farm smoke ok: {len(jobs)} jobs, parallel == serial, "
          f"warm pass 100% cached ({flat['farm.cache_hits']} hits, "
          f"0 simulations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
