#!/usr/bin/env python3
"""Serve smoke check (CI): the farm-as-a-service surface, end to end.

One background :class:`repro.serve.FarmServer` instance is driven
through every serving contract the docs promise:

1. two tenant queues with different priorities all complete, and every
   served payload is **bit-identical** to serial ``execute_job``;
2. a job submitted twice is served from the shared result store the
   second time (terminal at submit, no second simulation), and the
   store's durable hit/insert counters say so;
3. a live job can be tailed mid-run and its stream ends with a seal
   exactly when the job does;
4. a running lockstep job survives preempt + resume and still matches
   the uninterrupted serial payload bit for bit.

Exit code 0 on success; any assertion failure is a regression.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.farm import Job, execute_job  # noqa: E402
from repro.serve import FarmServer  # noqa: E402
from repro.soc import ROCKET1, ROCKET2  # noqa: E402

QUICK = dict(scale=0.05)
SLOW = dict(scale=0.3, quantum=256)


def main() -> int:
    spool = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    with FarmServer.start_background(spool, deploy="local:2",
                                     default_quota=1,
                                     checkpoint_every=2) as handle:
        client = handle.client()
        assert client.ping()["protocol"] >= 1

        # -- two tenants, mixed priorities, bit-identity ------------------
        submitted = []
        for tenant, priority, cfg, name in (
                ("alice", 5, ROCKET1, "EI"),
                ("alice", 0, ROCKET1, "Cca"),
                ("bob", 2, ROCKET2, "EI"),
                ("bob", 0, ROCKET2, "DP1f")):
            job = Job.kernel(cfg, name, **QUICK)
            doc = client.submit(job, tenant=tenant, priority=priority)
            submitted.append((doc["id"], job))
        for jid, job in submitted:
            done = client.wait(jid, timeout_s=180)
            assert done["state"] == "ok", done
            assert done["payload"] == execute_job(job), \
                f"served {jid} diverged from serial"
        sched = client.status()["scheduler"]["tenants"]
        assert set(sched) == {"alice", "bob"}, sched

        # -- store round trip: resubmit is terminal at submit -------------
        jid0, job0 = submitted[0]
        again = client.submit(job0, tenant="carol")
        assert again["state"] == "ok" and again["from_cache"], again
        first = client.status(jid0, payload=True)["payload"]
        assert client.status(again["id"], payload=True)["payload"] == first
        store = client.status()["store"]
        assert store["hits"] >= 1 and store["inserts"] >= len(submitted), store

        # -- tail a live job mid-run --------------------------------------
        live = client.submit(Job.kernel(ROCKET1, "MM", **SLOW),
                             tenant="alice")
        client.wait(live["id"], timeout_s=60, until={"running"})
        records = list(client.tail(live["id"], follow=True, timeout_s=120))
        events = [r["event"] for r in records if r.get("t") == "serve"]
        assert events == ["queued", "start", "ok"], events
        assert records[-1]["t"] == "seal", records[-1]
        assert client.status(live["id"])["state"] == "ok"

        # -- preempt + resume stays bit-identical -------------------------
        pjob = Job.kernel(ROCKET2, "MM", **SLOW)
        pre = client.submit(pjob, tenant="bob")
        client.wait(pre["id"], timeout_s=60, until={"running"})
        time.sleep(0.3)  # let a couple of checkpoints land
        client.cancel(pre["id"], preempt=True)
        parked = client.wait(pre["id"], timeout_s=60, until={"preempted"})
        assert parked["attempts"] == 1, parked
        client.resume(pre["id"])
        done = client.wait(pre["id"], timeout_s=180)
        assert done["state"] == "ok", done
        assert done["resumed"] is True, done
        assert done["payload"] == execute_job(pjob), \
            "resumed payload diverged from uninterrupted serial run"

    print(f"serve smoke ok: {len(submitted)} jobs across 2 tenant queues "
          f"bit-identical to serial, store hit served carol, live tail "
          f"sealed with the job, preempt+resume matched serial "
          f"(attempts={done['attempts']}, resumed={done['resumed']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
