#!/usr/bin/env python3
"""Differential-checking smoke (CI): fuzz every oracle, replay the corpus.

Two gates, mirroring ``docs/checking.md``:

1. a 25-seed ``repro check`` campaign across all oracle tiers
   (golden, lint, accel, checkpoint, instrument, farm, chaos) must
   finish with zero divergences — no shrinking, so an unexpected finding fails loudly
   instead of writing into the committed corpus;
2. every shrunk repro in ``tests/check/corpus/`` must replay clean,
   proving each bug the fuzzer ever found is still fixed.

Exit code 0 on success.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.check import load_corpus, replay_entries, run_check  # noqa: E402

SEEDS = 25


def main() -> int:
    entries = load_corpus()
    failures = replay_entries(entries)
    print(f"corpus: {len(entries)} entries replayed, "
          f"{len(failures)} failure(s)")
    for f in failures:
        print(f"  ! {f}")

    report = run_check(seeds=SEEDS, shrink=False,
                       progress=lambda msg: print(f"  {msg}"))
    print(report.summary())

    if failures:
        print("FAIL: a previously-fixed corpus bug is back")
        return 1
    if not report.ok:
        print("FAIL: the differential oracle found a divergence")
        return 1
    print("check smoke OK: corpus clean, zero divergences across "
          f"{SEEDS} seeds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
